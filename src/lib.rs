//! # QPPT — Query Processing on Prefix Trees
//!
//! A from-scratch Rust reproduction of *QPPT: Query Processing on Prefix
//! Trees* (Kissinger, Schlegel, Habich, Lehner — CIDR 2013).
//!
//! QPPT is an **indexed table-at-a-time** processing model for in-memory
//! row stores: operators exchange *clustered indexes* (prefix trees holding
//! sets of tuples) instead of tuples, columns, or vectors. Every operator's
//! output is an index keyed on exactly the attribute(s) the next operator
//! needs, so grouping and sorting happen "for free" while building the
//! output, and composed operators (select-join, multi-way/star join) skip
//! intermediate materialisation entirely.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`trie`] / [`kiss`] — the index structures of §2 (generalized prefix
//!   tree, KISS-Tree) with batch processing and synchronous index scans.
//! * [`hash`] — the hash-table comparators used in the paper's Fig. 3.
//! * [`storage`] — the in-memory row-store substrate (schema, dictionaries,
//!   MVCC, base indexes, star-query specs).
//! * [`ssb`] — the Star Schema Benchmark generator, the 13 SSB queries, and
//!   a naive reference executor used as correctness oracle.
//! * [`core`] — the QPPT engine itself (the paper's contribution).
//! * [`columnar`] — the column-at-a-time and vector-at-a-time comparison
//!   engines of §5.
//! * [`mem`] — arenas, segmented duplicate storage, prefetching, and the
//!   deterministic PRNG underneath everything.
//! * [`par`] — morsel-driven parallel execution over prefix-tree
//!   partitions: [`par::ParEngine`] / [`par::RunParallel`] run the same
//!   plans as [`core`] on a worker pool, byte-identical results;
//!   [`par::PooledEngine`] runs them on a persistent shared
//!   [`par::WorkerPool`] serving many concurrent queries.
//! * [`cache`] — the snapshot-keyed query cache: bounded sharded LRU
//!   tiers for plans, materialized dimension selections, and full results,
//!   invalidated exactly by per-table versions
//!   ([`cache::QueryCache`], [`cache::QueryFingerprint`]).
//! * [`query`] — the textual query language: a line-oriented grammar over
//!   [`storage::QuerySpec`] with a lossless parser/pretty-printer pair
//!   ([`query::parse`], [`query::print`]) — the server's `QUERY` verb.
//! * [`server`] — the TCP query service on top: ad-hoc `QUERY` text and
//!   named SSB aliases over a line protocol, thread-per-connection
//!   frontend, every query validated and executed on the shared pool
//!   through the cache ([`server::ServeEngine`], [`server::QpptClient`]).
//! * [`router`] — distributed serving: a scatter/gather router over
//!   prefix-sharded `qppt-server` fleets with a deterministic cross-shard
//!   merge, byte-identical to single-node answers
//!   ([`router::Router`], [`router::serve_router`]).
//! * [`obs`] — dependency-free observability: sharded lock-free metrics
//!   with Prometheus text exposition behind the `METRICS` verb, and
//!   request-scoped span traces stitched across the router fleet
//!   ([`obs::Registry`], [`obs::Trace`]).
//!
//! ## Quickstart
//!
//! ```
//! use qppt::core::{prepare_indexes, PlanOptions, QpptEngine};
//! use qppt::ssb::{queries, SsbDb};
//!
//! // Tiny deterministic SSB instance (scale factor 0.01).
//! let mut ssb = SsbDb::generate(0.01, 42);
//! let opts = PlanOptions::default();
//! let spec = queries::q2_3();
//!
//! // Base indexes are created once and remain in the data pool (§3).
//! prepare_indexes(&mut ssb.db, &spec, &opts).unwrap();
//!
//! let engine = QpptEngine::new(&ssb.db);
//! let result = engine.run(&spec, &opts).unwrap();
//! // A QPPT result is already grouped *and* ordered: the output is
//! // physically a prefix tree keyed on (d_year, p_brand1).
//! assert!(result.rows.windows(2).all(|w| w[0].key_values <= w[1].key_values));
//! ```

pub use qppt_cache as cache;
pub use qppt_columnar as columnar;
pub use qppt_core as core;
pub use qppt_hash as hash;
pub use qppt_kiss as kiss;
pub use qppt_mem as mem;
pub use qppt_obs as obs;
pub use qppt_par as par;
pub use qppt_query as query;
pub use qppt_router as router;
pub use qppt_server as server;
pub use qppt_ssb as ssb;
pub use qppt_storage as storage;
pub use qppt_trie as trie;
