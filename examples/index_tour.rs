//! A tour of the index substrate of §2: prefix trees, the KISS-Tree, batch
//! processing, duplicate handling, and the synchronous index scan.
//!
//! ```text
//! cargo run --release --example index_tour
//! ```

use qppt::kiss::{kiss_sync_scan, KissConfig, KissTree};
use qppt::mem::Xoshiro256StarStar;
use qppt::trie::{intersect, sync_scan, PrefixTree, TrieConfig};

fn main() {
    prefix_tree_basics();
    kiss_tree_basics();
    batch_processing();
    duplicates();
    synchronous_scan();
}

fn prefix_tree_basics() {
    println!("— Prefix tree (§2.1): order-preserving, unbalanced, k′-bit fragments");
    let mut t = PrefixTree::<u32>::new(TrieConfig::new(32, 4).unwrap());
    for key in [42u64, 7, 1_000_000, 8, 43] {
        t.insert(key, (key * 10) as u32);
    }
    // Iteration is in key order — the tree IS the sort.
    let keys: Vec<u64> = t.keys().collect();
    println!("  ordered keys:   {keys:?}");
    let in_range: Vec<u64> = t.range(8, 100).map(|(k, _)| k).collect();
    println!("  range [8,100]:  {in_range:?}");
    let s = t.stats();
    println!(
        "  nodes={} max_depth={} bytes={}\n",
        s.nodes,
        s.max_depth,
        s.total_bytes()
    );
}

fn kiss_tree_basics() {
    println!("— KISS-Tree (§2.2): 26/6-bit split, ≤3 memory accesses per lookup");
    let mut t = KissTree::<u32>::new(KissConfig::paper());
    for key in 0..100_000u32 {
        t.insert(key, key);
    }
    let s = t.stats();
    println!(
        "  100k dense keys: root virtual = {} MiB, physically touched ≈ {} KiB",
        s.root_virtual_bytes >> 20,
        s.root_touched_bytes >> 10
    );
    println!(
        "  min={:?} max={:?} (kept for bounded scans)\n",
        t.min_key(),
        t.max_key()
    );
}

fn batch_processing() {
    println!("— Batch processing (§2.3, Algorithm 1): prefetching, level-synchronous");
    let mut rng = Xoshiro256StarStar::new(1);
    let mut t = PrefixTree::<u32>::pt4_32();
    let keys: Vec<u64> = (0..100_000).map(|_| rng.below(1 << 30)).collect();
    for (i, &k) in keys.iter().enumerate() {
        t.insert(k, i as u32);
    }
    let probes: Vec<u64> = keys.iter().step_by(7).copied().collect();
    let batched = t.batch_get_first(&probes);
    let hits = batched.iter().filter(|v| v.is_some()).count();
    println!(
        "  batch of {} lookups → {} hits (identical to scalar gets)\n",
        probes.len(),
        hits
    );
}

fn duplicates() {
    println!("— Duplicate handling (§2.4): 64 B → 4 KB doubling segments");
    let mut t = PrefixTree::<u32>::pt4_32();
    for i in 0..10_000u32 {
        t.insert(5, i); // 10k duplicates for one key
    }
    let mut segments = 0;
    let mut values = 0;
    t.for_each_value_segment(5, |seg| {
        segments += 1;
        values += seg.len();
    });
    println!("  10k values stored in {segments} contiguous segments ({values} values scanned)\n");
}

fn synchronous_scan() {
    println!("— Synchronous index scan (§4.2): co-scan skipping unshared subtrees");
    let mut rng = Xoshiro256StarStar::new(2);
    let mut a = PrefixTree::<u32>::pt4_32();
    let mut b = PrefixTree::<u32>::pt4_32();
    for _ in 0..50_000 {
        a.insert(rng.below(1 << 24), 0);
        b.insert(rng.below(1 << 24), 0);
    }
    let mut matches = 0;
    sync_scan(&a, &b, |_, _, _| matches += 1);
    println!(
        "  trees of {} / {} keys share {} keys",
        a.len(),
        b.len(),
        matches
    );
    let i = intersect(&a, &b);
    println!(
        "  intersect() materializes them as a new tree: {} keys",
        i.len()
    );

    // The KISS variant bounds the root scan by [max(min), min(max)].
    let mut ka = KissTree::<u32>::new(KissConfig::paper());
    let mut kb = KissTree::<u32>::new(KissConfig::paper());
    for i in 0..1000u32 {
        ka.insert(i, 0);
        kb.insert(i + 500, 0);
    }
    let mut shared = 0;
    kiss_sync_scan(&ka, &kb, |_, _, _| shared += 1);
    println!("  KISS co-scan over overlapping ranges: {shared} shared keys");
}
