//! The demonstrator of the paper's appendix (Fig. 10), as a CLI: pick an
//! SSB query, toggle the optimization options, and inspect the generated
//! QPPT plan plus per-operator execution statistics.
//!
//! ```text
//! cargo run --release --example plan_explorer -- --query Q2.3 \
//!     [--select-join on|off] [--buffer 1|64|512|2048] [--ways 2..5] \
//!     [--multidim on|off] [--set-ops on|off] [--kiss on|off] [--sf 0.02]
//! ```

use qppt::core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt::ssb::{queries, SsbDb};

fn arg(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let query_id = arg(&args, "--query").unwrap_or_else(|| "Q2.3".to_string());
    let sf: f64 = arg(&args, "--sf")
        .map(|v| v.parse().unwrap())
        .unwrap_or(0.02);
    let select_join = !matches!(arg(&args, "--select-join").as_deref(), Some("off"));
    let buffer: usize = arg(&args, "--buffer")
        .map(|v| v.parse().unwrap())
        .unwrap_or(512);
    let ways: usize = arg(&args, "--ways")
        .map(|v| v.parse().unwrap())
        .unwrap_or(5);
    let multidim = matches!(arg(&args, "--multidim").as_deref(), Some("on"));
    let set_ops = matches!(arg(&args, "--set-ops").as_deref(), Some("on"));
    let kiss = !matches!(arg(&args, "--kiss").as_deref(), Some("off"));

    let spec = queries::all_queries()
        .into_iter()
        .find(|q| q.id.eq_ignore_ascii_case(&query_id))
        .unwrap_or_else(|| {
            eprintln!("unknown query {query_id}; available:");
            for q in queries::all_queries() {
                eprintln!("  {}", q.id);
            }
            std::process::exit(1);
        });

    let opts = PlanOptions::default()
        .with_select_join(select_join)
        .with_join_buffer(buffer)
        .with_max_join_ways(ways)
        .with_multidim(multidim)
        .with_set_ops(set_ops)
        .with_prefer_kiss(kiss);

    eprintln!("generating SSB at SF={sf} and building base indexes …");
    let mut ssb = SsbDb::generate(sf, 42);
    prepare_indexes(&mut ssb.db, &spec, &opts).unwrap();
    let engine = QpptEngine::new(&ssb.db);

    // The plan view.
    println!("{}", engine.explain(&spec, &opts).unwrap());

    // Execute; statistics mirror what the demonstrator overlays on the plan:
    // per-operator time share, output index sizes and types.
    let (result, stats) = engine.run_with_stats(&spec, &opts).unwrap();
    println!("{stats}");
    println!("result ({} rows):", result.rows.len());
    let mut shown = result.clone();
    shown.rows.truncate(15);
    println!("{}", shown.to_pretty_string());
    if result.rows.len() > 15 {
        println!("… {} more rows", result.rows.len() - 15);
    }
}
