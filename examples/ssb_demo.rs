//! Run the full Star Schema Benchmark on all three engines and print a
//! Fig. 7-style comparison — the paper's headline experiment at laptop
//! scale.
//!
//! ```text
//! cargo run --release --example ssb_demo -- [--sf 0.05]
//! ```

use std::time::Instant;

use qppt::columnar::{ColumnAtATimeEngine, ColumnDb, VectorAtATimeEngine};
use qppt::core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt::ssb::{queries, SsbDb};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sf = args
        .iter()
        .position(|a| a == "--sf")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--sf takes a number"))
        .unwrap_or(0.05);

    eprintln!("generating SSB at SF={sf} …");
    let mut ssb = SsbDb::generate(sf, 42);
    let opts = PlanOptions::default();
    let t0 = Instant::now();
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &opts).unwrap();
    }
    eprintln!(
        "base indexes built in {:.1} ms (created once, reused by every query)",
        t0.elapsed().as_secs_f64() * 1e3
    );
    let cdb = ColumnDb::new(&ssb.db, ssb.db.snapshot());
    let engine = QpptEngine::new(&ssb.db);

    println!(
        "\n{:<6} {:>12} {:>12} {:>12}   result",
        "query", "QPPT ms", "vector ms", "column ms"
    );
    for q in queries::all_queries() {
        let t = Instant::now();
        let r_qppt = engine.run(&q, &opts).unwrap();
        let ms_qppt = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let r_vec = VectorAtATimeEngine::run(&cdb, &q).unwrap();
        let ms_vec = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let r_col = ColumnAtATimeEngine::run(&cdb, &q).unwrap();
        let ms_col = t.elapsed().as_secs_f64() * 1e3;

        assert_eq!(r_qppt.clone().canonicalized(), r_vec.canonicalized());
        assert_eq!(r_qppt.clone().canonicalized(), r_col.canonicalized());
        println!(
            "{:<6} {:>12.2} {:>12.2} {:>12.2}   {} row(s)",
            q.id,
            ms_qppt,
            ms_vec,
            ms_col,
            r_qppt.rows.len()
        );
    }

    // Show one full result, the paper's running example.
    let q23 = queries::q2_3();
    println!("\nSSB Q2.3 result (sum of revenue by year and brand):");
    println!("{}", engine.run(&q23, &opts).unwrap().to_pretty_string());
}
