//! Quickstart: build a small star schema by hand, create base indexes, and
//! run a query through the QPPT engine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qppt::core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt::storage::{
    AggExpr, ColRef, ColumnType, Database, DimSpec, Expr, OrderKey, Predicate, QuerySpec, Schema,
    TableBuilder, Value,
};

fn main() {
    // 1. A tiny sales schema: one fact table, one dimension.
    let mut products = TableBuilder::new(
        "product",
        Schema::of(&[
            ("p_id", ColumnType::Int),
            ("p_category", ColumnType::Str),
            ("p_name", ColumnType::Str),
        ]),
    );
    for (id, cat, name) in [
        (1, "beverage", "espresso beans"),
        (2, "beverage", "green tea"),
        (3, "hardware", "grinder"),
        (4, "hardware", "kettle"),
        (5, "beverage", "cocoa"),
    ] {
        products
            .push_row(vec![Value::Int(id), Value::str(cat), Value::str(name)])
            .unwrap();
    }

    let mut sales = TableBuilder::new(
        "sales",
        Schema::of(&[
            ("s_product", ColumnType::Int),
            ("s_quantity", ColumnType::Int),
            ("s_price", ColumnType::Int),
        ]),
    );
    for (product, quantity, price) in [
        (1, 3, 1200),
        (2, 1, 800),
        (1, 2, 1200),
        (3, 1, 9900),
        (5, 4, 600),
        (4, 1, 4500),
        (2, 2, 800),
    ] {
        sales
            .push_row(vec![
                Value::Int(product),
                Value::Int(quantity),
                Value::Int(price),
            ])
            .unwrap();
    }

    let mut db = Database::new();
    db.add_table(products.finish());
    db.add_table(sales.finish());

    // 2. A star query: revenue (quantity × price) of beverages, by product.
    let query = QuerySpec {
        id: "beverage-revenue".into(),
        fact: "sales".into(),
        dims: vec![DimSpec {
            table: "product".into(),
            join_col: "p_id".into(),
            fact_col: "s_product".into(),
            predicates: vec![Predicate::eq("p_category", "beverage")],
            carried: vec!["p_name".into()],
        }],
        fact_predicates: vec![],
        group_by: vec![ColRef::new("product", "p_name")],
        aggregates: vec![AggExpr::sum(
            Expr::Mul("s_quantity".into(), "s_price".into()),
            "revenue",
        )],
        order_by: vec![OrderKey::group(0)],
    };

    // 3. Create the base indexes once ("they remain in the data pool"), then
    //    run. The output index is keyed on p_name, so the result arrives
    //    already grouped and sorted.
    let opts = PlanOptions::default();
    prepare_indexes(&mut db, &query, &opts).unwrap();
    let engine = QpptEngine::new(&db);

    println!("{}", engine.explain(&query, &opts).unwrap());
    let (result, stats) = engine.run_with_stats(&query, &opts).unwrap();
    println!("{}", result.to_pretty_string());
    println!("{stats}");
}
