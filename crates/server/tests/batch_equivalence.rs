//! The batch knobs are fingerprint-exempt — `batch_exec`/`batch_rows`
//! never touch `fingerprint`/`fingerprint_dim`, because batched execution
//! is byte-identical to scalar. Served consequence: batched and scalar
//! requests share every cache tier — a batched warm hit is answered from
//! the result entry a scalar run filled, and a batched warm *miss*
//! assembles from the σ materializations scalar runs built (asserted via
//! exact dim-tier counters).

use std::sync::Arc;

use qppt_core::{prepare_indexes, PartialAggregate, PlanOptions, QpptEngine};
use qppt_par::WorkerPool;
use qppt_server::ServeEngine;
use qppt_ssb::{queries, SsbDb};

#[test]
fn batched_runs_share_sigma_and_results_with_scalar_runs() {
    let pool = WorkerPool::new(2, 8);
    let defaults = PlanOptions::default().with_parallelism(2);
    let engine =
        Arc::new(ServeEngine::with_ssb(0.01, 42, pool.clone(), defaults).expect("SSB prepares"));
    let opts = engine.defaults();

    // Cold scalar run: plans, σ materializations, and the result entry
    // all land in their tiers.
    let s0 = engine.cache_stats();
    let (scalar, _) = engine.run("q3.1", &opts, 0).expect("cold scalar run");
    let s1 = engine.cache_stats();
    let sigma_built = s1.dims.insertions - s0.dims.insertions;
    assert!(sigma_built > 0, "the cold run materializes σ");
    assert_eq!(s1.results.hits - s0.results.hits, 0, "cold run is a miss");

    // Identical options + batch knobs: same fingerprint, so the batched
    // request is a result-tier *hit* on the scalar run's entry.
    let batched = opts.with_batch_exec(true).with_batch_rows(64);
    let (warm, _) = engine.run("q3.1", &batched, 0).expect("warm batched run");
    assert_eq!(warm, scalar, "warm hit bytes");
    let s2 = engine.cache_stats();
    assert_eq!(
        s2.results.hits - s1.results.hits,
        1,
        "batch knobs share the scalar run's result entry"
    );

    // A batched run at a different parallelism is a warm *miss* —
    // parallelism IS fingerprinted — so it actually executes batched, but
    // assembles its σ set entirely from the entries the scalar run built:
    // one dim-tier hit per σ, zero new materializations.
    let batched4 = batched.with_parallelism(4);
    let (miss, _) = engine
        .run("q3.1", &batched4, 0)
        .expect("warm-miss batched run");
    assert_eq!(miss, scalar, "warm-miss bytes");
    let s3 = engine.cache_stats();
    assert_eq!(
        s3.results.hits - s2.results.hits,
        0,
        "different parallelism is a result miss"
    );
    assert_eq!(
        s3.dims.hits - s2.dims.hits,
        sigma_built,
        "every batched σ lookup hits a scalar-built entry"
    );
    assert_eq!(
        s3.dims.insertions - s2.dims.insertions,
        0,
        "the batched execution builds no σ of its own"
    );

    // And the mirror direction: a *scalar* run at that parallelism now
    // hits the result entry the batched execution inserted.
    let scalar4 = opts.with_parallelism(4);
    let (shared_back, _) = engine.run("q3.1", &scalar4, 0).expect("scalar rerun");
    assert_eq!(shared_back, scalar, "scalar rerun bytes");
    let s4 = engine.cache_stats();
    assert_eq!(
        s4.results.hits - s3.results.hits,
        1,
        "the scalar run shares the batched run's result entry"
    );

    pool.shutdown();
}

/// Pins the two *decode* paths specifically: `decode_result` (single-node
/// results) and `PartialAggregate::from_agg` (the shard-side rows routed
/// merges are built from) must emit byte-identical output whether group
/// values decode row at a time or lane-wise in `batch_rows`-sized runs —
/// at run sizes that exceed the group count, don't divide it, and
/// degenerate to one row. The uncached sequential engine is used so every
/// run really decodes (no cache tier absorbs the repeats).
#[test]
fn batched_decode_is_byte_identical_on_both_decode_paths() {
    let opts = PlanOptions::default();
    let mut ssb = SsbDb::generate(0.01, 42);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &opts).expect("indexes build");
    }
    let engine = QpptEngine::new(&ssb.db);

    for q in queries::all_queries() {
        let scalar = engine.run(&q, &opts).expect("scalar run");
        let plan = engine.plan(&q, &opts).expect("scalar plan");
        let (agg, _) = qppt_core::exec::execute_agg(&ssb.db, ssb.db.snapshot(), &plan)
            .expect("scalar agg run");
        let partial_scalar = PartialAggregate::from_agg(&ssb.db, &plan, &agg);
        assert_eq!(
            partial_scalar.clone().into_result(&q.order_by),
            scalar,
            "{}: partial decode agrees with the direct decode",
            q.id
        );

        for rows in [1usize, 3, 64, 4096] {
            let batched = opts.with_batch_exec(true).with_batch_rows(rows);
            let got = engine.run(&q, &batched).expect("batched run");
            assert_eq!(got, scalar, "{}: decode_result bytes at rows={rows}", q.id);

            let plan_b = engine.plan(&q, &batched).expect("batched plan");
            let (agg_b, _) = qppt_core::exec::execute_agg(&ssb.db, ssb.db.snapshot(), &plan_b)
                .expect("batched agg run");
            let partial_b = PartialAggregate::from_agg(&ssb.db, &plan_b, &agg_b);
            assert_eq!(
                partial_b, partial_scalar,
                "{}: from_agg rows at rows={rows}",
                q.id
            );
        }
    }
}
