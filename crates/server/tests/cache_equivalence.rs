//! The caching contract, end to end:
//!
//! * all 13 SSB queries are **byte-identical** with the cache on vs off
//!   (cold fill, warm result hits, per-request `cache=off` bypass);
//! * an MVCC write invalidates **exactly** the affected entries — queries
//!   over written tables recompute (stale results are never served),
//!   queries over untouched tables keep hitting;
//! * 10 concurrent TCP connections sharing one cache still match the
//!   sequential engine.

use std::sync::Arc;

use qppt_cache::{CacheConfig, QueryCache};
use qppt_core::{PlanOptions, QpptEngine};
use qppt_par::WorkerPool;
use qppt_server::{serve, QpptClient, ServeEngine};
use qppt_ssb::{queries, SsbDb};
use qppt_storage::{Database, Value};

fn ssb_db(sf: f64) -> Arc<Database> {
    let mut ssb = SsbDb::generate(sf, 42);
    for q in queries::all_queries() {
        qppt_core::prepare_indexes(&mut ssb.db, &q, &PlanOptions::default()).unwrap();
    }
    Arc::new(ssb.db)
}

#[test]
fn thirteen_queries_byte_identical_cache_on_vs_off() {
    let db = ssb_db(0.01);
    let pool = WorkerPool::new(2, 8);
    let engine = ServeEngine::over_db(db.clone(), pool.clone(), PlanOptions::default(), 0.01, 42);
    let oracle = QpptEngine::new(&db);

    for parallelism in [1usize, 2] {
        let opts = PlanOptions::default().with_parallelism(parallelism);
        for q in queries::all_queries() {
            let name = q.id.to_ascii_lowercase();
            let expected = oracle.run(&q, &PlanOptions::default()).unwrap();
            // cache=off bypass, cold fill, then a warm result hit.
            let (bypass, _) = engine.run_cached(&name, &opts, 0, false).unwrap();
            let (cold, _) = engine.run_cached(&name, &opts, 0, true).unwrap();
            let (warm, warm_stats) = engine.run_cached(&name, &opts, 0, true).unwrap();
            assert_eq!(bypass, expected, "{} cache=off @ p={parallelism}", q.id);
            assert_eq!(cold, expected, "{} cold @ p={parallelism}", q.id);
            assert_eq!(warm, expected, "{} warm @ p={parallelism}", q.id);
            assert!(
                warm_stats
                    .ops
                    .iter()
                    .any(|op| op.label == "cache: result hit"),
                "{} warm run did not report a result hit",
                q.id
            );
        }
    }
    let stats = engine.cache_stats();
    // 13 queries × 2 option sets: one cold miss + one warm hit each.
    assert_eq!(stats.results.hits, 26);
    assert_eq!(stats.results.misses, 26);
    assert_eq!(stats.results.invalidations, 0);
    pool.shutdown();
}

/// Deletes every part row (visible at the current snapshot) whose
/// `p_brand1` equals `brand`, returning how many were terminated.
fn delete_brand_rows(db: &mut Database, brand: &str) -> usize {
    let rids: Vec<u32> = {
        let mvt = db.table("part").unwrap();
        let t = mvt.table();
        let col = t.schema().col("p_brand1").unwrap();
        let Some(code) = t.encode_value(col, &Value::str(brand)).unwrap() else {
            return 0;
        };
        let snap = db.snapshot();
        mvt.scan_visible(snap)
            .filter(|&rid| t.get(rid, col) == code)
            .collect()
    };
    for &rid in &rids {
        db.delete_row("part", rid).unwrap();
    }
    rids.len()
}

#[test]
fn mvcc_write_invalidates_exactly_the_affected_entries() {
    let mut ssb = SsbDb::generate(0.01, 42);
    for q in queries::all_queries() {
        qppt_core::prepare_indexes(&mut ssb.db, &q, &PlanOptions::default()).unwrap();
    }
    let mut db = Arc::new(ssb.db);
    let pool = WorkerPool::new(2, 8);
    let cache = Arc::new(QueryCache::new(CacheConfig::default()));
    let opts = PlanOptions::default();

    // q1.1 reads lineorder+date; q2.3 reads lineorder+part+supplier+date.
    let q23 = queries::q2_3();

    let engine =
        ServeEngine::over_db_with_cache(db.clone(), pool.clone(), opts, 0.01, 42, cache.clone());
    let (r11_before, _) = engine.run("q1.1", &opts, 0).unwrap();
    let (r23_before, _) = engine.run("q2.3", &opts, 0).unwrap();
    assert_eq!(r23_before, QpptEngine::new(&db).run(&q23, &opts).unwrap());
    // Warm both entries.
    assert_eq!(engine.run("q1.1", &opts, 0).unwrap().0, r11_before);
    assert_eq!(engine.run("q2.3", &opts, 0).unwrap().0, r23_before);
    let s0 = engine.cache_stats();
    assert_eq!(s0.results.hits, 2);

    // Write to `part`: delete every row of the brand q2.3 aggregates, so
    // the fresh q2.3 answer provably differs from the stale one.
    drop(engine);
    {
        let db_mut = Arc::get_mut(&mut db).expect("engine dropped, Arc unique");
        let deleted = delete_brand_rows(db_mut, "MFGR#2221");
        assert!(deleted > 0, "test needs at least one matching part row");
    }

    let engine =
        ServeEngine::over_db_with_cache(db.clone(), pool.clone(), opts, 0.01, 42, cache.clone());
    let oracle = QpptEngine::new(&db);

    // Untouched tables: q1.1 still hits and still matches.
    let (r11_after, stats11) = engine.run("q1.1", &opts, 0).unwrap();
    assert_eq!(r11_after, r11_before);
    assert!(
        stats11.ops.iter().any(|op| op.label == "cache: result hit"),
        "q1.1 should still be served from the result cache"
    );

    // Affected tables: q2.3 is invalidated, recomputed, and fresh — the
    // stale (pre-delete) result is never served.
    let (r23_after, stats23) = engine.run("q2.3", &opts, 0).unwrap();
    let fresh = oracle.run(&q23, &opts).unwrap();
    assert_eq!(
        r23_after, fresh,
        "q2.3 must be recomputed at the new snapshot"
    );
    assert_ne!(
        r23_after, r23_before,
        "the delete changes q2.3's answer; serving the old bytes would be stale"
    );
    assert!(
        !stats23.ops.iter().any(|op| op.label == "cache: result hit"),
        "q2.3 must not be served from the stale result entry"
    );

    let s1 = engine.cache_stats();
    assert_eq!(
        s1.results.invalidations, 1,
        "exactly the q2.3 result entry is invalidated"
    );
    assert_eq!(s1.results.hits, s0.results.hits + 1, "q1.1 hit again");

    // And the recomputed entry serves hits again.
    assert_eq!(engine.run("q2.3", &opts, 0).unwrap().0, fresh);
    assert_eq!(engine.cache_stats().results.hits, s1.results.hits + 1);
    pool.shutdown();
}

#[test]
fn ten_concurrent_connections_sharing_the_cache_match_sequential() {
    let db = ssb_db(0.01);
    let pool = WorkerPool::new(3, 8);
    let defaults = PlanOptions::default().with_parallelism(2);
    let engine = Arc::new(ServeEngine::over_db(
        db.clone(),
        pool.clone(),
        defaults,
        0.01,
        42,
    ));
    let server = serve(engine.clone(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();

    let oracle = QpptEngine::new(&db);
    let all = queries::all_queries();
    let expected: Vec<_> = all
        .iter()
        .map(|q| oracle.run(q, &PlanOptions::default()).unwrap())
        .collect();

    // 10 connections × 2 rounds over all 13 queries; mixed parallelism and
    // an occasional cache bypass, all racing on one shared cache.
    std::thread::scope(|s| {
        for c in 0..10usize {
            let all = &all;
            let expected = &expected;
            s.spawn(move || {
                let mut client = QpptClient::connect(addr).expect("connect");
                for round in 0..2 {
                    for (qi, q) in all.iter().enumerate() {
                        let par = ["1", "2", "4"][(c + qi) % 3];
                        let cache = if (c + qi + round) % 5 == 0 {
                            "off"
                        } else {
                            "on"
                        };
                        let served = client
                            .run(
                                &q.id.to_ascii_lowercase(),
                                &[("parallelism", par), ("cache", cache)],
                            )
                            .unwrap_or_else(|e| panic!("{} via client {c}: {e}", q.id));
                        assert_eq!(
                            served.result, expected[qi],
                            "{} via client {c} (parallelism {par}, cache {cache})",
                            q.id
                        );
                    }
                }
                client.quit().expect("clean quit");
            });
        }
    });

    // The shared cache served a decent share of the 260 runs.
    let stats = engine.cache_stats();
    assert!(
        stats.results.hits > 0,
        "concurrent connections never hit the shared cache: {stats:?}"
    );
    assert_eq!(stats.results.invalidations, 0);

    server.stop();
    pool.shutdown();
}
