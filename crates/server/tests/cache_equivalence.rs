//! The caching contract, end to end:
//!
//! * all 13 SSB queries are **byte-identical** with the cache (dimension
//!   tier included) on vs off (cold fill, warm result hits, per-request
//!   `cache=off` bypass);
//! * the dimension tier shares materialized σ **across queries**
//!   (Q3.2/Q3.3 reuse the date selection Q3.1 built) and across plan
//!   options (parallelism never splits a σ key);
//! * an MVCC write invalidates **exactly** the affected entries — queries
//!   over written tables recompute (stale results are never served),
//!   queries over untouched tables keep hitting, and of an invalidated
//!   query's dimensions only the *written* table's σ is rebuilt;
//! * `cache=off` bypasses every tier including the dimension tier, and
//!   `CACHE CLEAR dims` drops exactly that tier;
//! * 10 concurrent TCP connections sharing one cache still match the
//!   sequential engine, with exact counters, and byte-pressure eviction
//!   churn never corrupts results.

use std::sync::Arc;

use qppt_cache::{CacheConfig, QueryCache};
use qppt_core::{ExecStats, PlanOptions, QpptEngine};
use qppt_par::WorkerPool;
use qppt_server::{serve, QpptClient, ServeEngine};
use qppt_ssb::{queries, SsbDb};
use qppt_storage::{Database, Value};

/// The `# op cache: dims …` entry of one run's stats, if any.
fn dim_assembly_op(stats: &ExecStats) -> Option<&qppt_core::OpStats> {
    stats
        .ops
        .iter()
        .find(|op| op.label.starts_with("cache: dims"))
}

fn ssb_db(sf: f64) -> Arc<Database> {
    let mut ssb = SsbDb::generate(sf, 42);
    for q in queries::all_queries() {
        qppt_core::prepare_indexes(&mut ssb.db, &q, &PlanOptions::default()).unwrap();
    }
    Arc::new(ssb.db)
}

#[test]
fn thirteen_queries_byte_identical_cache_on_vs_off() {
    let db = ssb_db(0.01);
    let pool = WorkerPool::new(2, 8);
    let engine = ServeEngine::over_db(db.clone(), pool.clone(), PlanOptions::default(), 0.01, 42);
    let oracle = QpptEngine::new(&db);

    for parallelism in [1usize, 2] {
        let opts = PlanOptions::default().with_parallelism(parallelism);
        for q in queries::all_queries() {
            let name = q.id.to_ascii_lowercase();
            let expected = oracle.run(&q, &PlanOptions::default()).unwrap();
            // cache=off bypass, cold fill, then a warm result hit.
            let (bypass, _) = engine.run_cached(&name, &opts, 0, false).unwrap();
            let (cold, _) = engine.run_cached(&name, &opts, 0, true).unwrap();
            let (warm, warm_stats) = engine.run_cached(&name, &opts, 0, true).unwrap();
            assert_eq!(bypass, expected, "{} cache=off @ p={parallelism}", q.id);
            assert_eq!(cold, expected, "{} cold @ p={parallelism}", q.id);
            assert_eq!(warm, expected, "{} warm @ p={parallelism}", q.id);
            assert!(
                warm_stats
                    .ops
                    .iter()
                    .any(|op| op.label == "cache: result hit"),
                "{} warm run did not report a result hit",
                q.id
            );
        }
    }
    let stats = engine.cache_stats();
    // 13 queries × 2 option sets: one cold miss + one warm hit each.
    assert_eq!(stats.results.hits, 26);
    assert_eq!(stats.results.misses, 26);
    assert_eq!(stats.results.invalidations, 0);
    // Dimension tier, exact: the 13 queries contain 19 materialized σ of
    // which 14 are distinct (q3.2/q3.3 share q3.1's date range, q3.4
    // shares q3.3's supplier cities, q4.1 shares q2.1's supplier region,
    // q4.3 shares q4.2's date set). Parallelism is excluded from σ keys,
    // so the whole second option pass shares all 19.
    assert_eq!(stats.dims.misses, 14);
    assert_eq!(stats.dims.insertions, 14);
    assert_eq!(stats.dims.hits, 5 + 19);
    assert_eq!(stats.dims.invalidations, 0);
    assert_eq!(stats.dims.entries, 14);
    assert!(stats.dims.bytes > 0, "dim tier must account its bytes");
    pool.shutdown();
}

#[test]
fn shared_sigma_family_skips_materialization() {
    // The q3 family: one date σ (d_year ∈ [1992,1997], carried d_year)
    // serves q3.1, q3.2, and q3.3 — only the first query materializes it.
    let db = ssb_db(0.01);
    let pool = WorkerPool::new(2, 8);
    let engine = ServeEngine::over_db(db.clone(), pool.clone(), PlanOptions::default(), 0.01, 42);
    let oracle = QpptEngine::new(&db);
    let opts = PlanOptions::default();

    let (r31, s31) = engine.run("q3.1", &opts, 0).unwrap();
    let a31 = dim_assembly_op(&s31).expect("q3.1 assembles dims");
    assert_eq!((a31.out_keys, a31.out_tuples), (0, 2), "cold: 2 σ built");

    let (r32, s32) = engine.run("q3.2", &opts, 0).unwrap();
    let a32 = dim_assembly_op(&s32).expect("q3.2 assembles dims");
    assert_eq!(
        (a32.out_keys, a32.out_tuples),
        (1, 1),
        "q3.2 shares the date σ and builds only its supplier σ"
    );

    let (r33, s33) = engine.run("q3.3", &opts, 0).unwrap();
    let a33 = dim_assembly_op(&s33).expect("q3.3 assembles dims");
    assert_eq!((a33.out_keys, a33.out_tuples), (1, 1));

    // Same query at a different parallelism: new query fingerprint, but
    // every σ comes from the dim tier (σ keys ignore parallelism knobs).
    let par2 = PlanOptions::default().with_parallelism(2);
    let (r31p, s31p) = engine.run("q3.1", &par2, 0).unwrap();
    let a31p = dim_assembly_op(&s31p).expect("q3.1@p2 assembles dims");
    assert_eq!((a31p.out_keys, a31p.out_tuples), (2, 0), "all σ shared");

    // Everything byte-identical to fresh sequential runs.
    for (got, q) in [
        (&r31, queries::q3_1()),
        (&r32, queries::q3_2()),
        (&r33, queries::q3_3()),
        (&r31p, queries::q3_1()),
    ] {
        assert_eq!(
            got,
            &oracle.run(&q, &PlanOptions::default()).unwrap(),
            "{}",
            q.id
        );
    }

    let s = engine.cache_stats();
    assert_eq!(s.dims.hits, 4, "date σ ×2 + both q3.1 σ at p=2");
    assert_eq!(s.dims.misses, 4, "supplier ×3 + date ×1");
    assert_eq!(s.dims.entries, 4);

    // CACHE CLEAR dims drops exactly that tier: the next assembly
    // rebuilds σ, while untouched result entries keep serving.
    engine.cache_clear_dims();
    assert_eq!(engine.cache_stats().dims.entries, 0);
    assert!(engine.cache_stats().results.entries > 0);
    let (r31w, s31w) = engine.run("q3.1", &opts, 0).unwrap();
    assert_eq!(&r31w, &r31);
    assert!(
        s31w.ops.iter().any(|op| op.label == "cache: result hit"),
        "result tier unaffected by CACHE CLEAR dims"
    );
    pool.shutdown();
}

#[test]
fn cache_off_bypasses_every_tier_including_dims() {
    let db = ssb_db(0.01);
    let pool = WorkerPool::new(2, 8);
    let engine = ServeEngine::over_db(db.clone(), pool.clone(), PlanOptions::default(), 0.01, 42);
    let opts = PlanOptions::default();
    let oracle = QpptEngine::new(&db);

    for name in ["q3.1", "q3.2", "q4.2"] {
        let (got, stats) = engine.run_cached(name, &opts, 0, false).unwrap();
        let q = queries::all_queries()
            .into_iter()
            .find(|q| q.id.eq_ignore_ascii_case(name))
            .unwrap();
        assert_eq!(got, oracle.run(&q, &opts).unwrap(), "{name} cache=off");
        assert!(
            !stats.ops.iter().any(|op| op.label.starts_with("cache:")),
            "{name}: cache=off must not report cache ops"
        );
    }
    let s = engine.cache_stats();
    for (tier, t) in [
        ("results", s.results),
        ("dims", s.dims),
        ("selections", s.selections),
        ("plans", s.plans),
    ] {
        assert_eq!(
            (t.hits, t.misses, t.insertions, t.entries),
            (0, 0, 0, 0),
            "{tier}: cache=off must not touch the {tier} tier"
        );
    }
    pool.shutdown();
}

/// Deletes every part row (visible at the current snapshot) whose
/// `p_brand1` equals `brand`, returning how many were terminated.
fn delete_brand_rows(db: &mut Database, brand: &str) -> usize {
    let rids: Vec<u32> = {
        let mvt = db.table("part").unwrap();
        let t = mvt.table();
        let col = t.schema().col("p_brand1").unwrap();
        let Some(code) = t.encode_value(col, &Value::str(brand)).unwrap() else {
            return 0;
        };
        let snap = db.snapshot();
        mvt.scan_visible(snap)
            .filter(|&rid| t.get(rid, col) == code)
            .collect()
    };
    for &rid in &rids {
        db.delete_row("part", rid).unwrap();
    }
    rids.len()
}

#[test]
fn mvcc_write_invalidates_exactly_the_affected_entries() {
    let mut ssb = SsbDb::generate(0.01, 42);
    for q in queries::all_queries() {
        qppt_core::prepare_indexes(&mut ssb.db, &q, &PlanOptions::default()).unwrap();
    }
    let mut db = Arc::new(ssb.db);
    let pool = WorkerPool::new(2, 8);
    let cache = Arc::new(QueryCache::new(CacheConfig::default()));
    let opts = PlanOptions::default();

    // q1.1 reads lineorder+date; q2.3 reads lineorder+part+supplier+date.
    let q23 = queries::q2_3();

    let engine =
        ServeEngine::over_db_with_cache(db.clone(), pool.clone(), opts, 0.01, 42, cache.clone());
    let (r11_before, _) = engine.run("q1.1", &opts, 0).unwrap();
    let (r23_before, _) = engine.run("q2.3", &opts, 0).unwrap();
    assert_eq!(r23_before, QpptEngine::new(&db).run(&q23, &opts).unwrap());
    // Warm both entries.
    assert_eq!(engine.run("q1.1", &opts, 0).unwrap().0, r11_before);
    assert_eq!(engine.run("q2.3", &opts, 0).unwrap().0, r23_before);
    let s0 = engine.cache_stats();
    assert_eq!(s0.results.hits, 2);

    // Write to `part`: delete every row of the brand q2.3 aggregates, so
    // the fresh q2.3 answer provably differs from the stale one.
    drop(engine);
    {
        let db_mut = Arc::get_mut(&mut db).expect("engine dropped, Arc unique");
        let deleted = delete_brand_rows(db_mut, "MFGR#2221");
        assert!(deleted > 0, "test needs at least one matching part row");
    }

    let engine =
        ServeEngine::over_db_with_cache(db.clone(), pool.clone(), opts, 0.01, 42, cache.clone());
    let oracle = QpptEngine::new(&db);

    // Untouched tables: q1.1 still hits and still matches.
    let (r11_after, stats11) = engine.run("q1.1", &opts, 0).unwrap();
    assert_eq!(r11_after, r11_before);
    assert!(
        stats11.ops.iter().any(|op| op.label == "cache: result hit"),
        "q1.1 should still be served from the result cache"
    );

    // Affected tables: q2.3 is invalidated, recomputed, and fresh — the
    // stale (pre-delete) result is never served.
    let (r23_after, stats23) = engine.run("q2.3", &opts, 0).unwrap();
    let fresh = oracle.run(&q23, &opts).unwrap();
    assert_eq!(
        r23_after, fresh,
        "q2.3 must be recomputed at the new snapshot"
    );
    assert_ne!(
        r23_after, r23_before,
        "the delete changes q2.3's answer; serving the old bytes would be stale"
    );
    assert!(
        !stats23.ops.iter().any(|op| op.label == "cache: result hit"),
        "q2.3 must not be served from the stale result entry"
    );

    let s1 = engine.cache_stats();
    assert_eq!(
        s1.results.invalidations, 1,
        "exactly the q2.3 result entry is invalidated"
    );
    assert_eq!(s1.results.hits, s0.results.hits + 1, "q1.1 hit again");
    // The write hit `part`, whose σ in q2.3 is fused (never cached): the
    // supplier σ — on an untouched table — must survive and be shared
    // into the recomputation instead of being rebuilt.
    assert_eq!(s1.dims.invalidations, 0);
    assert_eq!(s1.dims.hits, 1, "q2.3's supplier σ reused after the write");
    assert_eq!(s1.dims.misses, 1, "only the original cold build missed");

    // And the recomputed entry serves hits again.
    assert_eq!(engine.run("q2.3", &opts, 0).unwrap().0, fresh);
    assert_eq!(engine.cache_stats().results.hits, s1.results.hits + 1);
    pool.shutdown();
}

#[test]
fn dim_write_invalidates_exactly_that_tables_sigma() {
    // q4.2 materializes three σ (supplier, part, date). A write to `date`
    // must rebuild only the date σ — supplier and part keep hitting — and
    // an unrelated date-σ-free query (q2.1) must keep hitting everywhere.
    let mut ssb = SsbDb::generate(0.01, 42);
    for q in queries::all_queries() {
        qppt_core::prepare_indexes(&mut ssb.db, &q, &PlanOptions::default()).unwrap();
    }
    let mut db = Arc::new(ssb.db);
    let pool = WorkerPool::new(2, 8);
    let cache = Arc::new(QueryCache::new(CacheConfig::default()));
    let opts = PlanOptions::default();

    let engine =
        ServeEngine::over_db_with_cache(db.clone(), pool.clone(), opts, 0.01, 42, cache.clone());
    let (r42_before, s42) = engine.run("q4.2", &opts, 0).unwrap();
    let a42 = dim_assembly_op(&s42).expect("q4.2 assembles dims");
    assert_eq!((a42.out_keys, a42.out_tuples), (0, 3), "3 σ built cold");
    engine.run("q2.1", &opts, 0).unwrap(); // builds its supplier σ
    let s0 = engine.cache_stats();
    assert_eq!(s0.dims.insertions, 4);

    drop(engine);
    {
        let db_mut = Arc::get_mut(&mut db).expect("engine dropped, Arc unique");
        db_mut.delete_row("date", 0).unwrap();
    }
    let engine =
        ServeEngine::over_db_with_cache(db.clone(), pool.clone(), opts, 0.01, 42, cache.clone());
    let oracle = QpptEngine::new(&db);

    // q4.2 recomputes — but only the date σ is rebuilt.
    let (r42_after, s42b) = engine.run("q4.2", &opts, 0).unwrap();
    assert_eq!(r42_after, oracle.run(&queries::q4_2(), &opts).unwrap());
    let a42b = dim_assembly_op(&s42b).expect("q4.2 reassembles");
    assert_eq!(
        (a42b.out_keys, a42b.out_tuples),
        (2, 1),
        "supplier + part σ shared, only the date σ rebuilt"
    );
    let s1 = engine.cache_stats();
    assert_eq!(
        s1.dims.invalidations - s0.dims.invalidations,
        1,
        "exactly the stale date σ entry dies"
    );

    // q2.1 touches date only through a predicate-free Base handle — its
    // result entry invalidates (the version vector covers date), but its
    // supplier σ still hits.
    let (r21, s21) = engine.run("q2.1", &opts, 0).unwrap();
    assert_eq!(r21, oracle.run(&queries::q2_1(), &opts).unwrap());
    let a21 = dim_assembly_op(&s21).expect("q2.1 reassembles");
    assert_eq!((a21.out_keys, a21.out_tuples), (1, 0), "σ fully shared");

    // The stale q4.2 answer is provably different only if the deleted row
    // mattered; either way the stale bytes were never served — assert the
    // recomputation happened at the new snapshot.
    assert_eq!(
        engine.run("q4.2", &opts, 0).unwrap().0,
        r42_after,
        "recomputed entry serves consistent hits"
    );
    let _ = r42_before;
    pool.shutdown();
}

#[test]
fn ten_concurrent_connections_sharing_the_cache_match_sequential() {
    let db = ssb_db(0.01);
    let pool = WorkerPool::new(3, 8);
    let defaults = PlanOptions::default().with_parallelism(2);
    let engine = Arc::new(ServeEngine::over_db(
        db.clone(),
        pool.clone(),
        defaults,
        0.01,
        42,
    ));
    let server = serve(engine.clone(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();

    let oracle = QpptEngine::new(&db);
    let all = queries::all_queries();
    let expected: Vec<_> = all
        .iter()
        .map(|q| oracle.run(q, &PlanOptions::default()).unwrap())
        .collect();

    // 10 connections × 2 rounds over all 13 queries; mixed parallelism and
    // an occasional cache bypass, all racing on one shared cache.
    std::thread::scope(|s| {
        for c in 0..10usize {
            let all = &all;
            let expected = &expected;
            s.spawn(move || {
                let mut client = QpptClient::connect(addr).expect("connect");
                for round in 0..2 {
                    for (qi, q) in all.iter().enumerate() {
                        let par = ["1", "2", "4"][(c + qi) % 3];
                        let cache = if (c + qi + round) % 5 == 0 {
                            "off"
                        } else {
                            "on"
                        };
                        let served = client
                            .run(
                                &q.id.to_ascii_lowercase(),
                                &[("parallelism", par), ("cache", cache)],
                            )
                            .unwrap_or_else(|e| panic!("{} via client {c}: {e}", q.id));
                        assert_eq!(
                            served.result, expected[qi],
                            "{} via client {c} (parallelism {par}, cache {cache})",
                            q.id
                        );
                    }
                }
                client.quit().expect("clean quit");
            });
        }
    });

    // Counter exactness under concurrency: every cache=on run does exactly
    // one result-tier lookup, every result miss exactly one selection-tier
    // lookup, and every dim-tier miss exactly one insertion — races may
    // shift the hit/miss split, never the totals.
    let on_runs: u64 = (0..10usize)
        .flat_map(|c| (0..2usize).flat_map(move |round| (0..13usize).map(move |qi| (c, round, qi))))
        .filter(|(c, round, qi)| (c + qi + round) % 5 != 0)
        .count() as u64;
    let stats = engine.cache_stats();
    assert_eq!(stats.results.hits + stats.results.misses, on_runs);
    assert_eq!(
        stats.selections.hits + stats.selections.misses,
        stats.results.misses
    );
    assert_eq!(stats.dims.misses, stats.dims.insertions);
    assert!(
        stats.results.hits > 0,
        "concurrent connections never hit the shared cache: {stats:?}"
    );
    assert_eq!(stats.results.invalidations, 0);
    assert!(stats.dims.hits > 0, "σ sharing must kick in across clients");
    assert!(stats.dims.bytes > 0 && stats.results.bytes > 0);

    // The wire-level CACHE STATS report carries the dim tier and bytes.
    let mut client = QpptClient::connect(addr).expect("connect");
    let kv = client.cache_stats().expect("CACHE STATS");
    for key in ["dim_hits", "dim_bytes", "result_bytes", "dim_expirations"] {
        assert!(
            kv.iter().any(|(k, _)| k == key),
            "CACHE STATS missing {key}: {kv:?}"
        );
    }
    let wire_dim_hits: u64 = kv
        .iter()
        .find(|(k, _)| k == "dim_hits")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap();
    assert!(wire_dim_hits >= stats.dims.hits);
    client.cache_clear_dims().expect("CACHE CLEAR dims");
    let kv = client.cache_stats().expect("CACHE STATS");
    let dim_entries: u64 = kv
        .iter()
        .find(|(k, _)| k == "dim_entries")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap();
    assert_eq!(dim_entries, 0, "CACHE CLEAR dims empties the dim tier");
    client.quit().expect("clean quit");

    server.stop();
    pool.shutdown();
}

#[test]
fn eviction_churn_under_tiny_budgets_stays_correct() {
    // Pathologically small byte budgets: every tier is under constant
    // eviction pressure, entries pinned by the composed prepared query (or
    // by in-flight executions) are skipped rather than ripped out, and
    // every answer stays byte-identical to the sequential oracle.
    let db = ssb_db(0.01);
    let pool = WorkerPool::new(2, 8);
    let cache = Arc::new(QueryCache::new(CacheConfig {
        plan_budget: 1,
        dim_budget: 4 << 10,
        selection_budget: 1,
        result_budget: 1,
        shards: 1,
        ..CacheConfig::default()
    }));
    let engine = ServeEngine::over_db_with_cache(
        db.clone(),
        pool.clone(),
        PlanOptions::default(),
        0.01,
        42,
        cache.clone(),
    );
    let oracle = QpptEngine::new(&db);
    for _ in 0..3 {
        for q in queries::all_queries() {
            let (got, _) = engine
                .run(&q.id.to_ascii_lowercase(), &PlanOptions::default(), 0)
                .unwrap();
            assert_eq!(
                got,
                oracle.run(&q, &PlanOptions::default()).unwrap(),
                "{} under eviction churn",
                q.id
            );
        }
    }
    let s = engine.cache_stats();
    let evictions =
        s.results.evictions + s.dims.evictions + s.selections.evictions + s.plans.evictions;
    assert!(evictions > 0, "tiny budgets must evict: {s:?}");
    // A 1-byte result budget keeps at most one (over-budget) entry
    // resident: the put-path reclaim evicted everything unpinned first.
    assert!(s.results.entries <= 1, "result tier runaway: {s:?}");
    pool.shutdown();
}
