//! The ad-hoc frontend's equivalence contract:
//!
//! * every named SSB query, pretty-printed into the query language and
//!   parsed back, has the same structural fingerprint and produces
//!   byte-identical results through the ad-hoc path (parallelism 1 and 4,
//!   cache on and off) — names really are just aliases;
//! * an ad-hoc query whose σ matches a named query's dimension selection
//!   hits the cache's dimension tier the named query warmed (exact
//!   counters);
//! * malformed ad-hoc specs fail with structured `ERR` lines, and the
//!   connection keeps serving.

use std::sync::Arc;

use qppt_core::{fingerprint_spec, PlanOptions, QpptEngine};
use qppt_par::WorkerPool;
use qppt_server::{serve, ClientError, QpptClient, ServeEngine};
use qppt_ssb::queries;

fn started() -> (Arc<ServeEngine>, Arc<WorkerPool>) {
    let pool = WorkerPool::new(2, 8);
    let defaults = PlanOptions::default().with_parallelism(2);
    let engine =
        Arc::new(ServeEngine::with_ssb(0.01, 42, pool.clone(), defaults).expect("SSB prepares"));
    (engine, pool)
}

#[test]
fn all_13_printed_queries_match_the_named_path() {
    let (engine, pool) = started();
    for spec in queries::all_queries() {
        let name = spec.id.to_ascii_lowercase();
        let text = qppt_query::print(&spec);
        let parsed = qppt_query::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}\n{text}"));
        assert_eq!(parsed, spec, "{name}: lossless round-trip");
        assert_eq!(
            fingerprint_spec(&parsed),
            fingerprint_spec(&spec),
            "{name}: fingerprints must coincide"
        );
        for par in [1usize, 4] {
            let opts = engine.defaults().with_parallelism(par);
            // cache=off on both sides: two genuinely independent runs.
            let (named, _) = engine.run_cached(&name, &opts, 0, false).expect(&name);
            let (adhoc, _) = engine.run_spec(&parsed, &opts, 0, false).expect(&name);
            assert_eq!(adhoc, named, "{name} diverged at parallelism {par}");
        }
    }

    // With the cache on, the converged pipeline means an ad-hoc re-submission
    // of a named query's text is a *result-tier hit* on the named entry:
    // same structure → same fingerprint, whatever the id label says.
    let opts = engine.defaults();
    engine.run("q2.3", &opts, 0).expect("named run");
    let before = engine.cache_stats().results;
    let mut resubmitted = queries::q2_3();
    resubmitted.id = "something-else".into();
    let text = qppt_query::print(&resubmitted);
    let parsed = qppt_query::parse(&text).unwrap();
    let (adhoc, _) = engine.run_spec(&parsed, &opts, 0, true).unwrap();
    let after = engine.cache_stats().results;
    assert_eq!(
        after.hits - before.hits,
        1,
        "ad-hoc text must hit the named result entry"
    );
    let oracle = QpptEngine::new(engine.pooled().db())
        .run(&queries::q2_3(), &PlanOptions::default())
        .unwrap();
    assert_eq!(adhoc, oracle);
    pool.shutdown();
}

#[test]
fn adhoc_query_over_tcp_matches_named_run() {
    let (engine, pool) = started();
    let server = serve(engine.clone(), "127.0.0.1:0").expect("bind");
    let mut client = QpptClient::connect(server.addr()).expect("connect");

    for spec in [queries::q1_2(), queries::q3_3(), queries::q4_2()] {
        let name = spec.id.to_ascii_lowercase();
        let text = qppt_query::print(&spec);
        let named = client.run(&name, &[("cache", "off")]).expect(&name);
        let adhoc = client
            .query(&text, &[("cache", "off"), ("parallelism", "2")])
            .expect(&name);
        assert_eq!(adhoc.result, named.result, "{name} over TCP");
    }

    // Inline EXPLAIN renders the same plan as the named alias.
    let named_plan = client.explain("q2.3").expect("named explain");
    let inline_plan = client
        .explain_query(&qppt_query::print(&queries::q2_3()))
        .expect("inline explain");
    assert_eq!(inline_plan, named_plan);

    server.stop();
    pool.shutdown();
}

/// An ad-hoc query in q3.1's σ family: different query (no customer dim,
/// different group/order), same date selection `d_year BETWEEN 1992 AND
/// 1997` carrying `d_year` — it must compose the σ the named query
/// materialized instead of building its own.
const ASIA_BY_NATION_YEAR: &str = "fact=lineorder \
     dim=supplier[join=s_suppkey:lo_suppkey;s_region='ASIA';carry=s_nation] \
     dim=date[join=d_datekey:lo_orderdate;d_year between 1992 and 1997;carry=d_year] \
     agg=sum(lo_revenue):revenue group=supplier.s_nation,date.d_year \
     order=group:1,agg:0:desc id=asia-by-nation-year";

#[test]
fn adhoc_query_hits_dim_tier_warmed_by_named_family() {
    let (engine, pool) = started();
    let opts = engine.defaults();

    // The named family lead materializes its σ set (customer is fused;
    // supplier and date σ land in the dimension tier).
    engine.run("q3.1", &opts, 0).expect("named lead");
    let before = engine.cache_stats().dims;

    let spec = qppt_query::parse(ASIA_BY_NATION_YEAR).expect("family member parses");
    let (result, stats) = engine.run_spec(&spec, &opts, 0, true).expect("ad-hoc run");
    let after = engine.cache_stats().dims;

    // Exactly one σ lookup (the date dim; supplier is fused here), and it
    // is a *hit* on the entry q3.1 built — nothing new is materialized.
    assert_eq!(after.hits - before.hits, 1, "date σ must be shared");
    assert_eq!(after.misses - before.misses, 0);
    assert_eq!(after.insertions - before.insertions, 0, "no σ built");
    assert!(
        stats
            .ops
            .iter()
            .any(|op| op.label.contains("dims 1 shared / 0 built")),
        "assembly stats must surface the share: {:?}",
        stats.ops.iter().map(|o| &o.label).collect::<Vec<_>>()
    );

    // And sharing never bends correctness: byte-identical to a fresh
    // sequential run of the same spec.
    let oracle = QpptEngine::new(engine.pooled().db())
        .run(&spec, &PlanOptions::default())
        .unwrap();
    assert_eq!(result, oracle);
    assert!(
        !result.rows.is_empty(),
        "the family query has rows at sf 0.01"
    );

    // The mirror direction: with the σ now hot, the *named* family members
    // keep sharing it too (q3.2 shares only the date σ with q3.1).
    let b2 = engine.cache_stats().dims;
    engine.run("q3.2", &opts, 0).expect("named follower");
    let a2 = engine.cache_stats().dims;
    assert_eq!(a2.hits - b2.hits, 1, "q3.2's date σ comes from the tier");
    pool.shutdown();
}

#[test]
fn malformed_adhoc_specs_error_structurally_over_tcp() {
    let (engine, pool) = started();
    let server = serve(engine, "127.0.0.1:0").expect("bind");
    let mut client = QpptClient::connect(server.addr()).expect("connect");

    let cases: &[(&str, &str)] = &[
        // Grammar errors (rejected by the parser).
        ("fact=lineorder agg=nope", "bad aggregate"),
        ("fact=lineorder dim=date[d_year=1993]", "join="),
        // Catalog errors (rejected by the validate pass as PlanErrors).
        (
            "fact=nosuch dim=date[join=d_datekey:lo_orderdate] agg=sum(lo_revenue):r",
            "unknown table",
        ),
        (
            "fact=lineorder dim=date[join=d_datekey:lo_orderdate;d_frob=1] \
             agg=sum(lo_revenue):r",
            "no column",
        ),
        (
            "fact=lineorder dim=date[join=d_datekey:lo_orderdate;d_year='x'] \
             agg=sum(lo_revenue):r",
            "uses it as",
        ),
        (
            "fact=lineorder dim=date[join=d_datekey:lo_orderdate] \
             agg=sum(lo_revenue):r order=group:5",
            "out of range",
        ),
        (
            "fact=lineorder dim=date[join=d_datekey:lo_orderdate;carry=d_year] \
             agg=sum(lo_revenue):r group=date.d_month",
            "carry=",
        ),
        // A predicate column the startup preparation never indexed.
        (
            "fact=lineorder dim=part[join=p_partkey:lo_partkey;p_size=7] \
             agg=sum(lo_revenue):r",
            "no base index",
        ),
        // No dims / no aggs are typed errors, not planner panics.
        ("fact=lineorder agg=sum(lo_revenue):r", "dim="),
        (
            "fact=lineorder dim=date[join=d_datekey:lo_orderdate]",
            "agg=",
        ),
    ];
    for (text, want) in cases {
        match client.query(text, &[]) {
            Err(ClientError::Server(msg)) => assert!(
                msg.contains(want),
                "{text:?}: ERR {msg:?} does not mention {want:?}"
            ),
            other => panic!("{text:?}: want structured ERR, got {other:?}"),
        }
    }

    // The connection survived all of it and still serves ad-hoc queries.
    let served = client
        .query(ASIA_BY_NATION_YEAR, &[])
        .expect("good query after errors");
    assert!(!served.result.rows.is_empty());

    server.stop();
    pool.shutdown();
}
