//! The serving contract, end to end over real TCP:
//!
//! * ≥ 8 concurrent client connections against one `ServeEngine` / shared
//!   pool, every response **byte-identical** to the sequential engine;
//! * total worker threads bounded by the pool size, not queries ×
//!   parallelism;
//! * protocol behavior (LIST/EXPLAIN/INFO/errors) and graceful shutdown.

use std::sync::Arc;
use std::time::Duration;

use qppt_core::{PlanOptions, QpptEngine};
use qppt_par::WorkerPool;
use qppt_server::{serve, ClientError, QpptClient, ServeEngine};
use qppt_ssb::queries;

const POOL_THREADS: usize = 3;

fn started_server() -> (Arc<ServeEngine>, Arc<WorkerPool>, qppt_server::ServerHandle) {
    let pool = WorkerPool::new(POOL_THREADS, 8);
    let defaults = PlanOptions::default()
        .with_parallelism(2)
        .with_par_index_build(true);
    let engine =
        Arc::new(ServeEngine::with_ssb(0.01, 42, pool.clone(), defaults).expect("SSB prepares"));
    let server = serve(engine.clone(), "127.0.0.1:0").expect("bind loopback");
    (engine, pool, server)
}

#[test]
fn eight_concurrent_connections_byte_identical_thread_bounded() {
    let (engine, pool, server) = started_server();
    let addr = server.addr();

    // Sequential oracle over the very same database.
    let db = engine.pooled().db().clone();
    let oracle = QpptEngine::new(&db);
    let base = PlanOptions::default();
    let all = queries::all_queries();
    let expected: Vec<_> = all
        .iter()
        .map(|q| oracle.run(q, &base).expect("oracle runs"))
        .collect();

    // 10 concurrent connections, each running several queries at mixed
    // parallelism/priority. 10 clients × parallelism 4 would be 40 threads
    // under spawn-per-query; the shared pool must stay at POOL_THREADS.
    std::thread::scope(|s| {
        for c in 0..10usize {
            let all = &all;
            let expected = &expected;
            s.spawn(move || {
                let mut client = QpptClient::connect(addr).expect("connect");
                for (qi, q) in all.iter().enumerate() {
                    let par = ["1", "2", "4"][(c + qi) % 3];
                    let prio = ["-1", "0", "2"][qi % 3];
                    let served = client
                        .run(
                            &q.id.to_ascii_lowercase(),
                            &[("parallelism", par), ("priority", prio)],
                        )
                        .unwrap_or_else(|e| panic!("{} via client {c}: {e}", q.id));
                    // Byte-identical: same labels, same rows in the same
                    // order, same aggregate values.
                    assert_eq!(
                        served.result, expected[qi],
                        "{} via client {c} (parallelism {par})",
                        q.id
                    );
                }
                client.quit().expect("clean quit");
            });
        }
    });

    // The whole barrage ran 130 queries; the pool never grew.
    assert_eq!(pool.threads_created(), POOL_THREADS);

    server.stop();
    pool.shutdown();
}

#[test]
fn protocol_surface_and_errors() {
    let (engine, pool, server) = started_server();
    let mut client = QpptClient::connect(server.addr()).expect("connect");

    client.ping().expect("ping");

    let info = client.info().expect("info");
    let get = |k: &str| {
        info.iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    };
    assert_eq!(get("sf"), Some("0.01"));
    assert_eq!(get("seed"), Some("42"));
    assert_eq!(get("pool_threads"), Some(POOL_THREADS.to_string().as_str()));
    assert_eq!(get("queries"), Some("13"));

    let names = client.list().expect("list");
    assert_eq!(names.len(), 13);
    assert!(names.contains(&"q2.3".to_string()));
    assert!(names.contains(&"q4.3".to_string()));

    let plan = client.explain("q2.3").expect("explain");
    assert!(plan.contains("QPPT plan for Q2.3"), "got plan: {plan}");
    assert!(plan.contains("star join"), "got plan: {plan}");

    // Errors keep the connection usable.
    match client.run("q9.9", &[]) {
        Err(ClientError::Server(m)) => assert!(m.contains("unknown query"), "{m}"),
        other => panic!("want server error, got {other:?}"),
    }
    match client.run("q1.1", &[("prefer_kiss", "false")]) {
        Err(ClientError::Server(m)) => assert!(m.contains("unknown option"), "{m}"),
        other => panic!("want server error, got {other:?}"),
    }
    match client.run("q1.1", &[("morsel_bits", "99")]) {
        Err(ClientError::Server(_)) => {}
        other => panic!("want server error, got {other:?}"),
    }
    let served = client.run("q1.1", &[]).expect("still serving after errors");
    let oracle = QpptEngine::new(engine.pooled().db())
        .run(&queries::q1_1(), &PlanOptions::default())
        .unwrap();
    assert_eq!(served.result, oracle);

    // A request split across TCP segments slower than the server's poll
    // tick must still parse as one line (read_line accumulates across
    // read-timeout retries).
    {
        use std::io::{BufRead, BufReader, Write};
        let mut stream = std::net::TcpStream::connect(server.addr()).expect("raw connect");
        stream.write_all(b"RUN q1.1").expect("first fragment");
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(120)); // > POLL_TICK
        stream
            .write_all(b" parallelism=2\n")
            .expect("second fragment");
        stream.flush().unwrap();
        let mut r = BufReader::new(stream);
        let mut status = String::new();
        r.read_line(&mut status).expect("status line");
        assert!(
            status.starts_with("OK "),
            "split request mis-parsed: {status}"
        );
    }

    server.stop();
    pool.shutdown();
}

#[test]
fn shutdown_command_drains_gracefully() {
    // An explicit (low) poll tick: idle connections must notice the drain
    // within one tick, so shutdown latency is bounded by ticks, not
    // seconds.
    let pool = WorkerPool::new(POOL_THREADS, 8);
    let defaults = PlanOptions::default()
        .with_parallelism(2)
        .with_par_index_build(true);
    let engine =
        Arc::new(ServeEngine::with_ssb(0.01, 42, pool.clone(), defaults).expect("SSB prepares"));
    let config = qppt_server::ServerConfig {
        poll_tick: Duration::from_millis(5),
        ..Default::default()
    };
    let server = qppt_server::serve_with(engine, "127.0.0.1:0", config).expect("bind loopback");
    let addr = server.addr();

    // An idle second connection must not hang the drain.
    let idle = QpptClient::connect(addr).expect("connect idle");

    let mut client = QpptClient::connect(addr).expect("connect");
    client.run("q3.2", &[("parallelism", "2")]).expect("runs");
    client.shutdown().expect("shutdown acknowledged");

    assert!(server.is_shutting_down());
    // join() returns only after the acceptor and every connection thread
    // (including the idle one) exited — within a few poll ticks, not
    // seconds (generous bound for loaded CI boxes).
    let t0 = std::time::Instant::now();
    server.join();
    let drain = t0.elapsed();
    assert!(
        drain < Duration::from_millis(1500),
        "drain took {drain:?} with a 5 ms poll tick"
    );
    drop(idle);

    // New connections are refused once the listener is gone.
    assert!(QpptClient::connect_retry(&addr.to_string(), Duration::from_millis(300)).is_err());
    pool.shutdown();
}
