//! The single-node observability contract, end to end over real TCP:
//!
//! * `METRICS` serves a well-formed Prometheus text exposition (verified
//!   by the strict parser in `qppt-obs`) whose per-verb counters match
//!   the requests this very connection issued;
//! * the cache-tier families agree **exactly** with `CACHE STATS` after a
//!   fixed query sequence — both render from the same snapshot;
//! * `trace=on` returns a valid span tree (unique ids, parents first,
//!   child micros ≤ parent micros) covering plan/σ/exec/decode on a cold
//!   run and `result_cache` on a warm one, with result bytes identical to
//!   the untraced run;
//! * `mem=` rides on every `# op` stats line;
//! * serving without observability (`--no-obs`) answers `METRICS` with a
//!   structured `ERR` while every other verb keeps working.

use std::sync::Arc;

use qppt_core::PlanOptions;
use qppt_obs::{parse_exposition, validate_span_tree};
use qppt_par::WorkerPool;
use qppt_server::{serve, ClientError, QpptClient, ServeEngine, ServeObs};
use qppt_ssb::{queries, SsbDb};

const SF: f64 = 0.01;
const SEED: u64 = 42;

fn ssb_db() -> Arc<qppt_storage::Database> {
    let mut ssb = SsbDb::generate(SF, SEED);
    for q in queries::all_queries() {
        qppt_core::prepare_indexes(&mut ssb.db, &q, &PlanOptions::default()).unwrap();
    }
    Arc::new(ssb.db)
}

fn tier_field(kvs: &[(String, String)], key: &str) -> i64 {
    kvs.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.parse().expect("numeric CACHE STATS field"))
        .unwrap_or_else(|| panic!("missing CACHE STATS field {key}"))
}

#[test]
fn metrics_exposition_counts_requests_and_matches_cache_stats() {
    let db = ssb_db();
    let obs = ServeObs::new(Some(1)); // threshold 1µs: executed queries are "slow"
    let pool = WorkerPool::new_with_metrics(2, 8, Some(obs.pool_metrics()));
    let engine = ServeEngine::over_db(db, pool.clone(), PlanOptions::default(), SF, SEED)
        .with_obs(obs.clone());
    let server = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
    let mut client = QpptClient::connect(server.addr()).unwrap();

    // A fixed sequence: 2 RUNs (cold + warm), 1 ad-hoc QUERY, 1 PING.
    client.run("q2.3", &[]).expect("cold run");
    client.run("q2.3", &[]).expect("warm run");
    client
        .query(
            "fact=lineorder \
             dim=supplier[join=s_suppkey:lo_suppkey;s_region='ASIA';carry=s_nation] \
             dim=date[join=d_datekey:lo_orderdate;d_year between 1992 and 1997;carry=d_year] \
             agg=sum(lo_revenue):rev group=supplier.s_nation,date.d_year \
             order=group:1,agg:0:desc id=obs-adhoc",
            &[],
        )
        .expect("ad-hoc query");
    client.ping().expect("ping");

    let text = client.metrics().expect("METRICS answers");
    let expo = parse_exposition(&text).expect("exposition parses strictly");
    assert_eq!(
        expo.value("qppt_requests_total", &[("verb", "RUN")]),
        Some(2)
    );
    assert_eq!(
        expo.value("qppt_requests_total", &[("verb", "QUERY")]),
        Some(1)
    );
    assert_eq!(
        expo.value("qppt_requests_total", &[("verb", "PING")]),
        Some(1)
    );
    assert_eq!(
        expo.value("qppt_request_micros_count", &[("verb", "RUN")]),
        Some(2)
    );
    // Threshold 1µs makes any executed query a slow one; the cold RUN and
    // the ad-hoc QUERY execute for milliseconds (the warm hit may round
    // to 0µs, so ≥ 2 is the safe exact-lower-bound).
    let slow = expo
        .value("qppt_slow_queries_total", &[])
        .expect("slow counter present");
    assert!((2..=3).contains(&slow), "slow queries: {slow}");
    assert_eq!(expo.kind("qppt_request_micros"), Some("histogram"));
    assert!(expo.value("qppt_uptime_seconds", &[]).is_some());
    // Pool families are registered through the same registry.
    assert!(expo.value("qppt_pool_jobs_started_total", &[]).is_some());
    assert_eq!(expo.value("qppt_pool_queue_depth", &[]), Some(0));

    // CACHE STATS and METRICS agree exactly: both render the same
    // snapshot. (The METRICS scrape above does not touch cache counters.)
    let stats = client.cache_stats().expect("CACHE STATS answers");
    let text = client.metrics().expect("second scrape");
    let expo = parse_exposition(&text).expect("second scrape parses");
    for (tier, prefix) in [
        ("result", "result"),
        ("dim", "dim"),
        ("selection", "selection"),
        ("plan", "plan"),
    ] {
        for (family, field) in [
            ("qppt_cache_hits_total", "hits"),
            ("qppt_cache_misses_total", "misses"),
            ("qppt_cache_invalidations_total", "invalidations"),
            ("qppt_cache_evictions_total", "evictions"),
            ("qppt_cache_expirations_total", "expirations"),
            ("qppt_cache_entries", "entries"),
            ("qppt_cache_bytes", "bytes"),
        ] {
            assert_eq!(
                expo.value(family, &[("tier", tier)]),
                Some(tier_field(&stats, &format!("{prefix}_{field}"))),
                "{family}{{tier={tier}}} must equal CACHE STATS {prefix}_{field}"
            );
        }
    }
    // The sequence above demonstrably exercised the tiers.
    assert_eq!(
        expo.value("qppt_cache_hits_total", &[("tier", "result")]),
        Some(1)
    );
    assert_eq!(
        expo.value("qppt_cache_misses_total", &[("tier", "result")]),
        Some(2)
    );

    client.quit().unwrap();
    server.stop();
    pool.shutdown();
}

/// `METRICS SLOW` reads the slow-query ring over the wire — the
/// replacement for the old stderr slow log. Each entry must carry the
/// verb, the raw request line as received, the cache outcome the request
/// resolved through, and (for traced requests) the same span tree the
/// stats channel returned. Threshold 1µs makes every executed query slow;
/// only the entries that must exist are asserted (a warm hit may round
/// to 0µs and legitimately miss the ring).
#[test]
fn metrics_slow_returns_ring_entries_with_outcomes_and_spans() {
    let db = ssb_db();
    let pool = WorkerPool::new(2, 8);
    let engine = ServeEngine::over_db(db, pool.clone(), PlanOptions::default(), SF, SEED)
        .with_obs(ServeObs::new(Some(1)));
    let server = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
    let mut client = QpptClient::connect(server.addr()).unwrap();

    let ring0 = client.metrics_slow().expect("METRICS SLOW answers");
    assert!(ring0.is_empty(), "nothing served yet ⇒ empty ring");

    // A cold traced run, then an untraced cache bypass.
    let traced = client
        .run("q2.3", &[("trace", "on")])
        .expect("cold traced run");
    client.run("q2.3", &[("cache", "off")]).expect("bypass run");

    let ring = client.metrics_slow().expect("ring reads back");
    assert_eq!(ring.len(), 2, "both executed runs crossed 1µs");

    // Oldest first: the cold run, with its full span tree reattached.
    let cold = &ring[0];
    assert_eq!(cold.verb, "RUN");
    assert_eq!(cold.line, "RUN q2.3 trace=on", "raw request line preserved");
    assert_eq!(cold.outcome, "cache: cold");
    assert!(cold.micros >= 1);
    validate_span_tree(&cold.spans).expect("slow-entry span tree validates");
    assert_eq!(
        cold.spans, traced.stats.spans,
        "the ring carries the same spans the stats channel returned"
    );

    // The bypass run: outcome says so, and untraced means no spans.
    let bypass = &ring[1];
    assert_eq!(bypass.outcome, "bypass");
    assert_eq!(bypass.line, "RUN q2.3 cache=off");
    assert!(bypass.spans.is_empty(), "untraced ⇒ no spans");

    // Reading the ring does not consume it (and is never itself slow —
    // METRICS is outside the RUN/QUERY slow path).
    let again = client.metrics_slow().expect("second read");
    assert_eq!(again, ring, "snapshot reads are idempotent");

    client.quit().unwrap();
    server.stop();
    pool.shutdown();
}

#[test]
fn traced_requests_return_valid_span_trees_and_identical_bytes() {
    let db = ssb_db();
    let pool = WorkerPool::new(2, 8);
    let engine = ServeEngine::over_db(db, pool.clone(), PlanOptions::default(), SF, SEED)
        .with_obs(ServeObs::new(None));
    let server = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
    let mut client = QpptClient::connect(server.addr()).unwrap();

    let untraced = client.run("q3.2", &[("cache", "off")]).expect("untraced");
    assert!(untraced.stats.spans.is_empty(), "no trace ⇒ no spans");

    // Cold traced run (fresh fingerprint via cache=off bypasses tiers —
    // use a *cached* cold run instead so plan/σ/exec/decode all appear).
    let cold = client.run("q3.2", &[("trace", "on")]).expect("cold traced");
    assert_eq!(
        cold.result, untraced.result,
        "tracing must not change bytes"
    );
    validate_span_tree(&cold.stats.spans).expect("cold span tree validates");
    let names: Vec<&str> = cold.stats.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names[0], "request", "root span first");
    for want in ["plan", "sigma", "exec", "decode"] {
        assert!(
            names.contains(&want),
            "cold trace must contain {want}: {names:?}"
        );
    }

    // Warm traced run: served from the result tier.
    let warm = client.run("q3.2", &[("trace", "on")]).expect("warm traced");
    assert_eq!(warm.result, untraced.result);
    validate_span_tree(&warm.stats.spans).expect("warm span tree validates");
    assert!(
        warm.stats.spans.iter().any(|s| s.name == "result_cache"),
        "warm trace must mark the result-tier hit"
    );

    // Traced bypass run: a single exec span under the root.
    let bypass = client
        .run("q3.2", &[("cache", "off"), ("trace", "12345")])
        .expect("traced bypass");
    assert_eq!(bypass.result, untraced.result);
    validate_span_tree(&bypass.stats.spans).expect("bypass span tree validates");
    assert!(bypass.stats.spans.iter().any(|s| s.name == "exec"));

    // Partial mode carries spans too (the shard side of a routed trace).
    let partial = client
        .run_partial("q3.2", &[("trace", "on")])
        .expect("traced partial");
    validate_span_tree(&partial.stats.spans).expect("partial span tree validates");

    // mem= rides on every # op line (satellite: memory_bytes was dropped).
    assert!(
        cold.stats.op_lines.iter().all(|l| l.contains("mem=")),
        "every op line must carry mem=: {:?}",
        cold.stats.op_lines
    );

    client.quit().unwrap();
    server.stop();
    pool.shutdown();
}

#[test]
fn no_obs_serves_queries_but_rejects_metrics() {
    let db = ssb_db();
    let pool = WorkerPool::new(2, 8);
    // No with_obs: the --no-obs configuration.
    let engine = ServeEngine::over_db(db, pool.clone(), PlanOptions::default(), SF, SEED);
    let server = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
    let mut client = QpptClient::connect(server.addr()).unwrap();

    match client.metrics() {
        Err(ClientError::Server(msg)) => {
            assert!(msg.contains("--no-obs"), "got: {msg}");
        }
        other => panic!("METRICS without obs must ERR, got {other:?}"),
    }
    match client.metrics_slow() {
        Err(ClientError::Server(msg)) => {
            assert!(msg.contains("--no-obs"), "got: {msg}");
        }
        other => panic!("METRICS SLOW without obs must ERR, got {other:?}"),
    }
    // The connection (and tracing, which is request-scoped) still works.
    let served = client
        .run("q1.1", &[("trace", "on")])
        .expect("query serves");
    validate_span_tree(&served.stats.spans).expect("trace works without obs");

    // INFO reports uptime and build unconditionally.
    let info = client.info().expect("INFO answers");
    let uptime = info
        .iter()
        .find(|(k, _)| k == "uptime_secs")
        .expect("uptime_secs present");
    let _secs: u64 = uptime.1.parse().expect("uptime parses");
    let build = info
        .iter()
        .find(|(k, _)| k == "build")
        .expect("build present");
    assert_eq!(build.1, env!("CARGO_PKG_VERSION"));

    client.quit().unwrap();
    server.stop();
    pool.shutdown();
}
