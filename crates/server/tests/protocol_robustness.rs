//! Protocol robustness: malformed `RUN` lines, unknown verbs/options,
//! non-UTF-8 junk, oversized and split lines, and the `CACHE` commands all
//! produce `ERR`/`OK` responses without killing the connection — the
//! connection must keep serving correct results afterwards.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use qppt_core::{PlanOptions, QpptEngine};
use qppt_par::WorkerPool;
use qppt_server::{serve_with, QpptClient, ServeEngine, ServerConfig};
use qppt_ssb::queries;

const MAX_LINE: usize = 1024;

fn started_server() -> (Arc<ServeEngine>, Arc<WorkerPool>, qppt_server::ServerHandle) {
    let pool = WorkerPool::new(2, 8);
    let defaults = PlanOptions::default().with_parallelism(2);
    let engine =
        Arc::new(ServeEngine::with_ssb(0.01, 42, pool.clone(), defaults).expect("SSB prepares"));
    let config = ServerConfig {
        poll_tick: Duration::from_millis(5),
        max_line_bytes: MAX_LINE,
    };
    let server = serve_with(engine.clone(), "127.0.0.1:0", config).expect("bind loopback");
    (engine, pool, server)
}

fn read_line(r: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    r.read_line(&mut line).expect("response line");
    line.trim_end().to_string()
}

#[test]
fn garbage_requests_error_but_connection_survives() {
    let (engine, pool, server) = started_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let cases: &[&[u8]] = &[
        b"FLY q1.1\n",                  // unknown verb
        b"RUN\n",                       // missing query name
        b"RUN q1.1 nonsense\n",         // malformed option
        b"RUN q1.1 parallelism=zero\n", // bad option value
        b"RUN q1.1 morsel_bits=99\n",   // validated, not just parsed
        b"RUN q1.1 batch_rows=0\n",     // batch block size must be >= 1
        b"RUN q1.1 batch_rows=lots\n",  // bad batch_rows value
        b"RUN q1.1 batch_exec=maybe\n", // bad batch_exec value
        b"RUN q9.9\n",                  // unknown query
        b"RUN q1.1 cache=maybe\n",      // bad cache value
        b"CACHE\n",                     // missing subcommand
        b"CACHE FLUSH\n",               // unknown subcommand
        b"CACHE STATS extra\n",         // trailing token
        b"EXPLAIN q1.1 extra\n",        // trailing token
        b"\xff\xfe\xfd garbage\x80\n",  // non-UTF-8 junk
        // The QUERY verb: grammar, catalog, and encoding failures are all
        // one ERR line, never a dropped connection.
        b"QUERY\n",                                    // missing query text
        b"QUERY fact=lineorder agg=nope\n",            // malformed grammar
        b"QUERY fact=lineorder dim=date[oops\n",       // unbalanced bracket
        b"QUERY fact=lineorder dim=date[join=d_datekey:lo_orderdate;d_year='x\n", // unterminated quote
        b"QUERY fact=nosuch dim=date[join=d_datekey:lo_orderdate] agg=sum(lo_revenue):r\n", // unknown table
        b"QUERY fact=lineorder dim=date[join=d_datekey:lo_orderdate;d_frob=1] agg=sum(lo_revenue):r\n", // unknown column
        b"QUERY fact=lineorder dim=date[join=d_datekey:lo_orderdate] agg=sum(lo_revenue):r parallelism=zero\n", // bad option
        // Option *values* are validated before any planning happens —
        // structured ERR, not a panic mid-plan or a dropped connection.
        b"QUERY fact=lineorder dim=date[join=d_datekey:lo_orderdate] agg=sum(lo_revenue):r parallelism=0\n",
        b"QUERY fact=lineorder dim=date[join=d_datekey:lo_orderdate] agg=sum(lo_revenue):r morsel_bits=99\n",
        b"QUERY fact=lineorder dim=date[join=d_datekey:lo_orderdate] agg=sum(lo_revenue):r batch_rows=0\n",
        b"QUERY fact=\xff\xfe dim=d[join=k:fk] agg=sum(a):x\n", // non-UTF-8 body
    ];
    for case in cases {
        stream.write_all(case).expect("send");
        stream.flush().unwrap();
        let resp = read_line(&mut reader);
        assert!(
            resp.starts_with("ERR "),
            "case {:?} got: {resp}",
            String::from_utf8_lossy(case)
        );
    }

    // Blank and whitespace-only lines are ignored, not fatal.
    stream.write_all(b"\n   \n\r\n").unwrap();
    // The connection still serves a correct result.
    stream.write_all(b"PING\n").unwrap();
    stream.flush().unwrap();
    assert_eq!(read_line(&mut reader), "OK pong");

    drop(stream);
    let mut client = QpptClient::connect(server.addr()).expect("connect");
    let served = client.run("q1.1", &[]).expect("serving still works");
    let oracle = QpptEngine::new(engine.pooled().db())
        .run(&queries::q1_1(), &PlanOptions::default())
        .unwrap();
    assert_eq!(served.result, oracle);

    server.stop();
    pool.shutdown();
}

#[test]
fn oversized_line_is_drained_and_rejected() {
    let (_engine, pool, server) = started_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // 8× the cap, no newline until the end — the server must not buffer it
    // all, must answer ERR once the line completes, and must keep serving.
    let big = vec![b'x'; MAX_LINE * 8];
    stream.write_all(&big).expect("send oversized");
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let resp = read_line(&mut reader);
    assert!(
        resp.starts_with("ERR ") && resp.contains("exceeds"),
        "got: {resp}"
    );

    stream.write_all(b"PING\n").unwrap();
    stream.flush().unwrap();
    assert_eq!(read_line(&mut reader), "OK pong");

    // An oversized line arriving in many small fragments across poll
    // ticks behaves the same.
    for _ in 0..20 {
        stream.write_all(&vec![b'y'; MAX_LINE / 4]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let resp = read_line(&mut reader);
    assert!(resp.starts_with("ERR "), "got: {resp}");
    stream.write_all(b"LIST\n").unwrap();
    stream.flush().unwrap();
    let resp = read_line(&mut reader);
    assert!(resp.starts_with("OK 13"), "got: {resp}");

    server.stop();
    pool.shutdown();
}

#[test]
fn oversized_query_body_is_drained_and_rejected() {
    // The satellite contract: a QUERY body past the (default 64 KiB) line
    // cap answers ERR without unbounded buffering, and the connection
    // keeps serving — including a real ad-hoc query right after.
    let pool = WorkerPool::new(2, 8);
    let engine = Arc::new(
        ServeEngine::with_ssb(0.01, 42, pool.clone(), PlanOptions::default())
            .expect("SSB prepares"),
    );
    let config = ServerConfig {
        poll_tick: Duration::from_millis(5),
        ..ServerConfig::default()
    };
    assert_eq!(config.max_line_bytes, 64 * 1024, "default cap is 64 KiB");
    let server = serve_with(engine, "127.0.0.1:0", config).expect("bind loopback");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // A syntactically plausible QUERY whose IN-list alone exceeds the cap.
    let mut big =
        String::from("QUERY fact=lineorder dim=date[join=d_datekey:lo_orderdate;d_year in ");
    big.push_str(
        &(0..20_000)
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(","),
    );
    big.push_str("] agg=sum(lo_revenue):r\n");
    assert!(big.len() > 64 * 1024);
    stream
        .write_all(big.as_bytes())
        .expect("send oversized QUERY");
    stream.flush().unwrap();
    let resp = read_line(&mut reader);
    assert!(
        resp.starts_with("ERR ") && resp.contains("exceeds"),
        "got: {resp}"
    );

    // Still serving: an in-cap ad-hoc query answers rows.
    stream
        .write_all(
            b"QUERY fact=lineorder dim=date[join=d_datekey:lo_orderdate;d_year=1993] \
              agg=sum(lo_extendedprice):r\n",
        )
        .unwrap();
    stream.flush().unwrap();
    let resp = read_line(&mut reader);
    assert!(resp.starts_with("OK "), "got: {resp}");
    loop {
        if read_line(&mut reader) == "END" {
            break;
        }
    }

    server.stop();
    pool.shutdown();
}

#[test]
fn split_lines_across_poll_ticks_parse_whole() {
    let (_engine, pool, server) = started_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // A CACHE command split into single bytes slower than the poll tick.
    for b in b"CACHE STATS" {
        stream.write_all(&[*b]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(7));
    }
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let resp = read_line(&mut reader);
    assert!(
        resp.starts_with("OK ") && resp.contains("result_hits="),
        "got: {resp}"
    );

    server.stop();
    pool.shutdown();
}

#[test]
fn cache_commands_roundtrip() {
    let (engine, pool, server) = started_server();
    let mut client = QpptClient::connect(server.addr()).expect("connect");

    // Cold, then warm: the stats wire format reports the hit.
    client.run("q2.3", &[]).expect("cold run");
    client.run("q2.3", &[]).expect("warm run");
    let stats = client.cache_stats().expect("cache stats");
    let get = |k: &str| {
        stats
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.parse::<u64>().unwrap())
            .unwrap_or_else(|| panic!("missing field {k} in {stats:?}"))
    };
    assert_eq!(get("result_hits"), 1);
    assert_eq!(get("result_misses"), 1);
    assert_eq!(get("result_entries"), 1);

    // cache=off bypass: neither a hit nor an insertion.
    client.run("q2.3", &[("cache", "off")]).expect("bypass run");
    let stats2 = client.cache_stats().expect("cache stats");
    assert_eq!(
        stats.iter().find(|(k, _)| k == "result_hits"),
        stats2.iter().find(|(k, _)| k == "result_hits"),
        "cache=off must not touch the result tier"
    );

    // CLEAR empties entries; counters survive.
    client.cache_clear().expect("cache clear");
    let stats3 = client.cache_stats().expect("cache stats");
    let get3 = |k: &str| {
        stats3
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.parse::<u64>().unwrap())
            .unwrap()
    };
    assert_eq!(get3("result_entries"), 0);
    assert_eq!(get3("result_hits"), 1);

    // And serving still works after a clear (cold again).
    let served = client.run("q2.3", &[]).expect("post-clear run");
    let oracle = QpptEngine::new(engine.pooled().db())
        .run(&queries::q2_3(), &PlanOptions::default())
        .unwrap();
    assert_eq!(served.result, oracle);

    server.stop();
    pool.shutdown();
}
