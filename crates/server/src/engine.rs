//! [`ServeEngine`]: the shared, process-wide query service state — one
//! database, one worker pool, one registry of named queries — that every
//! connection handler (and in-process caller) executes against.

use std::collections::BTreeMap;
use std::sync::Arc;

use qppt_core::{ExecStats, PlanOptions, QpptEngine, QpptError};
use qppt_par::{prepare_indexes_pooled, PooledEngine, WorkerPool};
use qppt_ssb::{queries, SsbDb};
use qppt_storage::{Database, QueryResult, QuerySpec};

/// Static facts about the serving instance, reported by `INFO`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeInfo {
    /// SSB scale factor the database was generated at.
    pub sf: f64,
    /// Generator seed.
    pub seed: u64,
    /// Worker-pool threads.
    pub pool_threads: usize,
    /// Admission budget (max concurrently executing queries).
    pub admission: usize,
    /// Detected hardware parallelism (1 means intra-query speedups are
    /// impossible on this host — the `par_scaling` caveat).
    pub cores: usize,
}

/// The shared query-service engine (see module docs). Wrap it in an
/// [`Arc`] and hand clones to connection handlers; everything inside is
/// already shared.
#[derive(Debug)]
pub struct ServeEngine {
    engine: PooledEngine,
    queries: BTreeMap<String, QuerySpec>,
    defaults: PlanOptions,
    info: ServeInfo,
}

impl ServeEngine {
    /// Generates an SSB instance at `sf`/`seed`, prepares every index the
    /// 13 queries need (on the pool when
    /// [`par_index_build`](PlanOptions::par_index_build) is set in
    /// `defaults`), and registers the queries by lowercase id
    /// (`"q1.1"` … `"q4.3"`).
    pub fn with_ssb(
        sf: f64,
        seed: u64,
        pool: Arc<WorkerPool>,
        defaults: PlanOptions,
    ) -> Result<Self, QpptError> {
        let mut ssb = SsbDb::generate(sf, seed);
        for q in queries::all_queries() {
            prepare_indexes_pooled(&mut ssb.db, &q, &defaults, &pool)?;
        }
        Ok(Self::over_db(Arc::new(ssb.db), pool, defaults, sf, seed))
    }

    /// Serves an already prepared database (indexes for every registered
    /// query must exist). `sf`/`seed` are only echoed through `INFO`.
    pub fn over_db(
        db: Arc<Database>,
        pool: Arc<WorkerPool>,
        defaults: PlanOptions,
        sf: f64,
        seed: u64,
    ) -> Self {
        let queries: BTreeMap<String, QuerySpec> = queries::all_queries()
            .into_iter()
            .map(|q| (q.id.to_ascii_lowercase(), q))
            .collect();
        let info = ServeInfo {
            sf,
            seed,
            pool_threads: pool.size(),
            admission: pool.max_active(),
            cores: detected_cores(),
        };
        Self {
            engine: PooledEngine::new(db, pool),
            queries,
            defaults,
            info,
        }
    }

    /// The serving descriptor.
    pub fn info(&self) -> ServeInfo {
        self.info
    }

    /// The default plan options overrides are applied on top of.
    pub fn defaults(&self) -> PlanOptions {
        self.defaults
    }

    /// The underlying pooled engine.
    pub fn pooled(&self) -> &PooledEngine {
        &self.engine
    }

    /// Registered query names, in order.
    pub fn query_names(&self) -> Vec<&str> {
        self.queries.keys().map(String::as_str).collect()
    }

    /// The spec registered under `name` (lowercase id).
    pub fn query(&self, name: &str) -> Option<&QuerySpec> {
        self.queries.get(name)
    }

    /// Runs a registered query on the shared pool. `opts` is the fully
    /// resolved option set (defaults + overrides, see
    /// [`apply_overrides`](crate::protocol::apply_overrides)); `priority`
    /// orders this query against concurrent ones for idle workers.
    pub fn run(
        &self,
        name: &str,
        opts: &PlanOptions,
        priority: i32,
    ) -> Result<(QueryResult, ExecStats), ServeError> {
        let spec = self
            .queries
            .get(name)
            .ok_or_else(|| ServeError::UnknownQuery(name.to_string()))?;
        let snap = self.engine.db().snapshot();
        self.engine
            .run_at(spec, opts, snap, priority)
            .map_err(ServeError::Engine)
    }

    /// Renders the physical plan of a registered query under the default
    /// options.
    pub fn explain(&self, name: &str) -> Result<String, ServeError> {
        let spec = self
            .queries
            .get(name)
            .ok_or_else(|| ServeError::UnknownQuery(name.to_string()))?;
        QpptEngine::new(self.engine.db())
            .explain(spec, &self.defaults)
            .map_err(ServeError::Engine)
    }
}

/// Detected hardware parallelism (1 when the probe fails).
pub fn detected_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Service-level errors (all reported to clients as `ERR` lines).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    UnknownQuery(String),
    Engine(QpptError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownQuery(q) => {
                write!(f, "unknown query {q} (LIST shows the registered names)")
            }
            ServeError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}
