//! [`ServeEngine`]: the shared, process-wide query service state — one
//! database, one worker pool, one query cache, one table of named-query
//! *aliases* — that every connection handler (and in-process caller)
//! executes against.
//!
//! Since the ad-hoc frontend, **every query is an arbitrary
//! [`QuerySpec`]**: the 13 SSB names are mere aliases resolved by
//! [`resolve`](ServeEngine::resolve), and both `RUN <name>` and
//! `QUERY <text>` converge on the single
//! [`run_spec`](ServeEngine::run_spec) pipeline —
//! **validate → plan → cache → execute**. The validate pass
//! ([`qppt_core::validate`]) turns malformed specs (unknown
//! tables/columns, type mismatches, bad group/order references, indexes
//! the startup preparation never built) into typed
//! [`PlanError`](qppt_core::PlanError)s surfaced as one `ERR` line.
//!
//! Because every cache tier is keyed on *structure* (not names — see
//! [`fingerprint_dim`](qppt_core::fingerprint_dim)), ad-hoc queries share
//! cached work with named ones: an ad-hoc spec whose date σ matches
//! Q3.1's predicate set hits the dimension tier Q3.1 warmed, and a
//! re-submitted ad-hoc text hits the result tier whatever its `id=` says.
//!
//! The hot path consults the snapshot-keyed
//! [`QueryCache`](qppt_cache::QueryCache) tiers in order:
//!
//! 1. **result hit** — return the cached rows without touching the pool;
//! 2. **selection hit** — execute from the cached
//!    [`PreparedQuery`](qppt_core::PreparedQuery) (skips `build_plan` and
//!    every `materialize_dim`);
//! 3. **plan hit / cold** — build or fetch the plan, then **assemble from
//!    parts**: every `Materialized` dimension σ is looked up in the
//!    *dimension tier* (keyed per `(table, predicates, carried columns,
//!    table version)`, so a σ materialized by a *different* query hits —
//!    Q3.2 reuses the date selection Q3.1 built); only the missing σ and
//!    the query-private fused stream are materialized, and all four tiers
//!    are (re)populated.
//!
//! `cache=off` requests bypass **all** tiers, the dimension tier
//! included: no lookups, no insertions, fully independent execution.
//!
//! Coherence: fingerprints embed per-table versions
//! ([`Database::table_version`]), and the database sits behind an `Arc`
//! while serving — writes need `&mut Database`, so versions cannot move
//! under a running query and stale entries die on their next lookup.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use qppt_cache::{CacheConfig, CacheStats, CachedResult, QueryCache, QueryFingerprint};
use qppt_core::{ExecStats, OpStats, PartialAggregate, PlanOptions, QpptEngine, QpptError};
use qppt_obs::Trace;
use qppt_par::{prepare_indexes_pooled, PooledEngine, WorkerPool};
use qppt_ssb::{queries, SsbDb};
use qppt_storage::{Database, QueryResult, QuerySpec};

use crate::obs::ServeObs;

/// Static facts about the serving instance, reported by `INFO`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeInfo {
    /// SSB scale factor the database was generated at.
    pub sf: f64,
    /// Generator seed.
    pub seed: u64,
    /// Worker-pool threads.
    pub pool_threads: usize,
    /// Admission budget (max concurrently executing queries).
    pub admission: usize,
    /// Detected hardware parallelism (1 means intra-query speedups are
    /// impossible on this host — the `par_scaling` caveat).
    pub cores: usize,
    /// Fact (`lineorder`) rows this instance holds — the shard's share in
    /// a sharded deployment, the whole table otherwise.
    pub rows: usize,
    /// Shard index this instance owns (0 for an unsharded server).
    pub shard: usize,
    /// Total shard count of the deployment (1 for an unsharded server).
    pub shards: usize,
    /// Replica ordinal within the shard's replica set (0 for the primary
    /// or an unreplicated deployment). Replicas of one shard serve the
    /// identical fact partition; the ordinal only localizes errors and
    /// `INFO` output.
    pub replica: usize,
}

/// The shared query-service engine (see module docs). Wrap it in an
/// [`Arc`] and hand clones to connection handlers; everything inside is
/// already shared.
#[derive(Debug)]
pub struct ServeEngine {
    engine: PooledEngine,
    queries: BTreeMap<String, QuerySpec>,
    defaults: PlanOptions,
    info: ServeInfo,
    cache: Arc<QueryCache>,
    started: Instant,
    obs: Option<Arc<ServeObs>>,
}

impl ServeEngine {
    /// Generates an SSB instance at `sf`/`seed`, prepares every index the
    /// 13 queries need (on the pool when
    /// [`par_index_build`](PlanOptions::par_index_build) is set in
    /// `defaults`), and registers the queries by lowercase id
    /// (`"q1.1"` … `"q4.3"`).
    pub fn with_ssb(
        sf: f64,
        seed: u64,
        pool: Arc<WorkerPool>,
        defaults: PlanOptions,
    ) -> Result<Self, QpptError> {
        Self::with_ssb_shard(sf, seed, pool, defaults, 0, 1)
    }

    /// [`with_ssb`](Self::with_ssb) for shard `shard` of `shards`: the
    /// generator keeps only the fact rows whose `lo_orderdate` falls in
    /// [`qppt_ssb::shard_bounds`]`(shard, shards)` (dimension tables are
    /// replicated in full), and `INFO` reports the shard position.
    pub fn with_ssb_shard(
        sf: f64,
        seed: u64,
        pool: Arc<WorkerPool>,
        defaults: PlanOptions,
        shard: usize,
        shards: usize,
    ) -> Result<Self, QpptError> {
        let mut ssb = SsbDb::generate_shard(sf, seed, shard, shards);
        for q in queries::all_queries() {
            prepare_indexes_pooled(&mut ssb.db, &q, &defaults, &pool)?;
        }
        Ok(
            Self::over_db(Arc::new(ssb.db), pool, defaults, sf, seed)
                .with_shard_info(shard, shards),
        )
    }

    /// Stamps the shard position reported by `INFO` (builder-style, for
    /// callers that assemble the engine via the `over_db*` constructors).
    pub fn with_shard_info(mut self, shard: usize, shards: usize) -> Self {
        self.info.shard = shard;
        self.info.shards = shards;
        self
    }

    /// Stamps the replica ordinal reported by `INFO` (builder-style) —
    /// `--replica <j>` on the binary. Purely descriptive: replicas serve
    /// identical data.
    pub fn with_replica_info(mut self, replica: usize) -> Self {
        self.info.replica = replica;
        self
    }

    /// Serves an already prepared database (indexes for every registered
    /// query must exist) with a default-capacity query cache. `sf`/`seed`
    /// are only echoed through `INFO`.
    pub fn over_db(
        db: Arc<Database>,
        pool: Arc<WorkerPool>,
        defaults: PlanOptions,
        sf: f64,
        seed: u64,
    ) -> Self {
        Self::over_db_with_cache(
            db,
            pool,
            defaults,
            sf,
            seed,
            Arc::new(QueryCache::default()),
        )
    }

    /// [`over_db`](Self::over_db) with the cache built from an explicit
    /// [`CacheConfig`] — byte budgets per tier, idle TTL, shard count, or
    /// [`CacheConfig::disabled`] to serve uncached.
    pub fn over_db_with_config(
        db: Arc<Database>,
        pool: Arc<WorkerPool>,
        defaults: PlanOptions,
        sf: f64,
        seed: u64,
        config: CacheConfig,
    ) -> Self {
        Self::over_db_with_cache(
            db,
            pool,
            defaults,
            sf,
            seed,
            Arc::new(QueryCache::new(config)),
        )
    }

    /// [`over_db`](Self::over_db) with an externally owned cache — so the
    /// cache can outlive engine rebuilds (benches that write between
    /// phases) or be shared/sized by the caller. Pass a cache built from
    /// [`CacheConfig::disabled`](qppt_cache::CacheConfig::disabled) to
    /// serve uncached.
    pub fn over_db_with_cache(
        db: Arc<Database>,
        pool: Arc<WorkerPool>,
        defaults: PlanOptions,
        sf: f64,
        seed: u64,
        cache: Arc<QueryCache>,
    ) -> Self {
        let queries: BTreeMap<String, QuerySpec> = queries::all_queries()
            .into_iter()
            .map(|q| (q.id.to_ascii_lowercase(), q))
            .collect();
        let info = ServeInfo {
            sf,
            seed,
            pool_threads: pool.size(),
            admission: pool.max_active(),
            cores: detected_cores(),
            rows: db
                .table("lineorder")
                .map(|t| t.table().row_count())
                .unwrap_or(0),
            shard: 0,
            shards: 1,
            replica: 0,
        };
        Self {
            engine: PooledEngine::new(db, pool),
            queries,
            defaults,
            info,
            cache,
            started: Instant::now(),
            obs: None,
        }
    }

    /// Attaches observability state (builder-style): per-verb request
    /// metrics, the `METRICS` exposition, and the slow-query log. Without
    /// it the engine serves uninstrumented (`--no-obs`).
    pub fn with_obs(mut self, obs: Arc<ServeObs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The attached observability state, if any.
    pub fn obs(&self) -> Option<&Arc<ServeObs>> {
        self.obs.as_ref()
    }

    /// Seconds since this engine was constructed (the `INFO`
    /// `uptime_secs=` field).
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The crate version reported as `build=` by `INFO`.
    pub fn build() -> &'static str {
        env!("CARGO_PKG_VERSION")
    }

    /// Renders the Prometheus exposition (`METRICS` verb): registry
    /// families plus cache-tier families from the same snapshot `CACHE
    /// STATS` reads. `None` when serving without observability.
    pub fn render_metrics(&self) -> Option<String> {
        self.obs.as_ref().map(|o| o.render(&self.cache_stats()))
    }

    /// The serving descriptor.
    pub fn info(&self) -> ServeInfo {
        self.info
    }

    /// The per-table version vector in catalog order — the `versions=`
    /// field of `INFO`/`PING` that the router's cache probes read. Cheap
    /// by construction (one `Vec` read per table, no rendering of rows or
    /// plans), so probing it every `--cache-probe-interval-ms` costs the
    /// shard nothing measurable. Catalog order is deterministic across
    /// replicas of a shard: every replica loads the same tables in the
    /// same generator order.
    pub fn version_vector(&self) -> Vec<u64> {
        let db = self.engine.db();
        (0..db.table_names().count())
            .map(|i| db.table_version_at(i))
            .collect()
    }

    /// [`version_vector`](Self::version_vector) rendered as the wire form:
    /// comma-separated versions in catalog order.
    pub fn versions_field(&self) -> String {
        self.version_vector()
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The default plan options overrides are applied on top of.
    pub fn defaults(&self) -> PlanOptions {
        self.defaults
    }

    /// The underlying pooled engine.
    pub fn pooled(&self) -> &PooledEngine {
        &self.engine
    }

    /// Registered alias names, in order.
    pub fn query_names(&self) -> Vec<&str> {
        self.queries.keys().map(String::as_str).collect()
    }

    /// The spec registered under `name` (lowercase id).
    pub fn query(&self, name: &str) -> Option<&QuerySpec> {
        self.queries.get(name)
    }

    /// Resolves a named-query alias to its spec — the *only* thing a name
    /// does; everything downstream operates on the spec.
    pub fn resolve(&self, name: &str) -> Result<&QuerySpec, ServeError> {
        self.queries
            .get(name)
            .ok_or_else(|| ServeError::UnknownQuery(name.to_string()))
    }

    /// The shared query cache.
    pub fn cache(&self) -> &Arc<QueryCache> {
        &self.cache
    }

    /// Counters of all cache tiers.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached entry (the `CACHE CLEAR` command).
    pub fn cache_clear(&self) {
        self.cache.clear();
    }

    /// Drops only the dimension tier (the `CACHE CLEAR dims` command).
    pub fn cache_clear_dims(&self) {
        self.cache.clear_dims();
    }

    /// Runs a named query (an alias, see [`resolve`](Self::resolve)) on
    /// the shared pool, through the query cache. `opts` is the fully
    /// resolved option set (defaults + overrides, see
    /// [`apply_overrides`](crate::protocol::apply_overrides)); `priority`
    /// orders this query against concurrent ones for idle workers.
    pub fn run(
        &self,
        name: &str,
        opts: &PlanOptions,
        priority: i32,
    ) -> Result<(QueryResult, ExecStats), ServeError> {
        self.run_cached(name, opts, priority, true)
    }

    /// [`run`](Self::run) with an explicit cache switch (`use_cache =
    /// false` is the per-request `cache=off` bypass: no lookups, no
    /// insertions).
    pub fn run_cached(
        &self,
        name: &str,
        opts: &PlanOptions,
        priority: i32,
        use_cache: bool,
    ) -> Result<(QueryResult, ExecStats), ServeError> {
        self.run_spec(self.resolve(name)?, opts, priority, use_cache)
    }

    /// **The** serving pipeline — named aliases and ad-hoc `QUERY` specs
    /// both land here: validate → plan → cache tiers → execute on the
    /// pool. Malformed user-supplied specs (unknown tables/columns, type
    /// mismatches, bad group/order indices, predicates on columns the
    /// startup index preparation never saw) fail with one typed
    /// [`ServeError`] before any execution work happens — but validation
    /// is folded into the *miss* paths, so cache hits pay nothing for it:
    /// a hit's entry can only have been inserted by a previous validated
    /// execution of the same `(instance, structure, options, versions)`
    /// key, which makes re-validating it pure overhead (the frontend's
    /// warm throughput would otherwise drop measurably; see
    /// `BENCH_QUERY_CACHE.json`).
    pub fn run_spec(
        &self,
        spec: &QuerySpec,
        opts: &PlanOptions,
        priority: i32,
        use_cache: bool,
    ) -> Result<(QueryResult, ExecStats), ServeError> {
        self.run_spec_obs(spec, opts, priority, use_cache, None)
    }

    /// [`run_spec`](Self::run_spec) with request-scoped observability:
    /// `verb` labels the slow-query log line, and a `trace` collects the
    /// request's span tree (plan → sigma → exec → decode, under the root
    /// `request` span the caller finishes). Result bytes are identical
    /// with and without a trace — spans only ride as extra `#` lines.
    pub fn run_spec_obs(
        &self,
        spec: &QuerySpec,
        opts: &PlanOptions,
        priority: i32,
        use_cache: bool,
        mut trace: Option<&mut Trace>,
    ) -> Result<(QueryResult, ExecStats), ServeError> {
        let db = self.engine.db();
        let started = Instant::now();
        if !use_cache || !self.cache.enabled() {
            // The bypass path plans and materializes from scratch — run
            // the full pre-flight (catalog, then index availability).
            qppt_core::validate(db, spec, opts).map_err(ServeError::Engine)?;
            let snap = db.snapshot();
            let result = self
                .engine
                .run_at(spec, opts, snap, priority)
                .map_err(ServeError::Engine)?;
            if let Some(t) = trace.as_deref_mut() {
                // Planning and materialization happen inside run_at; the
                // bypass trace has a single exec span covering them all.
                t.add(t.root(), "exec", elapsed_micros(started));
            }
            return Ok(result);
        }

        let fp = match QueryFingerprint::compute(db, spec, opts) {
            Ok(fp) => fp,
            // Fingerprinting fails only on catalog errors (unknown
            // tables); prefer the validate pass's typed report.
            Err(e) => {
                qppt_core::validate(db, spec, opts).map_err(ServeError::Engine)?;
                return Err(ServeError::Engine(QpptError::Storage(e)));
            }
        };

        // Tier 3: full result — served without touching the pool.
        if let Some(hit) = self.cache.get_result(&fp) {
            let mut stats = hit.stats.clone();
            stats.push(cache_op("cache: result hit", hit.result.rows.len()));
            stats.total_micros = started.elapsed().as_micros();
            if let Some(t) = trace.as_deref_mut() {
                t.add(t.root(), "result_cache", elapsed_micros(started));
            }
            return Ok((hit.result.clone(), stats));
        }

        let (prepared, tier_label, assembly, phases) = self.assemble_prepared(&fp, spec, opts)?;

        // run_prepared decomposed into its two halves (identical code
        // path — see PooledEngine::run_prepared) so exec and decode get
        // their own spans; total_micros is restamped below either way.
        // The batch mode comes from the *request's* options: the cached
        // plan may carry stale batch knobs (they are fingerprint-exempt).
        let exec_started = Instant::now();
        let (agg, mut stats) = self
            .engine
            .run_prepared_agg(&prepared, priority, opts.batch_mode())
            .map_err(ServeError::Engine)?;
        let exec_micros = elapsed_micros(exec_started);
        let decode_started = Instant::now();
        let result = qppt_core::exec::decode_result(db, &prepared.plan, &agg);
        if let Some(t) = trace {
            t.add(t.root(), "plan", phases.plan_micros);
            t.add(t.root(), "sigma", phases.sigma_micros);
            t.add(t.root(), "exec", exec_micros);
            t.add(t.root(), "decode", elapsed_micros(decode_started));
        }
        self.cache.put_result(
            &fp,
            Arc::new(CachedResult {
                result: result.clone(),
                stats: stats.clone(),
            }),
        );
        stats.push(cache_op(tier_label, result.rows.len()));
        push_assembly_op(&mut stats, assembly);
        stats.total_micros = started.elapsed().as_micros();
        Ok((result, stats))
    }

    /// The partial-mode serving pipeline (`mode=partial` — what shards run
    /// for `qppt-router`): same validate → plan → cache → execute path as
    /// [`run_spec`](Self::run_spec), but execution stops at the merged
    /// aggregation index, serialized as a [`PartialAggregate`] for the
    /// router to merge and decode. The plan, dimension, and selection
    /// tiers all participate exactly as in full mode — a shard-local σ
    /// family warmed by one routed query is shared with the next — only
    /// the *result* tier is skipped (it stores decoded, ordered results;
    /// partials are merged upstream, so caching them here would never be
    /// consulted by full-mode runs).
    pub fn run_spec_partial(
        &self,
        spec: &QuerySpec,
        opts: &PlanOptions,
        priority: i32,
        use_cache: bool,
    ) -> Result<(PartialAggregate, ExecStats), ServeError> {
        self.run_spec_partial_obs(spec, opts, priority, use_cache, None)
    }

    /// [`run_spec_partial`](Self::run_spec_partial) with request-scoped
    /// observability — see [`run_spec_obs`](Self::run_spec_obs). The
    /// decode span covers [`PartialAggregate::from_agg`] (the shard-side
    /// group decoding).
    pub fn run_spec_partial_obs(
        &self,
        spec: &QuerySpec,
        opts: &PlanOptions,
        priority: i32,
        use_cache: bool,
        trace: Option<&mut Trace>,
    ) -> Result<(PartialAggregate, ExecStats), ServeError> {
        let db = self.engine.db();
        let started = Instant::now();
        if !use_cache || !self.cache.enabled() {
            qppt_core::validate(db, spec, opts).map_err(ServeError::Engine)?;
            let snap = db.snapshot();
            let (plan, agg, stats) = self
                .engine
                .run_at_agg(spec, opts, snap, priority)
                .map_err(ServeError::Engine)?;
            let partial = PartialAggregate::from_agg(db, &plan, &agg);
            if let Some(t) = trace {
                t.add(t.root(), "exec", elapsed_micros(started));
            }
            return Ok((partial, stats));
        }

        let fp = match QueryFingerprint::compute(db, spec, opts) {
            Ok(fp) => fp,
            Err(e) => {
                qppt_core::validate(db, spec, opts).map_err(ServeError::Engine)?;
                return Err(ServeError::Engine(QpptError::Storage(e)));
            }
        };
        let (prepared, tier_label, assembly, phases) = self.assemble_prepared(&fp, spec, opts)?;
        let exec_started = Instant::now();
        let (agg, mut stats) = self
            .engine
            .run_prepared_agg(&prepared, priority, opts.batch_mode())
            .map_err(ServeError::Engine)?;
        let exec_micros = elapsed_micros(exec_started);
        let decode_started = Instant::now();
        let partial = PartialAggregate::from_agg(db, &prepared.plan, &agg);
        if let Some(t) = trace {
            t.add(t.root(), "plan", phases.plan_micros);
            t.add(t.root(), "sigma", phases.sigma_micros);
            t.add(t.root(), "exec", exec_micros);
            t.add(t.root(), "decode", elapsed_micros(decode_started));
        }
        stats.push(cache_op(tier_label, partial.rows.len()));
        push_assembly_op(&mut stats, assembly);
        stats.total_micros = started.elapsed().as_micros();
        Ok((partial, stats))
    }

    /// Tiers 1–2 of the cached pipeline, shared by full and partial mode:
    /// fetch or compose the [`PreparedQuery`](qppt_core::PreparedQuery)
    /// through the selection, plan, and dimension tiers.
    fn assemble_prepared(
        &self,
        fp: &QueryFingerprint,
        spec: &QuerySpec,
        opts: &PlanOptions,
    ) -> Result<PreparedParts, ServeError> {
        let db = self.engine.db();
        let plan_started = Instant::now();
        // Tier 2: the composed PreparedQuery (a hit skips build_plan, the
        // per-dimension cache walk, and the fused-selection scan — the
        // PreparedQuery already owns its plan and σ handles, so the plan
        // and dimension tiers are only consulted on a selection miss).
        match self.cache.get_selections(fp) {
            Some(p) => {
                let phases = AssemblyPhases {
                    plan_micros: elapsed_micros(plan_started),
                    sigma_micros: 0,
                };
                Ok((p, "cache: selection hit", None, phases))
            }
            None => {
                // Tier 1: plan (skips build_plan on hit — and with it the
                // whole validate pass: a cached plan at this fingerprint
                // proves the spec and its indexes validated at these very
                // table versions).
                let (plan, label) = match self.cache.get_plan(fp) {
                    Some(p) => (p, "cache: plan hit"),
                    None => {
                        // Cold: build_plan runs the catalog validation
                        // itself (typed errors first — an unknown column
                        // beats a missing index on that column); the
                        // index-availability check layers on top before
                        // any materialization, execution, or caching.
                        let p = Arc::new(
                            qppt_core::build_plan(db, spec, opts).map_err(ServeError::Engine)?,
                        );
                        qppt_core::validate_indexes(db, spec, opts).map_err(ServeError::Engine)?;
                        self.cache.put_plan(fp, p.clone());
                        (p, "cache: cold")
                    }
                };
                let plan_micros = elapsed_micros(plan_started);
                // Assemble from parts: shared σ handles out of the
                // dimension tier, missing ones materialized + cached.
                let sigma_started = Instant::now();
                let (prepared, assembly) = self
                    .cache
                    .prepare_from_parts(db, plan, opts, db.snapshot())
                    .map_err(ServeError::Engine)?;
                let p = Arc::new(prepared);
                self.cache.put_selections(fp, p.clone());
                let phases = AssemblyPhases {
                    plan_micros,
                    sigma_micros: elapsed_micros(sigma_started),
                };
                Ok((p, label, Some(assembly), phases))
            }
        }
    }

    /// Renders the physical plan of a named query under the default
    /// options.
    pub fn explain(&self, name: &str) -> Result<String, ServeError> {
        let defaults = self.defaults;
        self.explain_spec(self.resolve(name)?, &defaults)
    }

    /// Renders the physical plan of an arbitrary spec (the inline
    /// `EXPLAIN` form). Planning itself performs the catalog validation;
    /// index availability is checked on top so `EXPLAIN` agrees with
    /// `QUERY` about whether the query can actually run.
    pub fn explain_spec(&self, spec: &QuerySpec, opts: &PlanOptions) -> Result<String, ServeError> {
        let db = self.engine.db();
        let rendered = QpptEngine::new(db)
            .explain(spec, opts)
            .map_err(ServeError::Engine)?;
        qppt_core::validate_indexes(db, spec, opts).map_err(ServeError::Engine)?;
        Ok(rendered)
    }
}

/// The product of [`ServeEngine::assemble_prepared`]: the prepared query,
/// the tier that produced it, (on the assemble-from-parts path) the
/// dimension-tier share/build counts, and the phase wall times feeding
/// the request's plan/sigma trace spans.
type PreparedParts = (
    Arc<qppt_core::PreparedQuery>,
    &'static str,
    Option<qppt_cache::DimAssembly>,
    AssemblyPhases,
);

/// Wall micros of the two assembly phases (plan fetch/build, σ
/// materialization), measured unconditionally — two `Instant` reads —
/// and surfaced as spans when the request is traced.
#[derive(Debug, Clone, Copy, Default)]
struct AssemblyPhases {
    plan_micros: u64,
    sigma_micros: u64,
}

/// Saturating `u64` micros since `started`.
fn elapsed_micros(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Appends the dimension-assembly `# op` record, when σ work happened.
fn push_assembly_op(stats: &mut ExecStats, assembly: Option<qppt_cache::DimAssembly>) {
    if let Some(a) = assembly {
        if a.shared + a.built > 0 {
            // keys = σ served from the dim tier, tuples = σ built now.
            let mut op = cache_op(
                &format!("cache: dims {} shared / {} built", a.shared, a.built),
                a.shared,
            );
            op.out_tuples = a.built;
            stats.push(op);
        }
    }
}

/// A synthetic operator record surfacing a cache event through
/// [`ExecStats`] (rendered as a `# op` line in `RUN` responses).
fn cache_op(label: &str, rows: usize) -> OpStats {
    OpStats {
        label: label.to_string(),
        out_keys: rows,
        out_tuples: rows,
        index_kind: "cache".to_string(),
        memory_bytes: 0,
        micros: 0,
    }
}

/// Renders [`CacheStats`] as the one-line `key=value` body of a
/// `CACHE STATS` response: per tier (result / dim / selection / plan) the
/// hit/miss/invalidation/eviction/expiration counters plus live entries
/// and resident bytes.
pub fn render_cache_stats(s: &CacheStats) -> String {
    let tier = |name: &str, t: &qppt_cache::TierSnapshot| {
        format!(
            "{name}_hits={} {name}_misses={} {name}_invalidations={} \
             {name}_evictions={} {name}_expirations={} {name}_entries={} {name}_bytes={}",
            t.hits, t.misses, t.invalidations, t.evictions, t.expirations, t.entries, t.bytes
        )
    };
    format!(
        "{} {} {} {}",
        tier("result", &s.results),
        tier("dim", &s.dims),
        tier("selection", &s.selections),
        tier("plan", &s.plans)
    )
}

/// Detected hardware parallelism (1 when the probe fails).
pub fn detected_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Service-level errors (all reported to clients as `ERR` lines).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    UnknownQuery(String),
    Engine(QpptError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownQuery(q) => {
                write!(f, "unknown query {q} (LIST shows the registered names)")
            }
            ServeError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}
