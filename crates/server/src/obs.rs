//! Server-side observability state behind the `METRICS` verb and the
//! slow-query log.
//!
//! One [`ServeObs`] per process: it owns the metric [`Registry`],
//! pre-registers the per-verb request counters and latency histograms
//! (so the hot path never takes the registry lock), and renders the full
//! Prometheus exposition — registry families first, then the cache-tier
//! families, which are produced *at scrape time from the same
//! [`CacheStats`] snapshot `CACHE STATS` reads*. That construction is
//! what makes the two surfaces agree by definition rather than by
//! double-entry bookkeeping.

use std::sync::Arc;
use std::time::Instant;

use qppt_cache::{CacheStats, TierSnapshot};
use qppt_obs::{Counter, Gauge, Histogram, Registry, SlowRing};
use qppt_par::PoolMetrics;

/// Wire verbs instrumented with request counters and latency histograms.
pub const VERBS: [&str; 8] = [
    "RUN", "QUERY", "EXPLAIN", "LIST", "INFO", "PING", "CACHE", "METRICS",
];

/// The per-verb handles: request count + end-to-end latency.
pub struct VerbMetrics {
    pub requests: Arc<Counter>,
    pub micros: Arc<Histogram>,
}

/// Process-wide observability state (see module docs).
pub struct ServeObs {
    registry: Registry,
    started: Instant,
    uptime: Arc<Gauge>,
    slow_threshold: Option<u64>,
    slow_queries: Arc<Counter>,
    slow_ring: SlowRing,
    verbs: Vec<(&'static str, VerbMetrics)>,
}

impl std::fmt::Debug for ServeObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeObs")
            .field("slow_threshold", &self.slow_threshold)
            .finish()
    }
}

impl ServeObs {
    /// Creates the observability state. `slow_threshold` is the
    /// `--slow-query-micros` value: requests at or above it are recorded
    /// in the slow-query ring served by `METRICS SLOW` (`None` disables).
    pub fn new(slow_threshold: Option<u64>) -> Arc<Self> {
        let registry = Registry::new();
        let uptime = registry.gauge(
            "qppt_uptime_seconds",
            "Seconds since this process started serving.",
        );
        let slow_queries = registry.counter(
            "qppt_slow_queries_total",
            "Requests that exceeded the --slow-query-micros threshold.",
        );
        let verbs = VERBS
            .iter()
            .map(|&verb| {
                (
                    verb,
                    VerbMetrics {
                        requests: registry.counter_with(
                            "qppt_requests_total",
                            "Requests served, by wire verb.",
                            vec![("verb", verb.to_string())],
                        ),
                        micros: registry.histogram_with(
                            "qppt_request_micros",
                            "End-to-end request latency in microseconds, by wire verb.",
                            vec![("verb", verb.to_string())],
                        ),
                    },
                )
            })
            .collect();
        Arc::new(Self {
            registry,
            started: Instant::now(),
            uptime,
            slow_threshold,
            slow_queries,
            slow_ring: SlowRing::default(),
            verbs,
        })
    }

    /// The underlying registry, for registering further families (pool,
    /// router).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Registers and returns the worker-pool metric handles.
    pub fn pool_metrics(&self) -> PoolMetrics {
        PoolMetrics::register(&self.registry)
    }

    /// Records one served request of `verb` taking `micros`.
    pub fn record_request(&self, verb: &str, micros: u64) {
        if let Some((_, m)) = self.verbs.iter().find(|(v, _)| *v == verb) {
            m.requests.inc();
            m.micros.record(micros);
        }
    }

    /// The slow-query threshold (µs), if the log is enabled.
    pub fn slow_threshold(&self) -> Option<u64> {
        self.slow_threshold
    }

    /// Counts one slow query (the caller records the ring entry).
    pub fn note_slow(&self) {
        self.slow_queries.inc();
    }

    /// The slow-query ring buffer behind `METRICS SLOW`.
    pub fn slow_ring(&self) -> &SlowRing {
        &self.slow_ring
    }

    /// Seconds since this process started serving.
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Renders the full exposition: registry families (uptime refreshed
    /// at scrape time), then the cache-tier families derived from
    /// `cache` — the very snapshot `CACHE STATS` renders.
    pub fn render(&self, cache: &CacheStats) -> String {
        self.uptime.set(self.uptime_secs() as i64);
        let mut out = self.registry.render();
        out.push_str(&render_cache_metrics(cache));
        out
    }
}

/// Renders the cache tiers as Prometheus families with a `tier` label,
/// mirroring [`render_cache_stats`](crate::engine::render_cache_stats)
/// field for field.
fn render_cache_metrics(s: &CacheStats) -> String {
    let tiers: [(&str, &TierSnapshot); 4] = [
        ("result", &s.results),
        ("dim", &s.dims),
        ("selection", &s.selections),
        ("plan", &s.plans),
    ];
    let mut out = String::new();
    let mut family = |name: &str, help: &str, kind: &str, get: &dyn Fn(&TierSnapshot) -> i64| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        for (tier, t) in &tiers {
            out.push_str(&format!("{name}{{tier=\"{tier}\"}} {}\n", get(t)));
        }
    };
    family(
        "qppt_cache_hits_total",
        "Cache lookups answered from the tier.",
        "counter",
        &|t| t.hits as i64,
    );
    family(
        "qppt_cache_misses_total",
        "Cache lookups the tier could not answer.",
        "counter",
        &|t| t.misses as i64,
    );
    family(
        "qppt_cache_invalidations_total",
        "Entries dropped because a table version moved.",
        "counter",
        &|t| t.invalidations as i64,
    );
    family(
        "qppt_cache_evictions_total",
        "Entries removed under byte pressure.",
        "counter",
        &|t| t.evictions as i64,
    );
    family(
        "qppt_cache_expirations_total",
        "Entries removed after sitting idle past the TTL.",
        "counter",
        &|t| t.expirations as i64,
    );
    family(
        "qppt_cache_entries",
        "Live entries resident in the tier.",
        "gauge",
        &|t| t.entries as i64,
    );
    family(
        "qppt_cache_bytes",
        "Heap bytes resident in the tier.",
        "gauge",
        &|t| t.bytes as i64,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qppt_obs::parse_exposition;

    #[test]
    fn render_is_valid_exposition_with_cache_families() {
        let obs = ServeObs::new(Some(1000));
        obs.record_request("RUN", 250);
        obs.record_request("RUN", 90_000);
        obs.record_request("PING", 5);
        obs.note_slow();
        let stats = CacheStats::default();
        let text = obs.render(&stats);
        let expo = parse_exposition(&text).expect("exposition parses");
        assert_eq!(
            expo.value("qppt_requests_total", &[("verb", "RUN")]),
            Some(2)
        );
        assert_eq!(
            expo.value("qppt_requests_total", &[("verb", "PING")]),
            Some(1)
        );
        assert_eq!(expo.value("qppt_slow_queries_total", &[]), Some(1));
        assert_eq!(
            expo.value("qppt_request_micros_count", &[("verb", "RUN")]),
            Some(2)
        );
        assert_eq!(
            expo.value("qppt_cache_hits_total", &[("tier", "result")]),
            Some(0)
        );
        assert_eq!(expo.value("qppt_cache_bytes", &[("tier", "plan")]), Some(0));
        assert!(expo.value("qppt_uptime_seconds", &[]).is_some());
        assert_eq!(expo.kind("qppt_request_micros"), Some("histogram"));
    }

    #[test]
    fn unknown_verbs_are_ignored() {
        let obs = ServeObs::new(None);
        obs.record_request("BOGUS", 1);
        let text = obs.render(&CacheStats::default());
        assert!(!text.contains("BOGUS"));
        assert_eq!(obs.slow_threshold(), None);
    }
}
