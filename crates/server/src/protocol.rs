//! The qppt-server wire protocol: line-oriented text over TCP.
//!
//! Designed for `nc`-debuggability and zero dependencies. Every request is
//! one `\n`-terminated line; every response starts with an `OK …` or
//! `ERR <message>` status line, optionally followed by body lines and a
//! terminating `END` line (exactly the multi-line responses say so below).
//!
//! ## Grammar
//!
//! ```text
//! request   = run | query | explain | list | info | ping | cache
//!           | metrics | quit | shutdown
//! run       = "RUN" query-name *( SP option )  ; multi-line response
//! query     = "QUERY" *( SP clause / SP option ); ad-hoc spec, multi-line
//! explain   = "EXPLAIN" query-name             ; multi-line response
//!           | "EXPLAIN" *( SP clause / SP option ) ; inline query text
//! list      = "LIST"                           ; multi-line response
//! info      = "INFO"                           ; single-line response
//! ping      = "PING"                           ; single-line response
//! cache     = "CACHE" ( "STATS" | "CLEAR" [ "dims" ] ) ; single-line
//! metrics   = "METRICS" [ SP "SLOW" ]          ; multi-line response
//! quit      = "QUIT"                           ; single-line, closes conn
//! shutdown  = "SHUTDOWN"                       ; single-line, stops server
//!
//! query-name = "q1.1" … "q4.3"                 ; case-insensitive aliases
//! clause     = "fact=…" | "dim=…[…]" | "where=[…]" | "agg=…"
//!            | "group=…" | "order=…" | "id=…"  ; see qppt-query
//! option     = key "=" value
//! key        = "parallelism" | "morsel_bits" | "join_buffer"
//!            | "select_join" | "par_selections" | "par_scans"
//!            | "par_joins" | "batch_exec" | "batch_rows"
//!            | "priority" | "cache" | "mode" | "trace"
//! ```
//!
//! `METRICS` answers `OK metrics`, the server's full Prometheus text
//! exposition (one line per sample), then `END`. `METRICS SLOW` answers
//! `OK slow <n>` followed by the slow-query ring (oldest first): one
//! `slow verb=… micros=… outcome="…" | <request line>` body line per
//! entry, each followed by that request's `# span` lines when it was
//! traced, then `END`. `trace=on` enables
//! request-scoped span tracing for that `RUN`/`QUERY` only (`trace=off`
//! is the default); `trace=<id>` — any numeric value — also enables it
//! while pinning the trace id, which is how the router propagates its
//! own trace id to shards so shard span trees stitch under the router's
//! scatter span.
//!
//! `QUERY` carries an arbitrary ad-hoc query in the `qppt-query` language
//! (the named SSB queries are mere aliases for such specs — `RUN q3.1`
//! and `QUERY <q3.1's text>` take the same validate→plan→cache→execute
//! path and return byte-identical bytes). Clause and option tokens may be
//! interleaved: the token key decides (the two key sets are disjoint), so
//! `QUERY fact=lineorder … parallelism=4 cache=off` works. `EXPLAIN`
//! accepts either an alias or inline query text — any `=` in its argument
//! selects the inline form.
//!
//! `CACHE STATS` answers one `OK` line of `key=value` counters (per tier —
//! result / dim / selection / plan —
//! hits/misses/invalidations/evictions/expirations/entries/bytes);
//! `CACHE CLEAR` drops every cached entry, `CACHE CLEAR dims` only the
//! shared dimension-selection tier. `cache=off` on a `RUN` bypasses every
//! cache tier — the dimension tier included — for that request only (no
//! lookups, no insertions).
//!
//! ## RUN response
//!
//! ```text
//! OK <row-count>
//! COLS <group-cols|-> <agg-cols>
//! ROW <field> *( TAB <field> )
//! …
//! # total_micros=<n> workers=<n>
//! # op <label> | micros=<n> keys=<n> tuples=<n> index=<kind> mem=<bytes>
//! …
//! # span id=<n> parent=<n|-> name=<ident> micros=<n>   ; trace=on only
//! …
//! END
//! ```
//!
//! `COLS` lists comma-separated group column labels (`-` when the query is
//! a scalar aggregate with no group-by), then aggregate labels. `ROW`
//! fields are tab-separated: group values typed as `i:<int>` / `s:<str>`,
//! then aggregate values as plain decimal `i64`. (Dictionary strings must
//! not contain tabs or newlines — true for SSB and enforced nowhere else;
//! this is a demonstrator protocol, not an escaping showcase.) `#` lines
//! carry execution statistics and are informational.
//!
//! ## PARTIAL response (`mode=partial`)
//!
//! A `RUN`/`QUERY` with the option `mode=partial` — what `qppt-router`
//! sends to its shards — answers the *undecoded* aggregation index instead
//! of the ordered result:
//!
//! ```text
//! OK partial <group-count>
//! COLS <group-cols|-> <agg-cols>
//! P TAB <packed-key> *( TAB <field> )
//! …
//! # total_micros=<n> workers=<n>
//! # op <label> | micros=<n> keys=<n> tuples=<n> index=<kind> mem=<bytes>
//! …
//! # span id=<n> parent=<n|-> name=<ident> micros=<n>   ; trace only
//! …
//! END
//! ```
//!
//! `P` lines are emitted in ascending packed-key order (the aggregation
//! index's own iteration order): the raw `u64` group key first, then the
//! decoded group values (typed like `ROW` fields) and the accumulator sums
//! as plain decimals. The query's ORDER BY is *not* applied — the router
//! merges shards by key and orders once, after the merge.
//!
//! Verbs are case-insensitive; unknown verbs, unknown queries, and unknown
//! or malformed options produce `ERR <message>` and leave the connection
//! open. See the README for an example session.

use std::io::{self, BufRead, Write};

use qppt_core::{ExecStats, PartialAggregate, PartialRow, PlanOptions};
use qppt_obs::{SlowEntry, SpanRec};
use qppt_storage::{QueryResult, QuerySpec, ResultRow, Value};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a named query with plan-option overrides.
    Run {
        query: String,
        options: Vec<(String, String)>,
    },
    /// Run an ad-hoc query parsed from inline `qppt-query` text, with
    /// plan-option overrides (the `QUERY` verb).
    Query {
        spec: Box<QuerySpec>,
        options: Vec<(String, String)>,
    },
    /// Render the physical plan of a named query.
    Explain { query: String },
    /// Render the physical plan of an ad-hoc query (inline `EXPLAIN`).
    ExplainSpec {
        spec: Box<QuerySpec>,
        options: Vec<(String, String)>,
    },
    /// List the registered query names.
    List,
    /// One-line server descriptor (scale factor, seed, pool geometry).
    Info,
    /// Liveness probe.
    Ping,
    /// Query-cache introspection/control (`CACHE STATS`, `CACHE CLEAR`,
    /// `CACHE CLEAR dims`).
    Cache(CacheCmd),
    /// Prometheus text exposition of the server's metric registry.
    Metrics,
    /// The slow-query ring buffer (`METRICS SLOW`): the last requests
    /// that crossed the `--slow-query-micros` threshold, with request
    /// line, cache outcome, and span tree.
    MetricsSlow,
    /// Close this connection.
    Quit,
    /// Graceful server shutdown: in-flight queries finish, the acceptor
    /// stops, every connection closes.
    Shutdown,
}

/// Subcommands of the `CACHE` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheCmd {
    /// Report per-tier counters.
    Stats,
    /// Drop every cached entry (counters survive).
    Clear,
    /// Drop only the dimension tier (shared σ entries).
    ClearDims,
}

/// Parses one request line (without the trailing newline).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    if verb.is_empty() {
        return Err("empty request".to_string());
    }
    let mut parts = rest.split_whitespace();
    match verb.to_ascii_uppercase().as_str() {
        "PING" => Ok(Request::Ping),
        "INFO" => Ok(Request::Info),
        "LIST" => Ok(Request::List),
        "METRICS" => {
            let req = match parts.next().map(str::to_ascii_uppercase).as_deref() {
                None => Request::Metrics,
                Some("SLOW") => Request::MetricsSlow,
                Some(other) => {
                    return Err(format!("unknown METRICS subcommand {other} (try SLOW)"))
                }
            };
            if let Some(extra) = parts.next() {
                return Err(format!(
                    "unexpected token after METRICS subcommand: {extra}"
                ));
            }
            Ok(req)
        }
        "QUIT" => Ok(Request::Quit),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "CACHE" => {
            let sub = parts
                .next()
                .ok_or_else(|| "CACHE needs a subcommand (STATS or CLEAR)".to_string())?;
            let cmd = match sub.to_ascii_uppercase().as_str() {
                "STATS" => CacheCmd::Stats,
                "CLEAR" => match parts.next().map(str::to_ascii_uppercase).as_deref() {
                    None => CacheCmd::Clear,
                    Some("DIMS") => CacheCmd::ClearDims,
                    Some(other) => {
                        return Err(format!(
                            "unknown CACHE CLEAR target {other} (try CLEAR or CLEAR dims)"
                        ))
                    }
                },
                other => {
                    return Err(format!(
                        "unknown CACHE subcommand {other} (try STATS, CLEAR, CLEAR dims)"
                    ))
                }
            };
            if let Some(extra) = parts.next() {
                return Err(format!("unexpected token after CACHE subcommand: {extra}"));
            }
            Ok(Request::Cache(cmd))
        }
        "QUERY" => {
            let (spec, options) = parse_inline_query(rest)?;
            Ok(Request::Query { spec, options })
        }
        "EXPLAIN" => {
            if rest.contains('=') {
                // Inline query text (clauses are key=value; names are not).
                let (spec, options) = parse_inline_query(rest)?;
                return Ok(Request::ExplainSpec { spec, options });
            }
            let query = parts
                .next()
                .ok_or_else(|| "EXPLAIN needs a query name or inline query text".to_string())?
                .to_ascii_lowercase();
            if let Some(extra) = parts.next() {
                return Err(format!("unexpected token after query name: {extra}"));
            }
            Ok(Request::Explain { query })
        }
        "RUN" => {
            let query = parts
                .next()
                .ok_or_else(|| "RUN needs a query name".to_string())?
                .to_ascii_lowercase();
            let mut options = Vec::new();
            for opt in parts {
                let (k, v) = opt
                    .split_once('=')
                    .ok_or_else(|| format!("malformed option (want key=value): {opt}"))?;
                options.push((k.to_ascii_lowercase(), v.to_string()));
            }
            Ok(Request::Run { query, options })
        }
        other => Err(format!(
            "unknown verb {other} (try RUN, QUERY, EXPLAIN, LIST, INFO, PING, CACHE, METRICS, \
             QUIT, SHUTDOWN)"
        )),
    }
}

/// Parses the body of a `QUERY` (or inline `EXPLAIN`) request: tokens are
/// split bracket/quote-aware by `qppt-query`, then partitioned by key —
/// query-language clauses (`fact=`, `dim=`, …) go to the parser, every
/// other `key=value` token is a per-request option for
/// [`apply_overrides`]. The two key sets are disjoint, so clauses and
/// options may interleave freely on the wire.
type InlineQuery = (Box<QuerySpec>, Vec<(String, String)>);

fn parse_inline_query(body: &str) -> Result<InlineQuery, String> {
    let tokens = qppt_query::tokenize(body).map_err(|e| e.to_string())?;
    if tokens.is_empty() {
        return Err("QUERY needs inline query text (fact=…, dim=…, agg=…)".to_string());
    }
    let mut clauses: Vec<String> = Vec::new();
    let mut options: Vec<(String, String)> = Vec::new();
    for t in tokens {
        let key = t.split('=').next().expect("split yields at least one part");
        if qppt_query::is_clause_key(key) {
            clauses.push(t);
        } else {
            let (k, v) = t
                .split_once('=')
                .ok_or_else(|| format!("malformed token (want clause or option key=value): {t}"))?;
            options.push((k.to_ascii_lowercase(), v.to_string()));
        }
    }
    let spec = qppt_query::parse_tokens(&clauses).map_err(|e| e.to_string())?;
    Ok((Box::new(spec), options))
}

/// Priority extracted from `RUN` options (not a [`PlanOptions`] knob).
pub const PRIORITY_KEY: &str = "priority";

/// Cache bypass extracted from `RUN` options (not a [`PlanOptions`] knob).
pub const CACHE_KEY: &str = "cache";

/// Response-mode switch extracted from `RUN` options (not a
/// [`PlanOptions`] knob): `mode=partial` requests the undecoded
/// partial-aggregate response the router consumes.
pub const MODE_KEY: &str = "mode";

/// Request-tracing switch extracted from `RUN` options (not a
/// [`PlanOptions`] knob): `trace=on|off`, or `trace=<id>` to pin the
/// trace id (router→shard propagation).
pub const TRACE_KEY: &str = "trace";

/// The per-request tracing control parsed from the `trace=` option.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// No span collection (the default).
    #[default]
    Off,
    /// Collect spans; the server assigns the trace id.
    On,
    /// Collect spans under a caller-assigned trace id — the router sets
    /// this on shard requests so the shard's span tree stitches into the
    /// router's trace.
    Id(u64),
}

impl TraceMode {
    /// `true` when spans should be collected.
    pub fn enabled(&self) -> bool {
        !matches!(self, TraceMode::Off)
    }
}

/// Per-request controls that ride on a `RUN` line but are not plan
/// options: pool priority, the query-cache switch, the response mode,
/// and the tracing switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunControls {
    /// Pool priority (higher preempts lower for idle workers).
    pub priority: i32,
    /// `false` bypasses the query cache for this request only.
    pub use_cache: bool,
    /// `true` answers the undecoded partial aggregate (`mode=partial`)
    /// instead of the ordered, decoded result.
    pub partial: bool,
    /// Span collection for this request (`trace=` option).
    pub trace: TraceMode,
}

impl Default for RunControls {
    fn default() -> Self {
        Self {
            priority: 0,
            use_cache: true,
            partial: false,
            trace: TraceMode::Off,
        }
    }
}

/// Applies `RUN` option overrides onto the server's default plan options.
/// Returns the effective options plus the per-request controls (pool
/// priority, cache switch). Only execution-strategy knobs are accepted —
/// knobs that change which base indexes must exist (`prefer_kiss`,
/// `selection_via_set_ops`, `multidim_selections`) are rejected, since the
/// server prepared its indexes at startup.
pub fn apply_overrides(
    base: PlanOptions,
    options: &[(String, String)],
) -> Result<(PlanOptions, RunControls), String> {
    let mut opts = base;
    let mut controls = RunControls::default();
    for (k, v) in options {
        let bad = |what: &str| format!("bad value for {k} (want {what}): {v}");
        match k.as_str() {
            "parallelism" => opts.parallelism = v.parse().map_err(|_| bad("positive integer"))?,
            "morsel_bits" => opts.morsel_bits = v.parse().map_err(|_| bad("1..=16"))?,
            "join_buffer" => opts.join_buffer = v.parse().map_err(|_| bad("positive integer"))?,
            "select_join" => opts.select_join = parse_bool(v).ok_or_else(|| bad("bool"))?,
            "par_selections" => opts.par_selections = parse_bool(v).ok_or_else(|| bad("bool"))?,
            "par_scans" => opts.par_scans = parse_bool(v).ok_or_else(|| bad("bool"))?,
            "par_joins" => opts.par_joins = parse_bool(v).ok_or_else(|| bad("bool"))?,
            "batch_exec" => opts.batch_exec = parse_bool(v).ok_or_else(|| bad("bool"))?,
            "batch_rows" => opts.batch_rows = v.parse().map_err(|_| bad("positive integer"))?,
            PRIORITY_KEY => controls.priority = v.parse().map_err(|_| bad("integer"))?,
            CACHE_KEY => controls.use_cache = parse_bool(v).ok_or_else(|| bad("bool"))?,
            MODE_KEY => {
                controls.partial = match v.as_str() {
                    "partial" => true,
                    "full" => false,
                    _ => return Err(bad("full or partial")),
                }
            }
            TRACE_KEY => {
                // Booleans first so trace=1/trace=0 keep their on/off
                // meaning; any other number pins the trace id.
                controls.trace = match parse_bool(v) {
                    Some(true) => TraceMode::On,
                    Some(false) => TraceMode::Off,
                    None => TraceMode::Id(
                        v.parse()
                            .map_err(|_| bad("on, off, or a numeric trace id"))?,
                    ),
                }
            }
            other => {
                return Err(format!(
                    "unknown option {other} (try parallelism, morsel_bits, join_buffer, \
                     select_join, par_selections, par_scans, par_joins, batch_exec, batch_rows, \
                     priority, cache, mode, trace)"
                ))
            }
        }
    }
    opts.validate().map_err(|e| e.to_string())?;
    Ok((opts, controls))
}

fn parse_bool(v: &str) -> Option<bool> {
    match v {
        "true" | "1" | "on" => Some(true),
        "false" | "0" | "off" => Some(false),
        _ => None,
    }
}

/// Execution statistics as served to clients (the `#` lines of a `RUN`
/// response, parsed back).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServedStats {
    /// End-to-end wall micros on the server (plan + execute + decode).
    pub total_micros: u128,
    /// Workers the pipeline was allowed (`min(parallelism, pool size)`).
    pub workers: usize,
    /// One rendered line per operator.
    pub op_lines: Vec<String>,
    /// The request's span tree (`# span` lines), empty unless the
    /// request carried `trace=on` / `trace=<id>`.
    pub spans: Vec<SpanRec>,
}

/// Writes a full `RUN` response (status, columns, rows, stats, `END`).
/// `spans` is the request's finished span tree (empty when untraced).
pub fn write_run_response(
    w: &mut impl Write,
    result: &QueryResult,
    stats: &ExecStats,
    workers: usize,
    spans: &[SpanRec],
) -> io::Result<()> {
    writeln!(w, "OK {}", result.rows.len())?;
    let groups = if result.group_cols.is_empty() {
        "-".to_string()
    } else {
        result.group_cols.join(",")
    };
    writeln!(w, "COLS {} {}", groups, result.agg_cols.join(","))?;
    for row in &result.rows {
        write!(w, "ROW")?;
        for v in &row.key_values {
            match v {
                Value::Int(i) => write!(w, "\ti:{i}")?,
                Value::Str(s) => write!(w, "\ts:{s}")?,
            }
        }
        for a in &row.agg_values {
            write!(w, "\t{a}")?;
        }
        writeln!(w)?;
    }
    write_stats_lines(w, stats, workers, spans)?;
    writeln!(w, "END")
}

fn write_stats_lines(
    w: &mut impl Write,
    stats: &ExecStats,
    workers: usize,
    spans: &[SpanRec],
) -> io::Result<()> {
    writeln!(
        w,
        "# total_micros={} workers={}",
        stats.total_micros, workers
    )?;
    for op in &stats.ops {
        writeln!(
            w,
            "# op {} | micros={} keys={} tuples={} index={} mem={}",
            op.label, op.micros, op.out_keys, op.out_tuples, op.index_kind, op.memory_bytes
        )?;
    }
    for span in spans {
        writeln!(w, "# span {}", span.wire())?;
    }
    Ok(())
}

/// Writes a full `PARTIAL` response (status, columns, `P` rows, stats,
/// `END`) — the shard-side answer to `mode=partial`. `spans` is the
/// request's finished span tree (empty when untraced).
pub fn write_partial_response(
    w: &mut impl Write,
    partial: &PartialAggregate,
    stats: &ExecStats,
    workers: usize,
    spans: &[SpanRec],
) -> io::Result<()> {
    writeln!(w, "OK partial {}", partial.rows.len())?;
    let groups = if partial.group_cols.is_empty() {
        "-".to_string()
    } else {
        partial.group_cols.join(",")
    };
    writeln!(w, "COLS {} {}", groups, partial.agg_cols.join(","))?;
    for row in &partial.rows {
        write!(w, "P\t{}", row.key)?;
        for v in &row.group_values {
            match v {
                Value::Int(i) => write!(w, "\ti:{i}")?,
                Value::Str(s) => write!(w, "\ts:{s}")?,
            }
        }
        for a in &row.accs {
            write!(w, "\t{a}")?;
        }
        writeln!(w)?;
    }
    write_stats_lines(w, stats, workers, spans)?;
    writeln!(w, "END")
}

/// Writes a `METRICS SLOW` response: the ring oldest-first, one `slow …`
/// body line per entry followed by that request's `# span` lines. Shared
/// by the shard server and the router, so clients parse one shape.
pub fn write_slow_response(w: &mut dyn Write, entries: &[SlowEntry]) -> io::Result<()> {
    writeln!(w, "OK slow {}", entries.len())?;
    for e in entries {
        writeln!(w, "{}", e.wire())?;
        for span in &e.spans {
            writeln!(w, "# span {}", span.wire())?;
        }
    }
    writeln!(w, "END")
}

/// Parses the payload of a `PARTIAL` status line (`partial <group-count>`),
/// as returned by [`read_status`]. `None` if it is not a partial status.
pub fn parse_partial_status(status: &str) -> Option<usize> {
    status.strip_prefix("partial ")?.trim().parse().ok()
}

/// Reads the body of a `PARTIAL` response (everything after the status
/// line), reconstructing the [`PartialAggregate`] exactly as the shard
/// serialized it — `P` rows arrive, and stay, in ascending key order.
pub fn read_partial_body(
    r: &mut impl BufRead,
    row_count: usize,
) -> Result<(PartialAggregate, ServedStats), ClientError> {
    let cols = read_line(r)?;
    let rest = cols
        .strip_prefix("COLS ")
        .ok_or_else(|| ClientError::Protocol(format!("expected COLS line, got: {cols}")))?;
    let (groups, aggs) = rest
        .split_once(' ')
        .ok_or_else(|| ClientError::Protocol(format!("malformed COLS line: {cols}")))?;
    let group_cols: Vec<String> = if groups == "-" {
        Vec::new()
    } else {
        groups.split(',').map(str::to_string).collect()
    };
    let agg_cols: Vec<String> = aggs.split(',').map(str::to_string).collect();

    let mut rows: Vec<PartialRow> = Vec::with_capacity(row_count);
    let mut stats = ServedStats::default();
    loop {
        let line = read_line(r)?;
        if line == "END" {
            break;
        }
        if let Some(row) = line.strip_prefix("P\t") {
            let mut fields = row.split('\t');
            let key: u64 = fields
                .next()
                .and_then(|k| k.parse().ok())
                .ok_or_else(|| ClientError::Protocol(format!("bad P key in: {line}")))?;
            let mut group_values = Vec::with_capacity(group_cols.len());
            let mut accs = Vec::with_capacity(agg_cols.len());
            for field in fields {
                if let Some(i) = field.strip_prefix("i:") {
                    group_values.push(Value::Int(
                        i.parse().map_err(|_| {
                            ClientError::Protocol(format!("bad int field: {field}"))
                        })?,
                    ));
                } else if let Some(s) = field.strip_prefix("s:") {
                    group_values.push(Value::Str(s.to_string()));
                } else {
                    accs.push(field.parse().map_err(|_| {
                        ClientError::Protocol(format!("bad accumulator field: {field}"))
                    })?);
                }
            }
            if rows.last().is_some_and(|prev: &PartialRow| prev.key >= key) {
                return Err(ClientError::Protocol(format!(
                    "P rows out of ascending key order at key {key}"
                )));
            }
            rows.push(PartialRow {
                key,
                group_values,
                accs,
            });
        } else if let Some(meta) = line.strip_prefix("# ") {
            if let Some(op) = meta.strip_prefix("op ") {
                stats.op_lines.push(op.to_string());
            } else if let Some(span) = meta.strip_prefix("span ") {
                stats.spans.push(
                    SpanRec::parse(span)
                        .map_err(|e| ClientError::Protocol(format!("bad span line: {e}")))?,
                );
            } else {
                for kv in meta.split_whitespace() {
                    match kv.split_once('=') {
                        Some(("total_micros", v)) => {
                            stats.total_micros = v.parse().unwrap_or_default()
                        }
                        Some(("workers", v)) => stats.workers = v.parse().unwrap_or_default(),
                        _ => {}
                    }
                }
            }
        } else {
            return Err(ClientError::Protocol(format!(
                "unexpected line in PARTIAL response: {line}"
            )));
        }
    }
    if rows.len() != row_count {
        return Err(ClientError::Protocol(format!(
            "group count mismatch: status said {row_count}, body had {}",
            rows.len()
        )));
    }
    Ok((
        PartialAggregate {
            group_cols,
            agg_cols,
            rows,
        },
        stats,
    ))
}

/// Client-side error.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server answered `ERR <message>`.
    Server(String),
    /// The server answered something the client cannot parse.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

fn read_line(r: &mut impl BufRead) -> Result<String, ClientError> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(ClientError::Protocol(
            "connection closed mid-response".into(),
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Reads the status line of any response; `Ok` payload is the text after
/// `OK `, `ERR` becomes [`ClientError::Server`].
pub fn read_status(r: &mut impl BufRead) -> Result<String, ClientError> {
    let line = read_line(r)?;
    if let Some(rest) = line.strip_prefix("OK") {
        Ok(rest.trim_start().to_string())
    } else if let Some(msg) = line.strip_prefix("ERR ") {
        Err(ClientError::Server(msg.to_string()))
    } else {
        Err(ClientError::Protocol(format!("unexpected status: {line}")))
    }
}

/// Reads the body of a `RUN` response (everything after the status line),
/// reconstructing the [`QueryResult`] exactly as the server decoded it.
pub fn read_run_body(
    r: &mut impl BufRead,
    row_count: usize,
) -> Result<(QueryResult, ServedStats), ClientError> {
    let cols = read_line(r)?;
    let rest = cols
        .strip_prefix("COLS ")
        .ok_or_else(|| ClientError::Protocol(format!("expected COLS line, got: {cols}")))?;
    let (groups, aggs) = rest
        .split_once(' ')
        .ok_or_else(|| ClientError::Protocol(format!("malformed COLS line: {cols}")))?;
    let group_cols: Vec<String> = if groups == "-" {
        Vec::new()
    } else {
        groups.split(',').map(str::to_string).collect()
    };
    let agg_cols: Vec<String> = aggs.split(',').map(str::to_string).collect();

    let mut rows = Vec::with_capacity(row_count);
    let mut stats = ServedStats::default();
    loop {
        let line = read_line(r)?;
        if line == "END" {
            break;
        }
        if let Some(row) = line.strip_prefix("ROW") {
            let mut key_values = Vec::with_capacity(group_cols.len());
            let mut agg_values = Vec::with_capacity(agg_cols.len());
            for field in row.split('\t').skip(1) {
                if let Some(i) = field.strip_prefix("i:") {
                    key_values.push(Value::Int(i.parse().map_err(|_| {
                        ClientError::Protocol(format!("bad int field: {field}"))
                    })?));
                } else if let Some(s) = field.strip_prefix("s:") {
                    key_values.push(Value::Str(s.to_string()));
                } else {
                    agg_values.push(field.parse().map_err(|_| {
                        ClientError::Protocol(format!("bad aggregate field: {field}"))
                    })?);
                }
            }
            rows.push(ResultRow {
                key_values,
                agg_values,
            });
        } else if let Some(meta) = line.strip_prefix("# ") {
            if let Some(op) = meta.strip_prefix("op ") {
                stats.op_lines.push(op.to_string());
            } else if let Some(span) = meta.strip_prefix("span ") {
                stats.spans.push(
                    SpanRec::parse(span)
                        .map_err(|e| ClientError::Protocol(format!("bad span line: {e}")))?,
                );
            } else {
                for kv in meta.split_whitespace() {
                    match kv.split_once('=') {
                        Some(("total_micros", v)) => {
                            stats.total_micros = v.parse().unwrap_or_default()
                        }
                        Some(("workers", v)) => stats.workers = v.parse().unwrap_or_default(),
                        _ => {}
                    }
                }
            }
        } else {
            return Err(ClientError::Protocol(format!(
                "unexpected line in RUN response: {line}"
            )));
        }
    }
    if rows.len() != row_count {
        return Err(ClientError::Protocol(format!(
            "row count mismatch: status said {row_count}, body had {}",
            rows.len()
        )));
    }
    Ok((
        QueryResult {
            group_cols,
            agg_cols,
            rows,
        },
        stats,
    ))
}

/// Reads a multi-line text body (LIST/EXPLAIN): every line up to `END`.
pub fn read_text_body(r: &mut impl BufRead) -> Result<Vec<String>, ClientError> {
    let mut lines = Vec::new();
    loop {
        let line = read_line(r)?;
        if line == "END" {
            return Ok(lines);
        }
        lines.push(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parse_requests() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("info").unwrap(), Request::Info);
        assert_eq!(parse_request("  LIST  ").unwrap(), Request::List);
        assert_eq!(parse_request("metrics").unwrap(), Request::Metrics);
        assert_eq!(parse_request("METRICS SLOW").unwrap(), Request::MetricsSlow);
        assert_eq!(parse_request("metrics slow").unwrap(), Request::MetricsSlow);
        assert!(parse_request("METRICS FAST").is_err());
        assert!(parse_request("METRICS SLOW extra").is_err());
        assert_eq!(parse_request("QUIT").unwrap(), Request::Quit);
        assert_eq!(parse_request("Shutdown").unwrap(), Request::Shutdown);
        assert_eq!(
            parse_request("EXPLAIN Q2.3").unwrap(),
            Request::Explain {
                query: "q2.3".into()
            }
        );
        assert_eq!(
            parse_request("run q4.1 parallelism=4 priority=2").unwrap(),
            Request::Run {
                query: "q4.1".into(),
                options: vec![
                    ("parallelism".into(), "4".into()),
                    ("priority".into(), "2".into())
                ],
            }
        );
        assert_eq!(
            parse_request("cache stats").unwrap(),
            Request::Cache(CacheCmd::Stats)
        );
        assert_eq!(
            parse_request("CACHE Clear").unwrap(),
            Request::Cache(CacheCmd::Clear)
        );
        assert_eq!(
            parse_request("CACHE CLEAR dims").unwrap(),
            Request::Cache(CacheCmd::ClearDims)
        );
        assert_eq!(
            parse_request("cache clear DIMS").unwrap(),
            Request::Cache(CacheCmd::ClearDims)
        );
        assert!(parse_request("CACHE").is_err());
        assert!(parse_request("CACHE FLUSH").is_err());
        assert!(parse_request("CACHE STATS extra").is_err());
        assert!(parse_request("CACHE CLEAR plans").is_err());
        assert!(parse_request("CACHE CLEAR dims extra").is_err());
        assert!(parse_request("").is_err());
        assert!(parse_request("FLY q1.1").is_err());
        assert!(parse_request("RUN").is_err());
        assert!(parse_request("RUN q1.1 nonsense").is_err());
        assert!(parse_request("EXPLAIN q1.1 extra").is_err());
    }

    #[test]
    fn parse_query_and_inline_explain_requests() {
        // Clause and option tokens interleave; the token key decides.
        let req = parse_request(
            "QUERY fact=lineorder dim=date[join=d_datekey:lo_orderdate;d_year=1993] \
             parallelism=4 agg=sum(lo_revenue):r cache=off",
        )
        .unwrap();
        match req {
            Request::Query { spec, options } => {
                assert_eq!(spec.fact, "lineorder");
                assert_eq!(spec.dims.len(), 1);
                assert_eq!(spec.aggregates.len(), 1);
                assert_eq!(
                    options,
                    vec![
                        ("parallelism".to_string(), "4".to_string()),
                        ("cache".to_string(), "off".to_string())
                    ]
                );
            }
            other => panic!("want Query, got {other:?}"),
        }
        assert!(parse_request("QUERY").is_err());
        assert!(parse_request("QUERY fact=9bad").is_err());
        assert!(parse_request("QUERY fact=f dim=d[oops").is_err());
        assert!(parse_request("QUERY fact=f garbage").is_err());

        // EXPLAIN dispatches on '=': names stay names, text parses.
        assert!(matches!(
            parse_request("EXPLAIN q2.3"),
            Ok(Request::Explain { .. })
        ));
        match parse_request("EXPLAIN fact=f dim=d[join=k:fk] agg=sum(a):x select_join=off") {
            Ok(Request::ExplainSpec { spec, options }) => {
                assert_eq!(spec.fact, "f");
                assert_eq!(options.len(), 1);
            }
            other => panic!("want ExplainSpec, got {other:?}"),
        }
        assert!(
            parse_request("EXPLAIN fact=f oops=1 agg=sum(a):x").is_ok(),
            "unknown option keys are deferred to apply_overrides"
        );
        assert!(parse_request("EXPLAIN").is_err());
    }

    #[test]
    fn apply_overrides_accepts_exec_knobs_only() {
        let base = PlanOptions::default();
        let (opts, controls) = apply_overrides(
            base,
            &[
                ("parallelism".into(), "8".into()),
                ("morsel_bits".into(), "9".into()),
                ("select_join".into(), "off".into()),
                ("priority".into(), "-3".into()),
            ],
        )
        .unwrap();
        assert_eq!(opts.parallelism, 8);
        assert_eq!(opts.morsel_bits, 9);
        assert!(!opts.select_join);
        assert_eq!(controls.priority, -3);
        assert!(controls.use_cache, "cache defaults to on");

        let (_, controls) = apply_overrides(base, &[("cache".into(), "off".into())]).unwrap();
        assert!(!controls.use_cache);
        assert!(apply_overrides(base, &[("cache".into(), "maybe".into())]).is_err());

        assert!(apply_overrides(base, &[("prefer_kiss".into(), "false".into())]).is_err());
        assert!(apply_overrides(base, &[("parallelism".into(), "zero".into())]).is_err());
        // Values are validated, not just parsed.
        assert!(apply_overrides(base, &[("morsel_bits".into(), "40".into())]).is_err());
        assert!(apply_overrides(base, &[("parallelism".into(), "0".into())]).is_err());

        // Batch knobs parse and validate like the other exec knobs.
        let (opts, _) = apply_overrides(
            base,
            &[
                ("batch_exec".into(), "on".into()),
                ("batch_rows".into(), "64".into()),
            ],
        )
        .unwrap();
        assert!(opts.batch_exec);
        assert_eq!(opts.batch_rows, 64);
        assert!(apply_overrides(base, &[("batch_exec".into(), "sideways".into())]).is_err());
        assert!(apply_overrides(base, &[("batch_rows".into(), "0".into())]).is_err());
        assert!(apply_overrides(base, &[("batch_rows".into(), "many".into())]).is_err());
    }

    #[test]
    fn run_response_roundtrip() {
        let result = QueryResult {
            group_cols: vec!["d_year".into(), "p_brand1".into()],
            agg_cols: vec!["revenue".into()],
            rows: vec![
                ResultRow {
                    key_values: vec![Value::Int(1997), Value::str("MFGR#12 X")],
                    agg_values: vec![1234567],
                },
                ResultRow {
                    key_values: vec![Value::Int(1998), Value::str("MFGR#45")],
                    agg_values: vec![-42],
                },
            ],
        };
        let stats = ExecStats {
            ops: vec![qppt_core::OpStats {
                label: "4-way star join-group".into(),
                out_keys: 2,
                out_tuples: 2,
                index_kind: "KISS-Tree".into(),
                memory_bytes: 64,
                micros: 1500,
            }],
            total_micros: 2000,
        };
        let mut buf = Vec::new();
        write_run_response(&mut buf, &result, &stats, 4, &[]).unwrap();
        let mut r = BufReader::new(&buf[..]);
        let status = read_status(&mut r).unwrap();
        let n: usize = status.parse().unwrap();
        assert_eq!(n, 2);
        let (parsed, served) = read_run_body(&mut r, n).unwrap();
        assert_eq!(parsed, result);
        assert_eq!(served.total_micros, 2000);
        assert_eq!(served.workers, 4);
        assert_eq!(served.op_lines.len(), 1);
        assert!(served.op_lines[0].contains("star join-group"));
        // The op line carries the operator's memory footprint.
        assert!(
            served.op_lines[0].contains("mem=64"),
            "op line missing mem=: {}",
            served.op_lines[0]
        );
        assert!(served.spans.is_empty(), "untraced responses have no spans");
    }

    #[test]
    fn traced_response_roundtrips_spans() {
        let result = QueryResult {
            group_cols: Vec::new(),
            agg_cols: vec!["revenue".into()],
            rows: vec![ResultRow {
                key_values: Vec::new(),
                agg_values: vec![7],
            }],
        };
        let mut trace = qppt_obs::Trace::new(99);
        trace.add(0, "plan", 10);
        trace.add(0, "exec", 50);
        let spans = trace.finish(80);
        let mut buf = Vec::new();
        write_run_response(&mut buf, &result, &ExecStats::default(), 1, &spans).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("# span id=0 parent=- name=request micros=80"));
        let mut r = BufReader::new(&buf[..]);
        let n: usize = read_status(&mut r).unwrap().parse().unwrap();
        let (parsed, served) = read_run_body(&mut r, n).unwrap();
        assert_eq!(parsed, result);
        assert_eq!(served.spans, spans);
        qppt_obs::validate_span_tree(&served.spans).expect("served spans form a valid tree");
    }

    #[test]
    fn partial_response_roundtrip() {
        let partial = PartialAggregate {
            group_cols: vec!["d_year".into(), "p_brand1".into()],
            agg_cols: vec!["revenue".into()],
            rows: vec![
                PartialRow {
                    key: 3,
                    group_values: vec![Value::Int(1997), Value::str("MFGR#12 X")],
                    accs: vec![1234567],
                },
                PartialRow {
                    key: 77,
                    group_values: vec![Value::Int(1998), Value::str("MFGR#45")],
                    accs: vec![-42],
                },
            ],
        };
        let stats = ExecStats {
            ops: Vec::new(),
            total_micros: 321,
        };
        let mut buf = Vec::new();
        write_partial_response(&mut buf, &partial, &stats, 2, &[]).unwrap();
        let mut r = BufReader::new(&buf[..]);
        let status = read_status(&mut r).unwrap();
        let n = parse_partial_status(&status).expect("partial status");
        assert_eq!(n, 2);
        let (parsed, served) = read_partial_body(&mut r, n).unwrap();
        assert_eq!(parsed, partial);
        assert_eq!(served.total_micros, 321);
        assert_eq!(served.workers, 2);
        assert!(
            parse_partial_status("2").is_none(),
            "RUN status is not partial"
        );

        // Scalar partial: no group columns, key 0.
        let scalar = PartialAggregate {
            group_cols: Vec::new(),
            agg_cols: vec!["revenue".into()],
            rows: vec![PartialRow {
                key: 0,
                group_values: Vec::new(),
                accs: vec![99],
            }],
        };
        let mut buf = Vec::new();
        write_partial_response(&mut buf, &scalar, &ExecStats::default(), 1, &[]).unwrap();
        let mut r = BufReader::new(&buf[..]);
        let n = parse_partial_status(&read_status(&mut r).unwrap()).unwrap();
        let (parsed, _) = read_partial_body(&mut r, n).unwrap();
        assert_eq!(parsed, scalar);
    }

    #[test]
    fn mode_option_sets_partial_control() {
        let base = PlanOptions::default();
        let (_, controls) = apply_overrides(base, &[("mode".into(), "partial".into())]).unwrap();
        assert!(controls.partial);
        let (_, controls) = apply_overrides(base, &[("mode".into(), "full".into())]).unwrap();
        assert!(!controls.partial);
        assert!(apply_overrides(base, &[("mode".into(), "sideways".into())]).is_err());
    }

    #[test]
    fn trace_option_parses_modes() {
        let base = PlanOptions::default();
        let (_, controls) = apply_overrides(base, &[]).unwrap();
        assert_eq!(controls.trace, TraceMode::Off);
        let (_, controls) = apply_overrides(base, &[("trace".into(), "on".into())]).unwrap();
        assert_eq!(controls.trace, TraceMode::On);
        assert!(controls.trace.enabled());
        let (_, controls) = apply_overrides(base, &[("trace".into(), "off".into())]).unwrap();
        assert_eq!(controls.trace, TraceMode::Off);
        let (_, controls) = apply_overrides(base, &[("trace".into(), "12345".into())]).unwrap();
        assert_eq!(controls.trace, TraceMode::Id(12345));
        // Booleans win over numbers for 0/1.
        let (_, controls) = apply_overrides(base, &[("trace".into(), "1".into())]).unwrap();
        assert_eq!(controls.trace, TraceMode::On);
        assert!(apply_overrides(base, &[("trace".into(), "maybe".into())]).is_err());
        // A later duplicate wins — the router appends trace=<id> after
        // client options, so its id overrides a client's trace=on.
        let (_, controls) = apply_overrides(
            base,
            &[("trace".into(), "on".into()), ("trace".into(), "77".into())],
        )
        .unwrap();
        assert_eq!(controls.trace, TraceMode::Id(77));
    }

    #[test]
    fn scalar_result_roundtrip() {
        // Q1.x shape: no group columns.
        let result = QueryResult {
            group_cols: Vec::new(),
            agg_cols: vec!["revenue".into()],
            rows: vec![ResultRow {
                key_values: Vec::new(),
                agg_values: vec![99],
            }],
        };
        let mut buf = Vec::new();
        write_run_response(&mut buf, &result, &ExecStats::default(), 1, &[]).unwrap();
        let mut r = BufReader::new(&buf[..]);
        let n: usize = read_status(&mut r).unwrap().parse().unwrap();
        let (parsed, _) = read_run_body(&mut r, n).unwrap();
        assert_eq!(parsed, result);
    }

    #[test]
    fn err_status_surfaces_as_server_error() {
        let buf = b"ERR unknown query q9.9\n".to_vec();
        let mut r = BufReader::new(&buf[..]);
        match read_status(&mut r) {
            Err(ClientError::Server(m)) => assert!(m.contains("q9.9")),
            other => panic!("want server error, got {other:?}"),
        }
    }
}
