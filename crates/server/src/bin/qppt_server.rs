//! The qppt-server binary: generate SSB, prepare every index on the shared
//! worker pool, and serve the line protocol until a client sends
//! `SHUTDOWN`.
//!
//! ```text
//! cargo run --release --bin qppt-server -- \
//!     --addr 127.0.0.1:7878 --sf 0.05 --seed 42 \
//!     --threads 4 --admission 8 --parallelism 4 \
//!     --cache-dim-mb 256 --cache-ttl-secs 600
//! ```
//!
//! Cache flags: `--no-cache` serves every `RUN` uncached,
//! `--cache-dim-mb` sizes the shared dimension-σ tier's byte budget, and
//! `--cache-ttl-secs` reclaims entries idle for longer (0 = no age limit).
//!
//! Observability: the `METRICS` verb serves a Prometheus text exposition
//! (per-verb request counters and latency histograms, worker-pool and
//! cache-tier families) unless `--no-obs` disables the instrumentation;
//! `--slow-query-micros <n>` additionally logs every request at or above
//! *n* µs wall time to stderr with its query fingerprint (0 = off).
//!
//! Sharding: `--shard i/n` makes this server shard *i* of an *n*-node
//! deployment behind `qppt-router` — the generator keeps only the fact
//! rows whose `lo_orderdate` falls in `shard_bounds(i, n)` (dimension
//! tables are replicated in full), and `INFO` reports `shard=i/n`. All
//! shards must share `--sf` and `--seed`.
//!
//! Replication: `--replica j` stamps this server as replica *j* of its
//! shard's replica set (default 0). Replicas are full peers serving the
//! identical fact partition — the same `--shard i/n`, `--sf`, and
//! `--seed` — so the ordinal is purely descriptive: `INFO` reports
//! `replica=j` and the router uses it to localize relayed errors. Health
//! probes (`PING`) stay O(1) regardless of replica count.

use std::sync::Arc;
use std::time::{Duration, Instant};

use qppt_cache::CacheConfig;
use qppt_core::PlanOptions;
use qppt_par::WorkerPool;
use qppt_server::{detected_cores, serve, ServeEngine, ServeObs};

fn arg<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("bad value for {flag}: {v}"))
        })
        .unwrap_or(default)
}

fn parse_shard(spec: &str) -> (usize, usize) {
    let parse = || -> Option<(usize, usize)> {
        let (i, n) = spec.split_once('/')?;
        let (i, n) = (i.trim().parse().ok()?, n.trim().parse().ok()?);
        (n >= 1 && i < n).then_some((i, n))
    };
    parse().unwrap_or_else(|| panic!("bad value for --shard: {spec} (expected i/n with i < n)"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr: String = arg(&args, "--addr", "127.0.0.1:7878".to_string());
    let sf: f64 = arg(&args, "--sf", 0.05);
    let seed: u64 = arg(&args, "--seed", 42);
    let cores = detected_cores();
    let threads: usize = arg(&args, "--threads", cores);
    let admission: usize = arg(&args, "--admission", (2 * threads).max(4));
    let parallelism: usize = arg(&args, "--parallelism", threads);
    let seq_index_build = args.iter().any(|a| a == "--seq-index-build");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let cache_dim_mb: usize = arg(&args, "--cache-dim-mb", 256);
    let cache_ttl_secs: f64 = arg(&args, "--cache-ttl-secs", 0.0);
    let shard_spec: String = arg(&args, "--shard", "0/1".to_string());
    let (shard, shards) = parse_shard(&shard_spec);
    let replica: usize = arg(&args, "--replica", 0);
    let no_obs = args.iter().any(|a| a == "--no-obs");
    let slow_query_micros: u64 = arg(&args, "--slow-query-micros", 0);

    if cores == 1 {
        eprintln!(
            "warning: only 1 hardware core detected — the pool still bounds \
             threads and serves concurrent queries, but intra-query speedups \
             are impossible on this host"
        );
    }

    let obs =
        (!no_obs).then(|| ServeObs::new((slow_query_micros > 0).then_some(slow_query_micros)));
    let pool =
        WorkerPool::new_with_metrics(threads, admission, obs.as_ref().map(|o| o.pool_metrics()));
    let defaults = PlanOptions::default()
        .with_parallelism(parallelism)
        .with_par_index_build(!seq_index_build);

    let cache_config = if no_cache {
        CacheConfig::disabled()
    } else {
        CacheConfig {
            dim_budget: cache_dim_mb << 20,
            ttl: (cache_ttl_secs > 0.0).then(|| Duration::from_secs_f64(cache_ttl_secs)),
            ..CacheConfig::default()
        }
    };

    if shards > 1 {
        eprintln!(
            "generating SSB shard {shard}/{shards} at sf={sf} (seed {seed}) and preparing \
             indexes …"
        );
    } else {
        eprintln!("generating SSB at sf={sf} (seed {seed}) and preparing indexes …");
    }
    let t0 = Instant::now();
    let mut ssb = qppt_ssb::SsbDb::generate_shard(sf, seed, shard, shards);
    for q in qppt_ssb::queries::all_queries() {
        qppt_par::prepare_indexes_pooled(&mut ssb.db, &q, &defaults, &pool).expect("SSB prepares");
    }
    let mut engine = ServeEngine::over_db_with_config(
        Arc::new(ssb.db),
        pool.clone(),
        defaults,
        sf,
        seed,
        cache_config,
    )
    .with_shard_info(shard, shards)
    .with_replica_info(replica);
    if let Some(obs) = obs {
        engine = engine.with_obs(obs);
    }
    eprintln!(
        "ready in {:.1}s ({} pool threads, admission {}, parallel index build: {}, query cache: \
         {})",
        t0.elapsed().as_secs_f64(),
        threads,
        admission,
        !seq_index_build,
        if no_cache {
            "off".to_string()
        } else {
            format!(
                "on (dim tier {cache_dim_mb} MiB, ttl {})",
                if cache_ttl_secs > 0.0 {
                    format!("{cache_ttl_secs}s")
                } else {
                    "off".to_string()
                }
            )
        }
    );

    let server = serve(Arc::new(engine), &addr).expect("bind listener");
    println!("qppt-server listening on {}", server.addr());
    // Runs until a client sends SHUTDOWN; then drains connections.
    server.join();
    pool.shutdown();
    eprintln!("qppt-server stopped");
}
