//! The CI smoke probe: connect to a running qppt-server, learn its
//! `sf`/`seed` from `INFO`, regenerate the same SSB instance locally, and
//! assert the served answers are byte-identical to the local sequential
//! engine's — named aliases *and* one ad-hoc `QUERY` (plus one
//! deliberately malformed `QUERY`, which must be a clean `ERR`). Exits
//! non-zero on any mismatch.
//!
//! ```text
//! cargo run --release --bin qppt-smoke -- --addr 127.0.0.1:7878 --shutdown
//! ```

use std::process::exit;
use std::time::Duration;

use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_server::QpptClient;
use qppt_ssb::{queries, SsbDb};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let shutdown = args.iter().any(|a| a == "--shutdown");

    eprintln!("smoke: connecting to {addr} (retrying up to 120s while the server warms up) …");
    let mut client = match QpptClient::connect_retry(&addr, Duration::from_secs(120)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("smoke: FAIL — cannot connect: {e}");
            exit(1);
        }
    };

    let info = client.info().expect("INFO answers");
    let get = |k: &str| {
        info.iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("INFO is missing {k}"))
    };
    let sf: f64 = get("sf").parse().expect("sf parses");
    let seed: u64 = get("seed").parse().expect("seed parses");
    eprintln!("smoke: server runs SSB sf={sf} seed={seed}; rebuilding locally for the oracle …");

    let opts = PlanOptions::default();
    let mut ssb = SsbDb::generate(sf, seed);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &opts).expect("indexes build");
    }
    let engine = QpptEngine::new(&ssb.db);

    let mut failed = 0usize;
    for (name, spec) in [
        ("q1.1", queries::q1_1()),
        ("q2.3", queries::q2_3()),
        ("q4.1", queries::q4_1()),
    ] {
        let expected = engine.run(&spec, &opts).expect("sequential oracle runs");
        match client.run(name, &[("parallelism", "2")]) {
            Ok(served) if served.result == expected => {
                eprintln!(
                    "smoke: {name} OK — {} rows byte-identical (server total {} µs)",
                    expected.rows.len(),
                    served.stats.total_micros
                );
            }
            Ok(served) => {
                eprintln!(
                    "smoke: {name} MISMATCH — served {} rows, expected {}",
                    served.result.rows.len(),
                    expected.rows.len()
                );
                failed += 1;
            }
            Err(e) => {
                eprintln!("smoke: {name} FAIL — {e}");
                failed += 1;
            }
        }
    }

    // Ad-hoc frontend probe: a query the server has no name for, written
    // in the qppt-query language, checked against the locally parsed spec.
    let adhoc_text = "fact=lineorder \
         dim=supplier[join=s_suppkey:lo_suppkey;s_region='ASIA';carry=s_nation] \
         dim=date[join=d_datekey:lo_orderdate;d_year between 1992 and 1997;carry=d_year] \
         agg=sum(lo_revenue):revenue group=supplier.s_nation,date.d_year \
         order=group:1,agg:0:desc id=smoke-adhoc";
    let adhoc_spec = qppt_query::parse(adhoc_text).expect("smoke ad-hoc text parses");
    let expected = engine.run(&adhoc_spec, &opts).expect("ad-hoc oracle runs");
    match client.query(adhoc_text, &[("parallelism", "2")]) {
        Ok(served) if served.result == expected => {
            eprintln!(
                "smoke: ad-hoc QUERY OK — {} rows byte-identical (server total {} µs)",
                expected.rows.len(),
                served.stats.total_micros
            );
        }
        Ok(served) => {
            eprintln!(
                "smoke: ad-hoc QUERY MISMATCH — served {} rows, expected {}",
                served.result.rows.len(),
                expected.rows.len()
            );
            failed += 1;
        }
        Err(e) => {
            eprintln!("smoke: ad-hoc QUERY FAIL — {e}");
            failed += 1;
        }
    }

    // And a deliberately malformed QUERY must come back as a structured
    // ERR on a connection that keeps serving.
    match client.query(
        "fact=lineorder dim=date[join=d_datekey:lo_orderdate;d_frob=1] agg=sum(lo_revenue):r",
        &[],
    ) {
        Err(qppt_server::ClientError::Server(msg)) => {
            eprintln!("smoke: malformed QUERY OK — ERR {msg}");
            if client.ping().is_err() {
                eprintln!("smoke: FAIL — connection died after malformed QUERY");
                failed += 1;
            }
        }
        other => {
            eprintln!("smoke: malformed QUERY FAIL — want server ERR, got {other:?}");
            failed += 1;
        }
    }

    if shutdown {
        eprintln!("smoke: sending SHUTDOWN");
        let _ = client.shutdown();
    }
    if failed > 0 {
        eprintln!("smoke: FAIL ({failed} mismatches)");
        exit(1);
    }
    eprintln!("smoke: PASS");
}
