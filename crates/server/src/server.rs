//! The TCP frontend: a `std::net` acceptor with one thread per connection,
//! feeding every query into the shared [`ServeEngine`] pool.
//!
//! The frontend is split in two layers:
//!
//! * [`serve_lines`] — the protocol-agnostic line loop: accept, read
//!   length-capped `\n`-terminated request lines, hand each to a
//!   [`LineService`], flush, repeat. `qppt-router` reuses this layer
//!   verbatim, which is how the router inherits the exact drain-and-`ERR`
//!   robustness behavior of the shard servers.
//! * [`serve`] / [`serve_with`] — the qppt-server dispatch
//!   ([`LineService`] over a [`ServeEngine`]): the RUN/QUERY/EXPLAIN/…
//!   verb handling.
//!
//! Threading model: the acceptor thread plus one thread per live
//! connection. Connection threads only parse/serialize — query execution
//! happens on the engine's fixed [`WorkerPool`](qppt_par::WorkerPool)
//! (sequential fallbacks and the calling thread's share of participating
//! jobs run inline on the connection thread), so the pool's
//! priority/admission policy governs the actual CPU, and total *worker*
//! threads stay bounded by the pool size however many clients connect.
//!
//! Robustness: request lines are read incrementally with a hard length cap
//! ([`ServerConfig::max_line_bytes`]) — an oversized or non-UTF-8 line
//! produces an `ERR` response and the connection keeps serving; it is
//! never a reason to kill the connection, let alone the server. The
//! acceptor itself is equally paranoid: a failed `thread::spawn` (fd or
//! thread pressure) rejects that one connection and keeps accepting, and a
//! poisoned connection-list lock is recovered rather than propagated —
//! nothing a single connection does can take the acceptor down.
//!
//! Shutdown semantics (`SHUTDOWN` command or [`ServerHandle::shutdown`]):
//! the acceptor stops taking connections, every connection handler notices
//! within one poll tick ([`ServerConfig::poll_tick`]) and closes after
//! finishing its in-flight request, and [`ServerHandle::join`] returns
//! once all of them exited. The worker pool itself is owned by the caller
//! and outlives the server (so several servers — or in-process work — can
//! share one pool).

use std::io::{self, BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use qppt_core::ExecStats;
use qppt_obs::{SlowEntry, SpanRec, Trace};

use crate::engine::{render_cache_stats, ServeEngine};
use crate::protocol::{
    apply_overrides, parse_request, write_partial_response, write_run_response,
    write_slow_response, CacheCmd, Request, TraceMode,
};

/// Tunables of the TCP frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// How often blocked accept/read loops re-check the shutdown flag —
    /// the upper bound each idle connection adds to drain latency.
    pub poll_tick: Duration,
    /// Hard cap on one request line; longer lines are drained and answered
    /// with `ERR` instead of buffering without bound.
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            poll_tick: Duration::from_millis(10),
            max_line_bytes: 64 * 1024,
        }
    }
}

/// A running server instance.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown (idempotent; also triggered by a
    /// client `SHUTDOWN`).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// `true` once shutdown was requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the acceptor and every connection thread exited.
    pub fn join(mut self) {
        if let Some(t) = self.acceptor.take() {
            t.join().expect("acceptor does not panic");
        }
    }

    /// [`shutdown`](Self::shutdown) + [`join`](Self::join).
    pub fn stop(self) {
        self.shutdown();
        self.join();
    }
}

/// How the connection loop proceeds after a [`LineService`] handled one
/// request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reply {
    /// Keep reading request lines on this connection.
    Continue,
    /// Close this connection (e.g. `QUIT`); others are unaffected.
    Close,
    /// Stop the whole server after acknowledging (e.g. `SHUTDOWN`).
    Shutdown,
}

/// One request line in, one response out — the protocol-agnostic contract
/// between the accept/line loop and a dispatcher. `qppt-server` implements
/// it over a [`ServeEngine`]; `qppt-router` implements it over a shard
/// fleet and thereby inherits this frontend's drain-and-`ERR` handling of
/// oversized and malformed lines unchanged.
///
/// `handle` receives one trimmed, non-empty request line and writes the
/// complete response (status line, body, `END`) to `w`; the loop flushes
/// after each call, so implementations need not. Returning `Err` closes
/// this connection only.
pub trait LineService: Send + Sync + 'static {
    fn handle(&self, line: &str, w: &mut dyn Write) -> io::Result<Reply>;
}

/// Binds `addr` and starts serving `engine` under the default
/// [`ServerConfig`]. Returns once the listener is accepting (port 0 is
/// resolved in [`ServerHandle::addr`]).
pub fn serve(engine: Arc<ServeEngine>, addr: &str) -> io::Result<ServerHandle> {
    serve_with(engine, addr, ServerConfig::default())
}

/// [`serve`] with explicit frontend tunables.
pub fn serve_with(
    engine: Arc<ServeEngine>,
    addr: &str,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    serve_lines(Arc::new(EngineService { engine }), addr, config)
}

/// Binds `addr` and runs the shared accept + line loop over an arbitrary
/// [`LineService`]. This is the whole TCP frontend — qppt-server and
/// qppt-router differ only in the service passed here.
pub fn serve_lines(
    service: Arc<dyn LineService>,
    addr: &str,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let acceptor = thread::Builder::new()
        .name("qppt-acceptor".into())
        .spawn(move || accept_loop(listener, service, flag, config))?;
    Ok(ServerHandle {
        addr,
        shutdown,
        acceptor: Some(acceptor),
    })
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<dyn LineService>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
) {
    let conns: Mutex<Vec<thread::JoinHandle<()>>> = Mutex::new(Vec::new());
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let service = service.clone();
                let flag = shutdown.clone();
                let spawned = thread::Builder::new()
                    .name(format!("qppt-conn-{peer}"))
                    .spawn(move || {
                        // A connection error only kills this connection.
                        let _ = handle_connection(stream, &*service, &flag, config);
                    });
                let t = match spawned {
                    Ok(t) => t,
                    // Thread/fd pressure: reject this one connection (the
                    // dropped stream closes it) and keep accepting.
                    Err(_) => continue,
                };
                let mut conns = conns.lock().unwrap_or_else(|e| e.into_inner());
                conns.push(t);
                // Opportunistically reap finished handlers so a long-lived
                // server does not accumulate joinable thread handles.
                conns.retain(|t| !t.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(config.poll_tick),
            Err(_) => thread::sleep(config.poll_tick),
        }
    }
    // Graceful: wait for in-flight connections (they observe the flag
    // within one read-timeout tick). A handler that somehow panicked is
    // already gone — joining it must not take the acceptor with it.
    for t in conns
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .drain(..)
    {
        let _ = t.join();
    }
}

/// Writes an `EXPLAIN` response (`OK explain`, plan lines, `END`).
fn write_explain(writer: &mut impl Write, plan: &str) -> io::Result<()> {
    writeln!(writer, "OK explain")?;
    for l in plan.lines() {
        writeln!(writer, "{l}")?;
    }
    writeln!(writer, "END")
}

/// Outcome of reading one request line.
enum LineRead {
    /// A complete line (without the newline), lossily decoded.
    Line(String),
    /// The peer closed the connection.
    Closed,
    /// The server is draining; drop the (idle) connection.
    Draining,
    /// The line exceeded [`ServerConfig::max_line_bytes`]; its bytes were
    /// discarded up to and including the newline.
    TooLong,
}

/// Reads one `\n`-terminated request line incrementally: accumulates
/// across read-timeout ticks (a request split over slow TCP segments still
/// parses as one line), enforces the length cap without unbounded
/// buffering, and tolerates non-UTF-8 bytes (lossy decode — the parser
/// then rejects the verb with a plain `ERR`).
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
    max_line_bytes: usize,
) -> io::Result<LineRead> {
    buf.clear();
    let mut too_long = false;
    loop {
        let (advance, complete) = {
            let available = match reader.fill_buf() {
                Ok(b) => b,
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted =>
                {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(LineRead::Draining);
                    }
                    continue;
                }
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                return Ok(LineRead::Closed); // EOF
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !too_long {
                        buf.extend_from_slice(&available[..pos]);
                    }
                    (pos + 1, true)
                }
                None => {
                    if !too_long {
                        buf.extend_from_slice(available);
                    }
                    (available.len(), false)
                }
            }
        };
        reader.consume(advance);
        if buf.len() > max_line_bytes {
            // Stop buffering; keep draining until the newline arrives.
            too_long = true;
            buf.clear();
        }
        if complete {
            return Ok(if too_long {
                LineRead::TooLong
            } else {
                LineRead::Line(String::from_utf8_lossy(buf).into_owned())
            });
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &dyn LineService,
    shutdown: &AtomicBool,
    config: ServerConfig,
) -> io::Result<()> {
    stream.set_read_timeout(Some(config.poll_tick))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let line = match read_request_line(&mut reader, &mut buf, shutdown, config.max_line_bytes)?
        {
            LineRead::Line(l) => l,
            LineRead::Closed | LineRead::Draining => return Ok(()),
            LineRead::TooLong => {
                writeln!(
                    writer,
                    "ERR request line exceeds {} bytes",
                    config.max_line_bytes
                )?;
                writer.flush()?;
                continue;
            }
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let reply = service.handle(trimmed, &mut writer)?;
        if reply == Reply::Shutdown {
            // Flag first, acknowledge second: the response is still in the
            // BufWriter, so once a client has read the OK (flushed below),
            // `is_shutting_down()` is already observable.
            shutdown.store(true, Ordering::SeqCst);
        }
        writer.flush()?;
        match reply {
            Reply::Close | Reply::Shutdown => return Ok(()),
            Reply::Continue => {}
        }
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// Process-wide source of server-picked trace ids (`trace=on` without a
/// router-pinned id). Monotonic, never reused within a process.
static TRACE_SEQ: AtomicU64 = AtomicU64::new(1);

/// Creates the request [`Trace`] demanded by `controls.trace`: a
/// router-pinned id is honored verbatim (so the router can stitch the
/// shard's spans under its own tree), `on` draws a fresh process-unique
/// id, `off` yields no trace. Tracing is independent of `--no-obs` — it
/// is request-scoped state, not registry state.
fn make_trace(mode: TraceMode) -> Option<Trace> {
    match mode {
        TraceMode::Off => None,
        TraceMode::On => Some(Trace::new(TRACE_SEQ.fetch_add(1, Ordering::Relaxed))),
        TraceMode::Id(id) => Some(Trace::new(id)),
    }
}

/// Closes out a request trace: the root span absorbs the served
/// `total_micros` and the flat wire-ordered span list comes back (empty
/// when the request was untraced).
fn finish_trace(trace: Option<Trace>, total_micros: u128) -> Vec<qppt_obs::SpanRec> {
    match trace {
        None => Vec::new(),
        Some(t) => t.finish(u64::try_from(total_micros).unwrap_or(u64::MAX)),
    }
}

/// The qppt-server dispatcher: the full verb set over one [`ServeEngine`].
struct EngineService {
    engine: Arc<ServeEngine>,
}

/// The metrics label for a parsed request (`record_request` ignores
/// verbs outside the instrumented set, e.g. QUIT/SHUTDOWN).
fn verb_of(req: &Request) -> &'static str {
    match req {
        Request::Ping => "PING",
        Request::Quit => "QUIT",
        Request::Shutdown => "SHUTDOWN",
        Request::Info => "INFO",
        Request::Cache(_) => "CACHE",
        Request::List => "LIST",
        Request::Explain { .. } | Request::ExplainSpec { .. } => "EXPLAIN",
        Request::Run { .. } => "RUN",
        Request::Query { .. } => "QUERY",
        Request::Metrics | Request::MetricsSlow => "METRICS",
    }
}

/// Where a served response came from, read back off its op list: the
/// last cache-tier op (skipping the dimension-assembly line) names the
/// tier, and a run with no cache ops bypassed the cache entirely.
fn outcome_of(stats: &ExecStats) -> &str {
    stats
        .ops
        .iter()
        .rev()
        .find(|op| op.index_kind == "cache" && !op.label.starts_with("cache: dims"))
        .map(|op| op.label.as_str())
        .unwrap_or("bypass")
}

impl LineService for EngineService {
    fn handle(&self, line: &str, w: &mut dyn Write) -> io::Result<Reply> {
        let started = Instant::now();
        let parsed = parse_request(line);
        let verb = parsed.as_ref().ok().map(verb_of);
        let reply = self.dispatch(parsed, line, w)?;
        if let (Some(obs), Some(verb)) = (self.engine.obs(), verb) {
            let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            obs.record_request(verb, micros);
        }
        Ok(reply)
    }
}

impl EngineService {
    /// Records a slow `RUN`/`QUERY` in the ring (and counts it) when its
    /// request wall time reached the `--slow-query-micros` threshold.
    fn slow_log(
        &self,
        verb: &'static str,
        line: &str,
        outcome: &str,
        spans: &[SpanRec],
        started: Instant,
    ) {
        let Some(obs) = self.engine.obs() else { return };
        let Some(threshold) = obs.slow_threshold() else {
            return;
        };
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        if micros < threshold {
            return;
        }
        obs.note_slow();
        obs.slow_ring().push(SlowEntry {
            verb: verb.to_string(),
            line: line.to_string(),
            outcome: outcome.to_string(),
            micros,
            spans: spans.to_vec(),
        });
    }

    fn dispatch(
        &self,
        parsed: Result<Request, String>,
        line: &str,
        mut w: &mut dyn Write,
    ) -> io::Result<Reply> {
        let engine = &*self.engine;
        let started = Instant::now();
        match parsed {
            Err(msg) => writeln!(w, "ERR {msg}")?,
            Ok(Request::Ping) => writeln!(w, "OK pong")?,
            Ok(Request::Quit) => {
                writeln!(w, "OK bye")?;
                return Ok(Reply::Close);
            }
            Ok(Request::Shutdown) => {
                writeln!(w, "OK shutting down")?;
                return Ok(Reply::Shutdown);
            }
            Ok(Request::Info) => {
                let i = engine.info();
                writeln!(
                    w,
                    "OK sf={} seed={} pool_threads={} admission={} cores={} rows={} \
                     shard={}/{} replica={} queries={} uptime_secs={} build={} versions={}",
                    i.sf,
                    i.seed,
                    i.pool_threads,
                    i.admission,
                    i.cores,
                    i.rows,
                    i.shard,
                    i.shards,
                    i.replica,
                    engine.query_names().len(),
                    engine.uptime_secs(),
                    ServeEngine::build(),
                    engine.versions_field(),
                )?;
            }
            Ok(Request::Metrics) => match engine.render_metrics() {
                None => writeln!(w, "ERR metrics disabled (--no-obs)")?,
                Some(text) => {
                    writeln!(w, "OK metrics")?;
                    for l in text.lines() {
                        writeln!(w, "{l}")?;
                    }
                    writeln!(w, "END")?;
                }
            },
            Ok(Request::MetricsSlow) => match engine.obs() {
                None => writeln!(w, "ERR metrics disabled (--no-obs)")?,
                Some(obs) => write_slow_response(&mut w, &obs.slow_ring().snapshot())?,
            },
            Ok(Request::Cache(CacheCmd::Stats)) => {
                writeln!(w, "OK {}", render_cache_stats(&engine.cache_stats()))?;
            }
            Ok(Request::Cache(CacheCmd::Clear)) => {
                engine.cache_clear();
                writeln!(w, "OK cleared")?;
            }
            Ok(Request::Cache(CacheCmd::ClearDims)) => {
                engine.cache_clear_dims();
                writeln!(w, "OK cleared dims")?;
            }
            Ok(Request::List) => {
                let names = engine.query_names();
                writeln!(w, "OK {}", names.len())?;
                for n in names {
                    writeln!(w, "{n}")?;
                }
                writeln!(w, "END")?;
            }
            Ok(Request::Explain { query }) => match engine.explain(&query) {
                Err(e) => writeln!(w, "ERR {e}")?,
                Ok(plan) => write_explain(&mut w, &plan)?,
            },
            Ok(Request::ExplainSpec { spec, options }) => {
                match apply_overrides(engine.defaults(), &options) {
                    Err(msg) => writeln!(w, "ERR {msg}")?,
                    Ok((opts, _controls)) => match engine.explain_spec(&spec, &opts) {
                        Err(e) => writeln!(w, "ERR {e}")?,
                        Ok(plan) => write_explain(&mut w, &plan)?,
                    },
                }
            }
            Ok(Request::Run { query, options }) => {
                match apply_overrides(engine.defaults(), &options) {
                    Err(msg) => writeln!(w, "ERR {msg}")?,
                    Ok((opts, controls)) => {
                        let workers = opts.parallelism.min(engine.info().pool_threads).max(1);
                        let mut trace = make_trace(controls.trace);
                        if controls.partial {
                            // Shard-side scatter path: resolve the alias,
                            // then return undecoded partials.
                            match engine.resolve(&query).and_then(|spec| {
                                engine.run_spec_partial_obs(
                                    spec,
                                    &opts,
                                    controls.priority,
                                    controls.use_cache,
                                    trace.as_mut(),
                                )
                            }) {
                                Err(e) => writeln!(w, "ERR {e}")?,
                                Ok((partial, stats)) => {
                                    let spans = finish_trace(trace, stats.total_micros);
                                    write_partial_response(
                                        &mut w, &partial, &stats, workers, &spans,
                                    )?;
                                    self.slow_log("RUN", line, outcome_of(&stats), &spans, started);
                                }
                            }
                        } else {
                            match engine.resolve(&query).and_then(|spec| {
                                engine.run_spec_obs(
                                    spec,
                                    &opts,
                                    controls.priority,
                                    controls.use_cache,
                                    trace.as_mut(),
                                )
                            }) {
                                Err(e) => writeln!(w, "ERR {e}")?,
                                Ok((result, stats)) => {
                                    let spans = finish_trace(trace, stats.total_micros);
                                    write_run_response(&mut w, &result, &stats, workers, &spans)?;
                                    self.slow_log("RUN", line, outcome_of(&stats), &spans, started);
                                }
                            }
                        }
                    }
                }
            }
            Ok(Request::Query { spec, options }) => {
                // The ad-hoc path: same overrides, same single
                // validate→plan→cache→execute pipeline as named aliases.
                match apply_overrides(engine.defaults(), &options) {
                    Err(msg) => writeln!(w, "ERR {msg}")?,
                    Ok((opts, controls)) => {
                        let workers = opts.parallelism.min(engine.info().pool_threads).max(1);
                        let mut trace = make_trace(controls.trace);
                        if controls.partial {
                            match engine.run_spec_partial_obs(
                                &spec,
                                &opts,
                                controls.priority,
                                controls.use_cache,
                                trace.as_mut(),
                            ) {
                                Err(e) => writeln!(w, "ERR {e}")?,
                                Ok((partial, stats)) => {
                                    let spans = finish_trace(trace, stats.total_micros);
                                    write_partial_response(
                                        &mut w, &partial, &stats, workers, &spans,
                                    )?;
                                    self.slow_log(
                                        "QUERY",
                                        line,
                                        outcome_of(&stats),
                                        &spans,
                                        started,
                                    );
                                }
                            }
                        } else {
                            match engine.run_spec_obs(
                                &spec,
                                &opts,
                                controls.priority,
                                controls.use_cache,
                                trace.as_mut(),
                            ) {
                                Err(e) => writeln!(w, "ERR {e}")?,
                                Ok((result, stats)) => {
                                    let spans = finish_trace(trace, stats.total_micros);
                                    write_run_response(&mut w, &result, &stats, workers, &spans)?;
                                    self.slow_log(
                                        "QUERY",
                                        line,
                                        outcome_of(&stats),
                                        &spans,
                                        started,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(Reply::Continue)
    }
}
