//! The TCP frontend: a `std::net` acceptor with one thread per connection,
//! feeding every query into the shared [`ServeEngine`] pool.
//!
//! Threading model: the acceptor thread plus one thread per live
//! connection. Connection threads only parse/serialize — query execution
//! happens on the engine's fixed [`WorkerPool`](qppt_par::WorkerPool)
//! (sequential fallbacks run inline on the connection thread), so the
//! pool's priority/admission policy governs the actual CPU, and total
//! *worker* threads stay bounded by the pool size however many clients
//! connect.
//!
//! Shutdown semantics (`SHUTDOWN` command or [`ServerHandle::shutdown`]):
//! the acceptor stops taking connections, every connection handler notices
//! within one read-timeout tick and closes after finishing its in-flight
//! request, and [`ServerHandle::join`] returns once all of them exited.
//! The worker pool itself is owned by the caller and outlives the server
//! (so several servers — or in-process work — can share one pool).

use std::io::{self, BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use crate::engine::ServeEngine;
use crate::protocol::{apply_overrides, parse_request, write_run_response, Request};

/// How often blocked accept/read loops re-check the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(25);

/// A running server instance.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown (idempotent; also triggered by a
    /// client `SHUTDOWN`).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// `true` once shutdown was requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the acceptor and every connection thread exited.
    pub fn join(mut self) {
        if let Some(t) = self.acceptor.take() {
            t.join().expect("acceptor does not panic");
        }
    }

    /// [`shutdown`](Self::shutdown) + [`join`](Self::join).
    pub fn stop(self) {
        self.shutdown();
        self.join();
    }
}

/// Binds `addr` and starts serving `engine`. Returns once the listener is
/// accepting (port 0 is resolved in [`ServerHandle::addr`]).
pub fn serve(engine: Arc<ServeEngine>, addr: &str) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let acceptor = thread::Builder::new()
        .name("qppt-acceptor".into())
        .spawn(move || accept_loop(listener, engine, flag))?;
    Ok(ServerHandle {
        addr,
        shutdown,
        acceptor: Some(acceptor),
    })
}

fn accept_loop(listener: TcpListener, engine: Arc<ServeEngine>, shutdown: Arc<AtomicBool>) {
    let conns: Mutex<Vec<thread::JoinHandle<()>>> = Mutex::new(Vec::new());
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let engine = engine.clone();
                let flag = shutdown.clone();
                let t = thread::Builder::new()
                    .name(format!("qppt-conn-{peer}"))
                    .spawn(move || {
                        // A connection error only kills this connection.
                        let _ = handle_connection(stream, &engine, &flag);
                    })
                    .expect("spawn connection thread");
                let mut conns = conns.lock().expect("conn list lock");
                conns.push(t);
                // Opportunistically reap finished handlers so a long-lived
                // server does not accumulate joinable thread handles.
                conns.retain(|t| !t.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(POLL_TICK),
            Err(_) => thread::sleep(POLL_TICK),
        }
    }
    // Graceful: wait for in-flight connections (they observe the flag
    // within one read-timeout tick).
    for t in conns.into_inner().expect("conn list lock").drain(..) {
        t.join().expect("connection threads do not panic");
    }
}

fn handle_connection(
    stream: TcpStream,
    engine: &ServeEngine,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_TICK))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // Retry timeouts *without* clearing: a request that arrives in
        // several TCP segments more than one poll tick apart accumulates
        // into `line` across read_line calls (read_line appends).
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(()), // client closed
                Ok(_) => break,
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted =>
                {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(()); // server is draining; drop idle conns
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match parse_request(trimmed) {
            Err(msg) => writeln!(writer, "ERR {msg}")?,
            Ok(Request::Ping) => writeln!(writer, "OK pong")?,
            Ok(Request::Quit) => {
                writeln!(writer, "OK bye")?;
                writer.flush()?;
                return Ok(());
            }
            Ok(Request::Shutdown) => {
                // Flag first, acknowledge second: once a client has read
                // the OK, `is_shutting_down()` is already observable.
                shutdown.store(true, Ordering::SeqCst);
                writeln!(writer, "OK shutting down")?;
                writer.flush()?;
                return Ok(());
            }
            Ok(Request::Info) => {
                let i = engine.info();
                writeln!(
                    writer,
                    "OK sf={} seed={} pool_threads={} admission={} cores={} queries={}",
                    i.sf,
                    i.seed,
                    i.pool_threads,
                    i.admission,
                    i.cores,
                    engine.query_names().len()
                )?;
            }
            Ok(Request::List) => {
                let names = engine.query_names();
                writeln!(writer, "OK {}", names.len())?;
                for n in names {
                    writeln!(writer, "{n}")?;
                }
                writeln!(writer, "END")?;
            }
            Ok(Request::Explain { query }) => match engine.explain(&query) {
                Err(e) => writeln!(writer, "ERR {e}")?,
                Ok(plan) => {
                    writeln!(writer, "OK explain")?;
                    for l in plan.lines() {
                        writeln!(writer, "{l}")?;
                    }
                    writeln!(writer, "END")?;
                }
            },
            Ok(Request::Run { query, options }) => {
                match apply_overrides(engine.defaults(), &options) {
                    Err(msg) => writeln!(writer, "ERR {msg}")?,
                    Ok((opts, priority)) => match engine.run(&query, &opts, priority) {
                        Err(e) => writeln!(writer, "ERR {e}")?,
                        Ok((result, stats)) => {
                            let workers = opts.parallelism.min(engine.info().pool_threads).max(1);
                            write_run_response(&mut writer, &result, &stats, workers)?;
                        }
                    },
                }
            }
        }
        writer.flush()?;
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}
