//! The TCP frontend: a `std::net` acceptor with one thread per connection,
//! feeding every query into the shared [`ServeEngine`] pool.
//!
//! Threading model: the acceptor thread plus one thread per live
//! connection. Connection threads only parse/serialize — query execution
//! happens on the engine's fixed [`WorkerPool`](qppt_par::WorkerPool)
//! (sequential fallbacks and the calling thread's share of participating
//! jobs run inline on the connection thread), so the pool's
//! priority/admission policy governs the actual CPU, and total *worker*
//! threads stay bounded by the pool size however many clients connect.
//!
//! Robustness: request lines are read incrementally with a hard length cap
//! ([`ServerConfig::max_line_bytes`]) — an oversized or non-UTF-8 line
//! produces an `ERR` response and the connection keeps serving; it is
//! never a reason to kill the connection, let alone the server.
//!
//! Shutdown semantics (`SHUTDOWN` command or [`ServerHandle::shutdown`]):
//! the acceptor stops taking connections, every connection handler notices
//! within one poll tick ([`ServerConfig::poll_tick`]) and closes after
//! finishing its in-flight request, and [`ServerHandle::join`] returns
//! once all of them exited. The worker pool itself is owned by the caller
//! and outlives the server (so several servers — or in-process work — can
//! share one pool).

use std::io::{self, BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use crate::engine::{render_cache_stats, ServeEngine};
use crate::protocol::{apply_overrides, parse_request, write_run_response, CacheCmd, Request};

/// Tunables of the TCP frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// How often blocked accept/read loops re-check the shutdown flag —
    /// the upper bound each idle connection adds to drain latency.
    pub poll_tick: Duration,
    /// Hard cap on one request line; longer lines are drained and answered
    /// with `ERR` instead of buffering without bound.
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            poll_tick: Duration::from_millis(10),
            max_line_bytes: 64 * 1024,
        }
    }
}

/// A running server instance.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown (idempotent; also triggered by a
    /// client `SHUTDOWN`).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// `true` once shutdown was requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the acceptor and every connection thread exited.
    pub fn join(mut self) {
        if let Some(t) = self.acceptor.take() {
            t.join().expect("acceptor does not panic");
        }
    }

    /// [`shutdown`](Self::shutdown) + [`join`](Self::join).
    pub fn stop(self) {
        self.shutdown();
        self.join();
    }
}

/// Binds `addr` and starts serving `engine` under the default
/// [`ServerConfig`]. Returns once the listener is accepting (port 0 is
/// resolved in [`ServerHandle::addr`]).
pub fn serve(engine: Arc<ServeEngine>, addr: &str) -> io::Result<ServerHandle> {
    serve_with(engine, addr, ServerConfig::default())
}

/// [`serve`] with explicit frontend tunables.
pub fn serve_with(
    engine: Arc<ServeEngine>,
    addr: &str,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let acceptor = thread::Builder::new()
        .name("qppt-acceptor".into())
        .spawn(move || accept_loop(listener, engine, flag, config))?;
    Ok(ServerHandle {
        addr,
        shutdown,
        acceptor: Some(acceptor),
    })
}

fn accept_loop(
    listener: TcpListener,
    engine: Arc<ServeEngine>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
) {
    let conns: Mutex<Vec<thread::JoinHandle<()>>> = Mutex::new(Vec::new());
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let engine = engine.clone();
                let flag = shutdown.clone();
                let t = thread::Builder::new()
                    .name(format!("qppt-conn-{peer}"))
                    .spawn(move || {
                        // A connection error only kills this connection.
                        let _ = handle_connection(stream, &engine, &flag, config);
                    })
                    .expect("spawn connection thread");
                let mut conns = conns.lock().expect("conn list lock");
                conns.push(t);
                // Opportunistically reap finished handlers so a long-lived
                // server does not accumulate joinable thread handles.
                conns.retain(|t| !t.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(config.poll_tick),
            Err(_) => thread::sleep(config.poll_tick),
        }
    }
    // Graceful: wait for in-flight connections (they observe the flag
    // within one read-timeout tick).
    for t in conns.into_inner().expect("conn list lock").drain(..) {
        t.join().expect("connection threads do not panic");
    }
}

/// Writes an `EXPLAIN` response (`OK explain`, plan lines, `END`).
fn write_explain(writer: &mut impl Write, plan: &str) -> io::Result<()> {
    writeln!(writer, "OK explain")?;
    for l in plan.lines() {
        writeln!(writer, "{l}")?;
    }
    writeln!(writer, "END")
}

/// Outcome of reading one request line.
enum LineRead {
    /// A complete line (without the newline), lossily decoded.
    Line(String),
    /// The peer closed the connection.
    Closed,
    /// The server is draining; drop the (idle) connection.
    Draining,
    /// The line exceeded [`ServerConfig::max_line_bytes`]; its bytes were
    /// discarded up to and including the newline.
    TooLong,
}

/// Reads one `\n`-terminated request line incrementally: accumulates
/// across read-timeout ticks (a request split over slow TCP segments still
/// parses as one line), enforces the length cap without unbounded
/// buffering, and tolerates non-UTF-8 bytes (lossy decode — the parser
/// then rejects the verb with a plain `ERR`).
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
    max_line_bytes: usize,
) -> io::Result<LineRead> {
    buf.clear();
    let mut too_long = false;
    loop {
        let (advance, complete) = {
            let available = match reader.fill_buf() {
                Ok(b) => b,
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted =>
                {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(LineRead::Draining);
                    }
                    continue;
                }
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                return Ok(LineRead::Closed); // EOF
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !too_long {
                        buf.extend_from_slice(&available[..pos]);
                    }
                    (pos + 1, true)
                }
                None => {
                    if !too_long {
                        buf.extend_from_slice(available);
                    }
                    (available.len(), false)
                }
            }
        };
        reader.consume(advance);
        if buf.len() > max_line_bytes {
            // Stop buffering; keep draining until the newline arrives.
            too_long = true;
            buf.clear();
        }
        if complete {
            return Ok(if too_long {
                LineRead::TooLong
            } else {
                LineRead::Line(String::from_utf8_lossy(buf).into_owned())
            });
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    engine: &ServeEngine,
    shutdown: &AtomicBool,
    config: ServerConfig,
) -> io::Result<()> {
    stream.set_read_timeout(Some(config.poll_tick))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let line = match read_request_line(&mut reader, &mut buf, shutdown, config.max_line_bytes)?
        {
            LineRead::Line(l) => l,
            LineRead::Closed | LineRead::Draining => return Ok(()),
            LineRead::TooLong => {
                writeln!(
                    writer,
                    "ERR request line exceeds {} bytes",
                    config.max_line_bytes
                )?;
                writer.flush()?;
                continue;
            }
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match parse_request(trimmed) {
            Err(msg) => writeln!(writer, "ERR {msg}")?,
            Ok(Request::Ping) => writeln!(writer, "OK pong")?,
            Ok(Request::Quit) => {
                writeln!(writer, "OK bye")?;
                writer.flush()?;
                return Ok(());
            }
            Ok(Request::Shutdown) => {
                // Flag first, acknowledge second: once a client has read
                // the OK, `is_shutting_down()` is already observable.
                shutdown.store(true, Ordering::SeqCst);
                writeln!(writer, "OK shutting down")?;
                writer.flush()?;
                return Ok(());
            }
            Ok(Request::Info) => {
                let i = engine.info();
                writeln!(
                    writer,
                    "OK sf={} seed={} pool_threads={} admission={} cores={} queries={}",
                    i.sf,
                    i.seed,
                    i.pool_threads,
                    i.admission,
                    i.cores,
                    engine.query_names().len()
                )?;
            }
            Ok(Request::Cache(CacheCmd::Stats)) => {
                writeln!(writer, "OK {}", render_cache_stats(&engine.cache_stats()))?;
            }
            Ok(Request::Cache(CacheCmd::Clear)) => {
                engine.cache_clear();
                writeln!(writer, "OK cleared")?;
            }
            Ok(Request::Cache(CacheCmd::ClearDims)) => {
                engine.cache_clear_dims();
                writeln!(writer, "OK cleared dims")?;
            }
            Ok(Request::List) => {
                let names = engine.query_names();
                writeln!(writer, "OK {}", names.len())?;
                for n in names {
                    writeln!(writer, "{n}")?;
                }
                writeln!(writer, "END")?;
            }
            Ok(Request::Explain { query }) => match engine.explain(&query) {
                Err(e) => writeln!(writer, "ERR {e}")?,
                Ok(plan) => write_explain(&mut writer, &plan)?,
            },
            Ok(Request::ExplainSpec { spec, options }) => {
                match apply_overrides(engine.defaults(), &options) {
                    Err(msg) => writeln!(writer, "ERR {msg}")?,
                    Ok((opts, _controls)) => match engine.explain_spec(&spec, &opts) {
                        Err(e) => writeln!(writer, "ERR {e}")?,
                        Ok(plan) => write_explain(&mut writer, &plan)?,
                    },
                }
            }
            Ok(Request::Run { query, options }) => {
                match apply_overrides(engine.defaults(), &options) {
                    Err(msg) => writeln!(writer, "ERR {msg}")?,
                    Ok((opts, controls)) => {
                        match engine.run_cached(
                            &query,
                            &opts,
                            controls.priority,
                            controls.use_cache,
                        ) {
                            Err(e) => writeln!(writer, "ERR {e}")?,
                            Ok((result, stats)) => {
                                let workers =
                                    opts.parallelism.min(engine.info().pool_threads).max(1);
                                write_run_response(&mut writer, &result, &stats, workers)?;
                            }
                        }
                    }
                }
            }
            Ok(Request::Query { spec, options }) => {
                // The ad-hoc path: same overrides, same single
                // validate→plan→cache→execute pipeline as named aliases.
                match apply_overrides(engine.defaults(), &options) {
                    Err(msg) => writeln!(writer, "ERR {msg}")?,
                    Ok((opts, controls)) => {
                        match engine.run_spec(&spec, &opts, controls.priority, controls.use_cache) {
                            Err(e) => writeln!(writer, "ERR {e}")?,
                            Ok((result, stats)) => {
                                let workers =
                                    opts.parallelism.min(engine.info().pool_threads).max(1);
                                write_run_response(&mut writer, &result, &stats, workers)?;
                            }
                        }
                    }
                }
            }
        }
        writer.flush()?;
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}
