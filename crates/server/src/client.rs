//! A blocking client for the qppt-server protocol — used by the
//! integration tests, the throughput bench, and the `qppt-smoke` CI probe.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use qppt_core::PartialAggregate;
use qppt_obs::{SlowEntry, SpanRec};
use qppt_storage::QueryResult;

use crate::protocol::{
    parse_partial_status, read_partial_body, read_run_body, read_status, read_text_body,
    ClientError, ServedStats,
};

/// A served query result plus its execution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Served {
    pub result: QueryResult,
    pub stats: ServedStats,
}

/// A served *partial* aggregate (`mode=partial`) plus its statistics —
/// what the router gathers from each shard before merging.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedPartial {
    pub partial: PartialAggregate,
    pub stats: ServedStats,
}

/// One protocol connection.
#[derive(Debug)]
pub struct QpptClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl QpptClient {
    /// Connects once.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Connects with retries until `timeout` — for racing a just-spawned
    /// server (the CI smoke probe).
    pub fn connect_retry(addr: &str, timeout: Duration) -> Result<Self, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        Ok(())
    }

    /// `PING` → server liveness.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send("PING")?;
        read_status(&mut self.reader).map(|_| ())
    }

    /// `INFO` → raw `key=value` descriptor fields.
    pub fn info(&mut self) -> Result<Vec<(String, String)>, ClientError> {
        self.send("INFO")?;
        let line = read_status(&mut self.reader)?;
        Ok(line
            .split_whitespace()
            .filter_map(|kv| kv.split_once('='))
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect())
    }

    /// `LIST` → registered query names.
    pub fn list(&mut self) -> Result<Vec<String>, ClientError> {
        self.send("LIST")?;
        read_status(&mut self.reader)?;
        read_text_body(&mut self.reader)
    }

    /// `EXPLAIN <query>` → rendered plan.
    pub fn explain(&mut self, query: &str) -> Result<String, ClientError> {
        self.send(&format!("EXPLAIN {query}"))?;
        read_status(&mut self.reader)?;
        Ok(read_text_body(&mut self.reader)?.join("\n"))
    }

    /// `RUN <query> [key=value …]` → decoded result + statistics.
    /// `options` are plan-option overrides (and `priority`), e.g.
    /// `&[("parallelism", "4")]`.
    pub fn run(&mut self, query: &str, options: &[(&str, &str)]) -> Result<Served, ClientError> {
        let mut line = format!("RUN {query}");
        for (k, v) in options {
            line.push_str(&format!(" {k}={v}"));
        }
        self.send(&line)?;
        let status = read_status(&mut self.reader)?;
        let rows: usize = status
            .split_whitespace()
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad RUN status: {status}")))?;
        let (result, stats) = read_run_body(&mut self.reader, rows)?;
        Ok(Served { result, stats })
    }

    /// `QUERY <text> [key=value …]` → runs an ad-hoc query written in the
    /// `qppt-query` language, with the same per-request options as
    /// [`run`](Self::run) (`parallelism`, `priority`, `cache=off`, …).
    pub fn query(&mut self, text: &str, options: &[(&str, &str)]) -> Result<Served, ClientError> {
        let mut line = format!("QUERY {text}");
        for (k, v) in options {
            line.push_str(&format!(" {k}={v}"));
        }
        self.send(&line)?;
        let status = read_status(&mut self.reader)?;
        let rows: usize = status
            .split_whitespace()
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad QUERY status: {status}")))?;
        let (result, stats) = read_run_body(&mut self.reader, rows)?;
        Ok(Served { result, stats })
    }

    /// `RUN <query> … mode=partial` → the shard-local partial aggregate.
    /// This is the gather half of the router's scatter; plain clients can
    /// call it too (the partial of an unsharded server is its full
    /// answer, just undecoded and unordered).
    pub fn run_partial(
        &mut self,
        query: &str,
        options: &[(&str, &str)],
    ) -> Result<ServedPartial, ClientError> {
        let mut line = format!("RUN {query}");
        for (k, v) in options {
            line.push_str(&format!(" {k}={v}"));
        }
        line.push_str(" mode=partial");
        self.send(&line)?;
        let status = read_status(&mut self.reader)?;
        let rows = parse_partial_status(&status)
            .ok_or_else(|| ClientError::Protocol(format!("bad partial RUN status: {status}")))?;
        let (partial, stats) = read_partial_body(&mut self.reader, rows)?;
        Ok(ServedPartial { partial, stats })
    }

    /// `QUERY <text> … mode=partial` → the shard-local partial aggregate
    /// of an ad-hoc query.
    pub fn query_partial(
        &mut self,
        text: &str,
        options: &[(&str, &str)],
    ) -> Result<ServedPartial, ClientError> {
        let mut line = format!("QUERY {text}");
        for (k, v) in options {
            line.push_str(&format!(" {k}={v}"));
        }
        line.push_str(" mode=partial");
        self.send(&line)?;
        let status = read_status(&mut self.reader)?;
        let rows = parse_partial_status(&status)
            .ok_or_else(|| ClientError::Protocol(format!("bad partial QUERY status: {status}")))?;
        let (partial, stats) = read_partial_body(&mut self.reader, rows)?;
        Ok(ServedPartial { partial, stats })
    }

    /// `EXPLAIN <inline query text>` → rendered plan of an ad-hoc query.
    pub fn explain_query(&mut self, text: &str) -> Result<String, ClientError> {
        self.send(&format!("EXPLAIN {text}"))?;
        read_status(&mut self.reader)?;
        Ok(read_text_body(&mut self.reader)?.join("\n"))
    }

    /// `METRICS` → the Prometheus text exposition, one `String` of
    /// newline-terminated lines (the `OK metrics` / `END` framing is
    /// stripped). `ERR metrics disabled (--no-obs)` surfaces as
    /// [`ClientError::Server`].
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send("METRICS")?;
        read_status(&mut self.reader)?;
        let mut text = read_text_body(&mut self.reader)?.join("\n");
        text.push('\n');
        Ok(text)
    }

    /// `METRICS SLOW` → the slow-query ring, oldest entry first, each
    /// with its span tree reattached from the `# span` body lines.
    /// `ERR metrics disabled (--no-obs)` surfaces as
    /// [`ClientError::Server`].
    pub fn metrics_slow(&mut self) -> Result<Vec<SlowEntry>, ClientError> {
        self.send("METRICS SLOW")?;
        read_status(&mut self.reader)?;
        let mut entries: Vec<SlowEntry> = Vec::new();
        for line in read_text_body(&mut self.reader)? {
            if let Some(body) = line.strip_prefix("# span ") {
                let span = SpanRec::parse(body)
                    .map_err(|e| ClientError::Protocol(format!("bad slow span: {e}")))?;
                entries
                    .last_mut()
                    .ok_or_else(|| {
                        ClientError::Protocol(format!("span line before any slow entry: {line}"))
                    })?
                    .spans
                    .push(span);
            } else {
                entries.push(parse_slow_entry(&line)?);
            }
        }
        Ok(entries)
    }

    /// `CACHE STATS` → per-tier cache counters as raw `key=value` fields.
    pub fn cache_stats(&mut self) -> Result<Vec<(String, String)>, ClientError> {
        self.send("CACHE STATS")?;
        let line = read_status(&mut self.reader)?;
        Ok(line
            .split_whitespace()
            .filter_map(|kv| kv.split_once('='))
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect())
    }

    /// `CACHE CLEAR` → drops every cached entry server-side.
    pub fn cache_clear(&mut self) -> Result<(), ClientError> {
        self.send("CACHE CLEAR")?;
        read_status(&mut self.reader).map(|_| ())
    }

    /// `CACHE CLEAR dims` → drops only the shared dimension-σ tier.
    pub fn cache_clear_dims(&mut self) -> Result<(), ClientError> {
        self.send("CACHE CLEAR dims")?;
        read_status(&mut self.reader).map(|_| ())
    }

    /// `QUIT` → closes this connection server-side.
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.send("QUIT")?;
        read_status(&mut self.reader).map(|_| ())
    }

    /// `SHUTDOWN` → asks the server to stop (graceful).
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        self.send("SHUTDOWN")?;
        read_status(&mut self.reader).map(|_| ())
    }
}

/// Parses one `METRICS SLOW` body line (the [`SlowEntry::wire`] format)
/// back into an entry. Spans arrive on their own `# span` lines and are
/// attached by the caller, so `spans` starts empty here.
fn parse_slow_entry(line: &str) -> Result<SlowEntry, ClientError> {
    let bad = || ClientError::Protocol(format!("bad slow entry: {line}"));
    let rest = line.strip_prefix("slow verb=").ok_or_else(bad)?;
    let (verb, rest) = rest.split_once(' ').ok_or_else(bad)?;
    let rest = rest.strip_prefix("micros=").ok_or_else(bad)?;
    let (micros, rest) = rest.split_once(' ').ok_or_else(bad)?;
    let micros: u64 = micros.parse().map_err(|_| bad())?;
    let rest = rest.strip_prefix("outcome=\"").ok_or_else(bad)?;
    let (outcome, request) = rest.split_once("\" | ").ok_or_else(bad)?;
    Ok(SlowEntry {
        verb: verb.to_string(),
        line: request.to_string(),
        outcome: outcome.to_string(),
        micros,
        spans: Vec::new(),
    })
}
