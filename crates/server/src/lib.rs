//! # qppt-server — a shared-worker-pool query service
//!
//! The path from "hardware-speed single query" to "heavy traffic": this
//! crate serves **arbitrary ad-hoc star queries** — written in the
//! `qppt-query` language and submitted with the `QUERY` verb — over a
//! small line-oriented TCP protocol; the 13 SSB names are aliases for
//! pre-registered specs and take the exact same
//! validate→plan→cache→execute path (`RUN q3.1` ≡ `QUERY <q3.1's
//! text>`, byte for byte). Every query executes on one persistent
//! [`WorkerPool`](qppt_par::WorkerPool) shared across connections
//! (inter-query parallelism) while each query is itself morsel-partitioned
//! across that pool (intra-query parallelism). Results are byte-identical
//! to the sequential [`QpptEngine`](qppt_core::QpptEngine) — the
//! `serve_equivalence` integration test pins that down under ≥ 8
//! concurrent connections.
//!
//! Every `RUN` goes through the snapshot-keyed
//! [`QueryCache`](qppt_cache::QueryCache): repeated queries at unchanged
//! per-table versions serve straight from the result tier without
//! touching the pool, and MVCC writes invalidate exactly the affected
//! entries (`cache_equivalence` proves stale results are never served).
//!
//! * [`ServeEngine`] — database + pool + query cache + named-query
//!   aliases; [`ServeEngine::run_spec`] is the one pipeline every query
//!   goes through, with `qppt_core::validate` turning malformed specs
//!   into structured `ERR`s.
//! * [`serve`] / [`serve_with`] / [`ServerHandle`] — the `std::net`
//!   acceptor, thread-per-connection, graceful shutdown
//!   ([`ServerConfig`]: poll tick, request-line cap).
//! * [`protocol`] — the wire grammar (`RUN q4.1 parallelism=4`, …) and its
//!   parser/serializer, shared by server and client.
//! * [`QpptClient`] — a blocking client for tests, benches, and the
//!   `qppt-smoke` CI probe.
//!
//! Binaries: `qppt-server` (generate SSB, prepare indexes on the pool,
//! listen) and `qppt-smoke` (connect, re-derive the expected answer
//! locally, assert byte-equality — the CI smoke test).
//!
//! ## In-process example
//!
//! ```
//! use std::sync::Arc;
//! use qppt_core::PlanOptions;
//! use qppt_par::WorkerPool;
//! use qppt_server::{serve, QpptClient, ServeEngine};
//!
//! let pool = WorkerPool::new(2, 4);
//! let defaults = PlanOptions::default().with_parallelism(2).with_par_index_build(true);
//! let engine = ServeEngine::with_ssb(0.01, 42, pool.clone(), defaults).unwrap();
//! let server = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
//!
//! let mut client = QpptClient::connect(server.addr()).unwrap();
//! let served = client.run("q2.3", &[("parallelism", "2")]).unwrap();
//! assert!(!served.result.rows.is_empty());
//!
//! server.stop();     // graceful: in-flight queries finish first
//! pool.shutdown();   // the pool outlives the server by design
//! ```

mod client;
mod engine;
pub mod obs;
pub mod protocol;
mod server;

pub use client::{QpptClient, Served, ServedPartial};
pub use engine::{detected_cores, render_cache_stats, ServeEngine, ServeError, ServeInfo};
pub use obs::ServeObs;
pub use protocol::{CacheCmd, ClientError, RunControls, ServedStats, TraceMode};
pub use server::{serve, serve_lines, serve_with, LineService, Reply, ServerConfig, ServerHandle};
