//! # qppt-query — the textual query language
//!
//! A compact, line-oriented surface syntax for [`QuerySpec`]: one query is
//! one line of `key=value` clauses, designed to ride inside a single
//! `QUERY` protocol line and to be writable by hand in `nc`. The parser
//! ([`parse`]) and pretty-printer ([`print`]) round-trip `QuerySpec`
//! losslessly — `parse(&print(spec)) == spec` for every spec the language
//! can express, which includes all 13 SSB queries.
//!
//! ## Grammar
//!
//! ```text
//! query   = clause *( SP clause )                ; clauses in any order
//! clause  = "fact=" ident                        ; fact table (required)
//!         | "dim=" ident "[" dimbody "]"         ; one join, repeatable —
//!         |                                      ;   clause order = join order
//!         | "where=[" pred *( ";" pred ) "]"     ; fact residual predicates
//!         | "agg=" agg *( "," agg )              ; aggregates, repeatable
//!         | "group=" colref *( "," colref )      ; group-by columns
//!         | "order=" okey *( "," okey )          ; order-by terms
//!         | "id=" label                          ; spec id (default "adhoc")
//!
//! dimbody = "join=" ident ":" ident              ; dim join col : fact FK col
//!           *( ";" ( pred | "carry=" ident *( "," ident ) ) )
//! pred    = ident "=" value                      ; equality
//!         | ident SP "in" SP value *( "," value )
//!         | ident SP "between" SP value SP "and" SP value
//!         | ident SP "<" SP value
//! value   = int | "'" *qchar "'"                 ; '' escapes a quote
//! agg     = "sum(" expr "):" label
//! expr    = ident | ident "*" ident | ident "-" ident
//! colref  = ident "." ident                      ; dim-table-qualified …
//!         | ident                                ; … or bare, if exactly one
//!                                                ;   dim carries the column
//! okey    = ( "group" | "agg" ) ":" int [ ":desc" | ":asc" ]
//! ident   = ALPHA / "_" *( ALNUM / "_" )
//! ```
//!
//! Quoted values distinguish strings from integers (`1993` is an `Int`,
//! `'1993'` a `Str`), may contain any character (spaces, `#`, commas), and
//! escape an embedded quote by doubling it. Whitespace splits clauses only
//! outside `[...]` and quotes, so predicates read naturally:
//!
//! ```text
//! fact=lineorder dim=date[join=d_datekey:lo_orderdate;d_year between 1992 and 1997;carry=d_year]
//!   where=[lo_discount between 1 and 3;lo_quantity < 25]
//!   agg=sum(lo_extendedprice*lo_discount):revenue
//! ```
//!
//! (shown wrapped; on the wire it is one line). The parser is purely
//! syntactic — catalog checks (unknown tables/columns, type mismatches,
//! index availability) live in `qppt_core::validate`, which the server
//! runs on every query before planning.

use qppt_storage::{
    AggExpr, AggOp, ColRef, DimSpec, Expr, OrderKey, OrderTerm, Predicate, QuerySpec, Value,
};

/// The clause keys of the query language. The server's `QUERY` verb uses
/// this set to split one token stream into query clauses and per-request
/// options (`parallelism=4`, `cache=off`, …) — the two key sets are
/// disjoint by construction.
pub const CLAUSE_KEYS: &[&str] = &["fact", "dim", "where", "agg", "group", "order", "id"];

/// `true` if `key` names a query-language clause (see [`CLAUSE_KEYS`]).
pub fn is_clause_key(key: &str) -> bool {
    CLAUSE_KEYS.contains(&key)
}

/// The id given to parsed queries with no `id=` clause.
pub const DEFAULT_ID: &str = "adhoc";

/// A syntax error, with enough context to act on from an `ERR` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(String);

impl ParseError {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query syntax error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

/// Splits a query (or `QUERY` request body) into clause/option tokens:
/// whitespace separates tokens only at bracket depth 0 and outside quoted
/// values, so `dim=date[d_year between 1992 and 1997]` is one token.
pub fn tokenize(body: &str) -> PResult<Vec<String>> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut depth = 0usize;
    let mut chars = body.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                cur.push(c);
                consume_quoted(&mut cur, &mut chars)?;
            }
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| ParseError::new("unbalanced ']'"))?;
                cur.push(c);
            }
            c if c.is_whitespace() && depth == 0 => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(c),
        }
    }
    if depth != 0 {
        return Err(ParseError::new("unbalanced '[' (missing ']')"));
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    Ok(tokens)
}

/// Consumes the remainder of a quoted value (the opening `'` is already in
/// `out`), honoring the `''` escape.
fn consume_quoted(
    out: &mut String,
    chars: &mut std::iter::Peekable<std::str::Chars>,
) -> PResult<()> {
    loop {
        match chars.next() {
            None => return Err(ParseError::new("unterminated quoted value")),
            Some('\'') => {
                out.push('\'');
                if chars.peek() == Some(&'\'') {
                    out.push(chars.next().expect("peeked"));
                } else {
                    return Ok(());
                }
            }
            Some(c) => out.push(c),
        }
    }
}

/// Splits `s` on `sep`, ignoring separators inside quoted values.
fn split_quoted(s: &str, sep: char) -> PResult<Vec<String>> {
    let mut parts = vec![String::new()];
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c == sep {
            parts.push(String::new());
        } else {
            let cur = parts.last_mut().expect("non-empty");
            cur.push(c);
            if c == '\'' {
                consume_quoted(cur, &mut chars)?;
            }
        }
    }
    Ok(parts)
}

/// Splits `s` on whitespace runs outside quoted values.
fn split_ws_quoted(s: &str) -> PResult<Vec<String>> {
    let mut toks: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_whitespace() {
            if !cur.is_empty() {
                toks.push(std::mem::take(&mut cur));
            }
        } else {
            cur.push(c);
            if c == '\'' {
                consume_quoted(&mut cur, &mut chars)?;
            }
        }
    }
    if !cur.is_empty() {
        toks.push(cur);
    }
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Scalar pieces
// ---------------------------------------------------------------------------

fn ident(s: &str, what: &str) -> PResult<String> {
    let mut cs = s.chars();
    let ok = match cs.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {
            cs.all(|c| c.is_ascii_alphanumeric() || c == '_')
        }
        _ => false,
    };
    if !ok {
        return Err(ParseError::new(format!(
            "{what} must be an identifier ([A-Za-z_][A-Za-z0-9_]*), got {s:?}"
        )));
    }
    Ok(s.to_string())
}

fn parse_label(s: &str, what: &str) -> PResult<String> {
    if s.is_empty()
        || !s
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || "_.#-".contains(c))
    {
        return Err(ParseError::new(format!(
            "{what} must be non-empty [A-Za-z0-9_.#-]+, got {s:?}"
        )));
    }
    Ok(s.to_string())
}

fn parse_value(s: &str) -> PResult<Value> {
    let s = s.trim();
    if s.starts_with('\'') {
        let mut out = String::new();
        let mut cs = s.chars();
        cs.next(); // opening quote
        loop {
            match cs.next() {
                None => return Err(ParseError::new(format!("unterminated string value {s:?}"))),
                Some('\'') => match cs.next() {
                    Some('\'') => out.push('\''),
                    None => return Ok(Value::Str(out)),
                    Some(_) => {
                        return Err(ParseError::new(format!(
                            "unexpected text after closing quote in {s:?}"
                        )))
                    }
                },
                Some(c) => out.push(c),
            }
        }
    } else {
        s.parse::<i64>().map(Value::Int).map_err(|_| {
            ParseError::new(format!(
                "value {s:?} is neither an integer nor a quoted string (quote strings: 'ASIA')"
            ))
        })
    }
}

fn print_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses one query text (everything after the `QUERY` verb, or a full
/// stand-alone line). Every token must be a clause — option tokens the
/// server accepts (`parallelism=…`) are the caller's to strip first, via
/// [`tokenize`] + [`is_clause_key`] + [`parse_tokens`].
pub fn parse(text: &str) -> PResult<QuerySpec> {
    let tokens = tokenize(text)?;
    for t in &tokens {
        let key = t.split('=').next().unwrap_or(t);
        if !is_clause_key(key) {
            return Err(unknown_clause(key));
        }
    }
    parse_tokens(&tokens)
}

fn unknown_clause(key: &str) -> ParseError {
    ParseError::new(format!(
        "unknown clause {key:?} (try {})",
        CLAUSE_KEYS.join(", ")
    ))
}

/// Parses pre-tokenized clauses (see [`tokenize`]) into a [`QuerySpec`].
pub fn parse_tokens(tokens: &[String]) -> PResult<QuerySpec> {
    let mut fact: Option<String> = None;
    let mut id: Option<String> = None;
    let mut dims: Vec<DimSpec> = Vec::new();
    let mut fact_predicates: Option<Vec<Predicate>> = None;
    let mut aggregates: Vec<AggExpr> = Vec::new();
    let mut group_raw: Option<Vec<String>> = None;
    let mut order_by: Option<Vec<OrderKey>> = None;

    let once = |what: &str| ParseError::new(format!("duplicate {what}= clause"));
    for token in tokens {
        let (key, val) = token
            .split_once('=')
            .ok_or_else(|| ParseError::new(format!("expected key=value clause, got {token:?}")))?;
        match key {
            "fact" => {
                if fact.replace(ident(val, "fact table")?).is_some() {
                    return Err(once("fact"));
                }
            }
            "id" => {
                if id.replace(parse_label(val, "id")?).is_some() {
                    return Err(once("id"));
                }
            }
            "dim" => dims.push(parse_dim(val)?),
            "where" => {
                let body = bracketed(val, "where")?;
                let mut preds = Vec::new();
                for item in split_quoted(body, ';')? {
                    preds.push(parse_predicate(&item)?);
                }
                if fact_predicates.replace(preds).is_some() {
                    return Err(once("where"));
                }
            }
            "agg" => {
                for part in split_quoted(val, ',')? {
                    aggregates.push(parse_agg(part.trim())?);
                }
            }
            "group" => {
                let refs = split_quoted(val, ',')?
                    .iter()
                    .map(|r| r.trim().to_string())
                    .collect();
                if group_raw.replace(refs).is_some() {
                    return Err(once("group"));
                }
            }
            "order" => {
                let mut keys = Vec::new();
                for part in split_quoted(val, ',')? {
                    keys.push(parse_order_key(part.trim())?);
                }
                if order_by.replace(keys).is_some() {
                    return Err(once("order"));
                }
            }
            other => return Err(unknown_clause(other)),
        }
    }

    let fact = fact.ok_or_else(|| ParseError::new("missing fact= clause"))?;
    let group_by = resolve_group_refs(group_raw.unwrap_or_default(), &dims)?;
    Ok(QuerySpec {
        id: id.unwrap_or_else(|| DEFAULT_ID.to_string()),
        fact,
        dims,
        fact_predicates: fact_predicates.unwrap_or_default(),
        group_by,
        aggregates,
        order_by: order_by.unwrap_or_default(),
    })
}

/// Strips the mandatory `[...]` around a clause body.
fn bracketed<'a>(val: &'a str, clause: &str) -> PResult<&'a str> {
    val.strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| ParseError::new(format!("{clause}= body must be bracketed: {clause}=[…]")))
}

fn parse_dim(val: &str) -> PResult<DimSpec> {
    let open = val
        .find('[')
        .ok_or_else(|| ParseError::new("dim= wants dim=<table>[join=<col>:<fact col>;…]"))?;
    let table = ident(&val[..open], "dim table")?;
    let body = val[open..]
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| ParseError::new(format!("dim={table}[…] body must end with ']'")))?;

    let mut join: Option<(String, String)> = None;
    let mut predicates = Vec::new();
    let mut carried: Option<Vec<String>> = None;
    for item in split_quoted(body, ';')? {
        let item = item.trim();
        if let Some(j) = item.strip_prefix("join=") {
            let (jc, fc) = j.split_once(':').ok_or_else(|| {
                ParseError::new(format!(
                    "dim={table}: join= wants join=<dim col>:<fact col>"
                ))
            })?;
            let pair = (ident(jc, "join column")?, ident(fc, "fact FK column")?);
            if join.replace(pair).is_some() {
                return Err(ParseError::new(format!(
                    "dim={table}: duplicate join= item"
                )));
            }
        } else if let Some(c) = item.strip_prefix("carry=") {
            let cols = split_quoted(c, ',')?
                .iter()
                .map(|c| ident(c.trim(), "carried column"))
                .collect::<PResult<Vec<_>>>()?;
            if carried.replace(cols).is_some() {
                return Err(ParseError::new(format!(
                    "dim={table}: duplicate carry= item"
                )));
            }
        } else if !item.is_empty() {
            predicates.push(parse_predicate(item)?);
        }
    }
    let (join_col, fact_col) = join.ok_or_else(|| {
        ParseError::new(format!(
            "dim={table}: missing join=<dim col>:<fact col> item"
        ))
    })?;
    Ok(DimSpec {
        table,
        join_col,
        fact_col,
        predicates,
        carried: carried.unwrap_or_default(),
    })
}

fn parse_predicate(item: &str) -> PResult<Predicate> {
    let item = item.trim();
    let toks = split_ws_quoted(item)?;
    let err = || {
        ParseError::new(format!(
            "bad predicate {item:?} (want col=value, col in v1,v2, \
             col between lo and hi, or col < value)"
        ))
    };
    match toks.as_slice() {
        [one] => {
            let (col, v) = one.split_once('=').ok_or_else(err)?;
            Ok(Predicate::Eq {
                column: ident(col, "predicate column")?,
                value: parse_value(v)?,
            })
        }
        [col, op, v] if op == "=" => Ok(Predicate::Eq {
            column: ident(col, "predicate column")?,
            value: parse_value(v)?,
        }),
        [col, op, v] if op == "<" => Ok(Predicate::Lt {
            column: ident(col, "predicate column")?,
            value: parse_value(v)?,
        }),
        [col, op, rest @ ..] if op.eq_ignore_ascii_case("in") && !rest.is_empty() => {
            let list = rest.concat();
            let values = split_quoted(&list, ',')?
                .iter()
                .map(|v| parse_value(v))
                .collect::<PResult<Vec<_>>>()?;
            if values.is_empty() {
                return Err(err());
            }
            Ok(Predicate::In {
                column: ident(col, "predicate column")?,
                values,
            })
        }
        [col, op, lo, kw, hi]
            if op.eq_ignore_ascii_case("between") && kw.eq_ignore_ascii_case("and") =>
        {
            Ok(Predicate::Between {
                column: ident(col, "predicate column")?,
                lo: parse_value(lo)?,
                hi: parse_value(hi)?,
            })
        }
        _ => Err(err()),
    }
}

fn parse_agg(s: &str) -> PResult<AggExpr> {
    let err = || {
        ParseError::new(format!(
            "bad aggregate {s:?} (want sum(<col>|<a>*<b>|<a>-<b>):<label>)"
        ))
    };
    let inner = s
        .strip_prefix("sum(")
        .or_else(|| s.strip_prefix("SUM("))
        .ok_or_else(err)?;
    let (expr, label) = inner.rsplit_once("):").ok_or_else(err)?;
    let expr = if let Some((a, b)) = expr.split_once('*') {
        Expr::Mul(ident(a, "aggregate column")?, ident(b, "aggregate column")?)
    } else if let Some((a, b)) = expr.split_once('-') {
        Expr::Sub(ident(a, "aggregate column")?, ident(b, "aggregate column")?)
    } else {
        Expr::Col(ident(expr, "aggregate column")?)
    };
    Ok(AggExpr {
        op: AggOp::Sum,
        expr,
        label: parse_label(label, "aggregate label")?,
    })
}

fn parse_order_key(s: &str) -> PResult<OrderKey> {
    let err = || {
        ParseError::new(format!(
            "bad order term {s:?} (want group:<i> or agg:<i>, optionally :desc)"
        ))
    };
    let mut parts = s.split(':');
    let kind = parts.next().ok_or_else(err)?;
    let idx: usize = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
    let desc = match parts.next() {
        None => false,
        Some("desc") => true,
        Some("asc") => false,
        Some(_) => return Err(err()),
    };
    if parts.next().is_some() {
        return Err(err());
    }
    let term = match kind {
        "group" => OrderTerm::Group(idx),
        "agg" => OrderTerm::Agg(idx),
        _ => return Err(err()),
    };
    Ok(OrderKey { term, desc })
}

/// Resolves `group=` references: `table.column` is taken as written; a bare
/// `column` resolves to the unique dim that carries it (the group-by
/// contract — group columns must be carried — makes this the natural
/// shorthand).
fn resolve_group_refs(refs: Vec<String>, dims: &[DimSpec]) -> PResult<Vec<ColRef>> {
    let mut out = Vec::with_capacity(refs.len());
    for r in refs {
        if let Some((t, c)) = r.split_once('.') {
            out.push(ColRef {
                table: ident(t, "group table")?,
                column: ident(c, "group column")?,
            });
            continue;
        }
        let col = ident(&r, "group column")?;
        let carriers: Vec<&DimSpec> = dims.iter().filter(|d| d.carried.contains(&col)).collect();
        match carriers.as_slice() {
            [d] => out.push(ColRef {
                table: d.table.clone(),
                column: col,
            }),
            [] => {
                return Err(ParseError::new(format!(
                    "group column {col:?} is not carried by any dim \
                     (add it to a dim's carry=, or qualify as table.column)"
                )))
            }
            _ => {
                return Err(ParseError::new(format!(
                    "group column {col:?} is carried by several dims — qualify as table.column"
                )))
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Pretty-printer
// ---------------------------------------------------------------------------

/// Renders a [`QuerySpec`] in the query language, canonically: `fact=`,
/// the `dim=` clauses in join order, `where=`, `agg=`, `group=`
/// (table-qualified), `order=`, `id=`. [`parse`] on the output yields the
/// spec back, field for field.
pub fn print(spec: &QuerySpec) -> String {
    use std::fmt::Write as _;
    let mut s = format!("fact={}", spec.fact);
    for d in &spec.dims {
        let _ = write!(s, " dim={}[join={}:{}", d.table, d.join_col, d.fact_col);
        for p in &d.predicates {
            let _ = write!(s, ";{}", print_predicate(p));
        }
        if !d.carried.is_empty() {
            let _ = write!(s, ";carry={}", d.carried.join(","));
        }
        s.push(']');
    }
    if !spec.fact_predicates.is_empty() {
        let preds: Vec<String> = spec.fact_predicates.iter().map(print_predicate).collect();
        let _ = write!(s, " where=[{}]", preds.join(";"));
    }
    if !spec.aggregates.is_empty() {
        let aggs: Vec<String> = spec
            .aggregates
            .iter()
            .map(|a| {
                let AggOp::Sum = a.op;
                format!("sum({}):{}", print_expr(&a.expr), a.label)
            })
            .collect();
        let _ = write!(s, " agg={}", aggs.join(","));
    }
    if !spec.group_by.is_empty() {
        let refs: Vec<String> = spec
            .group_by
            .iter()
            .map(|g| format!("{}.{}", g.table, g.column))
            .collect();
        let _ = write!(s, " group={}", refs.join(","));
    }
    if !spec.order_by.is_empty() {
        let keys: Vec<String> = spec
            .order_by
            .iter()
            .map(|k| {
                let (kind, i) = match k.term {
                    OrderTerm::Group(i) => ("group", i),
                    OrderTerm::Agg(i) => ("agg", i),
                };
                format!("{kind}:{i}{}", if k.desc { ":desc" } else { "" })
            })
            .collect();
        let _ = write!(s, " order={}", keys.join(","));
    }
    if !spec.id.is_empty() {
        let _ = write!(s, " id={}", spec.id);
    }
    s
}

fn print_predicate(p: &Predicate) -> String {
    match p {
        Predicate::Eq { column, value } => format!("{column}={}", print_value(value)),
        Predicate::In { column, values } => {
            let vs: Vec<String> = values.iter().map(print_value).collect();
            format!("{column} in {}", vs.join(","))
        }
        Predicate::Between { column, lo, hi } => {
            format!(
                "{column} between {} and {}",
                print_value(lo),
                print_value(hi)
            )
        }
        Predicate::Lt { column, value } => format!("{column} < {}", print_value(value)),
    }
}

fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Col(a) => a.clone(),
        Expr::Mul(a, b) => format!("{a}*{b}"),
        Expr::Sub(a, b) => format!("{a}-{b}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qppt_ssb::queries;

    #[test]
    fn issue_style_example_parses() {
        let q = parse(
            "fact=lineorder \
             dim=date[join=d_datekey:lo_orderdate;d_year between 1992 and 1997;carry=d_year] \
             agg=sum(lo_extendedprice*lo_discount):revenue group=d_year order=group:0",
        )
        .unwrap();
        assert_eq!(q.id, DEFAULT_ID);
        assert_eq!(q.fact, "lineorder");
        assert_eq!(q.dims.len(), 1);
        assert_eq!(q.dims[0].join_col, "d_datekey");
        assert_eq!(
            q.dims[0].predicates,
            vec![Predicate::between("d_year", 1992i64, 1997i64)]
        );
        // Bare group column resolved through the carrying dim.
        assert_eq!(q.group_by, vec![ColRef::new("date", "d_year")]);
        assert_eq!(q.order_by, vec![OrderKey::group(0)]);
    }

    #[test]
    fn all_13_ssb_queries_roundtrip_losslessly() {
        for spec in queries::all_queries() {
            let text = print(&spec);
            let parsed = parse(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", spec.id));
            assert_eq!(parsed, spec, "{} round-trip diverged:\n{text}", spec.id);
            // And printing the parse is a fixpoint.
            assert_eq!(print(&parsed), text, "{}", spec.id);
        }
    }

    #[test]
    fn values_distinguish_int_from_str_and_escape_quotes() {
        let q = parse(
            "fact=f dim=d[join=k:fk;a='1993';b=1993;c in 'x''y','UNITED KI1',7] agg=sum(m):s",
        )
        .unwrap();
        assert_eq!(
            q.dims[0].predicates,
            vec![
                Predicate::eq("a", "1993"),
                Predicate::eq("b", 1993i64),
                Predicate::is_in(
                    "c",
                    vec![Value::str("x'y"), Value::str("UNITED KI1"), Value::Int(7)]
                ),
            ]
        );
        // Round-trip keeps the types and the embedded quote.
        let text = print(&q);
        assert_eq!(parse(&text).unwrap(), q, "{text}");
    }

    #[test]
    fn where_clause_and_spaced_predicates() {
        let q = parse(
            "fact=f dim=d[join=k:fk] where=[q < 25;disc between 1 and 3;r = 'EUROPE'] \
             agg=sum(a*b):rev",
        )
        .unwrap();
        assert_eq!(
            q.fact_predicates,
            vec![
                Predicate::lt("q", 25i64),
                Predicate::between("disc", 1i64, 3i64),
                Predicate::eq("r", "EUROPE"),
            ]
        );
        assert_eq!(
            q.aggregates,
            vec![AggExpr::sum(Expr::Mul("a".into(), "b".into()), "rev")]
        );
    }

    #[test]
    fn syntax_errors_are_reported() {
        let cases = [
            ("", "missing fact"),
            ("fact=f fact=g", "duplicate fact"),
            ("fact=f nonsense=1", "unknown clause"),
            ("fact=f frob", "unknown clause"),
            ("fact=f dim=d[", "unbalanced"),
            ("fact=f dim=d]", "unbalanced"),
            ("fact=f dim=d[x=1]", "join="),
            ("fact=f dim=d[join=k:fk;a ~ 1]", "bad predicate"),
            ("fact=f dim=d[join=k:fk;a='x]", "unterminated"),
            ("fact=f dim=d[join=k:fk;a=ASIA]", "quote strings"),
            ("fact=f dim=d[join=k]", "join="),
            ("fact=f agg=avg(a):x", "bad aggregate"),
            ("fact=f agg=sum(a)", "bad aggregate"),
            ("fact=f order=group:x", "bad order"),
            ("fact=f order=rows:0", "bad order"),
            ("fact=f group=g", "not carried"),
            (
                "fact=f dim=d[join=k:fk;carry=g] dim=e[join=k2:fk2;carry=g] group=g",
                "several dims",
            ),
            ("fact=f id=a b", "unknown clause"),
            ("fact=9", "identifier"),
        ];
        for (text, want) in cases {
            match parse(text) {
                Err(e) => assert!(
                    e.to_string().contains(want),
                    "{text:?}: error {e:?} does not mention {want:?}"
                ),
                Ok(q) => panic!("{text:?} parsed as {q:?}"),
            }
        }
    }

    #[test]
    fn tokenize_respects_brackets_and_quotes() {
        let toks = tokenize("a=1 dim=d[x in 'a b','c'] cache=off").unwrap();
        assert_eq!(toks, vec!["a=1", "dim=d[x in 'a b','c']", "cache=off"]);
        assert!(tokenize("dim=d[oops").is_err());
        assert!(tokenize("x=']'").is_ok(), "brackets inside quotes are text");
        assert!(tokenize("x='unterminated").is_err());
    }

    #[test]
    fn clause_keys_are_disjoint_from_option_keys() {
        // The server's QUERY verb partitions tokens by key: these are the
        // per-request option keys (protocol::apply_overrides) and must
        // never collide with a clause.
        for opt in [
            "parallelism",
            "morsel_bits",
            "join_buffer",
            "select_join",
            "par_selections",
            "par_scans",
            "par_joins",
            "priority",
            "cache",
        ] {
            assert!(!is_clause_key(opt), "{opt} collides with a clause key");
        }
    }
}
