//! Gregorian calendar helpers for the SSB `date` dimension (1992–1998).

/// Month names as the SSB `d_month` column spells them.
pub const MONTH_NAMES: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

/// Three-letter abbreviations used by `d_yearmonth` (e.g. `Dec1997`).
pub const MONTH_ABBREV: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Day-of-week names for `d_dayofweek` (SSB week starts on Sunday).
pub const DAY_NAMES: [&str; 7] = [
    "Sunday",
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
];

/// `true` for Gregorian leap years.
pub fn is_leap_year(year: u32) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

/// Days in a month (1-based month).
pub fn days_in_month(year: u32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("invalid month {month}"),
    }
}

/// Day of week (0 = Sunday) via Sakamoto's method.
pub fn day_of_week(year: u32, month: u32, day: u32) -> u32 {
    const T: [u32; 12] = [0, 3, 2, 5, 0, 3, 5, 1, 4, 6, 2, 4];
    let y = if month < 3 { year - 1 } else { year };
    (y + y / 4 - y / 100 + y / 400 + T[(month - 1) as usize] + day) % 7
}

/// One calendar day with every derived SSB attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalendarDay {
    /// `yyyymmdd` integer, the `d_datekey`.
    pub datekey: u32,
    pub year: u32,
    pub month: u32,
    pub day: u32,
    /// 1-based day number within the year.
    pub day_of_year: u32,
    /// 0 = Sunday.
    pub weekday: u32,
    /// 1-based week number within the year (SSB convention: ⌈doy/7⌉).
    pub week_of_year: u32,
}

impl CalendarDay {
    /// `December 7, 1997`-style long date (the `d_date` column).
    pub fn long_date(&self) -> String {
        format!(
            "{} {}, {}",
            MONTH_NAMES[(self.month - 1) as usize],
            self.day,
            self.year
        )
    }

    /// `Dec1997`-style year-month (the `d_yearmonth` column).
    pub fn yearmonth(&self) -> String {
        format!("{}{}", MONTH_ABBREV[(self.month - 1) as usize], self.year)
    }

    /// `199712`-style numeric year-month (the `d_yearmonthnum` column).
    pub fn yearmonthnum(&self) -> u32 {
        self.year * 100 + self.month
    }

    /// SSB selling seasons, approximated by month blocks.
    pub fn selling_season(&self) -> &'static str {
        match self.month {
            12 | 1 => "Christmas",
            2..=4 => "Spring",
            5..=7 => "Summer",
            8..=10 => "Fall",
            _ => "Winter",
        }
    }
}

/// Generates every day from Jan 1 `from_year` through Dec 31 `to_year`.
pub fn calendar(from_year: u32, to_year: u32) -> Vec<CalendarDay> {
    let mut days = Vec::new();
    for year in from_year..=to_year {
        let mut doy = 0;
        for month in 1..=12 {
            for day in 1..=days_in_month(year, month) {
                doy += 1;
                days.push(CalendarDay {
                    datekey: year * 10_000 + month * 100 + day,
                    year,
                    month,
                    day,
                    day_of_year: doy,
                    weekday: day_of_week(year, month, day),
                    week_of_year: (doy - 1) / 7 + 1,
                });
            }
        }
    }
    days
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leap_years() {
        assert!(is_leap_year(1992));
        assert!(is_leap_year(1996));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1993));
        assert!(!is_leap_year(1900));
    }

    #[test]
    fn ssb_calendar_size() {
        let days = calendar(1992, 1998);
        // 1992 and 1996 are leap years: 5*365 + 2*366 = 2557.
        assert_eq!(days.len(), 2557);
        assert_eq!(days.first().unwrap().datekey, 19920101);
        assert_eq!(days.last().unwrap().datekey, 19981231);
    }

    #[test]
    fn known_weekdays() {
        // Jan 1, 1992 was a Wednesday; Dec 31, 1998 was a Thursday.
        assert_eq!(day_of_week(1992, 1, 1), 3);
        assert_eq!(day_of_week(1998, 12, 31), 4);
        // Leap-day handling: Feb 29, 1996 was a Thursday.
        assert_eq!(day_of_week(1996, 2, 29), 4);
    }

    #[test]
    fn derived_attributes() {
        let days = calendar(1997, 1997);
        let dec7 = days.iter().find(|d| d.datekey == 19971207).unwrap();
        assert_eq!(dec7.long_date(), "December 7, 1997");
        assert_eq!(dec7.yearmonth(), "Dec1997");
        assert_eq!(dec7.yearmonthnum(), 199712);
        assert_eq!(dec7.weekday, 0); // a Sunday
        assert_eq!(dec7.selling_season(), "Christmas");
        let feb1 = days.iter().find(|d| d.datekey == 19970201).unwrap();
        assert_eq!(feb1.day_of_year, 32);
        assert_eq!(feb1.week_of_year, 5);
    }

    #[test]
    fn datekeys_strictly_increasing() {
        let days = calendar(1992, 1998);
        assert!(days.windows(2).all(|w| w[0].datekey < w[1].datekey));
    }
}
