//! The 13 Star Schema Benchmark queries as [`QuerySpec`]s.
//!
//! The dimension order inside each spec is the join order the paper's
//! example plans use: most selective dimensions first, `date` last (its join
//! key is what the final join-group consumes). Group-by column order follows
//! the SQL text; order-by terms reference group/aggregate positions.

use qppt_storage::{AggExpr, ColRef, DimSpec, Expr, OrderKey, Predicate, QuerySpec, Value};

fn dim(
    table: &str,
    join_col: &str,
    fact_col: &str,
    predicates: Vec<Predicate>,
    carried: &[&str],
) -> DimSpec {
    DimSpec {
        table: table.to_string(),
        join_col: join_col.to_string(),
        fact_col: fact_col.to_string(),
        predicates,
        carried: carried.iter().map(|s| s.to_string()).collect(),
    }
}

fn group(cols: &[(&str, &str)]) -> Vec<ColRef> {
    cols.iter().map(|(t, c)| ColRef::new(t, c)).collect()
}

/// `sum(lo_extendedprice * lo_discount) as revenue` — the Q1.x aggregate.
fn q1_agg() -> Vec<AggExpr> {
    vec![AggExpr::sum(
        Expr::Mul("lo_extendedprice".into(), "lo_discount".into()),
        "revenue",
    )]
}

/// SSB Q1.1: one join, year selection, discount/quantity residuals.
pub fn q1_1() -> QuerySpec {
    QuerySpec {
        id: "Q1.1".into(),
        fact: "lineorder".into(),
        dims: vec![dim(
            "date",
            "d_datekey",
            "lo_orderdate",
            vec![Predicate::eq("d_year", 1993i64)],
            &[],
        )],
        fact_predicates: vec![
            Predicate::between("lo_discount", 1i64, 3i64),
            Predicate::lt("lo_quantity", 25i64),
        ],
        group_by: vec![],
        aggregates: q1_agg(),
        order_by: vec![],
    }
}

/// SSB Q1.2: month selection, tighter residuals.
pub fn q1_2() -> QuerySpec {
    QuerySpec {
        id: "Q1.2".into(),
        fact: "lineorder".into(),
        dims: vec![dim(
            "date",
            "d_datekey",
            "lo_orderdate",
            vec![Predicate::eq("d_yearmonthnum", 199401i64)],
            &[],
        )],
        fact_predicates: vec![
            Predicate::between("lo_discount", 4i64, 6i64),
            Predicate::between("lo_quantity", 26i64, 35i64),
        ],
        group_by: vec![],
        aggregates: q1_agg(),
        order_by: vec![],
    }
}

/// SSB Q1.3: week-of-year selection.
pub fn q1_3() -> QuerySpec {
    QuerySpec {
        id: "Q1.3".into(),
        fact: "lineorder".into(),
        dims: vec![dim(
            "date",
            "d_datekey",
            "lo_orderdate",
            vec![
                Predicate::eq("d_weeknuminyear", 6i64),
                Predicate::eq("d_year", 1994i64),
            ],
            &[],
        )],
        fact_predicates: vec![
            Predicate::between("lo_discount", 5i64, 7i64),
            Predicate::between("lo_quantity", 26i64, 35i64),
        ],
        group_by: vec![],
        aggregates: q1_agg(),
        order_by: vec![],
    }
}

fn q2(id: &str, part_pred: Predicate, supplier_region: &str) -> QuerySpec {
    QuerySpec {
        id: id.into(),
        fact: "lineorder".into(),
        dims: vec![
            dim(
                "part",
                "p_partkey",
                "lo_partkey",
                vec![part_pred],
                &["p_brand1"],
            ),
            dim(
                "supplier",
                "s_suppkey",
                "lo_suppkey",
                vec![Predicate::eq("s_region", supplier_region)],
                &[],
            ),
            dim("date", "d_datekey", "lo_orderdate", vec![], &["d_year"]),
        ],
        fact_predicates: vec![],
        group_by: group(&[("date", "d_year"), ("part", "p_brand1")]),
        aggregates: vec![AggExpr::sum(Expr::Col("lo_revenue".into()), "revenue")],
        order_by: vec![OrderKey::group(0), OrderKey::group(1)],
    }
}

/// SSB Q2.1: category selection on part, region on supplier.
pub fn q2_1() -> QuerySpec {
    q2("Q2.1", Predicate::eq("p_category", "MFGR#12"), "AMERICA")
}

/// SSB Q2.2: brand range on part.
pub fn q2_2() -> QuerySpec {
    q2(
        "Q2.2",
        Predicate::between("p_brand1", "MFGR#2221", "MFGR#2228"),
        "ASIA",
    )
}

/// SSB Q2.3: single brand (the paper's running example, Fig. 5/6).
pub fn q2_3() -> QuerySpec {
    q2("Q2.3", Predicate::eq("p_brand1", "MFGR#2221"), "EUROPE")
}

fn q3(
    id: &str,
    cust_pred: Vec<Predicate>,
    supp_pred: Vec<Predicate>,
    date_pred: Vec<Predicate>,
    cust_col: &str,
    supp_col: &str,
) -> QuerySpec {
    QuerySpec {
        id: id.into(),
        fact: "lineorder".into(),
        dims: vec![
            dim(
                "customer",
                "c_custkey",
                "lo_custkey",
                cust_pred,
                &[cust_col],
            ),
            dim(
                "supplier",
                "s_suppkey",
                "lo_suppkey",
                supp_pred,
                &[supp_col],
            ),
            dim("date", "d_datekey", "lo_orderdate", date_pred, &["d_year"]),
        ],
        fact_predicates: vec![],
        group_by: vec![
            ColRef::new("customer", cust_col),
            ColRef::new("supplier", supp_col),
            ColRef::new("date", "d_year"),
        ],
        aggregates: vec![AggExpr::sum(Expr::Col("lo_revenue".into()), "revenue")],
        // order by d_year asc, revenue desc
        order_by: vec![OrderKey::group(2), OrderKey::agg_desc(0)],
    }
}

/// SSB Q3.1: region-level, six years.
pub fn q3_1() -> QuerySpec {
    q3(
        "Q3.1",
        vec![Predicate::eq("c_region", "ASIA")],
        vec![Predicate::eq("s_region", "ASIA")],
        vec![Predicate::between("d_year", 1992i64, 1997i64)],
        "c_nation",
        "s_nation",
    )
}

/// SSB Q3.2: nation-level.
pub fn q3_2() -> QuerySpec {
    q3(
        "Q3.2",
        vec![Predicate::eq("c_nation", "UNITED STATES")],
        vec![Predicate::eq("s_nation", "UNITED STATES")],
        vec![Predicate::between("d_year", 1992i64, 1997i64)],
        "c_city",
        "s_city",
    )
}

/// SSB Q3.3: two cities on each side.
pub fn q3_3() -> QuerySpec {
    let cities = || vec![Value::str("UNITED KI1"), Value::str("UNITED KI5")];
    q3(
        "Q3.3",
        vec![Predicate::is_in("c_city", cities())],
        vec![Predicate::is_in("s_city", cities())],
        vec![Predicate::between("d_year", 1992i64, 1997i64)],
        "c_city",
        "s_city",
    )
}

/// SSB Q3.4: one month.
pub fn q3_4() -> QuerySpec {
    let cities = || vec![Value::str("UNITED KI1"), Value::str("UNITED KI5")];
    q3(
        "Q3.4",
        vec![Predicate::is_in("c_city", cities())],
        vec![Predicate::is_in("s_city", cities())],
        vec![Predicate::eq("d_yearmonth", "Dec1997")],
        "c_city",
        "s_city",
    )
}

fn mfgr_12() -> Predicate {
    Predicate::is_in("p_mfgr", vec![Value::str("MFGR#1"), Value::str("MFGR#2")])
}

fn profit_agg() -> Vec<AggExpr> {
    vec![AggExpr::sum(
        Expr::Sub("lo_revenue".into(), "lo_supplycost".into()),
        "profit",
    )]
}

/// SSB Q4.1: all five tables, profit by year and customer nation
/// (the paper's Fig. 9 experiment).
pub fn q4_1() -> QuerySpec {
    QuerySpec {
        id: "Q4.1".into(),
        fact: "lineorder".into(),
        dims: vec![
            dim(
                "customer",
                "c_custkey",
                "lo_custkey",
                vec![Predicate::eq("c_region", "AMERICA")],
                &["c_nation"],
            ),
            dim(
                "supplier",
                "s_suppkey",
                "lo_suppkey",
                vec![Predicate::eq("s_region", "AMERICA")],
                &[],
            ),
            dim("part", "p_partkey", "lo_partkey", vec![mfgr_12()], &[]),
            dim("date", "d_datekey", "lo_orderdate", vec![], &["d_year"]),
        ],
        fact_predicates: vec![],
        group_by: group(&[("date", "d_year"), ("customer", "c_nation")]),
        aggregates: profit_agg(),
        order_by: vec![OrderKey::group(0), OrderKey::group(1)],
    }
}

/// SSB Q4.2: drill down to supplier nation and part category, 1997–1998.
pub fn q4_2() -> QuerySpec {
    QuerySpec {
        id: "Q4.2".into(),
        fact: "lineorder".into(),
        dims: vec![
            dim(
                "customer",
                "c_custkey",
                "lo_custkey",
                vec![Predicate::eq("c_region", "AMERICA")],
                &[],
            ),
            dim(
                "supplier",
                "s_suppkey",
                "lo_suppkey",
                vec![Predicate::eq("s_region", "AMERICA")],
                &["s_nation"],
            ),
            dim(
                "part",
                "p_partkey",
                "lo_partkey",
                vec![mfgr_12()],
                &["p_category"],
            ),
            dim(
                "date",
                "d_datekey",
                "lo_orderdate",
                vec![Predicate::is_in(
                    "d_year",
                    vec![Value::Int(1997), Value::Int(1998)],
                )],
                &["d_year"],
            ),
        ],
        fact_predicates: vec![],
        group_by: group(&[
            ("date", "d_year"),
            ("supplier", "s_nation"),
            ("part", "p_category"),
        ]),
        aggregates: profit_agg(),
        order_by: vec![OrderKey::group(0), OrderKey::group(1), OrderKey::group(2)],
    }
}

/// SSB Q4.3: drill down to supplier city and brand, US suppliers.
pub fn q4_3() -> QuerySpec {
    QuerySpec {
        id: "Q4.3".into(),
        fact: "lineorder".into(),
        dims: vec![
            dim(
                "supplier",
                "s_suppkey",
                "lo_suppkey",
                vec![Predicate::eq("s_nation", "UNITED STATES")],
                &["s_city"],
            ),
            dim(
                "part",
                "p_partkey",
                "lo_partkey",
                vec![Predicate::eq("p_category", "MFGR#14")],
                &["p_brand1"],
            ),
            dim(
                "customer",
                "c_custkey",
                "lo_custkey",
                vec![Predicate::eq("c_region", "AMERICA")],
                &[],
            ),
            dim(
                "date",
                "d_datekey",
                "lo_orderdate",
                vec![Predicate::is_in(
                    "d_year",
                    vec![Value::Int(1997), Value::Int(1998)],
                )],
                &["d_year"],
            ),
        ],
        fact_predicates: vec![],
        group_by: group(&[
            ("date", "d_year"),
            ("supplier", "s_city"),
            ("part", "p_brand1"),
        ]),
        aggregates: profit_agg(),
        order_by: vec![OrderKey::group(0), OrderKey::group(1), OrderKey::group(2)],
    }
}

/// All 13 SSB queries in benchmark order.
pub fn all_queries() -> Vec<QuerySpec> {
    vec![
        q1_1(),
        q1_2(),
        q1_3(),
        q2_1(),
        q2_2(),
        q2_3(),
        q3_1(),
        q3_2(),
        q3_3(),
        q3_4(),
        q4_1(),
        q4_2(),
        q4_3(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_queries_with_unique_ids() {
        let qs = all_queries();
        assert_eq!(qs.len(), 13);
        let mut ids: Vec<&str> = qs.iter().map(|q| q.id.as_str()).collect();
        ids.dedup();
        assert_eq!(ids.len(), 13);
    }

    #[test]
    fn q1_queries_have_no_grouping() {
        for q in [q1_1(), q1_2(), q1_3()] {
            assert!(q.group_by.is_empty());
            assert_eq!(q.dims.len(), 1);
            assert!(!q.fact_predicates.is_empty());
        }
    }

    #[test]
    fn q4_queries_join_all_five_tables() {
        for q in [q4_1(), q4_2(), q4_3()] {
            assert_eq!(q.dims.len(), 4, "{}", q.id);
        }
    }

    #[test]
    fn group_by_columns_are_carried() {
        for q in all_queries() {
            for g in &q.group_by {
                let d = q
                    .dims
                    .iter()
                    .find(|d| d.table == g.table)
                    .unwrap_or_else(|| panic!("{}: group col {} has no dim", q.id, g));
                assert!(
                    d.carried.contains(&g.column),
                    "{}: {} not carried by {}",
                    q.id,
                    g.column,
                    d.table
                );
            }
        }
    }

    #[test]
    fn order_terms_reference_valid_positions() {
        for q in all_queries() {
            for o in &q.order_by {
                match o.term {
                    qppt_storage::OrderTerm::Group(i) => assert!(i < q.group_by.len(), "{}", q.id),
                    qppt_storage::OrderTerm::Agg(i) => assert!(i < q.aggregates.len(), "{}", q.id),
                }
            }
        }
    }
}
