//! Reference executor: a deliberately simple hash-join implementation used
//! as the correctness oracle for all engines.
//!
//! It shares nothing with the QPPT engine or the columnar engines beyond the
//! [`QuerySpec`] itself and the predicate compiler, so agreement between the
//! three engines and this executor is strong evidence of correctness.

use std::collections::HashMap;

use qppt_storage::{
    compile_predicate, CompiledPred, Database, QueryResult, QuerySpec, ResultRow, Snapshot,
    StorageError,
};

/// Runs `spec` against `db` at `snap` with textbook hash joins.
pub fn run_reference(
    db: &Database,
    spec: &QuerySpec,
    snap: Snapshot,
) -> Result<QueryResult, StorageError> {
    // Phase 1: per-dimension hash tables  join-key code → carried codes.
    let mut dim_maps: Vec<HashMap<u64, Vec<u64>>> = Vec::with_capacity(spec.dims.len());
    for d in &spec.dims {
        let mvt = db.table(&d.table)?;
        let t = mvt.table();
        let join_col = t.schema().col(&d.join_col)?;
        let carried: Vec<usize> = d
            .carried
            .iter()
            .map(|c| t.schema().col(c))
            .collect::<Result<_, _>>()?;
        let preds: Vec<CompiledPred> = d
            .predicates
            .iter()
            .map(|p| compile_predicate(t, p))
            .collect::<Result<_, _>>()?;
        let mut map = HashMap::new();
        for rid in mvt.scan_visible(snap) {
            if preds.iter().all(|p| p.matches(|c| t.get(rid, c))) {
                let key = t.get(rid, join_col);
                let vals: Vec<u64> = carried.iter().map(|&c| t.get(rid, c)).collect();
                map.insert(key, vals);
            }
        }
        dim_maps.push(map);
    }

    // Phase 2: scan the fact table, probe dimensions, aggregate.
    let fact_mvt = db.table(&spec.fact)?;
    let fact = fact_mvt.table();
    let fact_cols: Vec<usize> = spec
        .dims
        .iter()
        .map(|d| fact.schema().col(&d.fact_col))
        .collect::<Result<_, _>>()?;
    let fact_preds: Vec<CompiledPred> = spec
        .fact_predicates
        .iter()
        .map(|p| compile_predicate(fact, p))
        .collect::<Result<_, _>>()?;

    // Group-by columns resolve to positions in some dim's carried list.
    struct GroupSource {
        dim: usize,
        carried_pos: usize,
    }
    let mut group_sources = Vec::with_capacity(spec.group_by.len());
    for g in &spec.group_by {
        let (di, d) = spec
            .dims
            .iter()
            .enumerate()
            .find(|(_, d)| d.table == g.table)
            .ok_or_else(|| StorageError::UnknownTable(g.table.clone()))?;
        let pos = d
            .carried
            .iter()
            .position(|c| *c == g.column)
            .ok_or_else(|| StorageError::UnknownColumn(g.column.clone()))?;
        group_sources.push(GroupSource {
            dim: di,
            carried_pos: pos,
        });
    }

    let mut groups: HashMap<Vec<u64>, Vec<i64>> = HashMap::new();
    let mut carried_buf: Vec<&Vec<u64>> = Vec::with_capacity(spec.dims.len());
    for rid in fact_mvt.scan_visible(snap) {
        if !fact_preds.iter().all(|p| p.matches(|c| fact.get(rid, c))) {
            continue;
        }
        carried_buf.clear();
        let mut pass = true;
        for (di, map) in dim_maps.iter().enumerate() {
            match map.get(&fact.get(rid, fact_cols[di])) {
                Some(vals) => carried_buf.push(vals),
                None => {
                    pass = false;
                    break;
                }
            }
        }
        if !pass {
            continue;
        }
        let key: Vec<u64> = group_sources
            .iter()
            .map(|gs| carried_buf[gs.dim][gs.carried_pos])
            .collect();
        let accs = groups
            .entry(key)
            .or_insert_with(|| vec![0i64; spec.aggregates.len()]);
        for (ai, agg) in spec.aggregates.iter().enumerate() {
            let v = agg
                .expr
                .eval(|col| fact.get(rid, fact.schema().col(col).expect("agg col exists")));
            accs[ai] += v;
        }
    }

    // Phase 3: decode group keys and order the result.
    let mut rows = Vec::with_capacity(groups.len());
    for (key, aggs) in groups {
        let key_values = key
            .iter()
            .zip(spec.group_by.iter())
            .map(|(&code, g)| {
                let t = db.table(&g.table).expect("checked above").table();
                let col = t.schema().col(&g.column).expect("checked above");
                decode_code(t, col, code)
            })
            .collect();
        rows.push(ResultRow {
            key_values,
            agg_values: aggs,
        });
    }
    let mut result = QueryResult {
        group_cols: spec.group_by.iter().map(|g| g.column.clone()).collect(),
        agg_cols: spec.aggregates.iter().map(|a| a.label.clone()).collect(),
        rows,
    };
    result.apply_order(&spec.order_by);
    Ok(result)
}

/// Decodes an encoded field back to a [`qppt_storage::Value`].
pub fn decode_code(t: &qppt_storage::Table, col: usize, code: u64) -> qppt_storage::Value {
    match t.schema().column(col).ty {
        qppt_storage::ColumnType::Int => qppt_storage::Value::Int(code as i64),
        qppt_storage::ColumnType::Str => qppt_storage::Value::Str(
            t.dict(col)
                .expect("str column has dictionary")
                .decode(code as u32)
                .to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SsbDb;
    use crate::queries;

    #[test]
    fn q1_1_matches_hand_rolled_scan() {
        let ssb = SsbDb::generate(0.01, 42);
        let snap = ssb.db.snapshot();
        let got = run_reference(&ssb.db, &queries::q1_1(), snap).unwrap();

        // Hand-rolled: decode every row, evaluate the SQL directly.
        let date = ssb.db.table("date").unwrap().table();
        let ds = date.schema();
        let mut year_1993_keys = std::collections::HashSet::new();
        for rid in 0..date.row_count() as u32 {
            if date.get(rid, ds.col("d_year").unwrap()) == 1993 {
                year_1993_keys.insert(date.get(rid, ds.col("d_datekey").unwrap()));
            }
        }
        let lo = ssb.db.table("lineorder").unwrap().table();
        let s = lo.schema();
        let (od, disc, qty, ep) = (
            s.col("lo_orderdate").unwrap(),
            s.col("lo_discount").unwrap(),
            s.col("lo_quantity").unwrap(),
            s.col("lo_extendedprice").unwrap(),
        );
        let mut expected = 0i64;
        let mut matched = false;
        for rid in 0..lo.row_count() as u32 {
            let d = lo.get(rid, disc);
            let q = lo.get(rid, qty);
            if (1..=3).contains(&d) && q < 25 && year_1993_keys.contains(&lo.get(rid, od)) {
                expected += (lo.get(rid, ep) * d) as i64;
                matched = true;
            }
        }
        assert!(matched, "workload should select something at SF 0.01");
        assert_eq!(got.rows.len(), 1);
        assert!(got.rows[0].key_values.is_empty());
        assert_eq!(got.rows[0].agg_values, vec![expected]);
    }

    #[test]
    fn grouped_query_produces_ordered_groups() {
        let ssb = SsbDb::generate(0.01, 42);
        let snap = ssb.db.snapshot();
        let r = run_reference(&ssb.db, &queries::q2_1(), snap).unwrap();
        assert!(!r.rows.is_empty(), "Q2.1 selects something at SF 0.01");
        // Ordered by (d_year, p_brand1).
        for w in r.rows.windows(2) {
            assert!(w[0].key_values <= w[1].key_values);
        }
        assert_eq!(r.group_cols, vec!["d_year", "p_brand1"]);
        // Aggregates are positive sums of revenue.
        assert!(r.rows.iter().all(|row| row.agg_values[0] > 0));
    }

    #[test]
    fn q3_order_is_year_then_revenue_desc() {
        let ssb = SsbDb::generate(0.02, 11);
        let snap = ssb.db.snapshot();
        let r = run_reference(&ssb.db, &queries::q3_1(), snap).unwrap();
        assert!(!r.rows.is_empty());
        for w in r.rows.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let ya = a.key_values[2].as_int();
            let yb = b.key_values[2].as_int();
            assert!(ya < yb || (ya == yb && a.agg_values[0] >= b.agg_values[0]));
        }
    }

    #[test]
    fn snapshot_isolation_respected() {
        let mut ssb = SsbDb::generate(0.01, 5);
        let before = ssb.db.snapshot();
        let r_before = run_reference(&ssb.db, &queries::q1_1(), before).unwrap();
        // Insert a fact row that definitely matches Q1.1 (orderdate in 1993,
        // discount 2, quantity 10).
        let lo = ssb.db.table("lineorder").unwrap().table();
        let ship = lo.value(0, lo.schema().col("lo_shipmode").unwrap());
        ssb.db
            .insert_row(
                "lineorder",
                &[
                    qppt_storage::Value::Int(999_999),
                    qppt_storage::Value::Int(1),
                    qppt_storage::Value::Int(1),
                    qppt_storage::Value::Int(1),
                    qppt_storage::Value::Int(1),
                    qppt_storage::Value::Int(19930615),
                    qppt_storage::Value::Int(10),   // quantity
                    qppt_storage::Value::Int(1000), // extendedprice
                    qppt_storage::Value::Int(1000),
                    qppt_storage::Value::Int(2), // discount
                    qppt_storage::Value::Int(980),
                    qppt_storage::Value::Int(60),
                    qppt_storage::Value::Int(0),
                    ship,
                ],
            )
            .unwrap();
        let after = ssb.db.snapshot();
        let r_after_old_snap = run_reference(&ssb.db, &queries::q1_1(), before).unwrap();
        let r_after_new_snap = run_reference(&ssb.db, &queries::q1_1(), after).unwrap();
        assert_eq!(r_before, r_after_old_snap, "old snapshot unaffected");
        assert_eq!(
            r_after_new_snap.rows[0].agg_values[0],
            r_before.rows[0].agg_values[0] + 2000,
            "new snapshot sees the inserted row (1000 × 2)"
        );
    }

    #[test]
    fn all_queries_run_and_are_deterministic() {
        let ssb = SsbDb::generate(0.01, 42);
        let snap = ssb.db.snapshot();
        for q in queries::all_queries() {
            let a = run_reference(&ssb.db, &q, snap).unwrap();
            let b = run_reference(&ssb.db, &q, snap).unwrap();
            assert_eq!(a, b, "{} deterministic", q.id);
        }
    }
}
