//! Star Schema Benchmark substrate for the QPPT evaluation (§5).
//!
//! The paper evaluates QPPT on the SSB (O'Neil et al.): a star schema
//! derived from TPC-H with one `lineorder` fact table and the dimensions
//! `part`, `supplier`, `customer` and `date`. This crate provides
//!
//! * [`gen`] — a deterministic, scale-factor-parameterised data generator
//!   ([`SsbDb::generate`]);
//! * [`queries`] — all 13 SSB queries as [`qppt_storage::QuerySpec`]s
//!   ([`queries::all_queries`]);
//! * `reference` — a naive hash-join executor used as
//!   the correctness oracle for the QPPT and columnar engines;
//! * [`calendar`] — the Gregorian calendar helpers behind the `date`
//!   dimension.

pub mod calendar;
pub mod gen;
pub mod queries;
pub mod reference;

pub use gen::{shard_bounds, SsbDb, SsbSizes, DATEKEY_MAX, DATEKEY_MIN, NATIONS, REGIONS};
pub use reference::{decode_code, run_reference};
