//! Deterministic Star Schema Benchmark data generator.
//!
//! Follows O'Neil et al.'s SSB specification: the TPC-H snowflake schema
//! flattened into one `lineorder` fact table and four dimensions. Row counts
//! scale with the scale factor (SF): `lineorder` = SF × 6 M,
//! `customer` = SF × 30 K, `supplier` = SF × 2 K,
//! `part` = 200 K × (1 + ⌊log₂ SF⌋) for SF ≥ 1, and `date` covers the seven
//! years 1992–1998. For SF < 1 (laptop/CI scales) `part` shrinks
//! proportionally with a floor of 1 000 rows — the spec does not define
//! fractional SFs, so we extrapolate downward; every attribute domain
//! (brands, regions, cities, value ranges) stays exactly per spec, which is
//! what the queries' selectivities depend on.
//!
//! All randomness flows from one seeded xoshiro256** stream per table, so a
//! given `(sf, seed)` reproduces bit-identical data on every platform.

use qppt_mem::Xoshiro256StarStar;
use qppt_storage::{ColumnType, Database, Schema, Table, TableBuilder, Value};

use crate::calendar::{calendar, DAY_NAMES};

/// TPC-H regions and their nations (5 × 5).
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 TPC-H nations, grouped by region (same order as [`REGIONS`]).
pub const NATIONS: [(&str, &str); 25] = [
    ("ALGERIA", "AFRICA"),
    ("ETHIOPIA", "AFRICA"),
    ("KENYA", "AFRICA"),
    ("MOROCCO", "AFRICA"),
    ("MOZAMBIQUE", "AFRICA"),
    ("ARGENTINA", "AMERICA"),
    ("BRAZIL", "AMERICA"),
    ("CANADA", "AMERICA"),
    ("PERU", "AMERICA"),
    ("UNITED STATES", "AMERICA"),
    ("CHINA", "ASIA"),
    ("INDIA", "ASIA"),
    ("INDONESIA", "ASIA"),
    ("JAPAN", "ASIA"),
    ("VIETNAM", "ASIA"),
    ("FRANCE", "EUROPE"),
    ("GERMANY", "EUROPE"),
    ("ROMANIA", "EUROPE"),
    ("RUSSIA", "EUROPE"),
    ("UNITED KINGDOM", "EUROPE"),
    ("EGYPT", "MIDDLE EAST"),
    ("IRAN", "MIDDLE EAST"),
    ("IRAQ", "MIDDLE EAST"),
    ("JORDAN", "MIDDLE EAST"),
    ("SAUDI ARABIA", "MIDDLE EAST"),
];

const MFGRS: [&str; 5] = ["MFGR#1", "MFGR#2", "MFGR#3", "MFGR#4", "MFGR#5"];
const SHIP_MODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const COLORS: [&str; 12] = [
    "almond", "azure", "beige", "blue", "coral", "cream", "forest", "ghost", "honey", "ivory",
    "lime", "plum",
];

/// SSB city: nation name truncated/padded to 9 characters plus a digit
/// (`UNITED KI1` … `UNITED KI9` for UNITED KINGDOM).
pub fn city_name(nation: &str, digit: u64) -> String {
    let mut base: String = nation.chars().take(9).collect();
    while base.len() < 9 {
        base.push(' ');
    }
    format!("{base}{digit}")
}

/// Row counts for a scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsbSizes {
    pub lineorder: usize,
    pub customer: usize,
    pub supplier: usize,
    pub part: usize,
    pub date: usize,
}

impl SsbSizes {
    /// Spec row counts for `sf` (see module docs for the SF < 1 extension).
    pub fn for_scale_factor(sf: f64) -> Self {
        assert!(sf > 0.0, "scale factor must be positive");
        let part = if sf >= 1.0 {
            (200_000.0 * (1.0 + sf.log2().floor())) as usize
        } else {
            ((200_000.0 * sf) as usize).max(1_000)
        };
        Self {
            lineorder: (6_000_000.0 * sf) as usize,
            customer: ((30_000.0 * sf) as usize).max(50),
            supplier: ((2_000.0 * sf) as usize).max(20),
            part,
            date: 2557,
        }
    }
}

/// Smallest `lo_orderdate` any fact row can carry (Jan 1 1992).
pub const DATEKEY_MIN: u64 = 19920101;

/// Largest `lo_orderdate` any fact row can carry (Dec 31 1998).
pub const DATEKEY_MAX: u64 = 19981231;

/// Inclusive `lo_orderdate` bounds of shard `index` of `count` in a
/// prefix-sharded deployment: the populated datekey domain is split into
/// `count` contiguous, disjoint key ranges of (near-)equal width —
/// range partitioning on the fact tree's canonical stage-1 prefix, the
/// inter-process analogue of the `qppt-par` morsel `Partitioner` split.
/// The edge shards absorb the rest of the `u64` domain so every key maps
/// to exactly one shard.
pub fn shard_bounds(index: usize, count: usize) -> (u64, u64) {
    assert!(count >= 1, "shard count must be at least 1");
    assert!(index < count, "shard index {index} out of range 0..{count}");
    let domain = DATEKEY_MAX - DATEKEY_MIN + 1;
    let span = domain / count as u64;
    let rem = domain % count as u64;
    let start = |i: u64| DATEKEY_MIN + i * span + i.min(rem);
    let lo = if index == 0 { 0 } else { start(index as u64) };
    let hi = if index == count - 1 {
        u64::MAX
    } else {
        start(index as u64 + 1) - 1
    };
    (lo, hi)
}

/// A generated SSB database: catalog plus generation parameters.
#[derive(Debug)]
pub struct SsbDb {
    pub db: Database,
    pub sf: f64,
    pub seed: u64,
    pub sizes: SsbSizes,
    /// `(index, count)` of the fact-table shard this database holds —
    /// `(0, 1)` for an unsharded (whole-table) database.
    pub shard: (usize, usize),
}

impl SsbDb {
    /// Generates the five SSB tables at scale factor `sf` and bulk-loads
    /// them into a fresh database. Deterministic in `(sf, seed)`.
    pub fn generate(sf: f64, seed: u64) -> Self {
        Self::generate_shard(sf, seed, 0, 1)
    }

    /// Generates shard `shard` of `shards`: the dimension tables are
    /// replicated in full (bit-identical to every other shard's), while
    /// `lineorder` keeps only the fact rows whose `lo_orderdate` falls in
    /// [`shard_bounds`]`(shard, shards)`. The generator consumes exactly
    /// the same random stream as the unsharded [`generate`](Self::generate),
    /// so the union of all shards is a disjoint partition of the full fact
    /// table — row for row, value for value.
    pub fn generate_shard(sf: f64, seed: u64, shard: usize, shards: usize) -> Self {
        let sizes = SsbSizes::for_scale_factor(sf);
        let mut db = Database::new();
        db.add_table(gen_date());
        db.add_table(gen_part(sizes.part, seed ^ 0x7061_7274));
        db.add_table(gen_supplier(sizes.supplier, seed ^ 0x7375_7070));
        db.add_table(gen_customer(sizes.customer, seed ^ 0x6375_7374));
        db.add_table(gen_lineorder_range(
            sizes.lineorder,
            sizes.customer,
            sizes.supplier,
            sizes.part,
            seed ^ 0x6c69_6e65,
            shard_bounds(shard, shards),
        ));
        Self {
            db,
            sf,
            seed,
            sizes,
            shard: (shard, shards),
        }
    }
}

/// The `date` dimension (deterministic, no randomness).
pub fn gen_date() -> Table {
    let schema = Schema::of(&[
        ("d_datekey", ColumnType::Int),
        ("d_date", ColumnType::Str),
        ("d_dayofweek", ColumnType::Str),
        ("d_month", ColumnType::Str),
        ("d_year", ColumnType::Int),
        ("d_yearmonthnum", ColumnType::Int),
        ("d_yearmonth", ColumnType::Str),
        ("d_daynuminweek", ColumnType::Int),
        ("d_daynuminmonth", ColumnType::Int),
        ("d_daynuminyear", ColumnType::Int),
        ("d_monthnuminyear", ColumnType::Int),
        ("d_weeknuminyear", ColumnType::Int),
        ("d_sellingseason", ColumnType::Str),
        ("d_lastdayinmonthfl", ColumnType::Int),
        ("d_holidayfl", ColumnType::Int),
        ("d_weekdayfl", ColumnType::Int),
    ]);
    let mut b = TableBuilder::new("date", schema);
    for day in calendar(1992, 1998) {
        let last_dom = day.day == crate::calendar::days_in_month(day.year, day.month);
        let weekday_fl = (1..=5).contains(&day.weekday);
        // Fixed-date holidays, enough to exercise the flag.
        let holiday = matches!((day.month, day.day), (1, 1) | (7, 4) | (12, 25));
        b.push_row(vec![
            Value::Int(day.datekey as i64),
            Value::Str(day.long_date()),
            Value::str(DAY_NAMES[day.weekday as usize]),
            Value::str(crate::calendar::MONTH_NAMES[(day.month - 1) as usize]),
            Value::Int(day.year as i64),
            Value::Int(day.yearmonthnum() as i64),
            Value::Str(day.yearmonth()),
            Value::Int(day.weekday as i64 + 1),
            Value::Int(day.day as i64),
            Value::Int(day.day_of_year as i64),
            Value::Int(day.month as i64),
            Value::Int(day.week_of_year as i64),
            Value::str(day.selling_season()),
            Value::Int(last_dom as i64),
            Value::Int(holiday as i64),
            Value::Int(weekday_fl as i64),
        ])
        .expect("static schema");
    }
    b.finish()
}

/// The `part` dimension.
pub fn gen_part(rows: usize, seed: u64) -> Table {
    let schema = Schema::of(&[
        ("p_partkey", ColumnType::Int),
        ("p_name", ColumnType::Str),
        ("p_mfgr", ColumnType::Str),
        ("p_category", ColumnType::Str),
        ("p_brand1", ColumnType::Str),
        ("p_color", ColumnType::Str),
        ("p_type", ColumnType::Str),
        ("p_size", ColumnType::Int),
        ("p_container", ColumnType::Str),
    ]);
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut b = TableBuilder::new("part", schema);
    for pk in 1..=rows as u64 {
        // mfgr ∈ 1..=5; category appends 1..=5; brand1 appends 1..=40.
        let mfgr_n = rng.range_inclusive(1, 5);
        let cat_n = rng.range_inclusive(1, 5);
        let brand_n = rng.range_inclusive(1, 40);
        let mfgr = MFGRS[(mfgr_n - 1) as usize];
        let category = format!("MFGR#{mfgr_n}{cat_n}");
        let brand1 = format!("{category}{brand_n}");
        let color = *rng.choose(&COLORS);
        b.push_row(vec![
            Value::Int(pk as i64),
            Value::Str(format!("{color} part {pk}")),
            Value::str(mfgr),
            Value::Str(category),
            Value::Str(brand1),
            Value::str(color),
            Value::Str(format!(
                "STANDARD POLISHED TYPE{}",
                rng.range_inclusive(1, 25)
            )),
            Value::Int(rng.range_inclusive(1, 50) as i64),
            Value::Str(format!("CONTAINER{}", rng.range_inclusive(1, 40))),
        ])
        .expect("static schema");
    }
    b.finish()
}

/// The `supplier` dimension.
pub fn gen_supplier(rows: usize, seed: u64) -> Table {
    let schema = Schema::of(&[
        ("s_suppkey", ColumnType::Int),
        ("s_name", ColumnType::Str),
        ("s_address", ColumnType::Str),
        ("s_city", ColumnType::Str),
        ("s_nation", ColumnType::Str),
        ("s_region", ColumnType::Str),
        ("s_phone", ColumnType::Str),
    ]);
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut b = TableBuilder::new("supplier", schema);
    for sk in 1..=rows as u64 {
        let (nation, region) = NATIONS[rng.below(25) as usize];
        let city = city_name(nation, rng.below(10));
        b.push_row(vec![
            Value::Int(sk as i64),
            Value::Str(format!("Supplier#{sk:09}")),
            Value::Str(format!("ADDR-S{}", rng.below(1_000_000))),
            Value::Str(city),
            Value::str(nation),
            Value::str(region),
            Value::Str(phone(&mut rng)),
        ])
        .expect("static schema");
    }
    b.finish()
}

/// The `customer` dimension.
pub fn gen_customer(rows: usize, seed: u64) -> Table {
    let schema = Schema::of(&[
        ("c_custkey", ColumnType::Int),
        ("c_name", ColumnType::Str),
        ("c_address", ColumnType::Str),
        ("c_city", ColumnType::Str),
        ("c_nation", ColumnType::Str),
        ("c_region", ColumnType::Str),
        ("c_phone", ColumnType::Str),
        ("c_mktsegment", ColumnType::Str),
    ]);
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut b = TableBuilder::new("customer", schema);
    for ck in 1..=rows as u64 {
        let (nation, region) = NATIONS[rng.below(25) as usize];
        let city = city_name(nation, rng.below(10));
        b.push_row(vec![
            Value::Int(ck as i64),
            Value::Str(format!("Customer#{ck:09}")),
            Value::Str(format!("ADDR-C{}", rng.below(1_000_000))),
            Value::Str(city),
            Value::str(nation),
            Value::str(region),
            Value::Str(phone(&mut rng)),
            #[allow(clippy::explicit_auto_deref)] // deref drives choose()'s inference
            Value::str(*rng.choose(&SEGMENTS)),
        ])
        .expect("static schema");
    }
    b.finish()
}

/// The `lineorder` fact table.
pub fn gen_lineorder(
    rows: usize,
    customers: usize,
    suppliers: usize,
    parts: usize,
    seed: u64,
) -> Table {
    gen_lineorder_range(rows, customers, suppliers, parts, seed, (0, u64::MAX))
}

/// The `lineorder` fact table restricted to one shard's `lo_orderdate`
/// range (`keep`, inclusive). Every row of the full table is still
/// *generated* — the random stream is identical whatever `keep` is — but
/// only rows whose datekey falls inside `keep` are loaded, so shard tables
/// are exact row-subsets of the unsharded table.
pub fn gen_lineorder_range(
    rows: usize,
    customers: usize,
    suppliers: usize,
    parts: usize,
    seed: u64,
    keep: (u64, u64),
) -> Table {
    let schema = Schema::of(&[
        ("lo_orderkey", ColumnType::Int),
        ("lo_linenumber", ColumnType::Int),
        ("lo_custkey", ColumnType::Int),
        ("lo_partkey", ColumnType::Int),
        ("lo_suppkey", ColumnType::Int),
        ("lo_orderdate", ColumnType::Int),
        ("lo_quantity", ColumnType::Int),
        ("lo_extendedprice", ColumnType::Int),
        ("lo_ordtotalprice", ColumnType::Int),
        ("lo_discount", ColumnType::Int),
        ("lo_revenue", ColumnType::Int),
        ("lo_supplycost", ColumnType::Int),
        ("lo_tax", ColumnType::Int),
        ("lo_shipmode", ColumnType::Str),
    ]);
    let datekeys: Vec<u32> = calendar(1992, 1998).iter().map(|d| d.datekey).collect();
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut b = TableBuilder::new("lineorder", schema);
    let mut orderkey = 0u64;
    let mut remaining_lines = 0u64;
    let mut line_no = 0u64;
    for _ in 0..rows {
        if remaining_lines == 0 {
            orderkey += 1;
            remaining_lines = rng.range_inclusive(1, 7); // lines per order
            line_no = 0;
        }
        remaining_lines -= 1;
        line_no += 1;
        // Every random draw happens for every row, in a fixed order, so the
        // stream position is independent of `keep` (shard filtering).
        let quantity = rng.range_inclusive(1, 50);
        let discount = rng.range_inclusive(0, 10);
        // Spec: extendedprice ≤ 55,450 (price cents are dropped in SSB).
        let extendedprice = rng.range_inclusive(900, 55_450) / 100 * 100 + quantity; // pseudo spec-ish
        let revenue = extendedprice * (100 - discount) / 100;
        let supplycost = extendedprice * 6 / 10 / quantity.max(1);
        let custkey = rng.range_inclusive(1, customers as u64);
        let partkey = rng.range_inclusive(1, parts as u64);
        let suppkey = rng.range_inclusive(1, suppliers as u64);
        let datekey = *rng.choose(&datekeys) as u64;
        let ordtotalprice = extendedprice * rng.range_inclusive(1, 7);
        let tax = rng.range_inclusive(0, 8);
        let shipmode = *rng.choose(&SHIP_MODES);
        if datekey < keep.0 || datekey > keep.1 {
            continue;
        }
        b.push_row(vec![
            Value::Int(orderkey as i64),
            Value::Int(line_no as i64),
            Value::Int(custkey as i64),
            Value::Int(partkey as i64),
            Value::Int(suppkey as i64),
            Value::Int(datekey as i64),
            Value::Int(quantity as i64),
            Value::Int(extendedprice as i64),
            Value::Int(ordtotalprice as i64),
            Value::Int(discount as i64),
            Value::Int(revenue as i64),
            Value::Int(supplycost as i64),
            Value::Int(tax as i64),
            Value::str(shipmode),
        ])
        .expect("static schema");
    }
    b.finish()
}

fn phone(rng: &mut Xoshiro256StarStar) -> String {
    format!(
        "{:02}-{:03}-{:03}-{:04}",
        rng.range_inclusive(10, 34),
        rng.below(1000),
        rng.below(1000),
        rng.below(10_000)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_spec() {
        let s1 = SsbSizes::for_scale_factor(1.0);
        assert_eq!(s1.lineorder, 6_000_000);
        assert_eq!(s1.customer, 30_000);
        assert_eq!(s1.supplier, 2_000);
        assert_eq!(s1.part, 200_000);
        let s4 = SsbSizes::for_scale_factor(4.0);
        assert_eq!(s4.part, 600_000); // 200k × (1 + log2(4))
        let s01 = SsbSizes::for_scale_factor(0.01);
        assert_eq!(s01.lineorder, 60_000);
        assert_eq!(s01.part, 2_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SsbDb::generate(0.01, 42);
        let b = SsbDb::generate(0.01, 42);
        for name in ["lineorder", "part", "supplier", "customer", "date"] {
            let ta = a.db.table(name).unwrap().table();
            let tb = b.db.table(name).unwrap().table();
            assert_eq!(ta.row_count(), tb.row_count(), "{name}");
            for rid in (0..ta.row_count() as u32).step_by(97) {
                assert_eq!(ta.row(rid), tb.row(rid), "{name} rid {rid}");
            }
        }
        let c = SsbDb::generate(0.01, 43);
        let tc = c.db.table("lineorder").unwrap().table();
        let ta = a.db.table("lineorder").unwrap().table();
        assert_ne!(ta.row(0), tc.row(0), "different seeds differ");
    }

    #[test]
    fn foreign_keys_resolve() {
        let ssb = SsbDb::generate(0.01, 7);
        let lo = ssb.db.table("lineorder").unwrap().table();
        let schema = lo.schema();
        let ck = schema.col("lo_custkey").unwrap();
        let pk = schema.col("lo_partkey").unwrap();
        let sk = schema.col("lo_suppkey").unwrap();
        let od = schema.col("lo_orderdate").unwrap();
        for rid in (0..lo.row_count() as u32).step_by(101) {
            assert!((1..=ssb.sizes.customer as u64).contains(&lo.get(rid, ck)));
            assert!((1..=ssb.sizes.part as u64).contains(&lo.get(rid, pk)));
            assert!((1..=ssb.sizes.supplier as u64).contains(&lo.get(rid, sk)));
            let d = lo.get(rid, od);
            assert!((19920101..=19981231).contains(&d));
        }
    }

    #[test]
    fn attribute_domains_match_spec() {
        let ssb = SsbDb::generate(0.01, 7);
        let part = ssb.db.table("part").unwrap().table();
        let brand_dict = part.dict(part.schema().col("p_brand1").unwrap()).unwrap();
        assert!(brand_dict.len() <= 1000);
        assert!(brand_dict.values().iter().all(|b| b.starts_with("MFGR#")));
        let supp = ssb.db.table("supplier").unwrap().table();
        let region_dict = supp.dict(supp.schema().col("s_region").unwrap()).unwrap();
        for r in region_dict.values() {
            assert!(REGIONS.contains(&r.as_str()), "unexpected region {r}");
        }
        let cust = ssb.db.table("customer").unwrap().table();
        let city_dict = cust.dict(cust.schema().col("c_city").unwrap()).unwrap();
        assert!(city_dict.values().iter().all(|c| c.len() == 10));
    }

    #[test]
    fn city_names_match_ssb_format() {
        assert_eq!(city_name("UNITED KINGDOM", 1), "UNITED KI1");
        assert_eq!(city_name("UNITED STATES", 0), "UNITED ST0");
        assert_eq!(city_name("PERU", 5), "PERU     5");
    }

    #[test]
    fn revenue_consistent_with_price_and_discount() {
        let ssb = SsbDb::generate(0.01, 9);
        let lo = ssb.db.table("lineorder").unwrap().table();
        let s = lo.schema();
        let (ep, disc, rev) = (
            s.col("lo_extendedprice").unwrap(),
            s.col("lo_discount").unwrap(),
            s.col("lo_revenue").unwrap(),
        );
        for rid in (0..lo.row_count() as u32).step_by(37) {
            let e = lo.get(rid, ep);
            let d = lo.get(rid, disc);
            assert_eq!(lo.get(rid, rev), e * (100 - d) / 100);
            assert!(d <= 10);
        }
    }

    #[test]
    fn shard_bounds_partition_the_domain() {
        for count in [1, 2, 3, 4, 8] {
            assert_eq!(shard_bounds(0, count).0, 0);
            assert_eq!(shard_bounds(count - 1, count).1, u64::MAX);
            for i in 1..count {
                let (_, prev_hi) = shard_bounds(i - 1, count);
                let (lo, hi) = shard_bounds(i, count);
                assert_eq!(lo, prev_hi + 1, "shards {i}/{count} contiguous");
                assert!(lo <= hi);
            }
        }
        assert_eq!(shard_bounds(0, 1), (0, u64::MAX));
    }

    #[test]
    fn shards_partition_the_fact_table() {
        let full = SsbDb::generate(0.005, 42);
        let lo = full.db.table("lineorder").unwrap().table();
        let od = lo.schema().col("lo_orderdate").unwrap();
        for count in [2usize, 3, 4] {
            let mut total = 0;
            for i in 0..count {
                let shard = SsbDb::generate_shard(0.005, 42, i, count);
                let (b_lo, b_hi) = shard_bounds(i, count);
                let t = shard.db.table("lineorder").unwrap().table();
                total += t.row_count();
                // The shard is exactly the full table's rows with
                // lo_orderdate in range, in generation order.
                let expected: Vec<u32> = (0..lo.row_count() as u32)
                    .filter(|&rid| (b_lo..=b_hi).contains(&lo.get(rid, od)))
                    .collect();
                assert_eq!(t.row_count(), expected.len(), "shard {i}/{count}");
                for (rid, &full_rid) in expected.iter().enumerate().step_by(23) {
                    assert_eq!(t.row(rid as u32), lo.row(full_rid), "shard {i}/{count}");
                }
                // Dimensions are replicated bit-identically.
                for name in ["date", "part", "supplier", "customer"] {
                    let ds = shard.db.table(name).unwrap().table();
                    let df = full.db.table(name).unwrap().table();
                    assert_eq!(ds.row_count(), df.row_count(), "{name}");
                    for rid in (0..ds.row_count() as u32).step_by(97) {
                        assert_eq!(ds.row(rid), df.row(rid), "{name} rid {rid}");
                    }
                }
            }
            assert_eq!(total, lo.row_count(), "{count} shards partition all rows");
        }
    }

    #[test]
    fn date_table_fixed_shape() {
        let t = gen_date();
        assert_eq!(t.row_count(), 2557);
        let ym = t.dict(t.schema().col("d_yearmonth").unwrap()).unwrap();
        assert_eq!(ym.len(), 84); // 7 years × 12 months
        assert!(ym.encode("Dec1997").is_some());
    }
}
