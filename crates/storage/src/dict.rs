//! Order-preserving string dictionaries.
//!
//! Prefix-tree order must equal logical attribute order, so string columns
//! are encoded as positions in the *sorted* value domain. Dictionaries are
//! built once at load time (OLAP string domains are static in SSB and most
//! star schemas); consequently `code(a) < code(b) ⇔ a < b`, and string range
//! predicates become code range predicates.

use std::collections::HashMap;

/// A sorted string domain with bidirectional value ↔ code mapping.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<String>,
    codes: HashMap<String, u32>,
}

impl Dictionary {
    /// Builds a dictionary from an arbitrary collection of values
    /// (duplicates are fine; codes are assigned from the sorted, deduplicated
    /// domain).
    pub fn build<S: AsRef<str>, I: IntoIterator<Item = S>>(values: I) -> Self {
        let mut v: Vec<String> = values.into_iter().map(|s| s.as_ref().to_string()).collect();
        v.sort_unstable();
        v.dedup();
        let codes = v
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
        Self { values: v, codes }
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Exact code of a value, if present.
    pub fn encode(&self, value: &str) -> Option<u32> {
        self.codes.get(value).copied()
    }

    /// Decodes a code (panics on out-of-range codes — they cannot be
    /// produced by this dictionary).
    pub fn decode(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// Smallest code whose value is `>= bound` (for range-predicate lower
    /// bounds over values that may be absent from the domain). Returns
    /// `len()` if every value is smaller.
    pub fn lower_bound(&self, bound: &str) -> u32 {
        self.values.partition_point(|v| v.as_str() < bound) as u32
    }

    /// Largest code whose value is `<= bound`, or `None` if every value is
    /// greater (range-predicate upper bounds).
    pub fn upper_bound(&self, bound: &str) -> Option<u32> {
        let p = self.values.partition_point(|v| v.as_str() <= bound);
        p.checked_sub(1).map(|i| i as u32)
    }

    /// The sorted domain.
    pub fn values(&self) -> &[String] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_order_preserving() {
        let d = Dictionary::build(["EUROPE", "ASIA", "AMERICA", "AFRICA", "MIDDLE EAST"]);
        assert_eq!(d.len(), 5);
        let codes: Vec<u32> = d.values().iter().map(|v| d.encode(v).unwrap()).collect();
        assert_eq!(codes, vec![0, 1, 2, 3, 4]);
        for a in d.values() {
            for b in d.values() {
                assert_eq!(a < b, d.encode(a) < d.encode(b));
            }
        }
    }

    #[test]
    fn duplicates_collapse() {
        let d = Dictionary::build(["x", "y", "x", "x"]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.decode(d.encode("x").unwrap()), "x");
    }

    #[test]
    fn encode_missing_is_none() {
        let d = Dictionary::build(["a", "b"]);
        assert_eq!(d.encode("c"), None);
    }

    #[test]
    fn bounds_for_absent_values() {
        let d = Dictionary::build(["b", "d", "f"]);
        // lower_bound: first code with value >= bound.
        assert_eq!(d.lower_bound("a"), 0);
        assert_eq!(d.lower_bound("b"), 0);
        assert_eq!(d.lower_bound("c"), 1);
        assert_eq!(d.lower_bound("g"), 3); // past the end
                                           // upper_bound: last code with value <= bound.
        assert_eq!(d.upper_bound("a"), None);
        assert_eq!(d.upper_bound("b"), Some(0));
        assert_eq!(d.upper_bound("e"), Some(1));
        assert_eq!(d.upper_bound("z"), Some(2));
    }

    #[test]
    fn ssb_brand_range_example() {
        // Q2.2: p_brand1 between 'MFGR#2221' and 'MFGR#2228'.
        let brands: Vec<String> = (2221..=2240).map(|b| format!("MFGR#{b}")).collect();
        let d = Dictionary::build(brands.iter());
        let lo = d.lower_bound("MFGR#2221");
        let hi = d.upper_bound("MFGR#2228").unwrap();
        let in_range: Vec<&str> = (lo..=hi).map(|c| d.decode(c)).collect();
        assert_eq!(in_range.len(), 8);
        assert_eq!(in_range[0], "MFGR#2221");
        assert_eq!(in_range[7], "MFGR#2228");
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::build(Vec::<String>::new());
        assert!(d.is_empty());
        assert_eq!(d.lower_bound("x"), 0);
        assert_eq!(d.upper_bound("x"), None);
    }
}
