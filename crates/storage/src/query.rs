//! Declarative star-query descriptions and the shared result format.
//!
//! A [`QuerySpec`] captures exactly the query class of the SSB (and of the
//! paper's evaluation): a fact table joined to dimension tables on foreign
//! keys, per-table conjunctive predicates, group-by over dimension columns,
//! sum aggregates over fact expressions, and an order-by. All three engines
//! (QPPT, column-at-a-time, vector-at-a-time) and the reference oracle plan
//! from this single description, so result comparisons are apples-to-apples.

use crate::types::Value;

/// A `table.column` reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColRef {
    pub table: String,
    pub column: String,
}

impl ColRef {
    /// Shorthand constructor.
    pub fn new(table: &str, column: &str) -> Self {
        Self {
            table: table.to_string(),
            column: column.to_string(),
        }
    }
}

impl std::fmt::Display for ColRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// A single-column predicate. Conjunctions are lists of predicates;
/// disjunctions over one column are [`Predicate::In`] (the only disjunction
/// form SSB needs — e.g. Q4.1's `p_mfgr = 'MFGR#1' or p_mfgr = 'MFGR#2'`).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column = value`
    Eq { column: String, value: Value },
    /// `column IN (values)`
    In { column: String, values: Vec<Value> },
    /// `column BETWEEN lo AND hi` (inclusive)
    Between {
        column: String,
        lo: Value,
        hi: Value,
    },
    /// `column < value`
    Lt { column: String, value: Value },
}

impl Predicate {
    /// Shorthand: equality.
    pub fn eq(column: &str, value: impl Into<Value>) -> Self {
        Predicate::Eq {
            column: column.to_string(),
            value: value.into(),
        }
    }

    /// Shorthand: membership.
    pub fn is_in(column: &str, values: Vec<Value>) -> Self {
        Predicate::In {
            column: column.to_string(),
            values,
        }
    }

    /// Shorthand: inclusive range.
    pub fn between(column: &str, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Predicate::Between {
            column: column.to_string(),
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// Shorthand: strictly less-than.
    pub fn lt(column: &str, value: impl Into<Value>) -> Self {
        Predicate::Lt {
            column: column.to_string(),
            value: value.into(),
        }
    }

    /// The column this predicate constrains.
    pub fn column(&self) -> &str {
        match self {
            Predicate::Eq { column, .. }
            | Predicate::In { column, .. }
            | Predicate::Between { column, .. }
            | Predicate::Lt { column, .. } => column,
        }
    }
}

/// A dimension table's role in a star query.
#[derive(Debug, Clone, PartialEq)]
pub struct DimSpec {
    /// Dimension table name.
    pub table: String,
    /// Join key column on the dimension side (e.g. `d_datekey`).
    pub join_col: String,
    /// Foreign-key column on the fact side (e.g. `lo_orderdate`).
    pub fact_col: String,
    /// Conjunctive predicates on dimension columns.
    pub predicates: Vec<Predicate>,
    /// Dimension columns referenced downstream (group-by columns).
    pub carried: Vec<String>,
}

/// Arithmetic over fact columns, as the SSB aggregates need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A fact column.
    Col(String),
    /// `a * b` (Q1.x: `lo_extendedprice * lo_discount`).
    Mul(String, String),
    /// `a - b` (Q4.x: `lo_revenue - lo_supplycost`).
    Sub(String, String),
}

impl Expr {
    /// Fact columns this expression reads.
    pub fn columns(&self) -> Vec<&str> {
        match self {
            Expr::Col(a) => vec![a],
            Expr::Mul(a, b) | Expr::Sub(a, b) => vec![a, b],
        }
    }

    /// Evaluates over encoded fact values (non-negative codes are the raw
    /// integers for `Int` columns).
    #[inline]
    pub fn eval(&self, get: impl Fn(&str) -> u64) -> i64 {
        match self {
            Expr::Col(a) => get(a) as i64,
            Expr::Mul(a, b) => get(a) as i64 * get(b) as i64,
            Expr::Sub(a, b) => get(a) as i64 - get(b) as i64,
        }
    }
}

/// Aggregate operator (SSB only needs SUM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    Sum,
}

/// An aggregate over a fact expression.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub op: AggOp,
    pub expr: Expr,
    /// Output column label (e.g. `revenue`, `profit`).
    pub label: String,
}

impl AggExpr {
    /// `SUM(expr) AS label`.
    pub fn sum(expr: Expr, label: &str) -> Self {
        Self {
            op: AggOp::Sum,
            expr,
            label: label.to_string(),
        }
    }
}

/// One order-by term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderTerm {
    /// Position in `group_by`.
    Group(usize),
    /// Position in `aggregates`.
    Agg(usize),
}

/// Order-by key with direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderKey {
    pub term: OrderTerm,
    pub desc: bool,
}

impl OrderKey {
    /// Ascending group column.
    pub fn group(i: usize) -> Self {
        Self {
            term: OrderTerm::Group(i),
            desc: false,
        }
    }

    /// Descending aggregate.
    pub fn agg_desc(i: usize) -> Self {
        Self {
            term: OrderTerm::Agg(i),
            desc: true,
        }
    }
}

/// A star query (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Identifier, e.g. `"Q2.3"`.
    pub id: String,
    /// Fact table name.
    pub fact: String,
    /// Dimension joins. Order hints the join order (most selective first,
    /// as the paper's example plans do).
    pub dims: Vec<DimSpec>,
    /// Residual predicates on fact columns (Q1.x quantity/discount).
    pub fact_predicates: Vec<Predicate>,
    /// Group-by columns (dimension columns; empty = scalar aggregate).
    pub group_by: Vec<ColRef>,
    /// Aggregates.
    pub aggregates: Vec<AggExpr>,
    /// Order-by over group columns / aggregates.
    pub order_by: Vec<OrderKey>,
}

impl QuerySpec {
    /// The dimension spec joined through the given fact column.
    pub fn dim_by_fact_col(&self, fact_col: &str) -> Option<&DimSpec> {
        self.dims.iter().find(|d| d.fact_col == fact_col)
    }

    /// Fact columns read by any aggregate expression.
    pub fn agg_input_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = self
            .aggregates
            .iter()
            .flat_map(|a| a.expr.columns().into_iter().map(str::to_string))
            .collect();
        cols.sort();
        cols.dedup();
        cols
    }
}

/// A predicate compiled against a concrete table: constants are encoded to
/// the table's order-preserving code space, so evaluation is pure integer
/// comparison. Every engine (QPPT index scans and residual filters, the
/// columnar engines, the reference oracle) evaluates predicates through this
/// form, which keeps their selection semantics identical by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledPred {
    /// `lo <= code(col) <= hi`.
    Range { col: usize, lo: u64, hi: u64 },
    /// `code(col) ∈ codes` (sorted).
    InSet { col: usize, codes: Vec<u64> },
    /// Statically unsatisfiable (e.g. a string outside the dictionary).
    Never,
}

impl CompiledPred {
    /// Evaluates against encoded field accessors.
    #[inline]
    pub fn matches(&self, get: impl Fn(usize) -> u64) -> bool {
        match self {
            CompiledPred::Range { col, lo, hi } => {
                let v = get(*col);
                *lo <= v && v <= *hi
            }
            CompiledPred::InSet { col, codes } => codes.binary_search(&get(*col)).is_ok(),
            CompiledPred::Never => false,
        }
    }

    /// The column this predicate reads (`None` for [`CompiledPred::Never`]).
    pub fn column(&self) -> Option<usize> {
        match self {
            CompiledPred::Range { col, .. } | CompiledPred::InSet { col, .. } => Some(*col),
            CompiledPred::Never => None,
        }
    }
}

/// Compiles a [`Predicate`] against a table (see [`CompiledPred`]).
pub fn compile_predicate(
    table: &crate::table::Table,
    pred: &Predicate,
) -> Result<CompiledPred, crate::types::StorageError> {
    let schema = table.schema();
    match pred {
        Predicate::Eq { column, value } => {
            let col = schema.col(column)?;
            Ok(match table.encode_value(col, value)? {
                Some(code) => CompiledPred::Range {
                    col,
                    lo: code,
                    hi: code,
                },
                None => CompiledPred::Never,
            })
        }
        Predicate::In { column, values } => {
            let col = schema.col(column)?;
            let mut codes = Vec::with_capacity(values.len());
            for v in values {
                if let Some(code) = table.encode_value(col, v)? {
                    codes.push(code);
                }
            }
            codes.sort_unstable();
            codes.dedup();
            Ok(if codes.is_empty() {
                CompiledPred::Never
            } else {
                CompiledPred::InSet { col, codes }
            })
        }
        Predicate::Between { column, lo, hi } => {
            let col = schema.col(column)?;
            Ok(match table.encode_range(col, lo, hi)? {
                Some((lo, hi)) => CompiledPred::Range { col, lo, hi },
                None => CompiledPred::Never,
            })
        }
        Predicate::Lt { column, value } => {
            let col = schema.col(column)?;
            let ty = schema.column(col).ty;
            match (ty, value) {
                (crate::types::ColumnType::Int, Value::Int(v)) => Ok(if *v <= 0 {
                    CompiledPred::Never
                } else {
                    CompiledPred::Range {
                        col,
                        lo: 0,
                        hi: (*v - 1) as u64,
                    }
                }),
                (crate::types::ColumnType::Str, Value::Str(s)) => {
                    let d = table.dict(col).expect("str column has dictionary");
                    let ub = d.lower_bound(s); // first code >= s
                    Ok(if ub == 0 {
                        CompiledPred::Never
                    } else {
                        CompiledPred::Range {
                            col,
                            lo: 0,
                            hi: (ub - 1) as u64,
                        }
                    })
                }
                (expected, got) => Err(crate::types::StorageError::TypeMismatch {
                    column: column.clone(),
                    expected,
                    got: got.column_type(),
                }),
            }
        }
    }
}

/// One result row: decoded group-by values plus aggregate values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultRow {
    pub key_values: Vec<Value>,
    pub agg_values: Vec<i64>,
}

/// A query result in the shared cross-engine format.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Labels of the group-by columns.
    pub group_cols: Vec<String>,
    /// Labels of the aggregate columns.
    pub agg_cols: Vec<String>,
    pub rows: Vec<ResultRow>,
}

impl QueryResult {
    /// Rough resident bytes of the decoded rows (labels, group values,
    /// accumulators) — the cache's result-tier byte accounting.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut b = size_of::<Self>();
        for s in self.group_cols.iter().chain(&self.agg_cols) {
            b += size_of::<String>() + s.len();
        }
        for row in &self.rows {
            b += size_of::<ResultRow>() + row.agg_values.len() * size_of::<i64>();
            for v in &row.key_values {
                b += size_of::<Value>()
                    + match v {
                        Value::Str(s) => s.len(),
                        Value::Int(_) => 0,
                    };
            }
        }
        b
    }

    /// Applies the query's order-by (stable sort; ties keep group-key
    /// order, making the result deterministic across engines).
    pub fn apply_order(&mut self, order_by: &[OrderKey]) {
        use std::cmp::Ordering;
        self.rows.sort_by(|a, b| {
            for key in order_by {
                let ord = match key.term {
                    OrderTerm::Group(i) => a.key_values[i].cmp(&b.key_values[i]),
                    OrderTerm::Agg(i) => a.agg_values[i].cmp(&b.agg_values[i]),
                };
                let ord = if key.desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            // Tie-break on the full group key for determinism.
            a.key_values.cmp(&b.key_values)
        });
    }

    /// Canonical form for cross-engine comparisons: rows sorted by group key.
    pub fn canonicalized(mut self) -> Self {
        self.rows.sort_by(|a, b| a.key_values.cmp(&b.key_values));
        self
    }

    /// Renders the result as an aligned text table (examples/demos).
    pub fn to_pretty_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let headers: Vec<String> = self
            .group_cols
            .iter()
            .cloned()
            .chain(self.agg_cols.iter().cloned())
            .collect();
        let mut table: Vec<Vec<String>> = vec![headers];
        for row in &self.rows {
            table.push(
                row.key_values
                    .iter()
                    .map(|v| v.to_string())
                    .chain(row.agg_values.iter().map(|v| v.to_string()))
                    .collect(),
            );
        }
        let ncols = table[0].len().max(1);
        let mut widths = vec![0usize; ncols];
        for row in &table {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (ri, row) in table.iter().enumerate() {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(s, "{:width$}  ", cell, width = widths[i]);
            }
            s.push('\n');
            if ri == 0 {
                for w in &widths {
                    let _ = write!(s, "{}  ", "-".repeat(*w));
                }
                s.push('\n');
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_eval() {
        let get = |c: &str| match c {
            "a" => 6u64,
            "b" => 7u64,
            _ => 0,
        };
        assert_eq!(Expr::Col("a".into()).eval(get), 6);
        assert_eq!(Expr::Mul("a".into(), "b".into()).eval(get), 42);
        assert_eq!(Expr::Sub("a".into(), "b".into()).eval(get), -1);
        assert_eq!(Expr::Mul("a".into(), "b".into()).columns(), vec!["a", "b"]);
    }

    #[test]
    fn order_by_group_and_agg() {
        let mut r = QueryResult {
            group_cols: vec!["year".into()],
            agg_cols: vec!["revenue".into()],
            rows: vec![
                ResultRow {
                    key_values: vec![Value::Int(1993)],
                    agg_values: vec![50],
                },
                ResultRow {
                    key_values: vec![Value::Int(1992)],
                    agg_values: vec![70],
                },
                ResultRow {
                    key_values: vec![Value::Int(1994)],
                    agg_values: vec![70],
                },
            ],
        };
        // Order by revenue desc, tie-broken by group key.
        r.apply_order(&[OrderKey::agg_desc(0)]);
        let years: Vec<i64> = r.rows.iter().map(|r| r.key_values[0].as_int()).collect();
        assert_eq!(years, vec![1992, 1994, 1993]);
        // Order by year asc.
        r.apply_order(&[OrderKey::group(0)]);
        let years: Vec<i64> = r.rows.iter().map(|r| r.key_values[0].as_int()).collect();
        assert_eq!(years, vec![1992, 1993, 1994]);
    }

    #[test]
    fn canonicalized_sorts_by_key() {
        let r = QueryResult {
            group_cols: vec!["g".into()],
            agg_cols: vec![],
            rows: vec![
                ResultRow {
                    key_values: vec![Value::str("b")],
                    agg_values: vec![],
                },
                ResultRow {
                    key_values: vec![Value::str("a")],
                    agg_values: vec![],
                },
            ],
        }
        .canonicalized();
        assert_eq!(r.rows[0].key_values[0], Value::str("a"));
    }

    #[test]
    fn pretty_print_contains_headers_and_rows() {
        let r = QueryResult {
            group_cols: vec!["year".into()],
            agg_cols: vec!["revenue".into()],
            rows: vec![ResultRow {
                key_values: vec![Value::Int(1997)],
                agg_values: vec![12345],
            }],
        };
        let s = r.to_pretty_string();
        assert!(s.contains("year"));
        assert!(s.contains("revenue"));
        assert!(s.contains("1997"));
        assert!(s.contains("12345"));
    }

    #[test]
    fn compile_predicates_against_table() {
        use crate::table::TableBuilder;
        use crate::types::{ColumnType, Schema};
        let mut b = TableBuilder::new(
            "t",
            Schema::of(&[("n", ColumnType::Int), ("s", ColumnType::Str)]),
        );
        for (n, s) in [(5, "b"), (10, "d"), (15, "f")] {
            b.push_row(vec![Value::Int(n), Value::str(s)]).unwrap();
        }
        let t = b.finish();

        let eq = compile_predicate(&t, &Predicate::eq("n", 10i64)).unwrap();
        assert_eq!(
            eq,
            CompiledPred::Range {
                col: 0,
                lo: 10,
                hi: 10
            }
        );
        assert!(eq.matches(|_| 10));
        assert!(!eq.matches(|_| 11));

        let eq_missing_str = compile_predicate(&t, &Predicate::eq("s", "zzz")).unwrap();
        assert_eq!(eq_missing_str, CompiledPred::Never);

        let lt = compile_predicate(&t, &Predicate::lt("n", 15i64)).unwrap();
        assert_eq!(
            lt,
            CompiledPred::Range {
                col: 0,
                lo: 0,
                hi: 14
            }
        );
        let lt0 = compile_predicate(&t, &Predicate::lt("n", 0i64)).unwrap();
        assert_eq!(lt0, CompiledPred::Never);

        // A string bound on an int column is a typed error, not a panic.
        assert!(matches!(
            compile_predicate(&t, &Predicate::lt("n", "x")),
            Err(crate::types::StorageError::TypeMismatch { .. })
        ));
        assert!(matches!(
            compile_predicate(&t, &Predicate::lt("s", 3i64)),
            Err(crate::types::StorageError::TypeMismatch { .. })
        ));

        let lt_str = compile_predicate(&t, &Predicate::lt("s", "d")).unwrap();
        // codes: b=0, d=1, f=2 → s < "d" ⇔ code <= 0
        assert_eq!(
            lt_str,
            CompiledPred::Range {
                col: 1,
                lo: 0,
                hi: 0
            }
        );

        let between = compile_predicate(&t, &Predicate::between("s", "a", "e")).unwrap();
        assert_eq!(
            between,
            CompiledPred::Range {
                col: 1,
                lo: 0,
                hi: 1
            }
        );

        let inset = compile_predicate(
            &t,
            &Predicate::is_in(
                "s",
                vec![Value::str("f"), Value::str("b"), Value::str("nope")],
            ),
        )
        .unwrap();
        assert_eq!(
            inset,
            CompiledPred::InSet {
                col: 1,
                codes: vec![0, 2]
            }
        );
        assert!(inset.matches(|_| 2));
        assert!(!inset.matches(|_| 1));

        let in_empty =
            compile_predicate(&t, &Predicate::is_in("s", vec![Value::str("q")])).unwrap();
        assert_eq!(in_empty, CompiledPred::Never);
        assert!(!CompiledPred::Never.matches(|_| 0));
    }

    #[test]
    fn spec_helpers() {
        let spec = QuerySpec {
            id: "T".into(),
            fact: "f".into(),
            dims: vec![DimSpec {
                table: "d".into(),
                join_col: "dk".into(),
                fact_col: "fk".into(),
                predicates: vec![Predicate::eq("x", 1i64)],
                carried: vec![],
            }],
            fact_predicates: vec![],
            group_by: vec![],
            aggregates: vec![
                AggExpr::sum(Expr::Mul("p".into(), "q".into()), "s1"),
                AggExpr::sum(Expr::Col("p".into()), "s2"),
            ],
            order_by: vec![],
        };
        assert!(spec.dim_by_fact_col("fk").is_some());
        assert!(spec.dim_by_fact_col("zz").is_none());
        assert_eq!(
            spec.agg_input_columns(),
            vec!["p".to_string(), "q".to_string()]
        );
    }
}
