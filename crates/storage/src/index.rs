//! Unified tree-index handles, payload buffers, and base indexes.
//!
//! "QPPT decides at query compile time which index structure should be used
//! for storing the intermediate result" (§2.2): the KISS-Tree for keys that
//! fit 32 bits (join attributes, mostly) and the generalized prefix tree
//! otherwise (notably 64-bit composite group-by keys). [`TreeIndex`] is that
//! compile-time choice reified as an enum, with a uniform multimap API and a
//! synchronous scan that dispatches to the structure-specific kernels.
//!
//! [`IndexedTable`] couples a [`TreeIndex`] with a fixed-width payload
//! buffer — the representation of both *base indexes* and *intermediate
//! indexed tables* (§3): the index maps a key to payload-row ids; a payload
//! row is `[rid, carried columns...]` for base indexes and
//! `[carried columns...]` for intermediates.

use qppt_kiss::{kiss_sync_scan, kiss_sync_scan_range, KissConfig, KissTree};
use qppt_trie::{sync_scan, sync_scan_range, PrefixTree, TrieConfig};

use crate::mvcc::MvccTable;
use crate::types::StorageError;

/// Key width of an index (which structure can hold it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyWidth {
    /// Keys fit in 32 bits → KISS-Tree eligible.
    W32,
    /// Keys need up to 64 bits → prefix tree only.
    W64,
}

/// The compile-time index choice of §2.2, as a runtime handle.
#[derive(Debug)]
pub enum TreeIndex {
    /// KISS-Tree (32-bit keys).
    Kiss(KissTree<u32>),
    /// Generalized prefix tree, `k′ = 4` (32- or 64-bit keys).
    Pt(PrefixTree<u32>),
}

impl TreeIndex {
    /// A KISS-Tree index (paper geometry, uncompressed second level).
    pub fn new_kiss() -> Self {
        TreeIndex::Kiss(KissTree::new(KissConfig::paper()))
    }

    /// A prefix-tree index of the given key width.
    pub fn new_pt(width: KeyWidth) -> Self {
        let cfg = match width {
            KeyWidth::W32 => TrieConfig::pt4_32(),
            KeyWidth::W64 => TrieConfig::pt4_64(),
        };
        TreeIndex::Pt(PrefixTree::new(cfg))
    }

    /// The §2.2 compile-time choice: KISS for 32-bit domains (if
    /// `prefer_kiss`), prefix tree otherwise.
    pub fn for_domain(max_key: u64, prefer_kiss: bool) -> Self {
        if max_key <= u32::MAX as u64 {
            if prefer_kiss {
                Self::new_kiss()
            } else {
                Self::new_pt(KeyWidth::W32)
            }
        } else {
            Self::new_pt(KeyWidth::W64)
        }
    }

    /// An empty index with the same configuration as `self`.
    pub fn same_geometry(&self) -> Self {
        match self {
            TreeIndex::Kiss(t) => TreeIndex::Kiss(KissTree::new(t.config())),
            TreeIndex::Pt(t) => TreeIndex::Pt(PrefixTree::new(t.config())),
        }
    }

    /// `true` for the KISS variant.
    pub fn is_kiss(&self) -> bool {
        matches!(self, TreeIndex::Kiss(_))
    }

    /// Inserts a `(key, payload-row id)` pair (multimap).
    #[inline]
    pub fn insert(&mut self, key: u64, value: u32) {
        match self {
            TreeIndex::Kiss(t) => t.insert(key_as_u32(key), value),
            TreeIndex::Pt(t) => t.insert(key, value),
        }
    }

    /// Invokes `f` for every value stored under `key`.
    #[inline]
    pub fn get_each(&self, key: u64, mut f: impl FnMut(u32)) {
        match self {
            TreeIndex::Kiss(t) => {
                if key <= u32::MAX as u64 {
                    if let Some(vs) = t.get(key as u32) {
                        vs.for_each(|v| f(*v));
                    }
                }
            }
            TreeIndex::Pt(t) => {
                if in_domain(t, key) {
                    if let Some(vs) = t.get(key) {
                        vs.for_each(|v| f(*v));
                    }
                }
            }
        }
    }

    /// First value stored under `key`.
    pub fn get_first(&self, key: u64) -> Option<u32> {
        match self {
            TreeIndex::Kiss(t) => (key <= u32::MAX as u64).then(|| t.get_first(key as u32))?,
            TreeIndex::Pt(t) => in_domain(t, key).then(|| t.get_first(key))?,
        }
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        match self {
            TreeIndex::Kiss(t) => key <= u32::MAX as u64 && t.contains_key(key as u32),
            TreeIndex::Pt(t) => in_domain(t, key) && t.contains_key(key),
        }
    }

    /// Batched membership probe (join buffers, §2.3/§4.2).
    pub fn batch_contains(&self, keys: &[u64]) -> Vec<bool> {
        match self {
            TreeIndex::Kiss(t) => {
                // Out-of-domain keys can never be present; probe the rest.
                let narrowed: Vec<u32> = keys
                    .iter()
                    .map(|&k| k.min(u32::MAX as u64) as u32)
                    .collect();
                let mut out = t.batch_contains(&narrowed);
                for (i, &k) in keys.iter().enumerate() {
                    if k > u32::MAX as u64 {
                        out[i] = false;
                    }
                }
                out
            }
            TreeIndex::Pt(t) => {
                let limit = t.config().key_limit().unwrap_or(u64::MAX);
                let narrowed: Vec<u64> = keys
                    .iter()
                    .map(|&k| k.min(limit.saturating_sub(1)))
                    .collect();
                let mut out = t.batch_contains(&narrowed);
                for (i, &k) in keys.iter().enumerate() {
                    if k >= limit {
                        out[i] = false;
                    }
                }
                out
            }
        }
    }

    /// Batched multimap lookup: `f(job_index, value)` for every value of
    /// every present key.
    pub fn batch_get_each(&self, keys: &[u64], mut f: impl FnMut(usize, u32)) {
        match self {
            TreeIndex::Kiss(t) => {
                let narrowed: Vec<u32> = keys
                    .iter()
                    .map(|&k| k.min(u32::MAX as u64) as u32)
                    .collect();
                t.batch_get(&narrowed, |i, vs| {
                    if keys[i] <= u32::MAX as u64 {
                        vs.for_each(|v| f(i, *v));
                    }
                });
            }
            TreeIndex::Pt(t) => {
                let limit = t.config().key_limit().unwrap_or(u64::MAX);
                let narrowed: Vec<u64> = keys
                    .iter()
                    .map(|&k| k.min(limit.saturating_sub(1)))
                    .collect();
                t.batch_get(&narrowed, |i, vs| {
                    if keys[i] < limit {
                        vs.for_each(|v| f(i, *v));
                    }
                });
            }
        }
    }

    /// Ordered range scan (`lo..=hi` on encoded keys): `f(key, value)`.
    pub fn range_each(&self, lo: u64, hi: u64, mut f: impl FnMut(u64, u32)) {
        match self {
            TreeIndex::Kiss(t) => {
                if lo > u32::MAX as u64 {
                    return;
                }
                t.range(lo as u32, hi.min(u32::MAX as u64) as u32)
                    .for_each(|(k, vs)| vs.for_each(|v| f(k as u64, *v)));
            }
            TreeIndex::Pt(t) => {
                let limit = t.config().key_limit().unwrap_or(u64::MAX);
                if lo >= limit {
                    return;
                }
                let hi = if limit == u64::MAX {
                    hi
                } else {
                    hi.min(limit - 1)
                };
                t.range(lo, hi)
                    .for_each(|(k, vs)| vs.for_each(|v| f(k, *v)));
            }
        }
    }

    /// Ordered full scan: `f(key, value)` for every pair.
    pub fn for_each(&self, mut f: impl FnMut(u64, u32)) {
        match self {
            TreeIndex::Kiss(t) => t
                .iter()
                .for_each(|(k, vs)| vs.for_each(|v| f(k as u64, *v))),
            TreeIndex::Pt(t) => t.iter().for_each(|(k, vs)| vs.for_each(|v| f(k, *v))),
        }
    }

    /// Ordered per-key scan: `f(key, values)`.
    pub fn for_each_key(&self, mut f: impl FnMut(u64, &mut dyn Iterator<Item = u32>)) {
        match self {
            TreeIndex::Kiss(t) => t.iter().for_each(|(k, vs)| {
                let mut it = vs.copied();
                f(k as u64, &mut it);
            }),
            TreeIndex::Pt(t) => t.iter().for_each(|(k, vs)| {
                let mut it = vs.copied();
                f(k, &mut it);
            }),
        }
    }

    /// Ordered per-key scan restricted to keys in `[lo, hi]` — the
    /// partitioned-cursor form of [`for_each_key`](Self::for_each_key).
    pub fn for_each_key_range(
        &self,
        lo: u64,
        hi: u64,
        mut f: impl FnMut(u64, &mut dyn Iterator<Item = u32>),
    ) {
        if lo > hi {
            return;
        }
        match self {
            TreeIndex::Kiss(t) => {
                if lo > u32::MAX as u64 {
                    return;
                }
                t.range(lo as u32, hi.min(u32::MAX as u64) as u32)
                    .for_each(|(k, vs)| {
                        let mut it = vs.copied();
                        f(k as u64, &mut it);
                    });
            }
            TreeIndex::Pt(t) => {
                let limit = t.config().key_limit().unwrap_or(u64::MAX);
                if lo >= limit {
                    return;
                }
                let hi = if limit == u64::MAX {
                    hi
                } else {
                    hi.min(limit - 1)
                };
                t.range(lo, hi).for_each(|(k, vs)| {
                    let mut it = vs.copied();
                    f(k, &mut it);
                });
            }
        }
    }

    /// Smallest stored key, if any.
    pub fn min_key(&self) -> Option<u64> {
        match self {
            TreeIndex::Kiss(t) => t.min_key().map(u64::from),
            TreeIndex::Pt(t) => t.min_key(),
        }
    }

    /// Largest stored key, if any.
    pub fn max_key(&self) -> Option<u64> {
        match self {
            TreeIndex::Kiss(t) => t.max_key().map(u64::from),
            TreeIndex::Pt(t) => t.max_key(),
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        match self {
            TreeIndex::Kiss(t) => t.len(),
            TreeIndex::Pt(t) => t.len(),
        }
    }

    /// `true` if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total stored values.
    pub fn total_values(&self) -> usize {
        match self {
            TreeIndex::Kiss(t) => t.total_values(),
            TreeIndex::Pt(t) => t.total_values(),
        }
    }

    /// Resident memory estimate in bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            TreeIndex::Kiss(t) => t.stats().resident_bytes(),
            TreeIndex::Pt(t) => t.memory_bytes(),
        }
    }

    /// Structure name for plan/statistics display.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TreeIndex::Kiss(_) => "KISS-Tree",
            TreeIndex::Pt(t) => {
                if t.config().key_bits() == 32 {
                    "PrefixTree<32>"
                } else {
                    "PrefixTree<64>"
                }
            }
        }
    }
}

#[inline]
fn key_as_u32(key: u64) -> u32 {
    debug_assert!(
        key <= u32::MAX as u64,
        "planner chose KISS for a >32-bit key"
    );
    key as u32
}

#[inline]
fn in_domain(t: &PrefixTree<u32>, key: u64) -> bool {
    t.config().key_limit().is_none_or(|l| key < l)
}

/// Synchronous index scan over two [`TreeIndex`]es (§4.2).
///
/// Matching structures use the structural skip-scan kernels; mismatched
/// structures (which the planner avoids, but the API permits) fall back to
/// an ordered iterate-and-probe that yields the same key sequence.
pub fn sync_scan_indexes(
    left: &TreeIndex,
    right: &TreeIndex,
    mut f: impl FnMut(u64, &mut dyn Iterator<Item = u32>, &mut dyn Iterator<Item = u32>),
) {
    match (left, right) {
        (TreeIndex::Kiss(l), TreeIndex::Kiss(r)) => {
            kiss_sync_scan(l, r, |k, lv, rv| {
                let mut li = lv.copied();
                let mut ri = rv.copied();
                f(k as u64, &mut li, &mut ri);
            });
        }
        (TreeIndex::Pt(l), TreeIndex::Pt(r)) if l.config() == r.config() => {
            sync_scan(l, r, |k, lv, rv| {
                let mut li = lv.copied();
                let mut ri = rv.copied();
                f(k, &mut li, &mut ri);
            });
        }
        _ => {
            // Mixed geometry: ordered iterate the left side, point-probe the
            // right side. Key order (and thus output) is identical.
            let mut rbuf: Vec<u32> = Vec::new();
            left.for_each_key(|k, lvals| {
                rbuf.clear();
                right.get_each(k, |v| rbuf.push(v));
                if !rbuf.is_empty() {
                    let mut ri = rbuf.iter().copied();
                    f(k, lvals, &mut ri);
                }
            });
        }
    }
}

/// Range-restricted synchronous index scan over two [`TreeIndex`]es — the
/// partitioned-cursor form of [`sync_scan_indexes`] used by the
/// morsel-driven parallel executor: each morsel co-walks only the subtrees
/// whose key interval intersects `[lo, hi]`.
///
/// Matching structures use the structure-specific range kernels
/// ([`qppt_trie::sync_scan_range`], [`qppt_kiss::kiss_sync_scan_range`]);
/// mismatched structures fall back to a range-iterate-and-probe with the
/// same key sequence.
pub fn sync_scan_indexes_range(
    left: &TreeIndex,
    right: &TreeIndex,
    lo: u64,
    hi: u64,
    mut f: impl FnMut(u64, &mut dyn Iterator<Item = u32>, &mut dyn Iterator<Item = u32>),
) {
    if lo > hi {
        return;
    }
    match (left, right) {
        (TreeIndex::Kiss(l), TreeIndex::Kiss(r)) => {
            if lo > u32::MAX as u64 {
                return;
            }
            kiss_sync_scan_range(
                l,
                r,
                lo as u32,
                hi.min(u32::MAX as u64) as u32,
                |k, lv, rv| {
                    let mut li = lv.copied();
                    let mut ri = rv.copied();
                    f(k as u64, &mut li, &mut ri);
                },
            );
        }
        (TreeIndex::Pt(l), TreeIndex::Pt(r)) if l.config() == r.config() => {
            let limit = l.config().key_limit().unwrap_or(u64::MAX);
            if lo >= limit {
                return;
            }
            let hi = if limit == u64::MAX {
                hi
            } else {
                hi.min(limit - 1)
            };
            sync_scan_range(l, r, lo, hi, |k, lv, rv| {
                let mut li = lv.copied();
                let mut ri = rv.copied();
                f(k, &mut li, &mut ri);
            });
        }
        _ => {
            let mut rbuf: Vec<u32> = Vec::new();
            left.for_each_key_range(lo, hi, |k, lvals| {
                rbuf.clear();
                right.get_each(k, |v| rbuf.push(v));
                if !rbuf.is_empty() {
                    let mut ri = rbuf.iter().copied();
                    f(k, lvals, &mut ri);
                }
            });
        }
    }
}

/// Fixed-width payload storage for indexed tables.
#[derive(Debug, Clone)]
pub struct PayloadBuf {
    width: usize,
    data: Vec<u64>,
    rows: usize,
}

impl PayloadBuf {
    /// Creates a buffer of `width` fields per row (0 is allowed — pure key
    /// indexes store no payload).
    pub fn new(width: usize) -> Self {
        Self {
            width,
            data: Vec::new(),
            rows: 0,
        }
    }

    /// Fields per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` if no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Appends a row; returns its id.
    #[inline]
    pub fn push(&mut self, row: &[u64]) -> u32 {
        debug_assert_eq!(row.len(), self.width);
        let id = self.rows as u32;
        self.data.extend_from_slice(row);
        self.rows += 1;
        id
    }

    /// The row slice for `id`.
    #[inline]
    pub fn row(&self, id: u32) -> &[u64] {
        &self.data[id as usize * self.width..(id as usize + 1) * self.width]
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.capacity() * 8
    }
}

/// An index plus its payload rows — the common shape of base indexes and
/// intermediate indexed tables.
#[derive(Debug)]
pub struct IndexedTable {
    pub index: TreeIndex,
    pub payload: PayloadBuf,
}

impl IndexedTable {
    /// Creates an indexed table.
    pub fn new(index: TreeIndex, payload_width: usize) -> Self {
        Self {
            index,
            payload: PayloadBuf::new(payload_width),
        }
    }

    /// Inserts a `(key, payload row)` pair.
    #[inline]
    pub fn insert_row(&mut self, key: u64, row: &[u64]) {
        let id = self.payload.push(row);
        self.index.insert(key, id);
    }

    /// Invokes `f` with the payload row of every tuple under `key`.
    pub fn rows_for_key(&self, key: u64, mut f: impl FnMut(&[u64])) {
        self.index.get_each(key, |id| f(self.payload.row(id)));
    }

    /// Ordered scan over all `(key, payload row)` pairs.
    pub fn for_each_row(&self, mut f: impl FnMut(u64, &[u64])) {
        self.index.for_each(|k, id| f(k, self.payload.row(id)));
    }

    /// Number of stored tuples.
    pub fn tuple_count(&self) -> usize {
        self.payload.len()
    }

    /// Resident memory estimate.
    pub fn memory_bytes(&self) -> usize {
        self.index.memory_bytes() + self.payload.memory_bytes()
    }
}

/// A base index over one table column (§3): either a pure *secondary* index
/// (payload = rid only) or a *partially clustered* index that additionally
/// stores carried column values so operators never touch the row store
/// during processing.
#[derive(Debug)]
pub struct BaseIndex {
    /// Table this index belongs to (catalog position).
    pub table_idx: usize,
    /// Key column index.
    pub key_col: usize,
    /// Carried column indexes (empty = secondary index).
    pub carried: Vec<usize>,
    /// Carried column names (parallel to `carried`).
    pub carried_names: Vec<String>,
    /// Payload layout: `[rid, carried...]`.
    pub data: IndexedTable,
}

impl BaseIndex {
    /// Builds a base index over every row version of `table`.
    /// Snapshot visibility is applied at scan time, not build time, so the
    /// index serves all snapshots (§3: base indexes care for isolation).
    ///
    /// Rows are inserted in **key order**, so the payload rows of one key
    /// are contiguous in memory — this is what makes the index *clustered*:
    /// reading all tuples of a key is a sequential scan, not one cache miss
    /// per tuple. (Rows appended later by MVCC maintenance land at the
    /// unclustered tail, as in any clustered index with updates.)
    pub fn build(
        table_idx: usize,
        table: &MvccTable,
        key_col: usize,
        carried: Vec<usize>,
        prefer_kiss: bool,
    ) -> Self {
        let order = key_sorted_rids(table, key_col);
        Self::build_with_order(table_idx, table, key_col, carried, prefer_kiss, &order)
    }

    /// Like [`build`](Self::build), but with the key-sorted rid order
    /// supplied by the caller — the hook the parallel index builder uses:
    /// it produces the identical order with partitioned parallel sorts
    /// (see `qppt-par`'s `prepare_indexes_pooled`) and only the final
    /// clustered insertion runs here. `order` must be every row version's
    /// rid exactly once, stably sorted by the key column (ties in rid
    /// order), or the index will not be clustered the way [`build`] makes
    /// it.
    pub fn build_with_order(
        table_idx: usize,
        table: &MvccTable,
        key_col: usize,
        carried: Vec<usize>,
        prefer_kiss: bool,
        order: &[u32],
    ) -> Self {
        debug_assert_eq!(order.len(), table.version_count());
        debug_assert!(order
            .windows(2)
            .all(|w| table.table().get(w[0], key_col) <= table.table().get(w[1], key_col)));
        let stats = table.table().stats(key_col);
        let max_key = if stats.min > stats.max { 0 } else { stats.max };
        let index = TreeIndex::for_domain(max_key, prefer_kiss);
        let carried_names: Vec<String> = carried
            .iter()
            .map(|&c| table.table().schema().column(c).name.clone())
            .collect();
        let mut data = IndexedTable::new(index, 1 + carried.len());
        let mut row = vec![0u64; 1 + carried.len()];
        for &rid in order {
            let key = table.table().get(rid, key_col);
            row[0] = rid as u64;
            for (i, &c) in carried.iter().enumerate() {
                row[1 + i] = table.table().get(rid, c);
            }
            data.insert_row(key, &row);
        }
        Self {
            table_idx,
            key_col,
            carried,
            carried_names,
            data,
        }
    }

    /// Index maintenance hook: a new row version was appended.
    pub fn on_insert(&mut self, table: &MvccTable, rid: u32) {
        let key = table.table().get(rid, self.key_col);
        let mut row = Vec::with_capacity(1 + self.carried.len());
        row.push(rid as u64);
        for &c in &self.carried {
            row.push(table.table().get(rid, c));
        }
        self.data.insert_row(key, &row);
    }

    /// `true` if this index carries the given column in its payload.
    pub fn carries(&self, col: usize) -> bool {
        self.carried.contains(&col)
    }

    /// Position of `col` in the payload row (rid is position 0).
    pub fn payload_pos(&self, col: usize) -> Option<usize> {
        self.carried.iter().position(|&c| c == col).map(|p| p + 1)
    }

    /// Position of a carried column, by name (rid is position 0).
    pub fn payload_pos_by_name(&self, name: &str) -> Option<usize> {
        self.carried_names
            .iter()
            .position(|c| c == name)
            .map(|p| p + 1)
    }
}

/// A multidimensional base index (§4.1): one index over the *composite* of
/// several columns, bit-packed most-significant-first. "To process
/// conjunctive combinations of predicates, the selection operator prefers
/// to operate on a multidimensional index as input" — a conjunction with
/// equality predicates on the leading columns and at most a range on the
/// last constrained column becomes a single contiguous key-range scan.
#[derive(Debug)]
pub struct CompositeIndex {
    pub table_idx: usize,
    /// Key columns, most significant first.
    pub key_cols: Vec<usize>,
    /// Key column names (parallel to `key_cols`).
    pub key_names: Vec<String>,
    /// Bit width per key part.
    pub widths: Vec<u8>,
    /// Carried column indexes.
    pub carried: Vec<usize>,
    /// Carried column names.
    pub carried_names: Vec<String>,
    /// Payload layout: `[rid, carried...]`; keyed on the packed composite.
    pub data: IndexedTable,
}

impl CompositeIndex {
    /// Builds a composite index over every row version, clustered by the
    /// packed key (see [`BaseIndex::build`] for why clustering matters).
    /// Fails if the packed key would exceed 64 bits.
    pub fn build(
        table_idx: usize,
        table: &MvccTable,
        key_cols: Vec<usize>,
        carried: Vec<usize>,
        prefer_kiss: bool,
    ) -> Result<Self, StorageError> {
        let packed = Self::packed_keys(table, &key_cols)?;
        let mut order: Vec<u32> = (0..table.version_count() as u32).collect();
        order.sort_by_key(|&rid| packed[rid as usize]);
        Self::build_with_order(table_idx, table, key_cols, carried, prefer_kiss, &order)
    }

    /// The packed composite key of every row version, in rid order — what
    /// the parallel index builder sorts by (partitioned) before calling
    /// [`build_with_order`](Self::build_with_order).
    pub fn packed_keys(table: &MvccTable, key_cols: &[usize]) -> Result<Vec<u64>, StorageError> {
        let t = table.table();
        let (widths, total) = Self::key_widths(table, key_cols)?;
        Ok((0..table.version_count() as u32)
            .map(|rid| {
                let mut key = 0u64;
                let mut used = 0u8;
                for (i, &c) in key_cols.iter().enumerate() {
                    used += widths[i];
                    key |= t.get(rid, c) << (total - used);
                }
                key
            })
            .collect())
    }

    /// Like [`build`](Self::build) with a caller-supplied packed-key-sorted
    /// rid order (see [`BaseIndex::build_with_order`] for the contract).
    pub fn build_with_order(
        table_idx: usize,
        table: &MvccTable,
        key_cols: Vec<usize>,
        carried: Vec<usize>,
        prefer_kiss: bool,
        order: &[u32],
    ) -> Result<Self, StorageError> {
        debug_assert_eq!(order.len(), table.version_count());
        let t = table.table();
        let (widths, total) = Self::key_widths(table, &key_cols)?;
        let max_key = if total >= 64 {
            u64::MAX
        } else {
            (1u64 << total) - 1
        };
        let key_names: Vec<String> = key_cols
            .iter()
            .map(|&c| t.schema().column(c).name.clone())
            .collect();
        let carried_names: Vec<String> = carried
            .iter()
            .map(|&c| t.schema().column(c).name.clone())
            .collect();
        let mut data = IndexedTable::new(
            TreeIndex::for_domain(max_key, prefer_kiss),
            1 + carried.len(),
        );
        let pack = |rid: u32| -> u64 {
            let mut key = 0u64;
            let mut used = 0u8;
            for (i, &c) in key_cols.iter().enumerate() {
                used += widths[i];
                key |= t.get(rid, c) << (total - used);
            }
            key
        };
        let mut row = vec![0u64; 1 + carried.len()];
        for &rid in order {
            row[0] = rid as u64;
            for (i, &c) in carried.iter().enumerate() {
                row[1 + i] = t.get(rid, c);
            }
            data.insert_row(pack(rid), &row);
        }
        Ok(Self {
            table_idx,
            key_cols,
            key_names,
            widths,
            carried,
            carried_names,
            data,
        })
    }

    /// Per-part bit widths and total width of the packed composite key.
    fn key_widths(table: &MvccTable, key_cols: &[usize]) -> Result<(Vec<u8>, u8), StorageError> {
        let t = table.table();
        let widths: Vec<u8> = key_cols
            .iter()
            .map(|&c| {
                let s = t.stats(c);
                let max = if s.min > s.max { 0 } else { s.max };
                ((64 - max.leading_zeros()).max(1)) as u8
            })
            .collect();
        let total: u32 = widths.iter().map(|&w| w as u32).sum();
        if total > 64 {
            return Err(StorageError::UnknownColumn(format!(
                "composite key over {:?} needs {total} bits (max 64)",
                key_cols
            )));
        }
        Ok((widths, total as u8))
    }

    /// Packs per-part `[lo, hi]` bounds into the composite key range that
    /// covers exactly the conjunction. Valid only when every part before the
    /// last constrained one is an equality (lo == hi) — the classic
    /// composite-prefix rule; callers enforce it.
    pub fn pack_range(&self, bounds: &[(u64, u64)]) -> (u64, u64) {
        debug_assert_eq!(bounds.len(), self.widths.len());
        let total: u8 = self.widths.iter().sum();
        let mut lo = 0u64;
        let mut hi = 0u64;
        let mut used = 0u8;
        for (i, &w) in self.widths.iter().enumerate() {
            used += w;
            lo |= bounds[i].0 << (total - used);
            hi |= bounds[i].1 << (total - used);
        }
        (lo, hi)
    }

    /// Position of a carried column, by name (rid is position 0).
    pub fn payload_pos_by_name(&self, name: &str) -> Option<usize> {
        self.carried_names
            .iter()
            .position(|c| c == name)
            .map(|p| p + 1)
    }

    /// Index maintenance hook for a newly appended row version.
    pub fn on_insert(&mut self, table: &MvccTable, rid: u32) {
        let t = table.table();
        let total: u8 = self.widths.iter().sum();
        let mut key = 0u64;
        let mut used = 0u8;
        for (i, &c) in self.key_cols.iter().enumerate() {
            used += self.widths[i];
            // New codes may exceed the planned width; clamp defensively (a
            // rebuild would re-derive widths — acceptable for this hook).
            let mask = if self.widths[i] == 64 {
                u64::MAX
            } else {
                (1u64 << self.widths[i]) - 1
            };
            key |= (t.get(rid, c) & mask) << (total - used);
        }
        let mut row = Vec::with_capacity(1 + self.carried.len());
        row.push(rid as u64);
        for &c in &self.carried {
            row.push(t.get(rid, c));
        }
        self.data.insert_row(key, &row);
    }
}

/// Every row version's rid, stably sorted by the key column (ties keep rid
/// order) — the clustered insertion order of [`BaseIndex::build`]. Exposed
/// so alternative builders (the parallel, partitioned sort of `qppt-par`)
/// can reproduce it exactly.
pub fn key_sorted_rids(table: &MvccTable, key_col: usize) -> Vec<u32> {
    let mut order: Vec<u32> = (0..table.version_count() as u32).collect();
    order.sort_by_key(|&rid| table.table().get(rid, key_col));
    order
}

/// Validation helper shared by catalog code.
pub fn resolve_columns(
    schema: &crate::types::Schema,
    names: &[String],
) -> Result<Vec<usize>, StorageError> {
    names.iter().map(|n| schema.col(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_domain_picks_structures() {
        assert!(TreeIndex::for_domain(100, true).is_kiss());
        assert!(!TreeIndex::for_domain(100, false).is_kiss());
        assert!(!TreeIndex::for_domain(1 << 40, true).is_kiss());
        assert_eq!(
            TreeIndex::for_domain(1 << 40, true).kind_name(),
            "PrefixTree<64>"
        );
    }

    #[test]
    fn multimap_roundtrip_all_variants() {
        for mut idx in [
            TreeIndex::new_kiss(),
            TreeIndex::new_pt(KeyWidth::W32),
            TreeIndex::new_pt(KeyWidth::W64),
        ] {
            idx.insert(10, 1);
            idx.insert(10, 2);
            idx.insert(20, 3);
            let mut vals = Vec::new();
            idx.get_each(10, |v| vals.push(v));
            assert_eq!(vals, vec![1, 2], "{}", idx.kind_name());
            assert_eq!(idx.get_first(20), Some(3));
            assert_eq!(idx.get_first(30), None);
            assert_eq!(idx.len(), 2);
            assert_eq!(idx.total_values(), 3);
            assert!(idx.contains(20));
            assert!(!idx.contains(21));
        }
    }

    #[test]
    fn out_of_domain_probes_are_safe() {
        let mut idx = TreeIndex::new_kiss();
        idx.insert(5, 1);
        assert!(!idx.contains(1 << 40));
        assert_eq!(idx.get_first(1 << 40), None);
        assert_eq!(idx.batch_contains(&[5, 1 << 40]), vec![true, false]);
        let mut idx32 = TreeIndex::new_pt(KeyWidth::W32);
        idx32.insert(5, 1);
        assert!(!idx32.contains(1 << 40));
        assert_eq!(idx32.batch_contains(&[5, 1 << 40]), vec![true, false]);
    }

    #[test]
    fn range_and_ordered_scan() {
        for mut idx in [TreeIndex::new_kiss(), TreeIndex::new_pt(KeyWidth::W32)] {
            for k in [5u64, 1, 9, 3, 7] {
                idx.insert(k, k as u32);
            }
            let mut all = Vec::new();
            idx.for_each(|k, _| all.push(k));
            assert_eq!(all, vec![1, 3, 5, 7, 9]);
            let mut ranged = Vec::new();
            idx.range_each(3, 7, |k, _| ranged.push(k));
            assert_eq!(ranged, vec![3, 5, 7]);
        }
    }

    #[test]
    fn sync_scan_matched_and_mixed() {
        let build = |mut idx: TreeIndex| {
            for k in [2u64, 4, 6, 8] {
                idx.insert(k, k as u32 * 10);
            }
            idx
        };
        let build_odd = |mut idx: TreeIndex| {
            for k in [1u64, 4, 8, 9] {
                idx.insert(k, k as u32);
            }
            idx
        };
        let cases = [
            (
                build(TreeIndex::new_kiss()),
                build_odd(TreeIndex::new_kiss()),
            ),
            (
                build(TreeIndex::new_pt(KeyWidth::W32)),
                build_odd(TreeIndex::new_pt(KeyWidth::W32)),
            ),
            (
                build(TreeIndex::new_kiss()),
                build_odd(TreeIndex::new_pt(KeyWidth::W32)),
            ),
            (
                build(TreeIndex::new_pt(KeyWidth::W64)),
                build_odd(TreeIndex::new_kiss()),
            ),
        ];
        for (l, r) in &cases {
            let mut hits = Vec::new();
            sync_scan_indexes(l, r, |k, lv, rv| {
                assert_eq!(lv.count(), 1);
                assert_eq!(rv.count(), 1);
                hits.push(k);
            });
            assert_eq!(hits, vec![4, 8], "{} × {}", l.kind_name(), r.kind_name());
        }
    }

    #[test]
    fn sync_scan_range_matches_filtered_full_scan_all_variants() {
        let build = |mut idx: TreeIndex, keys: &[u64]| {
            for &k in keys {
                idx.insert(k, k as u32);
            }
            idx
        };
        let lk: Vec<u64> = (0..400).map(|i| i * 3).collect();
        let rk: Vec<u64> = (0..400).map(|i| i * 5).collect();
        let cases = [
            (
                build(TreeIndex::new_kiss(), &lk),
                build(TreeIndex::new_kiss(), &rk),
            ),
            (
                build(TreeIndex::new_pt(KeyWidth::W32), &lk),
                build(TreeIndex::new_pt(KeyWidth::W32), &rk),
            ),
            (
                build(TreeIndex::new_pt(KeyWidth::W64), &lk),
                build(TreeIndex::new_pt(KeyWidth::W64), &rk),
            ),
            (
                build(TreeIndex::new_kiss(), &lk),
                build(TreeIndex::new_pt(KeyWidth::W64), &rk),
            ),
        ];
        for (l, r) in &cases {
            let mut full = Vec::new();
            sync_scan_indexes(l, r, |k, _, _| full.push(k));
            for (lo, hi) in [
                (0u64, u64::MAX),
                (0, 599),
                (600, 1199),
                (45, 45),
                (2000, 1000),
            ] {
                let expect: Vec<u64> = full
                    .iter()
                    .copied()
                    .filter(|&k| k >= lo && k <= hi)
                    .collect();
                let mut got = Vec::new();
                sync_scan_indexes_range(l, r, lo, hi, |k, _, _| got.push(k));
                assert_eq!(
                    got,
                    expect,
                    "{} × {} [{lo},{hi}]",
                    l.kind_name(),
                    r.kind_name()
                );
            }
        }
    }

    #[test]
    fn for_each_key_range_and_key_bounds() {
        for mut idx in [TreeIndex::new_kiss(), TreeIndex::new_pt(KeyWidth::W64)] {
            assert_eq!(idx.min_key(), None);
            assert_eq!(idx.max_key(), None);
            for k in [40u64, 10, 30, 20] {
                idx.insert(k, 1);
                idx.insert(k, 2);
            }
            assert_eq!(idx.min_key(), Some(10));
            assert_eq!(idx.max_key(), Some(40));
            let mut got = Vec::new();
            idx.for_each_key_range(15, 35, |k, vs| got.push((k, vs.count())));
            assert_eq!(got, vec![(20, 2), (30, 2)], "{}", idx.kind_name());
        }
    }

    #[test]
    fn batch_get_each_matches_scalar() {
        let mut idx = TreeIndex::new_kiss();
        for k in 0..100u64 {
            idx.insert(k % 10, k as u32);
        }
        let keys = [0u64, 3, 42, 7];
        let mut batched: Vec<(usize, u32)> = Vec::new();
        idx.batch_get_each(&keys, |i, v| batched.push((i, v)));
        let mut scalar: Vec<(usize, u32)> = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            idx.get_each(k, |v| scalar.push((i, v)));
        }
        batched.sort_unstable();
        scalar.sort_unstable();
        assert_eq!(batched, scalar);
    }

    #[test]
    fn payload_buf_roundtrip() {
        let mut p = PayloadBuf::new(3);
        let a = p.push(&[1, 2, 3]);
        let b = p.push(&[4, 5, 6]);
        assert_eq!(p.row(a), &[1, 2, 3]);
        assert_eq!(p.row(b), &[4, 5, 6]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn zero_width_payload() {
        let mut p = PayloadBuf::new(0);
        let a = p.push(&[]);
        let b = p.push(&[]);
        assert_eq!((a, b), (0, 1));
        assert_eq!(p.row(1), &[] as &[u64]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn indexed_table_rows() {
        let mut it = IndexedTable::new(TreeIndex::new_kiss(), 2);
        it.insert_row(7, &[70, 700]);
        it.insert_row(7, &[71, 710]);
        it.insert_row(9, &[90, 900]);
        let mut rows = Vec::new();
        it.rows_for_key(7, |r| rows.push(r.to_vec()));
        assert_eq!(rows, vec![vec![70, 700], vec![71, 710]]);
        assert_eq!(it.tuple_count(), 3);
        let mut scan = Vec::new();
        it.for_each_row(|k, r| scan.push((k, r[0])));
        assert_eq!(scan, vec![(7, 70), (7, 71), (9, 90)]);
    }
}
