//! Multi-version concurrency control for base tables.
//!
//! DexterDB "uses MVCC for transactional isolation" (§5, after Bayer et
//! al.). The QPPT model only requires versioning at the *base* level: base
//! indexes index every row version and scans filter by snapshot visibility,
//! while intermediate indexes are query-private and never versioned (§3).
//!
//! The implementation is a classic begin/end-timestamp scheme: every row
//! version carries `[begin, end)` commit timestamps; a snapshot taken at
//! timestamp `ts` sees exactly the versions with `begin <= ts < end`.
//! Updates create a new version and terminate the old one; deletes only
//! terminate. Rows (versions) are never physically removed, so rids stay
//! stable — which is what lets base indexes simply accumulate rids.

use crate::table::Table;
use crate::types::{StorageError, Value};

/// Commit timestamp. `0` is reserved ("never"), `u64::MAX` means "still
/// live".
pub type Ts = u64;

const LIVE: Ts = u64::MAX;

/// A read snapshot: sees versions committed at or before `ts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    pub ts: Ts,
}

impl Snapshot {
    /// A snapshot that sees everything ever committed (used by bulk-load
    /// benchmarks where no concurrent writers exist).
    pub fn latest() -> Self {
        Snapshot { ts: LIVE - 1 }
    }
}

#[derive(Debug, Clone, Copy)]
struct VersionMeta {
    begin: Ts,
    end: Ts,
}

/// Hands out monotonically increasing commit/read timestamps.
#[derive(Debug, Default)]
pub struct TxnManager {
    next: std::sync::atomic::AtomicU64,
}

impl TxnManager {
    /// Creates a manager whose first commit timestamp is 1.
    pub fn new() -> Self {
        Self {
            next: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Allocates the next commit timestamp.
    pub fn next_commit_ts(&self) -> Ts {
        self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// A snapshot that sees everything committed so far.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            ts: self
                .next
                .load(std::sync::atomic::Ordering::Relaxed)
                .saturating_sub(1),
        }
    }
}

/// A [`Table`] plus per-row version metadata.
#[derive(Debug, Clone)]
pub struct MvccTable {
    table: Table,
    versions: Vec<VersionMeta>,
    /// Largest `begin` timestamp of any version.
    max_begin: Ts,
    /// `true` once any version has been terminated (deleted/updated).
    any_dead: bool,
}

impl MvccTable {
    /// Wraps a bulk-loaded table: every existing row becomes visible from
    /// timestamp `load_ts` on.
    pub fn from_bulk_load(table: Table, load_ts: Ts) -> Self {
        let versions = vec![
            VersionMeta {
                begin: load_ts,
                end: LIVE,
            };
            table.row_count()
        ];
        Self {
            table,
            versions,
            max_begin: load_ts,
            any_dead: false,
        }
    }

    /// `true` if **every** version is visible at `snap` — scans may then
    /// skip per-row visibility checks entirely. This is the common case for
    /// bulk-loaded OLAP data with no concurrent writers.
    #[inline]
    pub fn fully_visible(&self, snap: Snapshot) -> bool {
        !self.any_dead && snap.ts >= self.max_begin
    }

    /// The underlying row storage (all versions).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Total number of row versions (live + dead).
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }

    /// `true` iff `rid` is visible at `snap`.
    #[inline]
    pub fn visible(&self, rid: u32, snap: Snapshot) -> bool {
        let v = &self.versions[rid as usize];
        v.begin <= snap.ts && snap.ts < v.end
    }

    /// Inserts a new row committed at `ts`; returns its rid.
    pub fn insert(&mut self, ts: Ts, values: &[Value]) -> Result<u32, StorageError> {
        let row = self.table.encode_row(values)?;
        let rid = self.table.push_encoded(&row);
        self.versions.push(VersionMeta {
            begin: ts,
            end: LIVE,
        });
        self.max_begin = self.max_begin.max(ts);
        Ok(rid)
    }

    /// Deletes (terminates) a visible row version at `ts`.
    pub fn delete(&mut self, ts: Ts, rid: u32) {
        let v = &mut self.versions[rid as usize];
        debug_assert!(v.end == LIVE, "deleting an already-dead version");
        v.end = ts;
        self.any_dead = true;
    }

    /// Updates a row: terminates the old version and inserts the new one at
    /// `ts`. Returns the rid of the new version.
    pub fn update(&mut self, ts: Ts, rid: u32, values: &[Value]) -> Result<u32, StorageError> {
        let new_rid = self.insert(ts, values)?;
        self.delete(ts, rid);
        Ok(new_rid)
    }

    /// Iterates the rids visible at `snap` in rid order.
    pub fn scan_visible(&self, snap: Snapshot) -> impl Iterator<Item = u32> + '_ {
        (0..self.versions.len() as u32).filter(move |&rid| self.visible(rid, snap))
    }

    /// Number of rows visible at `snap`.
    pub fn live_count(&self, snap: Snapshot) -> usize {
        self.scan_visible(snap).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use crate::types::{ColumnType, Schema};

    fn fresh() -> MvccTable {
        let mut b = TableBuilder::new(
            "t",
            Schema::of(&[("k", ColumnType::Int), ("v", ColumnType::Int)]),
        );
        for i in 0..5i64 {
            b.push_row(vec![Value::Int(i), Value::Int(i * 10)]).unwrap();
        }
        MvccTable::from_bulk_load(b.finish(), 1)
    }

    #[test]
    fn bulk_load_visible_from_load_ts() {
        let t = fresh();
        assert_eq!(t.live_count(Snapshot { ts: 0 }), 0); // before load
        assert_eq!(t.live_count(Snapshot { ts: 1 }), 5);
        assert_eq!(t.live_count(Snapshot::latest()), 5);
    }

    #[test]
    fn insert_becomes_visible_at_its_ts() {
        let mut t = fresh();
        let rid = t.insert(5, &[Value::Int(99), Value::Int(990)]).unwrap();
        assert!(!t.visible(rid, Snapshot { ts: 4 }));
        assert!(t.visible(rid, Snapshot { ts: 5 }));
        assert_eq!(t.live_count(Snapshot { ts: 5 }), 6);
        assert_eq!(t.live_count(Snapshot { ts: 4 }), 5);
    }

    #[test]
    fn delete_hides_from_later_snapshots_only() {
        let mut t = fresh();
        t.delete(7, 2);
        assert!(t.visible(2, Snapshot { ts: 6 })); // old snapshot still sees it
        assert!(!t.visible(2, Snapshot { ts: 7 }));
        assert_eq!(t.live_count(Snapshot { ts: 7 }), 4);
    }

    #[test]
    fn update_is_delete_plus_insert() {
        let mut t = fresh();
        let new_rid = t.update(9, 0, &[Value::Int(0), Value::Int(1234)]).unwrap();
        // Old snapshot: sees the old version, not the new.
        let old_snap = Snapshot { ts: 8 };
        assert!(t.visible(0, old_snap));
        assert!(!t.visible(new_rid, old_snap));
        // New snapshot: the reverse.
        let new_snap = Snapshot { ts: 9 };
        assert!(!t.visible(0, new_snap));
        assert!(t.visible(new_rid, new_snap));
        assert_eq!(t.table().get(new_rid, 1), 1234);
        // Row count stays constant across both snapshots.
        assert_eq!(t.live_count(old_snap), 5);
        assert_eq!(t.live_count(new_snap), 5);
    }

    #[test]
    fn scan_visible_in_rid_order() {
        let mut t = fresh();
        t.delete(3, 1);
        let rids: Vec<u32> = t.scan_visible(Snapshot { ts: 3 }).collect();
        assert_eq!(rids, vec![0, 2, 3, 4]);
    }

    #[test]
    fn fully_visible_fast_path() {
        let mut t = fresh();
        assert!(t.fully_visible(Snapshot { ts: 1 }));
        assert!(!t.fully_visible(Snapshot { ts: 0 }));
        // An insert at ts 5 makes snapshots < 5 partial.
        t.insert(5, &[Value::Int(9), Value::Int(90)]).unwrap();
        assert!(!t.fully_visible(Snapshot { ts: 4 }));
        assert!(t.fully_visible(Snapshot { ts: 5 }));
        // Any delete disables the fast path for good.
        t.delete(6, 0);
        assert!(!t.fully_visible(Snapshot { ts: 7 }));
    }

    #[test]
    fn txn_manager_timestamps_are_monotonic() {
        let m = TxnManager::new();
        let a = m.next_commit_ts();
        let b = m.next_commit_ts();
        assert!(b > a);
        assert_eq!(m.snapshot().ts, b);
    }
}
