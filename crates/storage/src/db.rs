//! The catalog: tables, their base indexes, and write paths that keep the
//! two consistent.
//!
//! "These indexes are either already present or are created once and remain
//! in the data pool for future queries" (§3) — [`Database`] is that data
//! pool. Base indexes are looked up by `(table, key column)`; the planner
//! asks for the index matching an operator's selection or join attribute.

use std::collections::HashMap;

use crate::index::{BaseIndex, CompositeIndex};
use crate::mvcc::{MvccTable, Snapshot, TxnManager};
use crate::table::Table;
use crate::types::{StorageError, Value};

/// Declarative description of a base index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    pub table: String,
    /// Key column name.
    pub key: String,
    /// Carried columns (partially clustered payload); empty = secondary.
    pub carried: Vec<String>,
}

impl IndexDef {
    /// Shorthand constructor.
    pub fn new(table: &str, key: &str, carried: &[&str]) -> Self {
        Self {
            table: table.to_string(),
            key: key.to_string(),
            carried: carried.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// An in-memory database: versioned tables plus base indexes.
#[derive(Debug)]
pub struct Database {
    tables: Vec<MvccTable>,
    /// Monotonic per-table versions, parallel to `tables`: bumped by every
    /// MVCC write (insert/delete) and every index build/rebuild touching
    /// the table. A snapshot fingerprint over the version vector of a
    /// query's tables is therefore O(#tables) to compute, and unchanged
    /// versions guarantee bit-identical scan output — the coherence
    /// contract of `qppt-cache`.
    versions: Vec<u64>,
    /// Process-unique identity of this `Database` instance (see
    /// [`instance_id`](Self::instance_id)).
    instance_id: u64,
    by_name: HashMap<String, usize>,
    indexes: Vec<BaseIndex>,
    /// (table idx, key col idx) → index position, for planner lookups.
    index_lookup: HashMap<(usize, usize), usize>,
    /// Multidimensional indexes (§4.1), looked up by (table, key col list).
    composite_indexes: Vec<CompositeIndex>,
    composite_lookup: HashMap<(usize, Vec<usize>), usize>,
    txn: TxnManager,
    /// Whether newly created indexes prefer the KISS-Tree for 32-bit key
    /// domains (true, per §2.2) or always use prefix trees.
    pub prefer_kiss: bool,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        static NEXT_INSTANCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        Self {
            tables: Vec::new(),
            versions: Vec::new(),
            instance_id: NEXT_INSTANCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            by_name: HashMap::new(),
            indexes: Vec::new(),
            index_lookup: HashMap::new(),
            composite_indexes: Vec::new(),
            composite_lookup: HashMap::new(),
            txn: TxnManager::new(),
            prefer_kiss: true,
        }
    }

    /// Bulk-loads a table (visible from the next commit timestamp).
    pub fn add_table(&mut self, table: Table) -> usize {
        let ts = self.txn.next_commit_ts();
        let idx = self.tables.len();
        self.by_name.insert(table.name().to_string(), idx);
        self.tables.push(MvccTable::from_bulk_load(table, ts));
        self.versions.push(1);
        idx
    }

    /// A process-unique id assigned at construction. Mutating a database
    /// in place (inserts, deletes, index builds) keeps its id; building a
    /// *different* database never reuses one. Cache fingerprints fold this
    /// in so entries can never cross databases, even when their per-table
    /// version vectors coincide (e.g. two freshly loaded instances).
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// The monotonic version of a table (see the `versions` field): starts
    /// at 1 on load, bumped by every MVCC write and index build/rebuild.
    pub fn table_version(&self, name: &str) -> Result<u64, StorageError> {
        Ok(self.versions[self.table_idx(name)?])
    }

    /// [`table_version`](Self::table_version) by catalog position.
    pub fn table_version_at(&self, idx: usize) -> u64 {
        self.versions[idx]
    }

    #[inline]
    fn bump_version(&mut self, idx: usize) {
        self.versions[idx] += 1;
    }

    /// Catalog position of a table.
    pub fn table_idx(&self, name: &str) -> Result<usize, StorageError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// A table by name.
    pub fn table(&self, name: &str) -> Result<&MvccTable, StorageError> {
        Ok(&self.tables[self.table_idx(name)?])
    }

    /// A table by catalog position.
    pub fn table_at(&self, idx: usize) -> &MvccTable {
        &self.tables[idx]
    }

    /// Table names in catalog order.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.iter().map(|t| t.table().name())
    }

    /// Creates a base index (no-op if an index on the same key column
    /// already exists and carries at least the requested columns).
    pub fn create_index(&mut self, def: &IndexDef) -> Result<usize, StorageError> {
        self.create_index_with(def, crate::index::key_sorted_rids)
    }

    /// Like [`create_index`](Self::create_index), with the clustered
    /// insertion order supplied by `order` — the hook for parallel index
    /// builds. `order(table, key_col)` must return exactly the stable
    /// key-sorted rid order of
    /// [`key_sorted_rids`](crate::index::key_sorted_rids) (however it was
    /// computed), so the resulting index is bit-identical to a sequential
    /// build. Idempotency and carried-set widening behave as in
    /// `create_index`.
    pub fn create_index_with(
        &mut self,
        def: &IndexDef,
        order: impl Fn(&MvccTable, usize) -> Vec<u32>,
    ) -> Result<usize, StorageError> {
        let t_idx = self.table_idx(&def.table)?;
        let schema = self.tables[t_idx].table().schema();
        let key_col = schema.col(&def.key)?;
        let carried: Result<Vec<usize>, _> = def.carried.iter().map(|c| schema.col(c)).collect();
        let carried = carried?;
        if let Some(&existing) = self.index_lookup.get(&(t_idx, key_col)) {
            let have = &self.indexes[existing];
            if carried.iter().all(|c| have.carries(*c)) {
                return Ok(existing);
            }
            // Rebuild with the union of carried columns.
            let mut union: Vec<usize> = have.carried.clone();
            for c in carried {
                if !union.contains(&c) {
                    union.push(c);
                }
            }
            let rids = order(&self.tables[t_idx], key_col);
            let rebuilt = BaseIndex::build_with_order(
                t_idx,
                &self.tables[t_idx],
                key_col,
                union,
                self.prefer_kiss,
                &rids,
            );
            self.indexes[existing] = rebuilt;
            self.bump_version(t_idx);
            return Ok(existing);
        }
        let rids = order(&self.tables[t_idx], key_col);
        let built = BaseIndex::build_with_order(
            t_idx,
            &self.tables[t_idx],
            key_col,
            carried,
            self.prefer_kiss,
            &rids,
        );
        let pos = self.indexes.len();
        self.indexes.push(built);
        self.index_lookup.insert((t_idx, key_col), pos);
        self.bump_version(t_idx);
        Ok(pos)
    }

    /// The base index on `table.key_col`, if one exists.
    pub fn find_index(&self, table: &str, key_col: &str) -> Result<&BaseIndex, StorageError> {
        let t_idx = self.table_idx(table)?;
        let schema = self.tables[t_idx].table().schema();
        let col = schema.col(key_col)?;
        self.index_lookup
            .get(&(t_idx, col))
            .map(|&i| &self.indexes[i])
            .ok_or_else(|| StorageError::UnknownIndex {
                table: table.to_string(),
                key: key_col.to_string(),
            })
    }

    /// All base indexes.
    pub fn indexes(&self) -> &[BaseIndex] {
        &self.indexes
    }

    /// Creates a multidimensional base index over `keys` (most significant
    /// first), carrying `carried` (§4.1). Idempotent for identical key
    /// lists; rebuilds with the widened carried union otherwise.
    pub fn create_composite_index(
        &mut self,
        table: &str,
        keys: &[&str],
        carried: &[&str],
    ) -> Result<usize, StorageError> {
        self.create_composite_index_with(table, keys, carried, |t, key_cols| {
            let packed = CompositeIndex::packed_keys(t, key_cols)?;
            let mut order: Vec<u32> = (0..t.version_count() as u32).collect();
            order.sort_by_key(|&rid| packed[rid as usize]);
            Ok(order)
        })
    }

    /// Like [`create_composite_index`](Self::create_composite_index), with
    /// the packed-key-sorted rid order supplied by `order` (see
    /// [`create_index_with`](Self::create_index_with) for the contract).
    pub fn create_composite_index_with(
        &mut self,
        table: &str,
        keys: &[&str],
        carried: &[&str],
        order: impl Fn(&MvccTable, &[usize]) -> Result<Vec<u32>, StorageError>,
    ) -> Result<usize, StorageError> {
        let t_idx = self.table_idx(table)?;
        let schema = self.tables[t_idx].table().schema();
        let key_cols: Vec<usize> = keys
            .iter()
            .map(|k| schema.col(k))
            .collect::<Result<_, _>>()?;
        let carried_cols: Vec<usize> = carried
            .iter()
            .map(|c| schema.col(c))
            .collect::<Result<_, _>>()?;
        let lookup_key = (t_idx, key_cols.clone());
        if let Some(&existing) = self.composite_lookup.get(&lookup_key) {
            let have = &self.composite_indexes[existing];
            if carried_cols.iter().all(|c| have.carried.contains(c)) {
                return Ok(existing);
            }
            let mut union = have.carried.clone();
            for c in carried_cols {
                if !union.contains(&c) {
                    union.push(c);
                }
            }
            let rids = order(&self.tables[t_idx], &key_cols)?;
            let rebuilt = CompositeIndex::build_with_order(
                t_idx,
                &self.tables[t_idx],
                key_cols,
                union,
                self.prefer_kiss,
                &rids,
            )?;
            self.composite_indexes[existing] = rebuilt;
            self.bump_version(t_idx);
            return Ok(existing);
        }
        let rids = order(&self.tables[t_idx], &key_cols)?;
        let built = CompositeIndex::build_with_order(
            t_idx,
            &self.tables[t_idx],
            key_cols.clone(),
            carried_cols,
            self.prefer_kiss,
            &rids,
        )?;
        let pos = self.composite_indexes.len();
        self.composite_indexes.push(built);
        self.composite_lookup.insert(lookup_key, pos);
        self.bump_version(t_idx);
        Ok(pos)
    }

    /// The multidimensional index on exactly these key columns, if any.
    pub fn find_composite_index(
        &self,
        table: &str,
        keys: &[&str],
    ) -> Result<&CompositeIndex, StorageError> {
        let t_idx = self.table_idx(table)?;
        let schema = self.tables[t_idx].table().schema();
        let key_cols: Vec<usize> = keys
            .iter()
            .map(|k| schema.col(k))
            .collect::<Result<_, _>>()?;
        self.composite_lookup
            .get(&(t_idx, key_cols))
            .map(|&i| &self.composite_indexes[i])
            .ok_or_else(|| StorageError::UnknownIndex {
                table: table.to_string(),
                key: keys.join("+"),
            })
    }

    /// A snapshot seeing everything committed so far.
    pub fn snapshot(&self) -> Snapshot {
        self.txn.snapshot()
    }

    /// Inserts a row transactionally: appends the version and maintains
    /// every index on the table. Returns `(rid, commit timestamp)`.
    pub fn insert_row(
        &mut self,
        table: &str,
        values: &[Value],
    ) -> Result<(u32, u64), StorageError> {
        let t_idx = self.table_idx(table)?;
        let ts = self.txn.next_commit_ts();
        let rid = self.tables[t_idx].insert(ts, values)?;
        for index in self.indexes.iter_mut().filter(|i| i.table_idx == t_idx) {
            index.on_insert(&self.tables[t_idx], rid);
        }
        for index in self
            .composite_indexes
            .iter_mut()
            .filter(|i| i.table_idx == t_idx)
        {
            index.on_insert(&self.tables[t_idx], rid);
        }
        self.bump_version(t_idx);
        Ok((rid, ts))
    }

    /// Deletes a row version transactionally (indexes keep the rid; scans
    /// filter it via snapshot visibility).
    pub fn delete_row(&mut self, table: &str, rid: u32) -> Result<u64, StorageError> {
        let t_idx = self.table_idx(table)?;
        let ts = self.txn.next_commit_ts();
        self.tables[t_idx].delete(ts, rid);
        self.bump_version(t_idx);
        Ok(ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use crate::types::{ColumnType, Schema};

    fn db_with_table() -> Database {
        let mut b = TableBuilder::new(
            "part",
            Schema::of(&[
                ("partkey", ColumnType::Int),
                ("brand", ColumnType::Str),
                ("size", ColumnType::Int),
            ]),
        );
        for (pk, brand, size) in [(1, "B#1", 10), (2, "B#2", 20), (3, "B#1", 30)] {
            b.push_row(vec![Value::Int(pk), Value::str(brand), Value::Int(size)])
                .unwrap();
        }
        let mut db = Database::new();
        db.add_table(b.finish());
        db
    }

    #[test]
    fn create_and_find_index() {
        let mut db = db_with_table();
        db.create_index(&IndexDef::new("part", "brand", &["partkey"]))
            .unwrap();
        let idx = db.find_index("part", "brand").unwrap();
        assert_eq!(idx.data.tuple_count(), 3);
        assert!(db.find_index("part", "size").is_err());
        assert!(db.find_index("nope", "brand").is_err());
    }

    #[test]
    fn index_lookup_finds_rows_by_key() {
        let mut db = db_with_table();
        db.create_index(&IndexDef::new("part", "brand", &["partkey"]))
            .unwrap();
        let idx = db.find_index("part", "brand").unwrap();
        let table = db.table("part").unwrap();
        let code = table
            .table()
            .encode_value(1, &Value::str("B#1"))
            .unwrap()
            .unwrap();
        let mut partkeys = Vec::new();
        idx.data.rows_for_key(code, |row| partkeys.push(row[1]));
        assert_eq!(partkeys, vec![1, 3]);
    }

    #[test]
    fn duplicate_create_index_is_idempotent() {
        let mut db = db_with_table();
        let a = db
            .create_index(&IndexDef::new("part", "brand", &["partkey"]))
            .unwrap();
        let b = db
            .create_index(&IndexDef::new("part", "brand", &["partkey"]))
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(db.indexes().len(), 1);
    }

    #[test]
    fn create_index_widens_carried_set() {
        let mut db = db_with_table();
        let a = db
            .create_index(&IndexDef::new("part", "brand", &["partkey"]))
            .unwrap();
        let b = db
            .create_index(&IndexDef::new("part", "brand", &["size"]))
            .unwrap();
        assert_eq!(a, b);
        let idx = db.find_index("part", "brand").unwrap();
        assert_eq!(idx.carried.len(), 2);
    }

    #[test]
    fn insert_maintains_indexes_and_visibility() {
        let mut db = db_with_table();
        db.create_index(&IndexDef::new("part", "brand", &["partkey"]))
            .unwrap();
        let before = db.snapshot();
        let (rid, _ts) = db
            .insert_row("part", &[Value::Int(4), Value::str("B#2"), Value::Int(40)])
            .unwrap();
        let after = db.snapshot();

        let table = db.table("part").unwrap();
        assert!(!table.visible(rid, before));
        assert!(table.visible(rid, after));

        // The index already contains the new rid; visibility filters it.
        let code = table
            .table()
            .encode_value(1, &Value::str("B#2"))
            .unwrap()
            .unwrap();
        let idx = db.find_index("part", "brand").unwrap();
        let mut rids = Vec::new();
        idx.data.rows_for_key(code, |row| rids.push(row[0] as u32));
        assert!(rids.contains(&rid));
        let visible_now: Vec<u32> = rids
            .iter()
            .copied()
            .filter(|&r| table.visible(r, after))
            .collect();
        let visible_before: Vec<u32> = rids
            .iter()
            .copied()
            .filter(|&r| table.visible(r, before))
            .collect();
        assert!(visible_now.contains(&rid));
        assert!(!visible_before.contains(&rid));
    }

    #[test]
    fn delete_hides_row_from_new_snapshots() {
        let mut db = db_with_table();
        let before = db.snapshot();
        db.delete_row("part", 0).unwrap();
        let after = db.snapshot();
        let t = db.table("part").unwrap();
        assert!(t.visible(0, before));
        assert!(!t.visible(0, after));
    }

    #[test]
    fn composite_index_roundtrip() {
        let mut db = db_with_table();
        db.create_composite_index("part", &["brand", "size"], &["partkey"])
            .unwrap();
        let ci = db.find_composite_index("part", &["brand", "size"]).unwrap();
        assert_eq!(ci.data.tuple_count(), 3);
        // Point range over (brand = "B#1", size ∈ [10, 30]).
        let t = db.table("part").unwrap().table();
        let b1 = t.encode_value(1, &Value::str("B#1")).unwrap().unwrap();
        let (lo, hi) = ci.pack_range(&[(b1, b1), (10, 30)]);
        let mut partkeys = Vec::new();
        ci.data.index.range_each(lo, hi, |_, pid| {
            partkeys.push(ci.data.payload.row(pid)[1]);
        });
        partkeys.sort_unstable();
        assert_eq!(partkeys, vec![1, 3]);
        // Key order of the composite equals lexicographic (brand, size).
        let mut keys = Vec::new();
        ci.data.index.for_each(|k, _| keys.push(k));
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn composite_index_is_idempotent_and_widens() {
        let mut db = db_with_table();
        let a = db
            .create_composite_index("part", &["brand", "size"], &["partkey"])
            .unwrap();
        let b = db
            .create_composite_index("part", &["brand", "size"], &["partkey"])
            .unwrap();
        assert_eq!(a, b);
        let c = db
            .create_composite_index("part", &["brand", "size"], &["size"])
            .unwrap();
        assert_eq!(a, c);
        let ci = db.find_composite_index("part", &["brand", "size"]).unwrap();
        assert!(ci.payload_pos_by_name("partkey").is_some());
        assert!(ci.payload_pos_by_name("size").is_some());
        // Different key order = a different index.
        assert!(db.find_composite_index("part", &["size", "brand"]).is_err());
    }

    #[test]
    fn composite_index_maintained_on_insert() {
        let mut db = db_with_table();
        db.create_composite_index("part", &["brand", "size"], &["partkey"])
            .unwrap();
        db.insert_row("part", &[Value::Int(9), Value::str("B#1"), Value::Int(15)])
            .unwrap();
        let ci = db.find_composite_index("part", &["brand", "size"]).unwrap();
        assert_eq!(ci.data.tuple_count(), 4);
    }

    #[test]
    fn table_versions_bump_on_writes_and_index_builds() {
        let mut db = db_with_table();
        let v0 = db.table_version("part").unwrap();
        assert_eq!(v0, 1);

        // A fresh index build bumps; the idempotent re-create does not.
        db.create_index(&IndexDef::new("part", "brand", &["partkey"]))
            .unwrap();
        let v1 = db.table_version("part").unwrap();
        assert!(v1 > v0);
        db.create_index(&IndexDef::new("part", "brand", &["partkey"]))
            .unwrap();
        assert_eq!(db.table_version("part").unwrap(), v1);
        // Widening the carried set rebuilds → bumps.
        db.create_index(&IndexDef::new("part", "brand", &["size"]))
            .unwrap();
        let v2 = db.table_version("part").unwrap();
        assert!(v2 > v1);

        // MVCC writes bump.
        db.insert_row("part", &[Value::Int(7), Value::str("B#1"), Value::Int(70)])
            .unwrap();
        let v3 = db.table_version("part").unwrap();
        assert!(v3 > v2);
        db.delete_row("part", 0).unwrap();
        let v4 = db.table_version("part").unwrap();
        assert!(v4 > v3);

        // Composite index builds bump too; versions are per table.
        db.create_composite_index("part", &["brand", "size"], &["partkey"])
            .unwrap();
        assert!(db.table_version("part").unwrap() > v4);
        assert_eq!(db.table_version_at(0), db.table_version("part").unwrap());
        assert!(db.table_version("nope").is_err());
    }

    #[test]
    fn unknown_table_errors() {
        let mut db = Database::new();
        assert!(db.table("x").is_err());
        assert!(db.insert_row("x", &[]).is_err());
        assert!(db.create_index(&IndexDef::new("x", "y", &[])).is_err());
    }
}
