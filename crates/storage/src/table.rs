//! Fixed-width row tables.
//!
//! Tuples are stored "as physical units" (§5) in row-major order: every
//! field is one order-preserving `u64` code (ints as-is, strings as
//! dictionary codes), so a row is a fixed-width `&[u64]` slice and the rid
//! is the row index. Per-column statistics (min/max code, 32-bit-ness)
//! drive the planner's KISS-vs-prefix-tree index choice.

use crate::dict::Dictionary;
use crate::types::{ColumnType, Schema, StorageError, Value};

/// Per-column statistics collected at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnStats {
    /// Smallest encoded value (u64::MAX when the table is empty).
    pub min: u64,
    /// Largest encoded value (0 when the table is empty).
    pub max: u64,
}

impl ColumnStats {
    /// `true` if every encoded value fits the KISS-Tree's 32-bit key domain.
    pub fn fits_u32(&self) -> bool {
        self.min > self.max // empty
            || self.max <= u32::MAX as u64
    }
}

/// An immutable, bulk-loaded row table. Mutation goes through
/// [`MvccTable`](crate::mvcc::MvccTable), which appends row versions here.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    dicts: Vec<Option<Dictionary>>,
    /// Row-major encoded data; row `r` occupies
    /// `data[r * width .. (r + 1) * width]`.
    data: Vec<u64>,
    stats: Vec<ColumnStats>,
}

impl Table {
    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows (including dead versions when used under MVCC).
    pub fn row_count(&self) -> usize {
        if self.schema.width() == 0 {
            0
        } else {
            self.data.len() / self.schema.width()
        }
    }

    /// The encoded row slice for `rid`.
    #[inline]
    pub fn row(&self, rid: u32) -> &[u64] {
        let w = self.schema.width();
        &self.data[rid as usize * w..(rid as usize + 1) * w]
    }

    /// Encoded field accessor.
    #[inline]
    pub fn get(&self, rid: u32, col: usize) -> u64 {
        self.data[rid as usize * self.schema.width() + col]
    }

    /// Decoded field accessor.
    pub fn value(&self, rid: u32, col: usize) -> Value {
        let code = self.get(rid, col);
        match self.schema.column(col).ty {
            ColumnType::Int => Value::Int(code as i64),
            ColumnType::Str => Value::Str(
                self.dicts[col]
                    .as_ref()
                    .expect("string columns always have dictionaries")
                    .decode(code as u32)
                    .to_string(),
            ),
        }
    }

    /// The dictionary of a string column (`None` for int columns).
    pub fn dict(&self, col: usize) -> Option<&Dictionary> {
        self.dicts[col].as_ref()
    }

    /// Column statistics.
    pub fn stats(&self, col: usize) -> ColumnStats {
        self.stats[col]
    }

    /// Encodes a predicate constant for comparisons against this column.
    /// Exact match semantics: `Ok(None)` means the value cannot match any
    /// row (e.g. a string absent from the dictionary).
    pub fn encode_value(&self, col: usize, v: &Value) -> Result<Option<u64>, StorageError> {
        let def = self.schema.column(col);
        match (def.ty, v) {
            (ColumnType::Int, Value::Int(i)) => {
                if *i < 0 {
                    return Err(StorageError::NegativeInt {
                        column: def.name.clone(),
                        value: *i,
                    });
                }
                Ok(Some(*i as u64))
            }
            (ColumnType::Str, Value::Str(s)) => Ok(self.dicts[col]
                .as_ref()
                .and_then(|d| d.encode(s))
                .map(|c| c as u64)),
            (expected, got) => Err(StorageError::TypeMismatch {
                column: def.name.clone(),
                expected,
                got: got.column_type(),
            }),
        }
    }

    /// Encodes an *inclusive range bound*: returns the tightest encoded
    /// `[lo, hi]` covering values `[lo_v, hi_v]`, or `None` when the range
    /// cannot match (e.g. entirely outside the dictionary domain).
    pub fn encode_range(
        &self,
        col: usize,
        lo_v: &Value,
        hi_v: &Value,
    ) -> Result<Option<(u64, u64)>, StorageError> {
        let def = self.schema.column(col);
        match (def.ty, lo_v, hi_v) {
            (ColumnType::Int, Value::Int(lo), Value::Int(hi)) => {
                let lo = (*lo).max(0) as u64;
                if *hi < 0 {
                    return Ok(None);
                }
                let hi = *hi as u64;
                Ok((lo <= hi).then_some((lo, hi)))
            }
            (ColumnType::Str, Value::Str(lo), Value::Str(hi)) => {
                let d = self.dicts[col].as_ref().expect("str column has dictionary");
                let lo_c = d.lower_bound(lo);
                let Some(hi_c) = d.upper_bound(hi) else {
                    return Ok(None);
                };
                Ok((lo_c <= hi_c).then_some((lo_c as u64, hi_c as u64)))
            }
            _ => Err(StorageError::TypeMismatch {
                column: def.name.clone(),
                expected: def.ty,
                got: lo_v.column_type(),
            }),
        }
    }

    /// Appends an already-encoded row (MVCC path; dictionaries must already
    /// cover string codes). Returns the new rid.
    pub(crate) fn push_encoded(&mut self, row: &[u64]) -> u32 {
        debug_assert_eq!(row.len(), self.schema.width());
        let rid = self.row_count() as u32;
        self.data.extend_from_slice(row);
        for (c, &v) in row.iter().enumerate() {
            let s = &mut self.stats[c];
            s.min = s.min.min(v);
            s.max = s.max.max(v);
        }
        rid
    }

    /// Encodes a [`Value`] row using the existing dictionaries; fails if a
    /// string is outside the dictionary domain (extending domains would
    /// reassign codes and is not supported after load — see crate docs).
    pub fn encode_row(&self, values: &[Value]) -> Result<Vec<u64>, StorageError> {
        if values.len() != self.schema.width() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.width(),
                got: values.len(),
            });
        }
        let mut row = Vec::with_capacity(values.len());
        for (c, v) in values.iter().enumerate() {
            match self.encode_value(c, v)? {
                Some(code) => row.push(code),
                None => {
                    return Err(StorageError::ValueNotInDictionary {
                        column: self.schema.column(c).name.clone(),
                        value: v.to_string(),
                    })
                }
            }
        }
        Ok(row)
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.capacity() * 8
            + self
                .dicts
                .iter()
                .flatten()
                .map(|d| d.values().iter().map(|s| s.len() + 24).sum::<usize>())
                .sum::<usize>()
    }
}

/// Two-phase table construction: collect raw rows, then build dictionaries
/// from the full string domains and encode everything (this is what makes
/// the dictionaries order-preserving).
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    raw: Vec<Value>,
}

impl TableBuilder {
    /// Starts building a table.
    pub fn new(name: &str, schema: Schema) -> Self {
        Self {
            name: name.to_string(),
            schema,
            raw: Vec::new(),
        }
    }

    /// Appends a row of raw values (type-checked).
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<(), StorageError> {
        if values.len() != self.schema.width() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.width(),
                got: values.len(),
            });
        }
        for (c, v) in values.iter().enumerate() {
            let def = self.schema.column(c);
            if v.column_type() != def.ty {
                return Err(StorageError::TypeMismatch {
                    column: def.name.clone(),
                    expected: def.ty,
                    got: v.column_type(),
                });
            }
            if let Value::Int(i) = v {
                if *i < 0 {
                    return Err(StorageError::NegativeInt {
                        column: def.name.clone(),
                        value: *i,
                    });
                }
            }
        }
        self.raw.extend(values);
        Ok(())
    }

    /// Number of rows staged so far.
    pub fn staged_rows(&self) -> usize {
        if self.schema.width() == 0 {
            0
        } else {
            self.raw.len() / self.schema.width()
        }
    }

    /// Builds dictionaries, encodes all rows, and returns the table.
    pub fn finish(self) -> Table {
        let width = self.schema.width();
        let nrows = self.raw.len().checked_div(width).unwrap_or(0);
        // Build per-column dictionaries from the full domains.
        let mut dicts: Vec<Option<Dictionary>> = Vec::with_capacity(width);
        for (c, def) in self.schema.columns().iter().enumerate() {
            match def.ty {
                ColumnType::Int => dicts.push(None),
                ColumnType::Str => {
                    let dict =
                        Dictionary::build((0..nrows).map(|r| self.raw[r * width + c].as_str()));
                    dicts.push(Some(dict));
                }
            }
        }
        let mut data = Vec::with_capacity(self.raw.len());
        let mut stats = vec![
            ColumnStats {
                min: u64::MAX,
                max: 0
            };
            width
        ];
        for r in 0..nrows {
            for c in 0..width {
                let code = match &self.raw[r * width + c] {
                    Value::Int(i) => *i as u64,
                    Value::Str(s) => dicts[c]
                        .as_ref()
                        .expect("str column has dict")
                        .encode(s)
                        .expect("dictionary was built from these values")
                        as u64,
                };
                let s = &mut stats[c];
                s.min = s.min.min(code);
                s.max = s.max.max(code);
                data.push(code);
            }
        }
        Table {
            name: self.name,
            schema: self.schema,
            dicts,
            data,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut b = TableBuilder::new(
            "t",
            Schema::of(&[("id", ColumnType::Int), ("region", ColumnType::Str)]),
        );
        for (id, r) in [(3, "EUROPE"), (1, "ASIA"), (2, "EUROPE"), (4, "AMERICA")] {
            b.push_row(vec![Value::Int(id), Value::str(r)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn roundtrip_values() {
        let t = sample();
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.value(0, 0), Value::Int(3));
        assert_eq!(t.value(0, 1), Value::str("EUROPE"));
        assert_eq!(t.value(3, 1), Value::str("AMERICA"));
    }

    #[test]
    fn dictionary_codes_sorted() {
        let t = sample();
        let d = t.dict(1).unwrap();
        assert_eq!(d.values(), &["AMERICA", "ASIA", "EUROPE"]);
        // AMERICA < ASIA < EUROPE in code space.
        assert!(t.get(3, 1) < t.get(1, 1));
        assert!(t.get(1, 1) < t.get(0, 1));
    }

    #[test]
    fn stats_track_min_max() {
        let t = sample();
        let s = t.stats(0);
        assert_eq!((s.min, s.max), (1, 4));
        assert!(s.fits_u32());
    }

    #[test]
    fn encode_value_and_missing_string() {
        let t = sample();
        assert_eq!(t.encode_value(1, &Value::str("ASIA")).unwrap(), Some(1));
        assert_eq!(t.encode_value(1, &Value::str("MOON")).unwrap(), None);
        assert!(matches!(
            t.encode_value(0, &Value::str("x")),
            Err(StorageError::TypeMismatch { .. })
        ));
        assert!(matches!(
            t.encode_value(0, &Value::Int(-1)),
            Err(StorageError::NegativeInt { .. })
        ));
    }

    #[test]
    fn encode_range_clamps_to_domain() {
        let t = sample();
        // String range partially outside the dictionary.
        let r = t
            .encode_range(1, &Value::str("AACHEN"), &Value::str("AZORES"))
            .unwrap();
        assert_eq!(r, Some((0, 1))); // AMERICA..=ASIA
        let none = t
            .encode_range(1, &Value::str("X"), &Value::str("Z"))
            .unwrap();
        assert_eq!(none, None);
        let ints = t.encode_range(0, &Value::Int(-5), &Value::Int(2)).unwrap();
        assert_eq!(ints, Some((0, 2)));
        assert_eq!(
            t.encode_range(0, &Value::Int(5), &Value::Int(2)).unwrap(),
            None
        );
    }

    #[test]
    fn builder_rejects_bad_rows() {
        let mut b = TableBuilder::new("t", Schema::of(&[("a", ColumnType::Int)]));
        assert!(matches!(
            b.push_row(vec![Value::str("x")]),
            Err(StorageError::TypeMismatch { .. })
        ));
        assert!(matches!(
            b.push_row(vec![]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            b.push_row(vec![Value::Int(-3)]),
            Err(StorageError::NegativeInt { .. })
        ));
    }

    #[test]
    fn empty_table() {
        let t = TableBuilder::new("e", Schema::of(&[("a", ColumnType::Int)])).finish();
        assert_eq!(t.row_count(), 0);
        assert!(t.stats(0).fits_u32());
    }
}
