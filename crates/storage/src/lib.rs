//! In-memory row-store substrate for QPPT (the DexterDB analogue of §3/§5).
//!
//! The paper implements QPPT inside DexterDB, "an in-memory database system
//! that stores tuples in a row-store and uses MVCC for transactional
//! isolation". This crate provides that substrate, built from scratch:
//!
//! * [`types`] — column types, runtime values, schemas;
//! * [`dict`] — order-preserving string dictionaries (strings must become
//!   order-preserving integer codes so prefix-tree order equals logical
//!   order; SSB string domains are known at load time, so codes are assigned
//!   from the sorted domain);
//! * [`table`] — fixed-width row tables (`u64`-encoded fields, rid = row
//!   index) with per-column statistics;
//! * [`mvcc`] — begin/end-timestamp row versioning with snapshot visibility
//!   ("base indexes have to care for transactional isolation, intermediate
//!   indexes do not have to, because they are private for the query" — §3);
//! * [`index`] — the unified tree-index handle ([`index::TreeIndex`]:
//!   KISS-Tree for 32-bit key domains, prefix tree otherwise, chosen at plan
//!   time exactly as §2.2 describes), payload buffers, and base indexes
//!   (secondary or partially clustered, §3);
//! * [`db`] — the catalog: tables plus their base indexes, with index
//!   maintenance on writes;
//! * [`query`] — the declarative star-query description ([`query::QuerySpec`])
//!   and result format shared by the QPPT engine, both comparison engines,
//!   and the reference oracle.

pub mod db;
pub mod dict;
pub mod index;
pub mod mvcc;
pub mod query;
pub mod table;
pub mod types;

pub use db::{Database, IndexDef};
pub use dict::Dictionary;
pub use index::{
    key_sorted_rids, sync_scan_indexes, sync_scan_indexes_range, BaseIndex, CompositeIndex,
    IndexedTable, KeyWidth, PayloadBuf, TreeIndex,
};
pub use mvcc::{MvccTable, Snapshot, TxnManager};
pub use query::{
    compile_predicate, AggExpr, AggOp, ColRef, CompiledPred, DimSpec, Expr, OrderKey, OrderTerm,
    Predicate, QueryResult, QuerySpec, ResultRow,
};
pub use table::{ColumnStats, Table, TableBuilder};
pub use types::{ColumnDef, ColumnType, Schema, StorageError, Value};
