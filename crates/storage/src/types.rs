//! Column types, runtime values, and schemas.

use std::collections::HashMap;
use std::fmt;

/// Logical column type.
///
/// Integers are stored as their own value (order-preserving); they must be
/// non-negative (SSB, like most OLAP key/measure domains, is non-negative;
/// signed columns would use [`qppt_mem::encode_i64`], which the storage
/// layer asserts it never needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Non-negative 63-bit integer.
    Int,
    /// Dictionary-encoded string.
    Str,
}

/// A runtime value, used at API boundaries (building tables, writing
/// predicates, decoding results). Internally everything is a `u64` code.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Value {
    Int(i64),
    Str(String),
}

impl Value {
    /// Convenience constructor from `&str`.
    pub fn str(s: &str) -> Self {
        Value::Str(s.to_string())
    }

    /// The type this value inhabits.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::Int(_) => ColumnType::Int,
            Value::Str(_) => ColumnType::Str,
        }
    }

    /// Integer accessor (panics on strings; used in tests and decoding).
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::Str(s) => panic!("expected Int, found Str({s:?})"),
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            Value::Int(v) => panic!("expected Str, found Int({v})"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ColumnType,
}

impl ColumnDef {
    /// Shorthand constructor.
    pub fn new(name: &str, ty: ColumnType) -> Self {
        Self {
            name: name.to_string(),
            ty,
        }
    }
}

/// An ordered set of columns with by-name lookup.
#[derive(Debug, Clone)]
pub struct Schema {
    columns: Vec<ColumnDef>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema; duplicate column names are an error.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Self, StorageError> {
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            if by_name.insert(c.name.clone(), i).is_some() {
                return Err(StorageError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Self { columns, by_name })
    }

    /// Shorthand: `[("name", ColumnType::Int), ...]`.
    pub fn of(cols: &[(&str, ColumnType)]) -> Self {
        Self::new(cols.iter().map(|(n, t)| ColumnDef::new(n, *t)).collect())
            .expect("static schemas have unique names")
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn col(&self, name: &str) -> Result<usize, StorageError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownColumn(name.to_string()))
    }

    /// Definition of a column by index.
    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }
}

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    DuplicateColumn(String),
    UnknownColumn(String),
    UnknownTable(String),
    UnknownIndex {
        table: String,
        key: String,
    },
    TypeMismatch {
        column: String,
        expected: ColumnType,
        got: ColumnType,
    },
    ArityMismatch {
        expected: usize,
        got: usize,
    },
    NegativeInt {
        column: String,
        value: i64,
    },
    ValueNotInDictionary {
        column: String,
        value: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::DuplicateColumn(c) => write!(f, "duplicate column {c:?}"),
            StorageError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            StorageError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            StorageError::UnknownIndex { table, key } => {
                write!(f, "no base index on {table}.{key}")
            }
            StorageError::TypeMismatch {
                column,
                expected,
                got,
            } => {
                write!(f, "column {column:?} expects {expected:?}, got {got:?}")
            }
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} values, schema has {expected} columns")
            }
            StorageError::NegativeInt { column, value } => {
                write!(
                    f,
                    "column {column:?} got negative value {value} (unsupported)"
                )
            }
            StorageError::ValueNotInDictionary { column, value } => {
                write!(
                    f,
                    "value {value:?} is not in the dictionary of column {column:?}"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let s = Schema::of(&[("a", ColumnType::Int), ("b", ColumnType::Str)]);
        assert_eq!(s.col("a").unwrap(), 0);
        assert_eq!(s.col("b").unwrap(), 1);
        assert!(matches!(s.col("c"), Err(StorageError::UnknownColumn(_))));
        assert_eq!(s.width(), 2);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(vec![
            ColumnDef::new("x", ColumnType::Int),
            ColumnDef::new("x", ColumnType::Int),
        ]);
        assert!(matches!(r, Err(StorageError::DuplicateColumn(_))));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(5).as_int(), 5);
        assert_eq!(Value::str("hi").as_str(), "hi");
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(format!("{}", Value::Int(7)), "7");
        assert_eq!(format!("{}", Value::str("s")), "s");
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn wrong_accessor_panics() {
        Value::str("s").as_int();
    }
}
