//! Property-based model tests: both hash tables must behave exactly like
//! `std::collections::HashMap` under arbitrary insert/update/probe mixes.

use proptest::prelude::*;
use qppt_hash::{ChainedHashMap, OpenHashMap};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    GetOrInsertPush(u64, u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..512, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
            (0u64..512, any::<u64>()).prop_map(|(k, v)| Op::GetOrInsertPush(k, v)),
        ],
        0..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn chained_matches_std(ops in ops(), probes in prop::collection::vec(0u64..1024, 0..64)) {
        let mut ours: ChainedHashMap<Vec<u64>> = ChainedHashMap::new();
        let mut model: HashMap<u64, Vec<u64>> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    ours.insert(k, vec![v]);
                    model.insert(k, vec![v]);
                }
                Op::GetOrInsertPush(k, v) => {
                    ours.get_or_insert_with(k, Vec::new).push(v);
                    model.entry(k).or_default().push(v);
                }
            }
        }
        prop_assert_eq!(ours.len(), model.len());
        for (&k, v) in &model {
            prop_assert_eq!(ours.get(k), Some(v));
        }
        for &p in &probes {
            prop_assert_eq!(ours.contains_key(p), model.contains_key(&p));
        }
        let mut got: Vec<(u64, Vec<u64>)> = ours.iter().map(|(k, v)| (k, v.clone())).collect();
        got.sort();
        let mut expect: Vec<(u64, Vec<u64>)> = model.into_iter().collect();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn open_matches_std(ops in ops(), probes in prop::collection::vec(0u64..1024, 0..64)) {
        let mut ours: OpenHashMap<Vec<u64>> = OpenHashMap::new();
        let mut model: HashMap<u64, Vec<u64>> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    ours.insert(k, vec![v]);
                    model.insert(k, vec![v]);
                }
                Op::GetOrInsertPush(k, v) => {
                    ours.get_or_insert_with(k, Vec::new).push(v);
                    model.entry(k).or_default().push(v);
                }
            }
        }
        prop_assert_eq!(ours.len(), model.len());
        for (&k, v) in &model {
            prop_assert_eq!(ours.get(k), Some(v));
        }
        for &p in &probes {
            prop_assert_eq!(ours.contains_key(p), model.contains_key(&p));
        }
    }

    #[test]
    fn tables_agree_with_each_other(pairs in prop::collection::vec((any::<u64>(), any::<u64>()), 0..300)) {
        let mut chained = ChainedHashMap::new();
        let mut open = OpenHashMap::new();
        for &(k, v) in &pairs {
            chained.insert(k, v);
            open.insert(k, v);
        }
        prop_assert_eq!(chained.len(), open.len());
        for &(k, _) in &pairs {
            prop_assert_eq!(chained.get(k), open.get(k));
        }
    }
}
