//! Hash-table comparators for the QPPT index micro-benchmarks (§2.5).
//!
//! Traditional join and group operators build hash tables internally, so the
//! paper benchmarks its trees against two C hash tables: the **GLib** hash
//! table (separate chaining over a prime-sized bucket array) and the
//! **Boost** hash table. We reimplement the two collision strategies from
//! scratch:
//!
//! * [`ChainedHashMap`] — separate chaining, prime-sized bucket array,
//!   GLib-like. Nodes live in an arena and are linked per bucket.
//! * [`OpenHashMap`] — open addressing with linear probing over a
//!   power-of-two array (the flat layout modern `boost::unordered_flat_map`
//!   uses; better cache behaviour, no per-node allocation).
//!
//! Both map `u64` keys to a single value (inserts *update* in place, which
//! is the paper's "insert/update" workload) and are **not** order-preserving
//! — the property §2.6 calls out as the trees' structural advantage.
//! The column-at-a-time and vector-at-a-time comparison engines also build
//! their join/group tables from this crate, as such engines do in practice.

mod chained;
mod open;

pub use chained::ChainedHashMap;
pub use open::OpenHashMap;

/// The hash function both tables use: splitmix64 finalizer — cheap, and
/// strong enough that bucket counts behave for integer keys.
#[inline]
pub(crate) fn hash64(key: u64) -> u64 {
    qppt_mem::prng::mix64(key)
}

/// Common capacity/introspection API shared by both tables, so benches can
/// treat them uniformly.
pub trait HashIndex<V> {
    /// Inserts or updates; returns the previous value if the key existed.
    fn insert(&mut self, key: u64, value: V) -> Option<V>;
    /// Point lookup.
    fn get(&self, key: u64) -> Option<&V>;
    /// Number of stored keys.
    fn len(&self) -> usize;
    /// `true` if no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Approximate heap footprint in bytes.
    fn memory_bytes(&self) -> usize;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn exercise<T: HashIndex<u64> + Default>() {
        let mut t = T::default();
        assert!(t.is_empty());
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(1, 11), Some(10));
        assert_eq!(t.get(1), Some(&11));
        assert_eq!(t.get(2), None);
        assert_eq!(t.len(), 1);
        assert!(t.memory_bytes() > 0);
    }

    #[test]
    fn both_tables_satisfy_the_trait() {
        exercise::<ChainedHashMap<u64>>();
        exercise::<OpenHashMap<u64>>();
    }
}
