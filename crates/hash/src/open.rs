//! Open-addressing hash table (flat layout, linear probing).

use crate::{hash64, HashIndex};

/// Flat hash map: keys and values in one power-of-two array probed linearly.
///
/// No deletions (the QPPT workloads never delete from operator-internal
/// tables), so no tombstones; growth at load factor 7/8 doubles the array.
#[derive(Debug, Clone)]
pub struct OpenHashMap<V> {
    /// `None` = empty slot.
    slots: Vec<Option<(u64, V)>>,
    mask: usize,
    len: usize,
}

impl<V> Default for OpenHashMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> OpenHashMap<V> {
    const MIN_SLOTS: usize = 16;

    /// Creates an empty table.
    pub fn new() -> Self {
        let n = Self::MIN_SLOTS;
        Self {
            slots: (0..n).map(|_| None).collect(),
            mask: n - 1,
            len: 0,
        }
    }

    /// Creates a table pre-sized for `n` keys.
    pub fn with_capacity(n: usize) -> Self {
        let slots = (n.max(1) * 8 / 7 + 1)
            .next_power_of_two()
            .max(Self::MIN_SLOTS);
        Self {
            slots: (0..slots).map(|_| None).collect(),
            mask: slots - 1,
            len: 0,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot-array size (test/inspection hook).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn probe_start(&self, key: u64) -> usize {
        (hash64(key) as usize) & self.mask
    }

    /// Index of the slot holding `key`, or the empty slot where it belongs.
    #[inline]
    fn find_slot(&self, key: u64) -> usize {
        let mut i = self.probe_start(key);
        loop {
            match &self.slots[i] {
                None => return i,
                Some((k, _)) if *k == key => return i,
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: u64) -> Option<&V> {
        match &self.slots[self.find_slot(key)] {
            Some((_, v)) => Some(v),
            None => None,
        }
    }

    /// Mutable point lookup.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let i = self.find_slot(key);
        match &mut self.slots[i] {
            Some((_, v)) => Some(v),
            None => None,
        }
    }

    /// `true` if the key is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.slots[self.find_slot(key)].is_some()
    }

    /// Inserts or updates; returns the replaced value, if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        self.grow_if_needed();
        let i = self.find_slot(key);
        match self.slots[i].take() {
            Some((_, old)) => {
                self.slots[i] = Some((key, value));
                Some(old)
            }
            None => {
                self.slots[i] = Some((key, value));
                self.len += 1;
                None
            }
        }
    }

    /// Returns a mutable reference to the value for `key`, inserting
    /// `default()` first if absent.
    pub fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        self.grow_if_needed();
        let i = self.find_slot(key);
        if self.slots[i].is_none() {
            self.slots[i] = Some((key, default()));
            self.len += 1;
        }
        match &mut self.slots[i] {
            Some((_, v)) => v,
            None => unreachable!("slot was just filled"),
        }
    }

    /// Iterates `(key, &value)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    fn grow_if_needed(&mut self) {
        if (self.len + 1) * 8 <= self.slots.len() * 7 {
            return;
        }
        let new_n = self.slots.len() * 2;
        let old = core::mem::replace(&mut self.slots, (0..new_n).map(|_| None).collect());
        self.mask = new_n - 1;
        for slot in old.into_iter().flatten() {
            let (k, v) = slot;
            let mut i = (hash64(k) as usize) & self.mask;
            while self.slots[i].is_some() {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = Some((k, v));
        }
    }

    /// Approximate heap footprint.
    pub fn memory_bytes(&self) -> usize {
        self.slots.capacity() * core::mem::size_of::<Option<(u64, V)>>()
    }
}

impl<V> HashIndex<V> for OpenHashMap<V> {
    fn insert(&mut self, key: u64, value: V) -> Option<V> {
        OpenHashMap::insert(self, key, value)
    }
    fn get(&self, key: u64) -> Option<&V> {
        OpenHashMap::get(self, key)
    }
    fn len(&self) -> usize {
        OpenHashMap::len(self)
    }
    fn memory_bytes(&self) -> usize {
        OpenHashMap::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qppt_mem::Xoshiro256StarStar;
    use std::collections::HashMap;

    #[test]
    fn matches_std_hashmap() {
        let mut ours = OpenHashMap::new();
        let mut std_map = HashMap::new();
        let mut rng = Xoshiro256StarStar::new(2);
        for i in 0..20_000u64 {
            let k = rng.below(8192);
            ours.insert(k, i);
            std_map.insert(k, i);
        }
        assert_eq!(ours.len(), std_map.len());
        for (&k, v) in &std_map {
            assert_eq!(ours.get(k), Some(v));
        }
        assert_eq!(ours.get(123_456_789), None);
    }

    #[test]
    fn update_replaces_and_returns_old() {
        let mut m = OpenHashMap::new();
        assert_eq!(m.insert(5, 1), None);
        assert_eq!(m.insert(5, 2), Some(1));
        assert_eq!(m.get(5), Some(&2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut m = OpenHashMap::new();
        let start = m.slot_count();
        for i in 0..10_000u64 {
            m.insert(i, i + 1);
        }
        assert!(m.slot_count() > start);
        for i in 0..10_000u64 {
            assert_eq!(m.get(i), Some(&(i + 1)));
        }
    }

    #[test]
    fn colliding_keys_probe_linearly() {
        // Force collisions by filling a small table with keys that share a
        // probe start after masking (any keys work — correctness is the
        // point, the probe sequence is internal).
        let mut m = OpenHashMap::with_capacity(4);
        for i in 0..100u64 {
            m.insert(i * 16, i);
        }
        for i in 0..100u64 {
            assert_eq!(m.get(i * 16), Some(&i));
        }
    }

    #[test]
    fn get_or_insert_with_builds_lists() {
        let mut m: OpenHashMap<Vec<u32>> = OpenHashMap::new();
        for i in 0..100u32 {
            m.get_or_insert_with((i % 7) as u64, Vec::new).push(i);
        }
        assert_eq!(m.len(), 7);
        assert_eq!(m.get(0).unwrap().len(), 15);
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut m = OpenHashMap::new();
        for i in 0..64u64 {
            m.insert(i, ());
        }
        let mut got: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        got.sort_unstable();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }
}
