//! Separate-chaining hash table (GLib-like).

use crate::{hash64, HashIndex};

const NONE: u32 = u32::MAX;

/// Prime bucket counts, roughly doubling — the sizing policy GLib's
/// `GHashTable` uses.
const PRIMES: &[usize] = &[
    11,
    23,
    47,
    97,
    193,
    389,
    769,
    1543,
    3079,
    6151,
    12289,
    24593,
    49157,
    98317,
    196_613,
    393_241,
    786_433,
    1_572_869,
    3_145_739,
    6_291_469,
    12_582_917,
    25_165_843,
    50_331_653,
    100_663_319,
    201_326_611,
];

#[derive(Debug, Clone)]
struct Node<V> {
    key: u64,
    value: V,
    next: u32,
}

/// Hash map with per-bucket chains over an arena of nodes.
///
/// Inserts update in place; chains grow at load factor 0.75 by rehashing
/// into the next prime bucket count.
#[derive(Debug, Clone)]
pub struct ChainedHashMap<V> {
    buckets: Vec<u32>,
    nodes: Vec<Node<V>>,
    prime_idx: usize,
}

impl<V> Default for ChainedHashMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> ChainedHashMap<V> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            buckets: vec![NONE; PRIMES[0]],
            nodes: Vec::new(),
            prime_idx: 0,
        }
    }

    /// Creates a table pre-sized for `n` keys.
    pub fn with_capacity(n: usize) -> Self {
        let mut prime_idx = 0;
        while prime_idx + 1 < PRIMES.len() && PRIMES[prime_idx] * 3 / 4 < n {
            prime_idx += 1;
        }
        Self {
            buckets: vec![NONE; PRIMES[prime_idx]],
            nodes: Vec::with_capacity(n),
            prime_idx,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of buckets (test/inspection hook).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        (hash64(key) % self.buckets.len() as u64) as usize
    }

    /// Point lookup.
    pub fn get(&self, key: u64) -> Option<&V> {
        let mut cur = self.buckets[self.bucket_of(key)];
        while cur != NONE {
            let node = &self.nodes[cur as usize];
            if node.key == key {
                return Some(&node.value);
            }
            cur = node.next;
        }
        None
    }

    /// Mutable point lookup.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let mut cur = self.buckets[self.bucket_of(key)];
        while cur != NONE {
            if self.nodes[cur as usize].key == key {
                return Some(&mut self.nodes[cur as usize].value);
            }
            cur = self.nodes[cur as usize].next;
        }
        None
    }

    /// `true` if the key is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Inserts or updates; returns the replaced value, if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if let Some(slot) = self.get_mut(key) {
            return Some(core::mem::replace(slot, value));
        }
        self.grow_if_needed();
        let b = self.bucket_of(key);
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            key,
            value,
            next: self.buckets[b],
        });
        self.buckets[b] = id;
        None
    }

    /// Returns a mutable reference to the value for `key`, inserting
    /// `default()` first if absent. The entry point hash joins use to build
    /// rid lists.
    pub fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        // Split borrows: find index first.
        let mut cur = self.buckets[self.bucket_of(key)];
        while cur != NONE {
            if self.nodes[cur as usize].key == key {
                return &mut self.nodes[cur as usize].value;
            }
            cur = self.nodes[cur as usize].next;
        }
        self.grow_if_needed();
        let b = self.bucket_of(key);
        let id = self.nodes.len();
        self.nodes.push(Node {
            key,
            value: default(),
            next: self.buckets[b],
        });
        self.buckets[b] = id as u32;
        &mut self.nodes[id].value
    }

    /// Iterates `(key, &value)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.nodes.iter().map(|n| (n.key, &n.value))
    }

    fn grow_if_needed(&mut self) {
        if self.nodes.len() < self.buckets.len() * 3 / 4 || self.prime_idx + 1 >= PRIMES.len() {
            return;
        }
        self.prime_idx += 1;
        let new_len = PRIMES[self.prime_idx];
        self.buckets.clear();
        self.buckets.resize(new_len, NONE);
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.next = NONE;
            let _ = node;
            let _ = i;
        }
        // Relink every node.
        for i in 0..self.nodes.len() {
            let b = (hash64(self.nodes[i].key) % new_len as u64) as usize;
            self.nodes[i].next = self.buckets[b];
            self.buckets[b] = i as u32;
        }
    }

    /// Approximate heap footprint.
    pub fn memory_bytes(&self) -> usize {
        self.buckets.len() * 4 + self.nodes.capacity() * core::mem::size_of::<Node<V>>()
    }
}

impl<V> HashIndex<V> for ChainedHashMap<V> {
    fn insert(&mut self, key: u64, value: V) -> Option<V> {
        ChainedHashMap::insert(self, key, value)
    }
    fn get(&self, key: u64) -> Option<&V> {
        ChainedHashMap::get(self, key)
    }
    fn len(&self) -> usize {
        ChainedHashMap::len(self)
    }
    fn memory_bytes(&self) -> usize {
        ChainedHashMap::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qppt_mem::Xoshiro256StarStar;
    use std::collections::HashMap;

    #[test]
    fn matches_std_hashmap() {
        let mut ours = ChainedHashMap::new();
        let mut std_map = HashMap::new();
        let mut rng = Xoshiro256StarStar::new(1);
        for i in 0..20_000u64 {
            let k = rng.below(8192);
            ours.insert(k, i);
            std_map.insert(k, i);
        }
        assert_eq!(ours.len(), std_map.len());
        for (&k, v) in &std_map {
            assert_eq!(ours.get(k), Some(v));
        }
        assert_eq!(ours.get(99_999_999), None);
    }

    #[test]
    fn update_replaces_and_returns_old() {
        let mut m = ChainedHashMap::new();
        assert_eq!(m.insert(5, "a"), None);
        assert_eq!(m.insert(5, "b"), Some("a"));
        assert_eq!(m.get(5), Some(&"b"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn growth_rehashes_correctly() {
        let mut m = ChainedHashMap::new();
        let start_buckets = m.bucket_count();
        for i in 0..10_000u64 {
            m.insert(i, i * 2);
        }
        assert!(m.bucket_count() > start_buckets);
        for i in 0..10_000u64 {
            assert_eq!(m.get(i), Some(&(i * 2)));
        }
    }

    #[test]
    fn get_or_insert_with_builds_lists() {
        let mut m: ChainedHashMap<Vec<u32>> = ChainedHashMap::new();
        for i in 0..100u32 {
            m.get_or_insert_with((i % 10) as u64, Vec::new).push(i);
        }
        assert_eq!(m.len(), 10);
        let l = m.get(3).unwrap();
        assert_eq!(l.len(), 10);
        assert!(l.iter().all(|v| v % 10 == 3));
    }

    #[test]
    fn with_capacity_avoids_early_growth() {
        let m = ChainedHashMap::<u64>::with_capacity(10_000);
        assert!(m.bucket_count() * 3 / 4 >= 10_000);
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut m = ChainedHashMap::new();
        for i in 0..50u64 {
            m.insert(i, i);
        }
        let mut got: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }
}
