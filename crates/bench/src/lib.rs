//! Shared harness for regenerating the paper's figures.
//!
//! Each `fig*` binary (and the matching Criterion bench) prints the same
//! rows/series as the corresponding figure of the paper; EXPERIMENTS.md
//! records paper-reported vs. measured values. Scales default to laptop/CI
//! sizes — pass `--sf` / `--keys` to go bigger; the claims under test are
//! *shapes* (who wins, by what factor, where crossovers sit), not absolute
//! milliseconds from the authors' 2012 testbed.

use std::time::{Duration, Instant};

use qppt_columnar::{ColumnAtATimeEngine, ColumnDb, VectorAtATimeEngine};
use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_ssb::{queries, SsbDb};
use qppt_storage::{QueryResult, QuerySpec};

/// An SSB database with every base index the 13 queries need, ready for all
/// engines.
pub struct BenchDb {
    pub ssb: SsbDb,
}

impl BenchDb {
    /// Generates and fully prepares an SSB instance (indexes for every
    /// query, every plan-option variant).
    pub fn prepare(sf: f64, seed: u64) -> Self {
        let mut ssb = SsbDb::generate(sf, seed);
        let default = PlanOptions::default();
        let setops = PlanOptions::default().with_set_ops(true);
        for q in queries::all_queries() {
            prepare_indexes(&mut ssb.db, &q, &default).expect("SSB indexes build");
            prepare_indexes(&mut ssb.db, &q, &setops).expect("SSB set-op indexes build");
        }
        Self { ssb }
    }

    /// Runs a query on the QPPT engine.
    pub fn run_qppt(&self, spec: &QuerySpec, opts: &PlanOptions) -> QueryResult {
        QpptEngine::new(&self.ssb.db)
            .run(spec, opts)
            .expect("prepared queries run")
    }

    /// Builds the columnar image (do this once; it is load, not query time).
    pub fn column_db(&self) -> ColumnDb<'_> {
        ColumnDb::new(&self.ssb.db, self.ssb.db.snapshot())
    }

    /// Runs a query column-at-a-time.
    pub fn run_column(&self, cdb: &ColumnDb<'_>, spec: &QuerySpec) -> QueryResult {
        ColumnAtATimeEngine::run(cdb, spec).expect("prepared queries run")
    }

    /// Runs a query vector-at-a-time.
    pub fn run_vector(&self, cdb: &ColumnDb<'_>, spec: &QuerySpec) -> QueryResult {
        VectorAtATimeEngine::run(cdb, spec).expect("prepared queries run")
    }
}

/// Wall-clock of one invocation.
pub fn time_once<T>(mut f: impl FnMut() -> T) -> (Duration, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed(), out)
}

/// Best-of-`n` wall-clock (discards warm-up noise, standard for
/// milliseconds-scale query timings).
pub fn time_best_of<T>(n: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..n.max(1) {
        let (d, out) = time_once(&mut f);
        std::hint::black_box(out);
        best = best.min(d);
    }
    best
}

/// Milliseconds as a fixed-width display value.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Renders an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Parses `--flag value` style arguments with a default.
pub fn arg_f64(args: &[String], flag: &str, default: f64) -> f64 {
    arg_str(args, flag)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad value for {flag}")))
        .unwrap_or(default)
}

/// Parses `--flag value` as usize.
pub fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    arg_str(args, flag)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad value for {flag}")))
        .unwrap_or(default)
}

/// Raw `--flag value` lookup.
pub fn arg_str(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Comma-separated usize list (`--keys 100000,1000000`).
pub fn arg_usize_list(args: &[String], flag: &str, default: &[usize]) -> Vec<usize> {
    match arg_str(args, flag) {
        Some(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad value for {flag}"))
            })
            .collect(),
        None => default.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--sf", "0.5", "--keys", "10,20"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_f64(&args, "--sf", 1.0), 0.5);
        assert_eq!(arg_f64(&args, "--missing", 2.0), 2.0);
        assert_eq!(arg_usize_list(&args, "--keys", &[1]), vec![10, 20]);
        assert_eq!(arg_usize_list(&args, "--nope", &[1]), vec![1]);
        assert_eq!(arg_usize(&args, "--nope", 7), 7);
    }

    #[test]
    fn bench_db_runs_all_engines() {
        let db = BenchDb::prepare(0.01, 1);
        let cdb = db.column_db();
        let q = qppt_ssb::queries::q2_3();
        let opts = PlanOptions::default();
        let a = db.run_qppt(&q, &opts).canonicalized();
        let b = db.run_column(&cdb, &q).canonicalized();
        let c = db.run_vector(&cdb, &q).canonicalized();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn timing_helpers() {
        let d = time_best_of(3, || 2 + 2);
        assert!(d < Duration::from_secs(1));
        assert!(ms(Duration::from_millis(5)) > 4.9);
    }
}
