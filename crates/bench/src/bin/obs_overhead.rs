//! Observability overhead: queries/second through a fully instrumented
//! `qppt-server` (metrics registry + pool gauges wired, the default) vs.
//! the same server built without observability (`--no-obs`), on the same
//! shared pool size and query mix.
//!
//! Both servers stay up for the whole run and the timed passes alternate
//! between them round-robin (A, B, A, B, …), so drift in the host's load
//! hits both configurations equally; each configuration's q/s is the best
//! round. Two paths are measured at every client count — `cache=off`
//! (every request executes the engine; per-request bookkeeping is
//! amortized over real work) and the warm cached path (result-tier hits,
//! where the counter increments are the largest *relative* cost). The
//! regression gate applies to the cached path: it is the adversarial case
//! for instrumentation overhead.
//!
//! Writes `BENCH_OBS_OVERHEAD.json` and exits non-zero if the cached-path
//! regression at any client count exceeds `--max-regression-pct`
//! (default 3; pass 0 to disable the gate). The gate reads the *minimum*
//! regression across rounds: a real systematic overhead is present in
//! every round, while scheduler noise is not, so one clean round within
//! the budget passes:
//!
//! ```text
//! cargo run --release --bin obs_overhead -- \
//!     --sf 0.02 --clients 1,4 --queries 40 --rounds 3 \
//!     --out BENCH_OBS_OVERHEAD.json
//! ```

use std::io::Write as _;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use qppt_bench::{arg_f64, arg_str, arg_usize, arg_usize_list, print_table};
use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_par::WorkerPool;
use qppt_server::{detected_cores, serve, QpptClient, ServeEngine, ServeObs};
use qppt_ssb::{queries, SsbDb};
use qppt_storage::QuerySpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sf = arg_f64(&args, "--sf", 0.02);
    let seed = 42u64;
    let cores = detected_cores();
    let threads = arg_usize(&args, "--threads", cores.max(2));
    let clients = arg_usize_list(&args, "--clients", &[1, 4]);
    let queries_per_client = arg_usize(&args, "--queries", 40);
    // Warm hits are tens of µs each: the cached passes need a much larger
    // count to make each timing window long enough to be meaningful.
    let cached_queries = arg_usize(&args, "--cached-queries", queries_per_client * 50);
    let rounds = arg_usize(&args, "--rounds", 3);
    let parallelism = arg_usize(&args, "--parallelism", 2);
    let max_regression_pct = arg_f64(&args, "--max-regression-pct", 3.0);
    let out_path = arg_str(&args, "--out").unwrap_or_else(|| "BENCH_OBS_OVERHEAD.json".to_string());

    let mix: Vec<QuerySpec> = vec![
        queries::q1_1(),
        queries::q2_3(),
        queries::q3_2(),
        queries::q4_1(),
    ];

    eprintln!("generating SSB at sf={sf} and preparing indexes …");
    let mut ssb = SsbDb::generate(sf, seed);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &PlanOptions::default()).expect("SSB prepares");
    }
    let db = Arc::new(ssb.db);
    let admission = clients.iter().copied().max().unwrap_or(4) * 2;
    let defaults = PlanOptions::default().with_parallelism(parallelism);

    // Two identical servers over the same database — one instrumented (the
    // default configuration), one built the way `--no-obs` builds it.
    let obs = ServeObs::new(None);
    let obs_pool = WorkerPool::new_with_metrics(threads, admission, Some(obs.pool_metrics()));
    let obs_engine =
        ServeEngine::over_db(db.clone(), obs_pool.clone(), defaults, sf, seed).with_obs(obs);
    let obs_server = serve(Arc::new(obs_engine), "127.0.0.1:0").expect("bind instrumented");

    let bare_pool = WorkerPool::new(threads, admission);
    let bare_engine = ServeEngine::over_db(db.clone(), bare_pool.clone(), defaults, sf, seed);
    let bare_server = serve(Arc::new(bare_engine), "127.0.0.1:0").expect("bind no-obs");

    // Correctness anchor: both servers byte-identical to the oracle.
    let oracle = QpptEngine::new(&db);
    for addr in [obs_server.addr(), bare_server.addr()] {
        let mut probe = QpptClient::connect(addr).expect("connect");
        for q in &mix {
            let served = probe
                .run(&q.id.to_ascii_lowercase(), &[])
                .expect("probe query");
            let expected = oracle.run(q, &PlanOptions::default()).expect("oracle");
            assert_eq!(served.result, expected, "{} served result diverged", q.id);
        }
        // The probe pass doubles as the result-tier warm-up, so every
        // timed cached pass below measures warm hits on both servers.
    }

    let pass = |addr: SocketAddr, c: usize, n: usize, cache: &'static str| -> f64 {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for ci in 0..c {
                let mix = &mix;
                s.spawn(move || {
                    let mut client = QpptClient::connect(addr).expect("connect");
                    let par = parallelism.to_string();
                    for i in 0..n {
                        let q = &mix[(ci + i) % mix.len()];
                        client
                            .run(
                                &q.id.to_ascii_lowercase(),
                                &[("parallelism", &par), ("cache", cache)],
                            )
                            .expect("bench query");
                    }
                });
            }
        });
        (c * n) as f64 / t0.elapsed().as_secs_f64()
    };

    let mut rows = Vec::new();
    let mut series = Vec::new();
    let mut gate_failures = Vec::new();
    for &c in &clients {
        // Alternate configurations within every round so host-load drift
        // cancels; keep each configuration's best round.
        let (mut obs_engine_qps, mut bare_engine_qps) = (0f64, 0f64);
        let (mut obs_cached_qps, mut bare_cached_qps) = (0f64, 0f64);
        let mut round_cached_regs = Vec::new();
        for round in 0..rounds {
            // Swap which server goes first every round, so neither side
            // systematically benefits from running after a quiet gap.
            let (first, second) = if round % 2 == 0 {
                (obs_server.addr(), bare_server.addr())
            } else {
                (bare_server.addr(), obs_server.addr())
            };
            let (fe, se) = (
                pass(first, c, queries_per_client, "off"),
                pass(second, c, queries_per_client, "off"),
            );
            let (fc, sc) = (
                pass(first, c, cached_queries, "on"),
                pass(second, c, cached_queries, "on"),
            );
            let (oe, be, oc, bc) = if round % 2 == 0 {
                (fe, se, fc, sc)
            } else {
                (se, fe, sc, fc)
            };
            obs_engine_qps = obs_engine_qps.max(oe);
            bare_engine_qps = bare_engine_qps.max(be);
            obs_cached_qps = obs_cached_qps.max(oc);
            bare_cached_qps = bare_cached_qps.max(bc);
            if bc > 0.0 {
                round_cached_regs.push((1.0 - oc / bc) * 100.0);
            }
        }
        let regression = |instrumented: f64, bare: f64| {
            if bare > 0.0 {
                (1.0 - instrumented / bare) * 100.0
            } else {
                0.0
            }
        };
        let engine_reg = regression(obs_engine_qps, bare_engine_qps);
        let cached_reg = regression(obs_cached_qps, bare_cached_qps);
        // The gate reads the *minimum* per-round regression: a systematic
        // overhead shows up in every round, scheduler noise does not — so
        // one clean round within the budget is a pass.
        let gate_reg = round_cached_regs
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        if max_regression_pct > 0.0 && gate_reg > max_regression_pct {
            gate_failures.push((c, gate_reg));
        }
        rows.push(vec![
            c.to_string(),
            format!("{obs_engine_qps:.1}"),
            format!("{bare_engine_qps:.1}"),
            format!("{engine_reg:+.2}%"),
            format!("{obs_cached_qps:.1}"),
            format!("{bare_cached_qps:.1}"),
            format!("{cached_reg:+.2}%"),
        ]);
        series.push((
            c,
            obs_engine_qps,
            bare_engine_qps,
            engine_reg,
            obs_cached_qps,
            bare_cached_qps,
            cached_reg,
            gate_reg,
        ));
    }

    println!(
        "observability overhead, sf={sf}, pool={threads} threads, parallelism={parallelism}, \
         {queries_per_client} engine + {cached_queries} cached queries/client, best of {rounds} rounds:"
    );
    print_table(
        &[
            "clients",
            "obs q/s (engine)",
            "no-obs q/s (engine)",
            "regression",
            "obs q/s (cached)",
            "no-obs q/s (cached)",
            "regression",
        ],
        &rows,
    );

    // Hand-rolled JSON (the workspace is dependency-free by design).
    let entries: Vec<String> = series
        .iter()
        .map(|(c, oe, be, er, oc, bc, cr, gr)| {
            format!(
                "    {{\"clients\": {c}, \"obs_engine_qps\": {oe:.3}, \"no_obs_engine_qps\": {be:.3}, \
                 \"engine_regression_pct\": {er:.3}, \"obs_cached_qps\": {oc:.3}, \
                 \"no_obs_cached_qps\": {bc:.3}, \"cached_regression_pct\": {cr:.3}, \
                 \"min_round_cached_regression_pct\": {gr:.3}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"sf\": {sf},\n  \"cores\": {cores},\n  \
         \"pool_threads\": {threads},\n  \"parallelism\": {parallelism},\n  \
         \"queries_per_client\": {queries_per_client},\n  \
         \"cached_queries_per_client\": {cached_queries},\n  \"rounds\": {rounds},\n  \
         \"max_regression_pct\": {max_regression_pct},\n  \
         \"mix\": [\"Q1.1\", \"Q2.3\", \"Q3.2\", \"Q4.1\"],\n  \"series\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {out_path}");

    obs_server.stop();
    bare_server.stop();
    obs_pool.shutdown();
    bare_pool.shutdown();

    if !gate_failures.is_empty() {
        for (c, reg) in &gate_failures {
            eprintln!(
                "obs_overhead: FAIL — cached-path regression ≥ {reg:.2}% in every round \
                 at {c} client(s), exceeding the {max_regression_pct}% gate"
            );
        }
        std::process::exit(1);
    }
    eprintln!(
        "obs_overhead: PASS (cached-path regression within {max_regression_pct}% everywhere)"
    );
}
