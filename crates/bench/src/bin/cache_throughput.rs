//! Query-cache throughput: cold (empty cache) vs warm (result-tier hits)
//! queries/second on a repeated SSB mix through the serving engine, plus
//! the re-warm cost after an invalidating MVCC write.
//!
//! Three phases, all through `ServeEngine::run` (the exact `RUN` hot
//! path — fingerprint, tiers, pooled execution):
//!
//! 1. **cold** — every query of the mix once into an empty cache
//!    (misses: plan + materialize + execute + decode);
//! 2. **warm** — the mix repeated `--warm` times (result-tier hits: no
//!    planning, no pool, no execution);
//! 3. **re-warm** — one `delete_row` on `part` bumps that table's
//!    version, then the mix runs once more: part-joining queries
//!    invalidate + recompute, the rest keep hitting.
//!
//! Every phase asserts byte-equality against a fresh sequential engine at
//! the current snapshot before timing is trusted. Writes
//! `BENCH_QUERY_CACHE.json`:
//!
//! ```text
//! cargo run --release --bin cache_throughput -- \
//!     --sf 0.05 --warm 30 --out BENCH_QUERY_CACHE.json
//! ```

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use qppt_bench::{arg_f64, arg_str, arg_usize, print_table};
use qppt_cache::QueryCache;
use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_par::WorkerPool;
use qppt_server::{detected_cores, ServeEngine};
use qppt_ssb::{queries, SsbDb};
use qppt_storage::QuerySpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sf = arg_f64(&args, "--sf", 0.05);
    let seed = 42u64;
    let cores = detected_cores();
    let threads = arg_usize(&args, "--threads", cores.max(2));
    let warm_reps = arg_usize(&args, "--warm", 30);
    let parallelism = arg_usize(&args, "--parallelism", 2);
    let out_path = arg_str(&args, "--out").unwrap_or_else(|| "BENCH_QUERY_CACHE.json".to_string());

    // The mix: all 13 SSB queries (the full registered surface).
    let mix: Vec<QuerySpec> = queries::all_queries();

    eprintln!("generating SSB at sf={sf} and preparing indexes …");
    let mut ssb = SsbDb::generate(sf, seed);
    for q in &mix {
        prepare_indexes(&mut ssb.db, q, &PlanOptions::default()).expect("SSB prepares");
    }
    let mut db = Arc::new(ssb.db);

    let pool = WorkerPool::new(threads, 8);
    let cache = Arc::new(QueryCache::default());
    let opts = PlanOptions::default().with_parallelism(parallelism);
    let engine =
        ServeEngine::over_db_with_cache(db.clone(), pool.clone(), opts, sf, seed, cache.clone());

    let names: Vec<String> = mix.iter().map(|q| q.id.to_ascii_lowercase()).collect();
    let check = |engine: &ServeEngine, db: &Arc<qppt_storage::Database>, phase: &str| {
        let oracle = QpptEngine::new(db);
        for (q, name) in mix.iter().zip(&names) {
            let (got, _) = engine.run(name, &opts, 0).expect("serving run");
            let expected = oracle.run(q, &PlanOptions::default()).expect("oracle run");
            assert_eq!(got, expected, "{} diverged in phase {phase}", q.id);
        }
    };

    // Phase 1: cold — time the very first pass over the empty cache.
    let t0 = Instant::now();
    for name in &names {
        engine.run(name, &opts, 0).expect("cold run");
    }
    let cold_qps = names.len() as f64 / t0.elapsed().as_secs_f64();
    check(&engine, &db, "cold");

    // Phase 2: warm — the mix repeated, every run a result-tier hit.
    let t0 = Instant::now();
    for _ in 0..warm_reps {
        for name in &names {
            engine.run(name, &opts, 0).expect("warm run");
        }
    }
    let warm_qps = (warm_reps * names.len()) as f64 / t0.elapsed().as_secs_f64();
    let warm_over_cold = warm_qps / cold_qps;

    // Phase 3: invalidating write, then re-warm. The cache outlives the
    // engine (it is externally owned); only the engine is rebuilt around
    // the mutated database.
    drop(engine);
    let s_before = cache.stats();
    {
        let db_mut = Arc::get_mut(&mut db).expect("engine dropped, Arc unique");
        db_mut.delete_row("part", 0).expect("invalidating write");
    }
    let engine =
        ServeEngine::over_db_with_cache(db.clone(), pool.clone(), opts, sf, seed, cache.clone());
    let t0 = Instant::now();
    for name in &names {
        engine.run(name, &opts, 0).expect("re-warm run");
    }
    let rewarm_qps = names.len() as f64 / t0.elapsed().as_secs_f64();
    check(&engine, &db, "re-warm");
    let s_after = cache.stats();
    let invalidated = s_after.results.invalidations - s_before.results.invalidations;
    let still_hit = s_after.results.hits - s_before.results.hits - names.len() as u64;

    print_table(
        &["phase", "q/s", "vs cold"],
        &[
            vec!["cold".into(), format!("{cold_qps:.1}"), "1.00x".into()],
            vec![
                "warm (result hits)".into(),
                format!("{warm_qps:.1}"),
                format!("{warm_over_cold:.2}x"),
            ],
            vec![
                "re-warm (after write)".into(),
                format!("{rewarm_qps:.1}"),
                format!("{:.2}x", rewarm_qps / cold_qps),
            ],
        ],
    );
    println!(
        "invalidating write touched `part`: {invalidated}/{} entries invalidated, \
         {still_hit} unaffected entries still hit during the first re-warm pass",
        names.len()
    );

    if warm_over_cold < 5.0 {
        eprintln!(
            "warning: warm/cold = {warm_over_cold:.2}x is below the expected ≥ 5x \
             (result hits should skip planning, materialization, and execution)"
        );
    }

    // Hand-rolled JSON (the workspace is dependency-free by design).
    let json = format!(
        "{{\n  \"bench\": \"cache_throughput\",\n  \"sf\": {sf},\n  \"cores\": {cores},\n  \
         \"pool_threads\": {threads},\n  \"parallelism\": {parallelism},\n  \
         \"queries\": {nq},\n  \"warm_reps\": {warm_reps},\n  \
         \"cold_qps\": {cold_qps:.3},\n  \"warm_qps\": {warm_qps:.3},\n  \
         \"warm_over_cold\": {warm_over_cold:.3},\n  \"rewarm\": {{\n    \
         \"qps\": {rewarm_qps:.3},\n    \"invalidated\": {invalidated},\n    \
         \"still_hit\": {still_hit}\n  }}\n}}\n",
        nq = names.len(),
    );
    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {out_path}");
    pool.shutdown();
}
