//! Query-cache throughput: cold (empty cache) vs warm (result-tier hits)
//! queries/second on a repeated SSB mix through the serving engine, the
//! re-warm cost after an invalidating MVCC write, and the cross-query
//! σ-sharing of the dimension tier.
//!
//! Four phases, all through `ServeEngine::run` (the exact `RUN` hot
//! path — fingerprint, tiers, pooled execution):
//!
//! 1. **cold** — every query of the mix once into an empty cache
//!    (misses: plan + materialize + execute + decode);
//! 2. **warm** — the mix repeated `--warm` times (result-tier hits: no
//!    planning, no pool, no execution);
//! 3. **re-warm** — one `delete_row` on `part` bumps that table's
//!    version, then the mix runs once more: part-joining queries
//!    invalidate + recompute, the rest keep hitting;
//! 4. **σ-sharing** — shared-σ query families run cold-in-sequence
//!    (q3.1→q3.2→q3.3 share the date range σ, q4.2→q4.3 share the
//!    d_year∈{1997,1998} σ, and q3.1 re-planned at another parallelism
//!    shares *every* σ): the dim-tier hit counters prove the later family
//!    members skip `materialize_dim` for the shared selections;
//! 5. **ad-hoc σ-sharing** — a query the server has no name for, written
//!    in the `qppt-query` language and served through `run_spec` (the
//!    `QUERY` verb's pipeline), joins q3.1's σ family: it must compose
//!    the date σ the named lead materialized (dim-tier hit, zero builds).
//!
//! Every phase asserts byte-equality against a fresh sequential engine at
//! the current snapshot before timing is trusted. Writes
//! `BENCH_QUERY_CACHE.json`:
//!
//! ```text
//! cargo run --release --bin cache_throughput -- \
//!     --sf 0.05 --warm 30 --out BENCH_QUERY_CACHE.json
//! ```

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use qppt_bench::{arg_f64, arg_str, arg_usize, print_table};
use qppt_cache::QueryCache;
use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_par::WorkerPool;
use qppt_server::{detected_cores, ServeEngine};
use qppt_ssb::{queries, SsbDb};
use qppt_storage::QuerySpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sf = arg_f64(&args, "--sf", 0.05);
    let seed = 42u64;
    let cores = detected_cores();
    let threads = arg_usize(&args, "--threads", cores.max(2));
    let warm_reps = arg_usize(&args, "--warm", 30);
    let parallelism = arg_usize(&args, "--parallelism", 2);
    let out_path = arg_str(&args, "--out").unwrap_or_else(|| "BENCH_QUERY_CACHE.json".to_string());

    // The mix: all 13 SSB queries (the full registered surface).
    let mix: Vec<QuerySpec> = queries::all_queries();

    eprintln!("generating SSB at sf={sf} and preparing indexes …");
    let mut ssb = SsbDb::generate(sf, seed);
    for q in &mix {
        prepare_indexes(&mut ssb.db, q, &PlanOptions::default()).expect("SSB prepares");
    }
    let mut db = Arc::new(ssb.db);

    let pool = WorkerPool::new(threads, 8);
    let cache = Arc::new(QueryCache::default());
    let opts = PlanOptions::default().with_parallelism(parallelism);
    let engine =
        ServeEngine::over_db_with_cache(db.clone(), pool.clone(), opts, sf, seed, cache.clone());

    let names: Vec<String> = mix.iter().map(|q| q.id.to_ascii_lowercase()).collect();
    let check = |engine: &ServeEngine, db: &Arc<qppt_storage::Database>, phase: &str| {
        let oracle = QpptEngine::new(db);
        for (q, name) in mix.iter().zip(&names) {
            let (got, _) = engine.run(name, &opts, 0).expect("serving run");
            let expected = oracle.run(q, &PlanOptions::default()).expect("oracle run");
            assert_eq!(got, expected, "{} diverged in phase {phase}", q.id);
        }
    };

    // Phase 1: cold — time the very first pass over the empty cache.
    let t0 = Instant::now();
    for name in &names {
        engine.run(name, &opts, 0).expect("cold run");
    }
    let cold_qps = names.len() as f64 / t0.elapsed().as_secs_f64();
    check(&engine, &db, "cold");

    // Phase 2: warm — the mix repeated, every run a result-tier hit.
    let t0 = Instant::now();
    for _ in 0..warm_reps {
        for name in &names {
            engine.run(name, &opts, 0).expect("warm run");
        }
    }
    let warm_qps = (warm_reps * names.len()) as f64 / t0.elapsed().as_secs_f64();
    let warm_over_cold = warm_qps / cold_qps;

    // Phase 3: invalidating write, then re-warm. The cache outlives the
    // engine (it is externally owned); only the engine is rebuilt around
    // the mutated database.
    drop(engine);
    let s_before = cache.stats();
    {
        let db_mut = Arc::get_mut(&mut db).expect("engine dropped, Arc unique");
        db_mut.delete_row("part", 0).expect("invalidating write");
    }
    let engine =
        ServeEngine::over_db_with_cache(db.clone(), pool.clone(), opts, sf, seed, cache.clone());
    let t0 = Instant::now();
    for name in &names {
        engine.run(name, &opts, 0).expect("re-warm run");
    }
    let rewarm_qps = names.len() as f64 / t0.elapsed().as_secs_f64();
    check(&engine, &db, "re-warm");
    let s_after = cache.stats();
    let invalidated = s_after.results.invalidations - s_before.results.invalidations;
    let still_hit = s_after.results.hits - s_before.results.hits - names.len() as u64;

    // Phase 4: σ-sharing families, cold in sequence on an emptied cache.
    // Per family: the first query builds its σ, the later ones share every
    // σ they have in common — measured by the dim-tier hit delta.
    let families: [(&str, Vec<(&str, PlanOptions)>); 3] = [
        (
            "q3.1->q3.2->q3.3 (shared date range σ)",
            vec![("q3.1", opts), ("q3.2", opts), ("q3.3", opts)],
        ),
        (
            "q4.2->q4.3 (shared d_year∈{1997,1998} σ)",
            vec![("q4.2", opts), ("q4.3", opts)],
        ),
        (
            "q3.1 p=1 -> p=2 (all σ shared across options)",
            vec![
                ("q3.1", opts.with_parallelism(1)),
                ("q3.1", opts.with_parallelism(2)),
            ],
        ),
    ];
    let mut family_rows: Vec<Vec<String>> = Vec::new();
    let mut family_json = String::new();
    for (fi, (name, members)) in families.iter().enumerate() {
        cache.clear();
        let before = cache.stats().dims;
        let mut lead_micros = 0u128;
        let mut rest_micros = 0u128;
        for (mi, (q, o)) in members.iter().enumerate() {
            let t0 = Instant::now();
            engine.run(q, o, 0).expect("family run");
            let dt = t0.elapsed().as_micros();
            if mi == 0 {
                lead_micros = dt;
            } else {
                rest_micros += dt;
            }
        }
        let after = cache.stats().dims;
        let (hits, built) = (
            after.hits - before.hits,
            after.insertions - before.insertions,
        );
        assert!(
            hits > 0,
            "family `{name}` never hit the dim tier — σ sharing is broken"
        );
        let rest_avg = rest_micros as f64 / (members.len() - 1) as f64 / 1000.0;
        family_rows.push(vec![
            (*name).to_string(),
            format!("{hits}"),
            format!("{built}"),
            format!("{:.2} ms", lead_micros as f64 / 1000.0),
            format!("{rest_avg:.2} ms"),
        ]);
        family_json.push_str(&format!(
            "    {{ \"family\": \"{name}\", \"dim_hits\": {hits}, \"dim_built\": {built}, \
             \"lead_ms\": {:.3}, \"rest_avg_ms\": {rest_avg:.3} }}{}\n",
            lead_micros as f64 / 1000.0,
            if fi + 1 < families.len() { "," } else { "" },
        ));
    }
    check(&engine, &db, "sigma-sharing");

    // Phase 5: the ad-hoc frontend joins a named σ family. Parsed from
    // query-language text (exactly what a `QUERY` line carries), served
    // through the same validate→plan→cache→execute pipeline.
    let adhoc_text = "fact=lineorder \
         dim=supplier[join=s_suppkey:lo_suppkey;s_region='ASIA';carry=s_nation] \
         dim=date[join=d_datekey:lo_orderdate;d_year between 1992 and 1997;carry=d_year] \
         agg=sum(lo_revenue):revenue group=supplier.s_nation,date.d_year \
         order=group:1,agg:0:desc id=adhoc-asia";
    let adhoc = qppt_query::parse(adhoc_text).expect("ad-hoc text parses");
    cache.clear();
    let t0 = Instant::now();
    engine.run("q3.1", &opts, 0).expect("named σ-family lead");
    let adhoc_lead_ms = t0.elapsed().as_micros() as f64 / 1000.0;
    let before_adhoc = cache.stats().dims;
    let t0 = Instant::now();
    let (adhoc_result, _) = engine
        .run_spec(&adhoc, &opts, 0, true)
        .expect("ad-hoc family member");
    let adhoc_ms = t0.elapsed().as_micros() as f64 / 1000.0;
    let after_adhoc = cache.stats().dims;
    let adhoc_hits = after_adhoc.hits - before_adhoc.hits;
    let adhoc_built = after_adhoc.insertions - before_adhoc.insertions;
    assert_eq!(
        (adhoc_hits, adhoc_built),
        (1, 0),
        "the ad-hoc query must share the named lead's date σ and build nothing"
    );
    assert_eq!(
        adhoc_result,
        QpptEngine::new(&db)
            .run(&adhoc, &PlanOptions::default())
            .expect("ad-hoc oracle"),
        "ad-hoc result diverged from the sequential oracle"
    );
    println!(
        "ad-hoc σ-sharing: `{}` after q3.1 — {adhoc_hits} dim hit / {adhoc_built} built, \
         lead {adhoc_lead_ms:.2} ms, ad-hoc {adhoc_ms:.2} ms",
        adhoc.id
    );

    let dims_total = cache.stats().dims;

    print_table(
        &[
            "σ family",
            "dim hits",
            "σ built",
            "lead query",
            "followers avg",
        ],
        &family_rows,
    );
    print_table(
        &["phase", "q/s", "vs cold"],
        &[
            vec!["cold".into(), format!("{cold_qps:.1}"), "1.00x".into()],
            vec![
                "warm (result hits)".into(),
                format!("{warm_qps:.1}"),
                format!("{warm_over_cold:.2}x"),
            ],
            vec![
                "re-warm (after write)".into(),
                format!("{rewarm_qps:.1}"),
                format!("{:.2}x", rewarm_qps / cold_qps),
            ],
        ],
    );
    println!(
        "invalidating write touched `part`: {invalidated}/{} entries invalidated, \
         {still_hit} unaffected entries still hit during the first re-warm pass",
        names.len()
    );

    if warm_over_cold < 5.0 {
        eprintln!(
            "warning: warm/cold = {warm_over_cold:.2}x is below the expected ≥ 5x \
             (result hits should skip planning, materialization, and execution)"
        );
    }

    // Hand-rolled JSON (the workspace is dependency-free by design).
    let json = format!(
        "{{\n  \"bench\": \"cache_throughput\",\n  \"sf\": {sf},\n  \"cores\": {cores},\n  \
         \"pool_threads\": {threads},\n  \"parallelism\": {parallelism},\n  \
         \"queries\": {nq},\n  \"warm_reps\": {warm_reps},\n  \
         \"cold_qps\": {cold_qps:.3},\n  \"warm_qps\": {warm_qps:.3},\n  \
         \"warm_over_cold\": {warm_over_cold:.3},\n  \"rewarm\": {{\n    \
         \"qps\": {rewarm_qps:.3},\n    \"invalidated\": {invalidated},\n    \
         \"still_hit\": {still_hit}\n  }},\n  \"sigma_sharing\": {{\n    \
         \"families\": [\n{family_json}    ],\n    \
         \"adhoc\": {{ \"family\": \"q3.1 date σ via QUERY text\", \
         \"dim_hits\": {adhoc_hits}, \"dim_built\": {adhoc_built}, \
         \"lead_ms\": {adhoc_lead_ms:.3}, \"adhoc_ms\": {adhoc_ms:.3} }},\n    \
         \"dim_hits_lifetime\": {dim_hits},\n    \
         \"dim_misses_lifetime\": {dim_misses},\n    \
         \"dim_bytes\": {dim_bytes}\n  }}\n}}\n",
        nq = names.len(),
        dim_hits = dims_total.hits,
        dim_misses = dims_total.misses,
        dim_bytes = dims_total.bytes,
    );
    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {out_path}");
    pool.shutdown();
}
