//! Parallel scaling of the morsel-driven executor: SSB Q2.3 (the paper's
//! showcase 4-way star join) at 1/2/4/8 workers.
//!
//! Prints a speedup table and writes `BENCH_PAR_SCALING.json` so future
//! changes can track scaling regressions.
//!
//! ```text
//! cargo run --release --bin par_scaling -- --sf 0.2 --reps 5 \
//!     --workers 1,2,4,8 --out BENCH_PAR_SCALING.json
//! ```

use std::io::Write as _;

use qppt_bench::{
    arg_f64, arg_str, arg_usize, arg_usize_list, ms, print_table, time_best_of, BenchDb,
};
use qppt_core::{PlanOptions, QpptEngine};
use qppt_par::ParEngine;
use qppt_ssb::queries;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sf = arg_f64(&args, "--sf", 0.1);
    let reps = arg_usize(&args, "--reps", 5);
    let workers = arg_usize_list(&args, "--workers", &[1, 2, 4, 8]);
    let out_path = arg_str(&args, "--out").unwrap_or_else(|| "BENCH_PAR_SCALING.json".to_string());

    // Recorded in the JSON so readers can tell real scaling runs from
    // overhead-only runs without chasing footnotes.
    let cores = qppt_server::detected_cores();
    if cores == 1 {
        eprintln!(
            "warning: only 1 hardware core detected — these numbers measure \
             scheduling overhead, not scaling; rerun on a multicore host for \
             speedup claims"
        );
    }

    eprintln!("generating SSB at sf={sf} …");
    let db = BenchDb::prepare(sf, 42);
    let spec = queries::q2_3();
    let engine = ParEngine::new(&db.ssb.db);
    let sequential = QpptEngine::new(&db.ssb.db)
        .run(&spec, &PlanOptions::default())
        .expect("prepared query runs");

    let mut rows = Vec::new();
    let mut series = Vec::new();
    let mut base_ms = 0.0f64;
    for &w in &workers {
        let opts = PlanOptions::default().with_parallelism(w);
        // Warm-up run doubles as a correctness anchor: every worker count
        // must agree with the sequential engine.
        let result = engine.run(&spec, &opts).expect("prepared query runs");
        assert_eq!(
            result, sequential,
            "parallel result diverged from sequential at {w} workers"
        );
        let t = time_best_of(reps, || {
            engine.run(&spec, &opts).expect("prepared query runs")
        });
        let t_ms = ms(t);
        if w == workers[0] {
            base_ms = t_ms;
        }
        let speedup = if t_ms > 0.0 { base_ms / t_ms } else { 0.0 };
        rows.push(vec![
            w.to_string(),
            format!("{t_ms:.3}"),
            format!("{speedup:.2}x"),
            result.rows.len().to_string(),
        ]);
        series.push((w, t_ms, speedup));
    }
    println!("SSB Q2.3, sf={sf}, best of {reps}:");
    print_table(&["workers", "ms", "speedup", "rows"], &rows);

    // Hand-rolled JSON (the workspace is dependency-free by design).
    let entries: Vec<String> = series
        .iter()
        .map(|(w, t, s)| format!("    {{\"workers\": {w}, \"ms\": {t:.3}, \"speedup\": {s:.3}}}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"par_scaling\",\n  \"query\": \"Q2.3\",\n  \"sf\": {sf},\n  \"reps\": {reps},\n  \"cores\": {cores},\n  \"series\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {out_path}");
}
