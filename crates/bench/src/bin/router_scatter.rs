//! Scatter/gather cost of the sharded serving path: queries/second through
//! a `qppt-router` fronting 1/2/4 prefix-sharded `qppt-server` instances
//! vs. the same load served directly by one unsharded server — all
//! in-process over loopback, all on the one shared `WorkerPool`, so the
//! delta is the router's own work (forwarding, per-shard partials,
//! deterministic merge) rather than hardware.
//!
//! Every timed pass runs with `cache=off` so each request really scatters
//! and merges; a correctness anchor first asserts every merged answer is
//! byte-identical to the sequential oracle.
//!
//! A final `failover_latency` phase measures what a replica failover
//! *costs* the request that hits it: a 2-range × 2-replica fleet (primary
//! behind a chaos proxy, sibling direct), `--failover-cycles` kill → timed
//! query → revive → probe-recovery rounds, reporting the p50/p99 latency
//! the failover path adds over the healthy path.
//!
//! Writes `BENCH_ROUTER_SCATTER.json`:
//!
//! ```text
//! cargo run --release --bin router_scatter -- \
//!     --sf 0.05 --threads 4 --shards 1,2,4 --clients 4 --queries 30 \
//!     --failover-cycles 15 --out BENCH_ROUTER_SCATTER.json
//! ```

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qppt_bench::{arg_f64, arg_str, arg_usize, arg_usize_list, print_table};
use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_par::WorkerPool;
use qppt_router::{serve_router, ChaosProxy, Router, RouterConfig};
use qppt_server::{detected_cores, serve, QpptClient, ServeEngine, ServerHandle};
use qppt_ssb::{queries, SsbDb};
use qppt_storage::QuerySpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sf = arg_f64(&args, "--sf", 0.05);
    let seed = 42u64;
    let cores = detected_cores();
    let threads = arg_usize(&args, "--threads", cores.max(2));
    let shard_counts = arg_usize_list(&args, "--shards", &[1, 2, 4]);
    let clients = arg_usize(&args, "--clients", 4);
    let queries_per_client = arg_usize(&args, "--queries", 30);
    let parallelism = arg_usize(&args, "--parallelism", 2);
    let failover_cycles = arg_usize(&args, "--failover-cycles", 15);
    let out_path =
        arg_str(&args, "--out").unwrap_or_else(|| "BENCH_ROUTER_SCATTER.json".to_string());

    // One light and one heavy query per SSB flight.
    let mix: Vec<QuerySpec> = vec![
        queries::q1_1(),
        queries::q2_3(),
        queries::q3_2(),
        queries::q4_1(),
    ];

    // The oracle: the sequential engine over the full, unsharded instance.
    eprintln!("generating SSB at sf={sf} and preparing the oracle …");
    let opts = PlanOptions::default();
    let mut ssb = SsbDb::generate(sf, seed);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &opts).expect("SSB prepares");
    }
    let oracle = QpptEngine::new(&ssb.db);
    let expected: Vec<_> = mix
        .iter()
        .map(|q| oracle.run(q, &opts).expect("oracle runs"))
        .collect();

    let pool = WorkerPool::new(threads, clients.max(4) * 2);
    let defaults = PlanOptions::default().with_parallelism(parallelism);

    // Direct baseline: one unsharded server on the same pool.
    let direct = serve(
        Arc::new(
            ServeEngine::with_ssb_shard(sf, seed, pool.clone(), defaults, 0, 1)
                .expect("direct engine builds"),
        ),
        "127.0.0.1:0",
    )
    .expect("direct server binds");
    let direct_addr = direct.addr().to_string();
    let baseline_qps = timed_pass(&direct_addr, &mix, clients, queries_per_client, parallelism);

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for &shards in &shard_counts {
        // The fleet: `shards` prefix-sharded servers plus the router.
        let mut handles: Vec<ServerHandle> = Vec::new();
        let mut addrs = Vec::new();
        for i in 0..shards {
            let engine = ServeEngine::with_ssb_shard(sf, seed, pool.clone(), defaults, i, shards)
                .expect("shard engine builds");
            let h = serve(Arc::new(engine), "127.0.0.1:0").expect("shard binds");
            addrs.push(h.addr().to_string());
            handles.push(h);
        }
        let router = Arc::new(Router::new(RouterConfig::new(addrs)));
        router
            .wait_for_shards(std::time::Duration::from_secs(60))
            .expect("shards answer PING");
        let rh = serve_router(router, "127.0.0.1:0").expect("router binds");
        let raddr = rh.addr().to_string();

        // Correctness anchor before timing anything.
        {
            let mut probe = QpptClient::connect(&*raddr).expect("connect router");
            for (qi, q) in mix.iter().enumerate() {
                let served = probe
                    .run(&q.id.to_ascii_lowercase(), &[])
                    .expect("probe query");
                assert_eq!(
                    served.result, expected[qi],
                    "{} merged result diverged at {shards} shards",
                    q.id
                );
            }
        }

        let qps = timed_pass(&raddr, &mix, clients, queries_per_client, parallelism);
        let ratio = if baseline_qps > 0.0 {
            qps / baseline_qps
        } else {
            0.0
        };
        rows.push(vec![
            shards.to_string(),
            format!("{qps:.1}"),
            format!("{baseline_qps:.1}"),
            format!("{ratio:.2}x"),
        ]);
        series.push((shards, qps, ratio));

        rh.stop();
        for h in handles {
            h.stop();
        }
    }
    direct.stop();

    let (healthy_p50, added_p50, added_p99) =
        failover_latency(sf, seed, &pool, defaults, parallelism, failover_cycles);

    pool.shutdown();

    println!(
        "router scatter/gather, sf={sf}, pool={threads} threads, parallelism={parallelism}, \
         {clients} clients × {queries_per_client} queries (cache=off):"
    );
    print_table(
        &["shards", "routed q/s", "direct q/s", "routed/direct"],
        &rows,
    );
    println!(
        "failover latency ({failover_cycles} kill→query→revive cycles, 2 ranges × 2 replicas): \
         healthy p50 {healthy_p50:.0} µs, failover adds p50 {added_p50:.0} µs / p99 \
         {added_p99:.0} µs"
    );

    // Hand-rolled JSON (the workspace is dependency-free by design).
    let entries: Vec<String> = series
        .iter()
        .map(|(s, q, r)| {
            format!(
                "    {{\"shards\": {s}, \"routed_qps\": {q:.3}, \"routed_over_direct\": {r:.3}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"router_scatter\",\n  \"sf\": {sf},\n  \"cores\": {cores},\n  \"pool_threads\": {threads},\n  \"parallelism\": {parallelism},\n  \"clients\": {clients},\n  \"queries_per_client\": {queries_per_client},\n  \"mix\": [\"Q1.1\", \"Q2.3\", \"Q3.2\", \"Q4.1\"],\n  \"direct_qps\": {baseline_qps:.3},\n  \"series\": [\n{}\n  ],\n  \"failover_latency\": {{\"cycles\": {failover_cycles}, \"healthy_p50_micros\": {healthy_p50:.1}, \"added_p50_micros\": {added_p50:.1}, \"added_p99_micros\": {added_p99:.1}}}\n}}\n",
        entries.join(",\n")
    );
    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {out_path}");
}

/// The failover-latency phase: a 2-range × 2-replica fleet where each
/// range's primary sits behind a [`ChaosProxy`] and its sibling is the
/// shard's direct address. Each cycle kills the range-0 proxy, times the
/// query that eats the failover (detection + backoff + sibling retry),
/// revives the proxy, and waits for the health prober to flip the replica
/// live again (polled through the router's own `INFO replicas_live=`
/// field). Returns `(healthy_p50, added_p50, added_p99)` in microseconds,
/// where *added* is the failover query's latency minus the healthy p50,
/// floored at zero.
fn failover_latency(
    sf: f64,
    seed: u64,
    pool: &Arc<WorkerPool>,
    defaults: PlanOptions,
    parallelism: usize,
    cycles: usize,
) -> (f64, f64, f64) {
    eprintln!("failover latency: 2 ranges × 2 replicas, {cycles} kill→query→revive cycles …");
    let mut handles: Vec<ServerHandle> = Vec::new();
    let mut proxies = Vec::new();
    let mut fleet = Vec::new();
    for i in 0..2 {
        let engine = ServeEngine::with_ssb_shard(sf, seed, pool.clone(), defaults, i, 2)
            .expect("shard engine builds");
        let h = serve(Arc::new(engine), "127.0.0.1:0").expect("shard binds");
        let proxy = ChaosProxy::start(h.addr().to_string()).expect("proxy binds");
        fleet.push(vec![proxy.addr(), h.addr().to_string()]);
        proxies.push(proxy);
        handles.push(h);
    }
    let mut config = RouterConfig::with_fleet(fleet);
    config.retry_backoff = Duration::from_millis(5);
    config.retry_backoff_cap = Duration::from_millis(50);
    config.probe_interval = Duration::from_millis(50);
    config.probe_backoff_cap = Duration::from_millis(200);
    let router = Arc::new(Router::new(config));
    router
        .wait_for_shards(Duration::from_secs(60))
        .expect("fleet answers PING");
    let rh = serve_router(router, "127.0.0.1:0").expect("router binds");
    let mut client = QpptClient::connect(&*rh.addr().to_string()).expect("connect router");
    let par = parallelism.to_string();

    let wait_live = |client: &mut QpptClient, want: &str| {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let info = client.info().expect("router INFO answers");
            let live = info
                .iter()
                .find(|(k, _)| k == "replicas_live")
                .map(|(_, v)| v.as_str())
                .expect("router INFO reports replicas_live")
                .to_string();
            if live == want {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "replicas_live stuck at {live}, want {want}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    };
    let timed_query = |client: &mut QpptClient| -> f64 {
        let t0 = Instant::now();
        client
            .run("q2.3", &[("parallelism", &par), ("cache", "off")])
            .expect("failover-phase query");
        t0.elapsed().as_secs_f64() * 1e6
    };

    // Healthy baseline through the same topology (primary = proxy hop).
    let mut healthy: Vec<f64> = (0..20).map(|_| timed_query(&mut client)).collect();
    let healthy_p50 = percentile(&mut healthy, 50.0);

    let mut added: Vec<f64> = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        proxies[0].kill();
        added.push((timed_query(&mut client) - healthy_p50).max(0.0));
        proxies[0].revive().expect("proxy rebinds its port");
        wait_live(&mut client, "4");
    }
    let added_p50 = percentile(&mut added.clone(), 50.0);
    let added_p99 = percentile(&mut added, 99.0);

    rh.stop();
    for p in &proxies {
        p.kill();
    }
    for h in handles {
        h.stop();
    }
    (healthy_p50, added_p50, added_p99)
}

/// Nearest-rank percentile over an unsorted sample (sorts in place).
fn percentile(sample: &mut [f64], p: f64) -> f64 {
    assert!(!sample.is_empty());
    sample.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let idx = ((p / 100.0) * (sample.len() - 1) as f64).round() as usize;
    sample[idx.min(sample.len() - 1)]
}

/// C clients, each on its own connection, round-robin over the mix with
/// the cache bypassed. Returns queries/second.
fn timed_pass(
    addr: &str,
    mix: &[QuerySpec],
    clients: usize,
    queries_per_client: usize,
    parallelism: usize,
) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for ci in 0..clients {
            s.spawn(move || {
                let mut client = QpptClient::connect(addr).expect("connect");
                let par = parallelism.to_string();
                for i in 0..queries_per_client {
                    let q = &mix[(ci + i) % mix.len()];
                    client
                        .run(
                            &q.id.to_ascii_lowercase(),
                            &[("parallelism", &par), ("cache", "off")],
                        )
                        .expect("timed query");
                }
            });
        }
    });
    (clients * queries_per_client) as f64 / t0.elapsed().as_secs_f64()
}
