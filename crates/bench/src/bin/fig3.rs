//! Figure 3: insert/update and lookup time per key for the prefix tree
//! (k′ = 4), the two hash tables (GLib-like chained, Boost-like open
//! addressing), the KISS-Tree, and the batched KISS-Tree.
//!
//! Paper workload: keys "randomly picked from a sequential key range" at
//! 1M/16M/64M keys. Defaults here are 100K/1M/4M (override with
//! `--keys 1000000,16000000,64000000`).
//!
//! ```text
//! cargo run --release -p qppt-bench --bin fig3 -- [insert|lookup|both] [--keys a,b,c]
//! ```

use qppt_bench::{arg_usize_list, print_table, time_once};
use qppt_hash::{ChainedHashMap, OpenHashMap};
use qppt_kiss::{KissConfig, KissTree};
use qppt_mem::Xoshiro256StarStar;
use qppt_trie::PrefixTree;

const BATCH: usize = 2048;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "both".to_string());
    let sizes = arg_usize_list(&args, "--keys", &[100_000, 1_000_000, 4_000_000]);

    if mode == "insert" || mode == "both" {
        run_insert(&sizes);
    }
    if mode == "lookup" || mode == "both" {
        run_lookup(&sizes);
    }
}

/// Dense random key stream: a shuffled permutation of `0..n` (plus repeats
/// for the update part of "insert/update").
fn key_stream(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = Xoshiro256StarStar::new(seed);
    rng.permutation(n as u32)
}

fn per_key_ns(total: std::time::Duration, n: usize) -> String {
    format!("{:.1}", total.as_nanos() as f64 / n as f64)
}

fn run_insert(sizes: &[usize]) {
    println!("\nFigure 3(a): insert/update time per key [ns] (paper: µs axis, 1M-64M keys)");
    let mut rows = Vec::new();
    for &n in sizes {
        let keys = key_stream(n, 42);
        let (d_pt, _) = time_once(|| {
            let mut t = PrefixTree::<u32>::pt4_32();
            for (i, &k) in keys.iter().enumerate() {
                t.insert_merge(k as u64, i as u32, |acc, v| *acc = v);
            }
            t.len()
        });
        let (d_glib, _) = time_once(|| {
            let mut t = ChainedHashMap::<u32>::new();
            for (i, &k) in keys.iter().enumerate() {
                t.insert(k as u64, i as u32);
            }
            t.len()
        });
        let (d_boost, _) = time_once(|| {
            let mut t = OpenHashMap::<u32>::new();
            for (i, &k) in keys.iter().enumerate() {
                t.insert(k as u64, i as u32);
            }
            t.len()
        });
        let (d_kiss, _) = time_once(|| {
            let mut t = KissTree::<u32>::new(KissConfig::paper());
            for (i, &k) in keys.iter().enumerate() {
                t.insert_merge(k, i as u32, |acc, v| *acc = v);
            }
            t.len()
        });
        let (d_kiss_b, _) = time_once(|| {
            let mut t = KissTree::<u32>::new(KissConfig::paper());
            let pairs: Vec<(u32, u32)> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| (k, i as u32))
                .collect();
            for chunk in pairs.chunks(BATCH) {
                t.batch_insert(chunk);
            }
            t.len()
        });
        rows.push(vec![
            format!("{n}"),
            per_key_ns(d_pt, n),
            per_key_ns(d_glib, n),
            per_key_ns(d_boost, n),
            per_key_ns(d_kiss, n),
            per_key_ns(d_kiss_b, n),
        ]);
    }
    print_table(
        &[
            "keys",
            "PT4",
            "GLIB(chained)",
            "BOOST(open)",
            "KISS",
            "KISS batched",
        ],
        &rows,
    );
}

fn run_lookup(sizes: &[usize]) {
    println!("\nFigure 3(b): lookup time per key [ns]");
    let mut rows = Vec::new();
    for &n in sizes {
        let keys = key_stream(n, 42);
        let probes = key_stream(n, 99); // random order over the same range

        let mut pt = PrefixTree::<u32>::pt4_32();
        let mut glib = ChainedHashMap::<u32>::new();
        let mut boost = OpenHashMap::<u32>::new();
        let mut kiss = KissTree::<u32>::new(KissConfig::paper());
        for (i, &k) in keys.iter().enumerate() {
            pt.insert_merge(k as u64, i as u32, |acc, v| *acc = v);
            glib.insert(k as u64, i as u32);
            boost.insert(k as u64, i as u32);
            kiss.insert_merge(k, i as u32, |acc, v| *acc = v);
        }

        let (d_pt, found_pt) = time_once(|| {
            let mut found = 0usize;
            for &k in &probes {
                found += pt.get_first(k as u64).is_some() as usize;
            }
            found
        });
        let (d_glib, _) = time_once(|| {
            let mut found = 0usize;
            for &k in &probes {
                found += glib.get(k as u64).is_some() as usize;
            }
            found
        });
        let (d_boost, _) = time_once(|| {
            let mut found = 0usize;
            for &k in &probes {
                found += boost.get(k as u64).is_some() as usize;
            }
            found
        });
        let (d_kiss, _) = time_once(|| {
            let mut found = 0usize;
            for &k in &probes {
                found += kiss.get_first(k).is_some() as usize;
            }
            found
        });
        let (d_kiss_b, _) = time_once(|| {
            let mut found = 0usize;
            for chunk in probes.chunks(BATCH) {
                for v in kiss.batch_get_first(chunk) {
                    found += v.is_some() as usize;
                }
            }
            found
        });
        assert_eq!(found_pt, n, "dense permutation: every probe hits");

        rows.push(vec![
            format!("{n}"),
            per_key_ns(d_pt, n),
            per_key_ns(d_glib, n),
            per_key_ns(d_boost, n),
            per_key_ns(d_kiss, n),
            per_key_ns(d_kiss_b, n),
        ]);
    }
    print_table(
        &[
            "keys",
            "PT4",
            "GLIB(chained)",
            "BOOST(open)",
            "KISS",
            "KISS batched",
        ],
        &rows,
    );
}
