//! Figure 7: execution time of all 13 SSB queries on the three engines
//! (paper: DexterDB/QPPT vs. a commercial vector-at-a-time DBMS vs.
//! MonetDB, SF = 15, single-threaded).
//!
//! ```text
//! cargo run --release -p qppt-bench --bin fig7 -- [--sf 0.1] [--runs 3]
//! ```

use qppt_bench::{arg_f64, arg_usize, ms, print_table, time_best_of, BenchDb};
use qppt_core::PlanOptions;
use qppt_ssb::queries;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sf = arg_f64(&args, "--sf", 0.1);
    let runs = arg_usize(&args, "--runs", 3);

    eprintln!("generating SSB (SF={sf}) and building base indexes …");
    let db = BenchDb::prepare(sf, 42);
    let cdb = db.column_db();
    let opts = PlanOptions::default();

    println!("\nFigure 7: SSB (SF={sf}) query performance [ms], best of {runs}");
    let mut rows = Vec::new();
    for q in queries::all_queries() {
        // Cross-check results once before timing.
        let a = db.run_qppt(&q, &opts).canonicalized();
        let b = db.run_vector(&cdb, &q).canonicalized();
        let c = db.run_column(&cdb, &q).canonicalized();
        assert_eq!(a, b, "{}: QPPT vs vector", q.id);
        assert_eq!(b, c, "{}: vector vs column", q.id);

        let t_qppt = time_best_of(runs, || db.run_qppt(&q, &opts));
        let t_vec = time_best_of(runs, || db.run_vector(&cdb, &q));
        let t_col = time_best_of(runs, || db.run_column(&cdb, &q));
        rows.push(vec![
            q.id.clone(),
            format!("{:.2}", ms(t_qppt)),
            format!("{:.2}", ms(t_vec)),
            format!("{:.2}", ms(t_col)),
            format!("{:.2}x", ms(t_vec) / ms(t_qppt)),
            format!("{:.2}x", ms(t_col) / ms(t_qppt)),
        ]);
    }
    print_table(
        &[
            "query",
            "QPPT(DexterDB)",
            "vector(Commercial)",
            "column(MonetDB)",
            "vec/QPPT",
            "col/QPPT",
        ],
        &rows,
    );
    println!("\npaper shape: QPPT fastest on every query; column-at-a-time degrades most on Q4.x");
}
