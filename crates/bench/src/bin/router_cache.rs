//! The router-side result cache: warm routed hits vs the uncached
//! scatter path, and what an invalidation actually costs.
//!
//! One fleet of `--shards` prefix-sharded servers behind a `qppt-router`
//! with the routed cache on. Shard-side engine caches are **disabled**
//! throughout, so every partial fetch is a real execute — the numbers
//! isolate the router tiers rather than re-measuring the single-node
//! cache (that's `cache_throughput`). Three phases:
//!
//! 1. **uncached** — `cache=off` requests bypass the router tiers: every
//!    request scatters to all shards and re-merges (the pre-cache router).
//! 2. **warm** — the same load with the cache on, after one warming
//!    sweep: merged-tier hits that touch no shard. The bench **exits
//!    non-zero** unless warm ≥ `--min-speedup`× uncached (default 10).
//! 3. **invalidation** — `--cycles` rounds of a real single-shard write
//!    (stop shard 0's listener, `delete_row`, re-serve on the same
//!    address): the next request re-fetches *only* that range and
//!    re-merges against the surviving partials. Compared against the same
//!    query after `CACHE CLEAR`, which must re-scatter to every shard.
//!    Cached and uncached answers are asserted byte-identical every round.
//!
//! A correctness anchor first asserts cold, warm, and `cache=off` answers
//! through the router are all byte-identical to the sequential oracle.
//!
//! Writes `BENCH_ROUTER_CACHE.json`:
//!
//! ```text
//! cargo run --release --bin router_cache -- \
//!     --sf 0.05 --threads 4 --shards 4 --clients 4 --queries 30 \
//!     --cycles 5 --min-speedup 10 --out BENCH_ROUTER_CACHE.json
//! ```

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qppt_bench::{arg_f64, arg_str, arg_usize, print_table};
use qppt_cache::CacheConfig;
use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_par::WorkerPool;
use qppt_router::{serve_router, Router, RouterConfig};
use qppt_server::{detected_cores, serve, QpptClient, ServeEngine, ServerHandle};
use qppt_ssb::{queries, SsbDb};
use qppt_storage::{Database, QuerySpec};

/// The staleness bound the bench runs under — short enough that each
/// write cycle's one sleep makes the next lookup re-probe.
const PROBE_INTERVAL: Duration = Duration::from_millis(100);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sf = arg_f64(&args, "--sf", 0.05);
    let seed = 42u64;
    let cores = detected_cores();
    let threads = arg_usize(&args, "--threads", cores.max(2));
    let shards = arg_usize(&args, "--shards", 4);
    let clients = arg_usize(&args, "--clients", 4);
    let queries_per_client = arg_usize(&args, "--queries", 30);
    let parallelism = arg_usize(&args, "--parallelism", 2);
    let cycles = arg_usize(&args, "--cycles", 5);
    let min_speedup = arg_f64(&args, "--min-speedup", 10.0);
    let out_path = arg_str(&args, "--out").unwrap_or_else(|| "BENCH_ROUTER_CACHE.json".to_string());

    let mix: Vec<QuerySpec> = vec![
        queries::q1_1(),
        queries::q2_3(),
        queries::q3_2(),
        queries::q4_1(),
    ];

    // The oracle: the sequential engine over the full, unsharded instance.
    eprintln!("generating SSB at sf={sf} and preparing the oracle …");
    let opts = PlanOptions::default();
    let mut ssb = SsbDb::generate(sf, seed);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &opts).expect("SSB prepares");
    }
    let oracle = QpptEngine::new(&ssb.db);
    let expected: Vec<_> = mix
        .iter()
        .map(|q| oracle.run(q, &opts).expect("oracle runs"))
        .collect();

    let pool = WorkerPool::new(threads, clients.max(4) * 2);
    let defaults = PlanOptions::default().with_parallelism(parallelism);

    // Externally owned shard databases (the cache_throughput pattern) so
    // the invalidation phase can land real writes: stop the listener,
    // mutate the then-uniquely-owned database, re-serve on the same
    // address. Engine caches disabled — see the module docs.
    eprintln!("building {shards} shard(s) with engine caches disabled …");
    let mut dbs: Vec<Arc<Database>> = (0..shards)
        .map(|i| {
            let mut shard = SsbDb::generate_shard(sf, seed, i, shards);
            for q in queries::all_queries() {
                prepare_indexes(&mut shard.db, &q, &opts).expect("shard prepares");
            }
            Arc::new(shard.db)
        })
        .collect();
    let serve_shard = |i: usize, db: Arc<Database>, addr: &str| -> ServerHandle {
        let engine = ServeEngine::over_db_with_config(
            db,
            pool.clone(),
            defaults,
            sf,
            seed,
            CacheConfig::disabled(),
        )
        .with_shard_info(i, shards);
        serve(Arc::new(engine), addr).expect("shard binds")
    };
    let mut handles: Vec<ServerHandle> = (0..shards)
        .map(|i| serve_shard(i, dbs[i].clone(), "127.0.0.1:0"))
        .collect();
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();

    let mut config = RouterConfig::new(addrs.clone());
    config.cache.probe_interval = PROBE_INTERVAL;
    let router = Arc::new(Router::new(config));
    router
        .wait_for_shards(Duration::from_secs(60))
        .expect("shards answer PING");
    let rh = serve_router(router, "127.0.0.1:0").expect("router binds");
    let raddr = rh.addr().to_string();

    // Correctness anchor before timing anything: cold, warm, and
    // cache=off answers are all byte-identical to the oracle.
    {
        let mut probe = QpptClient::connect(&*raddr).expect("connect router");
        for pass in ["cold", "warm", "cache=off"] {
            for (qi, q) in mix.iter().enumerate() {
                let options: &[(&str, &str)] = if pass == "cache=off" {
                    &[("cache", "off")]
                } else {
                    &[]
                };
                let served = probe
                    .run(&q.id.to_ascii_lowercase(), options)
                    .expect("probe query");
                assert_eq!(
                    served.result, expected[qi],
                    "{} {pass} merged result diverged",
                    q.id
                );
            }
        }
        probe.cache_clear().expect("anchor leaves a cold cache");
    }

    // Phase 1+2: uncached scatter vs warm merged-tier hits.
    eprintln!("timing the uncached scatter path …");
    let uncached_qps = timed_pass(&raddr, &mix, clients, queries_per_client, parallelism, true);
    eprintln!("warming and timing the cached path …");
    {
        let mut warmer = QpptClient::connect(&*raddr).expect("connect router");
        for q in &mix {
            warmer
                .run(&q.id.to_ascii_lowercase(), &[])
                .expect("warm sweep");
        }
    }
    let warm_qps = timed_pass(
        &raddr,
        &mix,
        clients,
        queries_per_client,
        parallelism,
        false,
    );
    let speedup = if uncached_qps > 0.0 {
        warm_qps / uncached_qps
    } else {
        0.0
    };

    // Phase 3: single-shard invalidation re-merge vs CACHE CLEAR
    // re-scatter, timed on the same connection.
    eprintln!("invalidation phase: {cycles} write → re-merge → clear → re-scatter cycles …");
    let mut client = QpptClient::connect(&*raddr).expect("connect router");
    client.run("q2.3", &[]).expect("cycle warm-up");
    let mut remerge: Vec<f64> = Vec::with_capacity(cycles);
    let mut rescatter: Vec<f64> = Vec::with_capacity(cycles);
    for cycle in 0..cycles {
        // The write: shard 0 restarts on its own address with one more
        // fact row deleted — its version vector moves, the others' don't.
        let h0 = handles.remove(0);
        h0.stop();
        {
            let db0 = Arc::get_mut(&mut dbs[0]).expect("listener stopped; db uniquely owned");
            db0.delete_row("lineorder", cycle as u32)
                .expect("the write lands");
        }
        handles.insert(0, serve_shard(0, dbs[0].clone(), &addrs[0]));
        // Sit out the staleness bound so the next lookup re-probes.
        std::thread::sleep(PROBE_INTERVAL + Duration::from_millis(50));
        // One untimed cache=off scatter re-establishes the router's
        // pooled connections to the restarted listener — both timed
        // queries below then pay transport-warm costs only, not the
        // dead-conn detection and retry backoff the restart left behind.
        // (cache=off bypasses the tiers, so the stale entries survive it.)
        client
            .run("q2.3", &[("cache", "off")])
            .expect("connection warm-up");

        // Re-merge: only range 0 is re-fetched, the rest are partial hits.
        let t0 = Instant::now();
        let merged = client.run("q2.3", &[]).expect("re-merge query");
        remerge.push(t0.elapsed().as_secs_f64() * 1e6);

        // The cached answer must match an uncached scatter of the same
        // post-write fleet.
        let check = client
            .run("q2.3", &[("cache", "off")])
            .expect("uncached check");
        assert_eq!(
            merged.result, check.result,
            "post-write re-merge diverged from the uncached scatter (cycle {cycle})"
        );

        // Full re-scatter: CACHE CLEAR drops both tiers (probed versions
        // survive), so the same query fetches every range again.
        client.cache_clear().expect("CACHE CLEAR answers");
        let t1 = Instant::now();
        let cleared = client.run("q2.3", &[]).expect("re-scatter query");
        rescatter.push(t1.elapsed().as_secs_f64() * 1e6);
        assert_eq!(
            cleared.result, check.result,
            "re-scatter bytes (cycle {cycle})"
        );
    }
    let remerge_p50 = percentile(&mut remerge, 50.0);
    let rescatter_p50 = percentile(&mut rescatter, 50.0);
    let rescatter_over_remerge = if remerge_p50 > 0.0 {
        rescatter_p50 / remerge_p50
    } else {
        0.0
    };

    rh.stop();
    for h in handles {
        h.stop();
    }
    pool.shutdown();

    println!(
        "router cache, sf={sf}, {shards} shards, pool={threads} threads, \
         parallelism={parallelism}, {clients} clients × {queries_per_client} queries:"
    );
    print_table(
        &["pass", "q/s", "vs uncached"],
        &[
            vec![
                "uncached".into(),
                format!("{uncached_qps:.1}"),
                "1.00x".into(),
            ],
            vec![
                "warm".into(),
                format!("{warm_qps:.1}"),
                format!("{speedup:.2}x"),
            ],
        ],
    );
    println!(
        "invalidation ({cycles} single-shard write cycles): re-merge p50 {remerge_p50:.0} µs, \
         CACHE CLEAR re-scatter p50 {rescatter_p50:.0} µs ({rescatter_over_remerge:.2}x)"
    );

    // Hand-rolled JSON (the workspace is dependency-free by design).
    let json = format!(
        "{{\n  \"bench\": \"router_cache\",\n  \"sf\": {sf},\n  \"cores\": {cores},\n  \"pool_threads\": {threads},\n  \"shards\": {shards},\n  \"parallelism\": {parallelism},\n  \"clients\": {clients},\n  \"queries_per_client\": {queries_per_client},\n  \"mix\": [\"Q1.1\", \"Q2.3\", \"Q3.2\", \"Q4.1\"],\n  \"probe_interval_ms\": {},\n  \"uncached_qps\": {uncached_qps:.3},\n  \"warm_qps\": {warm_qps:.3},\n  \"warm_over_uncached\": {speedup:.3},\n  \"min_speedup\": {min_speedup},\n  \"invalidation\": {{\"cycles\": {cycles}, \"remerge_p50_micros\": {remerge_p50:.1}, \"rescatter_p50_micros\": {rescatter_p50:.1}, \"rescatter_over_remerge\": {rescatter_over_remerge:.3}}}\n}}\n",
        PROBE_INTERVAL.as_millis()
    );
    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {out_path}");

    if speedup < min_speedup {
        eprintln!(
            "FAIL: warm routed q/s is only {speedup:.2}x the uncached path, \
             want ≥ {min_speedup}x"
        );
        std::process::exit(1);
    }
}

/// Nearest-rank percentile over an unsorted sample (sorts in place).
fn percentile(sample: &mut [f64], p: f64) -> f64 {
    assert!(!sample.is_empty());
    sample.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let idx = ((p / 100.0) * (sample.len() - 1) as f64).round() as usize;
    sample[idx.min(sample.len() - 1)]
}

/// C clients, each on its own connection, round-robin over the mix.
/// `bypass` adds `cache=off` so every request scatters. Returns
/// queries/second.
fn timed_pass(
    addr: &str,
    mix: &[QuerySpec],
    clients: usize,
    queries_per_client: usize,
    parallelism: usize,
    bypass: bool,
) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for ci in 0..clients {
            s.spawn(move || {
                let mut client = QpptClient::connect(addr).expect("connect");
                let par = parallelism.to_string();
                let mut options = vec![("parallelism", par.as_str())];
                if bypass {
                    options.push(("cache", "off"));
                }
                for i in 0..queries_per_client {
                    let q = &mix[(ci + i) % mix.len()];
                    client
                        .run(&q.id.to_ascii_lowercase(), &options)
                        .expect("timed query");
                }
            });
        }
    });
    (clients * queries_per_client) as f64 / t0.elapsed().as_secs_f64()
}
