//! Scalar vs batched execution on the warm-miss hot path, per operator
//! class.
//!
//! Each of the 13 SSB queries is prepared once (plan + σ materializations
//! — the state a warm cache supplies) and then executed repeatedly with
//! `batch_exec` off and on, so the timing isolates exactly the inner-loop
//! work the batch restructuring touches. Queries are grouped by their
//! stage-1 operator class — synchronous base-index scan, fused
//! select-probe, or (for the Q1.x family re-run non-fused) the
//! materialized fact selection — and the Q1.x non-fused variants ride
//! along as extra cases so all three batched code paths are measured.
//!
//! Writes `BENCH_BATCH_EXEC.json` and **exits non-zero** when the batched
//! path is slower than scalar by more than `--tolerance` (default 10%) on
//! any operator class — the CI overhead guard.
//!
//! ```text
//! cargo run --release -p qppt-bench --bin batch_exec -- --sf 0.05 \
//!     --reps 5 --batch-rows 1024 --out BENCH_BATCH_EXEC.json
//! ```

use std::io::Write as _;
use std::time::{Duration, Instant};

use qppt_bench::{arg_f64, arg_str, arg_usize, ms, print_table, BenchDb};
use qppt_core::plan::MainInput;
use qppt_core::{Plan, PlanOptions, PreparedQuery};
use qppt_ssb::queries;

/// The stage-1 operator class whose inner loop dominates the warm miss.
fn operator_class(plan: &Plan) -> &'static str {
    if plan.fact_select.is_some() {
        return "fact-select";
    }
    match plan.stages[0].main {
        MainInput::SyncScan { .. } => "sync-scan",
        MainInput::SelectProbe { .. } => "select-probe",
    }
}

struct Case {
    label: String,
    class: &'static str,
    scalar_ms: f64,
    batched_ms: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sf = arg_f64(&args, "--sf", 0.05);
    let reps = arg_usize(&args, "--reps", 5);
    let batch_rows = arg_usize(&args, "--batch-rows", 1024);
    let tolerance = arg_f64(&args, "--tolerance", 0.10);
    let out_path = arg_str(&args, "--out").unwrap_or_else(|| "BENCH_BATCH_EXEC.json".to_string());
    let cores = qppt_server::detected_cores();

    eprintln!("generating SSB at sf={sf} …");
    let db = BenchDb::prepare(sf, 42);
    let snap = db.ssb.db.snapshot();
    let base = PlanOptions::default();

    // The 13 queries under the default (fused) plan, plus all 13
    // re-planned non-fused: the Q1.x family then runs the materialized
    // fact selection (its residuals leave the fused plan), and Q2–Q4 lead
    // with a plain synchronous base-index scan — so every batched
    // operator class has members.
    let mut specs: Vec<(String, PlanOptions)> = queries::all_queries()
        .into_iter()
        .map(|q| (q.id.clone(), base))
        .collect();
    for q in queries::all_queries() {
        specs.push((q.id.clone(), base.with_select_join(false)));
    }
    let by_id = queries::all_queries();

    let mut cases: Vec<Case> = Vec::new();
    for (id, opts) in &specs {
        let spec = by_id.iter().find(|q| &q.id == id).expect("known query");
        let scalar = PreparedQuery::build(&db.ssb.db, spec, opts, snap).expect("scalar prepares");
        let batched_opts = opts.with_batch_exec(true).with_batch_rows(batch_rows);
        let batched =
            PreparedQuery::build(&db.ssb.db, spec, &batched_opts, snap).expect("batched prepares");

        // Correctness anchor: the two modes must agree byte-for-byte
        // before either is worth timing.
        let (s_result, _) = scalar.execute_sequential(&db.ssb.db).expect("scalar runs");
        let (b_result, _) = batched
            .execute_sequential(&db.ssb.db)
            .expect("batched runs");
        assert_eq!(b_result, s_result, "{id}: batched diverged from scalar");

        // Interleaved best-of: scalar and batched alternate within every
        // rep, so slow host-level drift (noisy-neighbor VMs) biases both
        // sides equally instead of whichever mode ran second.
        let mut t_scalar = Duration::MAX;
        let mut t_batched = Duration::MAX;
        for _ in 0..reps {
            let t0 = Instant::now();
            scalar.execute_sequential(&db.ssb.db).expect("scalar runs");
            t_scalar = t_scalar.min(t0.elapsed());
            let t0 = Instant::now();
            batched
                .execute_sequential(&db.ssb.db)
                .expect("batched runs");
            t_batched = t_batched.min(t0.elapsed());
        }
        let label = if opts.select_join {
            id.clone()
        } else {
            format!("{id} (non-fused)")
        };
        cases.push(Case {
            label,
            class: operator_class(&scalar.plan),
            scalar_ms: ms(t_scalar),
            batched_ms: ms(t_batched),
        });
    }

    let mut rows = Vec::new();
    for c in &cases {
        rows.push(vec![
            c.label.clone(),
            c.class.to_string(),
            format!("{:.3}", c.scalar_ms),
            format!("{:.3}", c.batched_ms),
            format!("{:.2}x", c.scalar_ms / c.batched_ms.max(1e-9)),
        ]);
    }
    println!("warm-miss scalar vs batched (batch_rows={batch_rows}), sf={sf}, best of {reps}:");
    print_table(
        &["query", "class", "scalar ms", "batched ms", "speedup"],
        &rows,
    );

    // Per-class totals: q/s over the class's summed best-of times.
    let classes = ["sync-scan", "select-probe", "fact-select"];
    let mut class_rows = Vec::new();
    let mut class_entries: Vec<String> = Vec::new();
    let mut regressed: Vec<String> = Vec::new();
    for class in classes {
        let members: Vec<&Case> = cases.iter().filter(|c| c.class == class).collect();
        if members.is_empty() {
            continue;
        }
        let n = members.len();
        let scalar_ms: f64 = members.iter().map(|c| c.scalar_ms).sum();
        let batched_ms: f64 = members.iter().map(|c| c.batched_ms).sum();
        let scalar_qps = n as f64 / (scalar_ms / 1e3);
        let batched_qps = n as f64 / (batched_ms / 1e3);
        let ratio = batched_ms / scalar_ms.max(1e-9);
        if ratio > 1.0 + tolerance {
            regressed.push(format!(
                "{class}: batched is {:.1}% slower than scalar",
                (ratio - 1.0) * 100.0
            ));
        }
        class_rows.push(vec![
            class.to_string(),
            n.to_string(),
            format!("{scalar_ms:.3}"),
            format!("{batched_ms:.3}"),
            format!("{scalar_qps:.1}"),
            format!("{batched_qps:.1}"),
            format!("{:.2}x", scalar_ms / batched_ms.max(1e-9)),
        ]);
        class_entries.push(format!(
            "    {{\"class\": \"{class}\", \"queries\": {n}, \"scalar_ms\": {scalar_ms:.3}, \
             \"batched_ms\": {batched_ms:.3}, \"scalar_qps\": {scalar_qps:.3}, \
             \"batched_qps\": {batched_qps:.3}, \"ratio\": {ratio:.4}}}"
        ));
    }
    println!();
    print_table(
        &[
            "class",
            "queries",
            "scalar ms",
            "batched ms",
            "scalar q/s",
            "batched q/s",
            "speedup",
        ],
        &class_rows,
    );

    // Hand-rolled JSON (the workspace is dependency-free by design).
    let query_entries: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                "    {{\"query\": \"{}\", \"class\": \"{}\", \"scalar_ms\": {:.3}, \
                 \"batched_ms\": {:.3}}}",
                c.label, c.class, c.scalar_ms, c.batched_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"batch_exec\",\n  \"sf\": {sf},\n  \"reps\": {reps},\n  \
         \"batch_rows\": {batch_rows},\n  \"cores\": {cores},\n  \"tolerance\": {tolerance},\n  \
         \"regressed\": {},\n  \"classes\": [\n{}\n  ],\n  \"queries\": [\n{}\n  ]\n}}\n",
        !regressed.is_empty(),
        class_entries.join(",\n"),
        query_entries.join(",\n")
    );
    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {out_path}");

    if !regressed.is_empty() {
        for r in &regressed {
            eprintln!("REGRESSION: {r} (tolerance {:.0}%)", tolerance * 100.0);
        }
        std::process::exit(1);
    }
}
