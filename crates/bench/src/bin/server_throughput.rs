//! Serving throughput: queries/second through the shared-pool
//! `qppt-server` vs. the spawn-per-query `ParEngine` baseline, at client
//! concurrency 1/4/16.
//!
//! The served path runs a real in-process TCP server: C client threads,
//! each on its own connection, round-robin over a query mix; every query
//! executes on the one shared `WorkerPool`. Each client count is measured
//! twice — once with `cache=off` (the pure pool-vs-spawn engine
//! comparison: connection threads participate in their own morsel jobs,
//! so a lone client pays no pool round-trip) and once on the default
//! cached path (the real serving hot path, where the repeated mix is
//! served from the result tier). The baseline runs the same mix on C
//! threads that each call `ParEngine::run` — i.e. each query spawns (and
//! joins) its own scoped worker threads, the cost the shared pool exists
//! to amortize.
//!
//! Writes `BENCH_SERVER_THROUGHPUT.json`:
//!
//! ```text
//! cargo run --release --bin server_throughput -- \
//!     --sf 0.05 --threads 4 --clients 1,4,16 --queries 30 \
//!     --out BENCH_SERVER_THROUGHPUT.json
//! ```

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use qppt_bench::{arg_f64, arg_str, arg_usize, arg_usize_list, print_table};
use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_par::{ParEngine, WorkerPool};
use qppt_server::{detected_cores, serve, QpptClient, ServeEngine};
use qppt_ssb::{queries, SsbDb};
use qppt_storage::QuerySpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sf = arg_f64(&args, "--sf", 0.05);
    let seed = 42u64;
    let cores = detected_cores();
    let threads = arg_usize(&args, "--threads", cores.max(2));
    let clients = arg_usize_list(&args, "--clients", &[1, 4, 16]);
    let queries_per_client = arg_usize(&args, "--queries", 30);
    let parallelism = arg_usize(&args, "--parallelism", 2);
    let out_path =
        arg_str(&args, "--out").unwrap_or_else(|| "BENCH_SERVER_THROUGHPUT.json".to_string());

    if cores == 1 {
        eprintln!(
            "warning: only 1 hardware core detected — throughput deltas here \
             measure thread-spawn/scheduling overhead only"
        );
    }

    // The query mix: one light and one heavy query per SSB flight.
    let mix: Vec<QuerySpec> = vec![
        queries::q1_1(),
        queries::q2_3(),
        queries::q3_2(),
        queries::q4_1(),
    ];

    eprintln!("generating SSB at sf={sf} and preparing indexes …");
    let mut ssb = SsbDb::generate(sf, seed);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &PlanOptions::default()).expect("SSB prepares");
    }
    let db = Arc::new(ssb.db);

    // Shared-pool server, admission 2× the widest client set.
    let pool = WorkerPool::new(threads, clients.iter().copied().max().unwrap_or(4) * 2);
    let defaults = PlanOptions::default().with_parallelism(parallelism);
    let engine = Arc::new(ServeEngine::over_db(
        db.clone(),
        pool.clone(),
        defaults,
        sf,
        seed,
    ));
    let server = serve(engine, "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();

    // Correctness anchor before timing anything.
    let oracle = QpptEngine::new(&db);
    {
        let mut probe = QpptClient::connect(addr).expect("connect");
        for q in &mix {
            let served = probe
                .run(&q.id.to_ascii_lowercase(), &[])
                .expect("probe query");
            let expected = oracle.run(q, &PlanOptions::default()).expect("oracle");
            assert_eq!(served.result, expected, "{} served result diverged", q.id);
        }
    }

    let run_opts = PlanOptions::default().with_parallelism(parallelism);
    let mut rows = Vec::new();
    let mut series = Vec::new();
    let serve_pass = |c: usize, cache: &'static str| {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for ci in 0..c {
                let mix = &mix;
                s.spawn(move || {
                    let mut client = QpptClient::connect(addr).expect("connect");
                    let par = parallelism.to_string();
                    for i in 0..queries_per_client {
                        let q = &mix[(ci + i) % mix.len()];
                        client
                            .run(
                                &q.id.to_ascii_lowercase(),
                                &[("parallelism", &par), ("cache", cache)],
                            )
                            .expect("served query");
                    }
                });
            }
        });
        (c * queries_per_client) as f64 / t0.elapsed().as_secs_f64()
    };
    // One untimed pass fills the result tier, so every timed cached pass
    // below measures the same thing (warm hits) at every client count.
    {
        let mut warm = QpptClient::connect(addr).expect("connect");
        let par = parallelism.to_string();
        for q in &mix {
            warm.run(&q.id.to_ascii_lowercase(), &[("parallelism", &par)])
                .expect("warming query");
        }
    }

    for &c in &clients {
        // Served, engine-only: C connections hammering the shared pool
        // with the query cache bypassed.
        let served_qps = serve_pass(c, "off");
        // Served, hot path: same load on the default cached path.
        let cached_qps = serve_pass(c, "on");

        // Baseline: same offered load, but every query spawns its own
        // scoped worker pool (`ParEngine`).
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for ci in 0..c {
                let mix = &mix;
                let db = &db;
                s.spawn(move || {
                    let par = ParEngine::new(db);
                    for i in 0..queries_per_client {
                        let q = &mix[(ci + i) % mix.len()];
                        par.run(q, &run_opts).expect("baseline query");
                    }
                });
            }
        });
        let baseline_qps = (c * queries_per_client) as f64 / t0.elapsed().as_secs_f64();

        let ratio = if baseline_qps > 0.0 {
            served_qps / baseline_qps
        } else {
            0.0
        };
        rows.push(vec![
            c.to_string(),
            format!("{served_qps:.1}"),
            format!("{cached_qps:.1}"),
            format!("{baseline_qps:.1}"),
            format!("{ratio:.2}x"),
        ]);
        series.push((c, served_qps, cached_qps, baseline_qps, ratio));
    }

    println!(
        "server throughput, sf={sf}, pool={threads} threads, parallelism={parallelism}, {} queries/client:",
        queries_per_client
    );
    print_table(
        &[
            "clients",
            "served q/s (cache=off)",
            "served q/s (cached)",
            "spawn-per-query q/s",
            "served/baseline",
        ],
        &rows,
    );

    // Hand-rolled JSON (the workspace is dependency-free by design).
    let entries: Vec<String> = series
        .iter()
        .map(|(c, s, cc, b, r)| {
            format!(
                "    {{\"clients\": {c}, \"served_qps\": {s:.3}, \"served_cached_qps\": {cc:.3}, \"baseline_qps\": {b:.3}, \"served_over_baseline\": {r:.3}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"server_throughput\",\n  \"sf\": {sf},\n  \"cores\": {cores},\n  \"pool_threads\": {threads},\n  \"parallelism\": {parallelism},\n  \"queries_per_client\": {queries_per_client},\n  \"mix\": [\"Q1.1\", \"Q2.3\", \"Q3.2\", \"Q4.1\"],\n  \"series\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {out_path}");

    let mut stop = QpptClient::connect(addr).expect("connect");
    let _ = stop.ping();
    drop(stop);
    server.stop();
    pool.shutdown();
}
