//! Design-choice ablations (DESIGN.md A1–A4).
//!
//! * `joinbuffer` — the demonstrator's buffer-size knob (1/64/512/2048) on
//!   Q2.3 and Q4.1 (Appendix A).
//! * `duplicates` — §2.4's segmented duplicate storage vs. the naive linked
//!   list, measured on full duplicate scans.
//! * `kprime` — §2.1's k′ trade-off: insert/lookup time and memory for
//!   k′ ∈ {2, 4, 8}.
//! * `compression` — §2.2's KISS second-level compression: update cost
//!   (copy-on-update) and memory on dense vs. sparse key ranges.
//!
//! ```text
//! cargo run --release -p qppt-bench --bin ablations -- [all|joinbuffer|duplicates|kprime|compression]
//! ```

use qppt_bench::{arg_f64, arg_usize, ms, print_table, time_best_of, time_once, BenchDb};
use qppt_core::PlanOptions;
use qppt_mem::{DupArena, LinkedDupArena, Xoshiro256StarStar};
use qppt_ssb::queries;
use qppt_trie::{PrefixTree, TrieConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "joinbuffer" => joinbuffer(&args),
        "duplicates" => duplicates(&args),
        "kprime" => kprime(&args),
        "compression" => compression(&args),
        "all" => {
            joinbuffer(&args);
            duplicates(&args);
            kprime(&args);
            compression(&args);
        }
        other => panic!("unknown ablation {other:?}"),
    }
}

/// A1: join/selection buffer size (demo appendix).
fn joinbuffer(args: &[String]) {
    let sf = arg_f64(args, "--sf", 0.1);
    let runs = arg_usize(args, "--runs", 3);
    eprintln!("A1 joinbuffer: generating SSB (SF={sf}) …");
    let db = BenchDb::prepare(sf, 42);
    println!("\nAblation A1: join/selection buffer size [ms] (SF={sf})");
    let mut rows = Vec::new();
    for q in [queries::q2_3(), queries::q4_1()] {
        let mut row = vec![q.id.clone()];
        for buf in PlanOptions::JOIN_BUFFER_CHOICES {
            let opts = PlanOptions::default().with_join_buffer(buf);
            let t = time_best_of(runs, || db.run_qppt(&q, &opts));
            row.push(format!("{:.2}", ms(t)));
        }
        rows.push(row);
    }
    print_table(&["query", "buf=1", "buf=64", "buf=512", "buf=2048"], &rows);
}

/// A2: segmented duplicate storage (Fig. 4) vs. linked list.
fn duplicates(args: &[String]) {
    let keys = arg_usize(args, "--dupkeys", 2_000);
    let per_key = arg_usize(args, "--dupvalues", 2_000);
    println!(
        "\nAblation A2: duplicate handling — {keys} keys × {per_key} values, interleaved inserts"
    );

    // Interleave inserts across keys so linked-list nodes scatter (the
    // realistic operator pattern: output-index inserts arrive key-mixed).
    let mut rng = Xoshiro256StarStar::new(7);
    let mut order: Vec<u32> = (0..keys as u32)
        .flat_map(|k| std::iter::repeat_n(k, per_key))
        .collect();
    rng.shuffle(&mut order);

    let (t_seg_build, (seg, seg_lists)) = time_once(|| {
        let mut arena = DupArena::<u64>::new();
        let mut lists = vec![None; keys];
        for &k in &order {
            match &mut lists[k as usize] {
                None => lists[k as usize] = Some(arena.new_list(k as u64)),
                Some(l) => arena.push(l, k as u64),
            }
        }
        (arena, lists)
    });
    let (t_lnk_build, (lnk, lnk_lists)) = time_once(|| {
        let mut arena = LinkedDupArena::<u64>::new();
        let mut lists = vec![None; keys];
        for &k in &order {
            match &mut lists[k as usize] {
                None => lists[k as usize] = Some(arena.new_list(k as u64)),
                Some(l) => arena.push(l, k as u64),
            }
        }
        (arena, lists)
    });

    let scan_seg = time_best_of(5, || {
        let mut sum = 0u64;
        for l in seg_lists.iter().flatten() {
            seg.for_each_segment(l, |vals| sum += vals.iter().sum::<u64>());
        }
        sum
    });
    let scan_lnk = time_best_of(5, || {
        let mut sum = 0u64;
        for l in lnk_lists.iter().flatten() {
            sum += lnk.iter(l).sum::<u64>();
        }
        sum
    });

    print_table(
        &["storage", "build ms", "scan ms"],
        &[
            vec![
                "segmented (Fig. 4)".into(),
                format!("{:.2}", ms(t_seg_build)),
                format!("{:.2}", ms(scan_seg)),
            ],
            vec![
                "linked list".into(),
                format!("{:.2}", ms(t_lnk_build)),
                format!("{:.2}", ms(scan_lnk)),
            ],
        ],
    );
    println!(
        "scan speedup of segmented storage: {:.2}x",
        ms(scan_lnk) / ms(scan_seg)
    );
}

/// A3: prefix length k′ trade-off (§2.1).
fn kprime(args: &[String]) {
    let n = arg_usize(args, "--keys", 1_000_000);
    println!("\nAblation A3: prefix length k′ — {n} sparse random 32-bit keys");
    let mut rng = Xoshiro256StarStar::new(3);
    let keys: Vec<u64> = (0..n).map(|_| rng.next_u32() as u64).collect();
    let mut rows = Vec::new();
    for k in [2u8, 4, 8] {
        let (t_ins, tree) = time_once(|| {
            let mut t = PrefixTree::<u32>::new(TrieConfig::new(32, k).unwrap());
            for (i, &key) in keys.iter().enumerate() {
                t.insert_merge(key, i as u32, |acc, v| *acc = v);
            }
            t
        });
        let t_get = time_best_of(3, || {
            let mut found = 0usize;
            for &key in &keys {
                found += tree.get_first(key).is_some() as usize;
            }
            found
        });
        let stats = tree.stats();
        rows.push(vec![
            format!("k'={k}"),
            format!("{:.1}", t_ins.as_nanos() as f64 / n as f64),
            format!("{:.1}", t_get.as_nanos() as f64 / n as f64),
            format!("{}", stats.max_depth + 1),
            format!("{:.1}", stats.total_bytes() as f64 / (1 << 20) as f64),
        ]);
    }
    print_table(
        &[
            "config",
            "insert ns/key",
            "lookup ns/key",
            "max accesses",
            "memory MiB",
        ],
        &rows,
    );
    println!(
        "paper: k'=4 is the standard trade-off; higher k' is faster but bigger on sparse keys"
    );
}

/// A4: KISS second-level compression (§2.2).
fn compression(args: &[String]) {
    use qppt_kiss::{KissConfig, KissTree};
    let n = arg_usize(args, "--keys", 1_000_000);
    println!("\nAblation A4: KISS-Tree L2 compression — {n} keys, dense vs sparse");
    let mut rows = Vec::new();
    for (dist, keys) in [
        ("dense", {
            let mut rng = Xoshiro256StarStar::new(4);
            rng.permutation(n as u32)
        }),
        ("sparse", {
            let mut rng = Xoshiro256StarStar::new(5);
            (0..n).map(|_| rng.next_u32()).collect::<Vec<u32>>()
        }),
    ] {
        for compressed in [false, true] {
            let cfg = KissConfig {
                l1_bits: 26,
                compressed,
            };
            let (t_ins, tree) = time_once(|| {
                let mut t = KissTree::<u32>::new(cfg);
                for (i, &key) in keys.iter().enumerate() {
                    t.insert_merge(key, i as u32, |acc, v| *acc = v);
                }
                t
            });
            let t_get = time_best_of(3, || {
                let mut found = 0usize;
                for &key in &keys {
                    found += tree.get_first(key).is_some() as usize;
                }
                found
            });
            let s = tree.stats();
            rows.push(vec![
                format!(
                    "{dist}/{}",
                    if compressed {
                        "compressed"
                    } else {
                        "uncompressed"
                    }
                ),
                format!("{:.1}", t_ins.as_nanos() as f64 / n as f64),
                format!("{:.1}", t_get.as_nanos() as f64 / n as f64),
                format!("{}", s.copy_updates),
                format!("{:.1}", s.resident_bytes() as f64 / (1 << 20) as f64),
            ]);
        }
    }
    print_table(
        &[
            "workload",
            "insert ns/key",
            "lookup ns/key",
            "RCU copies",
            "memory MiB",
        ],
        &rows,
    );
    println!("paper: QPPT disables compression on dense ranges to avoid the RCU copy overhead");
}
