//! Figure 8: SSB Q1.1 with and without the composed select-join operator
//! (paper: 151 ms with vs. 1709 ms without on DexterDB; MonetDB 2059 ms,
//! commercial 156 ms).
//!
//! Without select-join, the fact-side residual selection materializes a
//! large intermediate index first — ~95% of the plan's time in the paper.
//!
//! ```text
//! cargo run --release -p qppt-bench --bin fig8 -- [--sf 0.1] [--runs 3]
//! ```

use qppt_bench::{arg_f64, arg_usize, ms, print_table, time_best_of, BenchDb};
use qppt_core::{PlanOptions, QpptEngine};
use qppt_ssb::queries;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sf = arg_f64(&args, "--sf", 0.1);
    let runs = arg_usize(&args, "--runs", 3);

    eprintln!("generating SSB (SF={sf}) and building base indexes …");
    let db = BenchDb::prepare(sf, 42);
    let cdb = db.column_db();
    let q = queries::q1_1();
    let with_sj = PlanOptions::default().with_select_join(true);
    let without_sj = PlanOptions::default().with_select_join(false);

    // Cross-check all four configurations.
    let a = db.run_qppt(&q, &with_sj).canonicalized();
    assert_eq!(a, db.run_qppt(&q, &without_sj).canonicalized());
    assert_eq!(a, db.run_vector(&cdb, &q).canonicalized());
    assert_eq!(a, db.run_column(&cdb, &q).canonicalized());

    let t_col = time_best_of(runs, || db.run_column(&cdb, &q));
    let t_vec = time_best_of(runs, || db.run_vector(&cdb, &q));
    let t_with = time_best_of(runs, || db.run_qppt(&q, &with_sj));
    let t_without = time_best_of(runs, || db.run_qppt(&q, &without_sj));

    println!("\nFigure 8: SSB Q1.1 (SF={sf}) with and without select-join [ms]");
    print_table(
        &["configuration", "ms"],
        &[
            vec![
                "column-at-a-time (MonetDB)".into(),
                format!("{:.2}", ms(t_col)),
            ],
            vec![
                "vector-at-a-time (Commercial)".into(),
                format!("{:.2}", ms(t_vec)),
            ],
            vec!["QPPT w/ select-join".into(), format!("{:.2}", ms(t_with))],
            vec![
                "QPPT w/o select-join".into(),
                format!("{:.2}", ms(t_without)),
            ],
        ],
    );
    println!(
        "\nselect-join speedup: {:.2}x (paper: ~11x)",
        ms(t_without) / ms(t_with)
    );

    // Show the paper's "95% of the time is the selection" claim via the
    // per-operator statistics of the non-fused plan.
    let engine = QpptEngine::new(&db.ssb.db);
    let (_, stats) = engine.run_with_stats(&q, &without_sj).unwrap();
    println!("\nper-operator statistics of the non-fused plan:");
    print!("{stats}");
    if let Some((i, _)) = stats
        .ops
        .iter()
        .enumerate()
        .find(|(_, o)| o.label.contains("fact residuals"))
    {
        println!(
            "fact-selection share of operator time: {:.1}% (paper: ~95%)",
            stats.share(i) * 100.0
        );
    }
}
