//! Figure 9: SSB Q4.1 under different multi-way/star join width limits
//! (paper: DexterDB 5-way 842 ms, 4-way 1091 ms, 3-way 1595 ms, 2-way
//! 4939 ms; commercial 1845 ms, MonetDB 7902 ms).
//!
//! The step from 2-way to 3-way joins is the biggest win because the first
//! join otherwise materializes the largest intermediate result.
//!
//! ```text
//! cargo run --release -p qppt-bench --bin fig9 -- [--sf 0.1] [--runs 3]
//! ```

use qppt_bench::{arg_f64, arg_usize, ms, print_table, time_best_of, BenchDb};
use qppt_core::PlanOptions;
use qppt_ssb::queries;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sf = arg_f64(&args, "--sf", 0.1);
    let runs = arg_usize(&args, "--runs", 3);

    eprintln!("generating SSB (SF={sf}) and building base indexes …");
    let db = BenchDb::prepare(sf, 42);
    let cdb = db.column_db();
    let q = queries::q4_1();

    // Cross-check every configuration first.
    let expect = db.run_vector(&cdb, &q).canonicalized();
    for ways in 2..=5 {
        let opts = PlanOptions::default().with_max_join_ways(ways);
        assert_eq!(db.run_qppt(&q, &opts).canonicalized(), expect, "{ways}-way");
    }
    assert_eq!(db.run_column(&cdb, &q).canonicalized(), expect);

    let t_col = time_best_of(runs, || db.run_column(&cdb, &q));
    let t_vec = time_best_of(runs, || db.run_vector(&cdb, &q));
    let mut rows = vec![
        vec![
            "column-at-a-time (MonetDB)".to_string(),
            format!("{:.2}", ms(t_col)),
        ],
        vec![
            "vector-at-a-time (Commercial)".to_string(),
            format!("{:.2}", ms(t_vec)),
        ],
    ];
    let mut qppt_ms = Vec::new();
    for ways in [5usize, 4, 3, 2] {
        let opts = PlanOptions::default().with_max_join_ways(ways);
        let t = time_best_of(runs, || db.run_qppt(&q, &opts));
        qppt_ms.push((ways, ms(t)));
        rows.push(vec![
            format!("QPPT {ways}-way join"),
            format!("{:.2}", ms(t)),
        ]);
    }

    println!("\nFigure 9: SSB Q4.1 (SF={sf}) multi-way/star join configurations [ms]");
    print_table(&["configuration", "ms"], &rows);

    let t5 = qppt_ms.iter().find(|(w, _)| *w == 5).unwrap().1;
    let t3 = qppt_ms.iter().find(|(w, _)| *w == 3).unwrap().1;
    let t2 = qppt_ms.iter().find(|(w, _)| *w == 2).unwrap().1;
    println!(
        "\n2-way → 3-way speedup: {:.2}x (the paper's biggest step)",
        t2 / t3
    );
    println!(
        "3-way → 5-way speedup: {:.2}x (diminishing returns)",
        t3 / t5
    );
}
