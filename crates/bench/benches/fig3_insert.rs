//! Criterion counterpart of Fig. 3(a): insert/update throughput of the
//! index structures at a CI-friendly size (the `fig3` binary sweeps sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qppt_hash::{ChainedHashMap, OpenHashMap};
use qppt_kiss::{KissConfig, KissTree};
use qppt_mem::Xoshiro256StarStar;
use qppt_trie::PrefixTree;

const N: usize = 200_000;
const BATCH: usize = 2048;

fn keys() -> Vec<u32> {
    Xoshiro256StarStar::new(42).permutation(N as u32)
}

fn bench(c: &mut Criterion) {
    let keys = keys();
    let mut g = c.benchmark_group("fig3a_insert");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);

    g.bench_function(BenchmarkId::new("PT4", N), |b| {
        b.iter(|| {
            let mut t = PrefixTree::<u32>::pt4_32();
            for (i, &k) in keys.iter().enumerate() {
                t.insert_merge(k as u64, i as u32, |acc, v| *acc = v);
            }
            t.len()
        })
    });
    g.bench_function(BenchmarkId::new("GLIB_chained", N), |b| {
        b.iter(|| {
            let mut t = ChainedHashMap::<u32>::new();
            for (i, &k) in keys.iter().enumerate() {
                t.insert(k as u64, i as u32);
            }
            t.len()
        })
    });
    g.bench_function(BenchmarkId::new("BOOST_open", N), |b| {
        b.iter(|| {
            let mut t = OpenHashMap::<u32>::new();
            for (i, &k) in keys.iter().enumerate() {
                t.insert(k as u64, i as u32);
            }
            t.len()
        })
    });
    g.bench_function(BenchmarkId::new("KISS", N), |b| {
        b.iter(|| {
            let mut t = KissTree::<u32>::new(KissConfig::paper());
            for (i, &k) in keys.iter().enumerate() {
                t.insert_merge(k, i as u32, |acc, v| *acc = v);
            }
            t.len()
        })
    });
    let pairs: Vec<(u32, u32)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u32))
        .collect();
    g.bench_function(BenchmarkId::new("KISS_batched", N), |b| {
        b.iter(|| {
            let mut t = KissTree::<u32>::new(KissConfig::paper());
            for chunk in pairs.chunks(BATCH) {
                t.batch_insert(chunk);
            }
            t.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
