//! Criterion counterpart of Fig. 9: Q4.1 under 2/3/4/5-way star join
//! limits, plus the two baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qppt_bench::BenchDb;
use qppt_core::PlanOptions;
use qppt_ssb::queries;

const SF: f64 = 0.01;

fn bench(c: &mut Criterion) {
    let db = BenchDb::prepare(SF, 42);
    let cdb = db.column_db();
    let q = queries::q4_1();

    let mut g = c.benchmark_group("fig9_q4_1");
    g.sample_size(10);
    for ways in [5usize, 4, 3, 2] {
        g.bench_function(BenchmarkId::new("qppt_ways", ways), |b| {
            let opts = PlanOptions::default().with_max_join_ways(ways);
            b.iter(|| db.run_qppt(&q, &opts))
        });
    }
    g.bench_function("vector_at_a_time", |b| b.iter(|| db.run_vector(&cdb, &q)));
    g.bench_function("column_at_a_time", |b| b.iter(|| db.run_column(&cdb, &q)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
