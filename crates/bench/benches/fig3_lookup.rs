//! Criterion counterpart of Fig. 3(b): lookup throughput of the index
//! structures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qppt_hash::{ChainedHashMap, OpenHashMap};
use qppt_kiss::{KissConfig, KissTree};
use qppt_mem::Xoshiro256StarStar;
use qppt_trie::PrefixTree;

const N: usize = 200_000;
const BATCH: usize = 2048;

fn bench(c: &mut Criterion) {
    let keys = Xoshiro256StarStar::new(42).permutation(N as u32);
    let probes = Xoshiro256StarStar::new(99).permutation(N as u32);

    let mut pt = PrefixTree::<u32>::pt4_32();
    let mut glib = ChainedHashMap::<u32>::new();
    let mut open = OpenHashMap::<u32>::new();
    let mut kiss = KissTree::<u32>::new(KissConfig::paper());
    for (i, &k) in keys.iter().enumerate() {
        pt.insert_merge(k as u64, i as u32, |acc, v| *acc = v);
        glib.insert(k as u64, i as u32);
        open.insert(k as u64, i as u32);
        kiss.insert_merge(k, i as u32, |acc, v| *acc = v);
    }

    let mut g = c.benchmark_group("fig3b_lookup");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);

    g.bench_function(BenchmarkId::new("PT4", N), |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|&&k| pt.get_first(k as u64).is_some())
                .count()
        })
    });
    g.bench_function(BenchmarkId::new("GLIB_chained", N), |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|&&k| glib.get(k as u64).is_some())
                .count()
        })
    });
    g.bench_function(BenchmarkId::new("BOOST_open", N), |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|&&k| open.get(k as u64).is_some())
                .count()
        })
    });
    g.bench_function(BenchmarkId::new("KISS", N), |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|&&k| kiss.get_first(k).is_some())
                .count()
        })
    });
    g.bench_function(BenchmarkId::new("KISS_batched", N), |b| {
        b.iter(|| {
            let mut found = 0usize;
            for chunk in probes.chunks(BATCH) {
                for v in kiss.batch_get_first(chunk) {
                    found += v.is_some() as usize;
                }
            }
            found
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
