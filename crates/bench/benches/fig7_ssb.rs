//! Criterion counterpart of Fig. 7: the 13 SSB queries on the three engines
//! at a CI-friendly scale factor (the `fig7` binary runs bigger scales).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qppt_bench::BenchDb;
use qppt_core::PlanOptions;
use qppt_ssb::queries;

const SF: f64 = 0.01;

fn bench(c: &mut Criterion) {
    let db = BenchDb::prepare(SF, 42);
    let cdb = db.column_db();
    let opts = PlanOptions::default();

    let mut g = c.benchmark_group("fig7_ssb");
    g.sample_size(10);
    for q in queries::all_queries() {
        g.bench_function(BenchmarkId::new("qppt", &q.id), |b| {
            b.iter(|| db.run_qppt(&q, &opts))
        });
        g.bench_function(BenchmarkId::new("vector", &q.id), |b| {
            b.iter(|| db.run_vector(&cdb, &q))
        });
        g.bench_function(BenchmarkId::new("column", &q.id), |b| {
            b.iter(|| db.run_column(&cdb, &q))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
