//! Criterion counterparts of the design ablations A1–A4 (DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qppt_bench::BenchDb;
use qppt_core::PlanOptions;
use qppt_kiss::{KissConfig, KissTree};
use qppt_mem::{DupArena, LinkedDupArena, Xoshiro256StarStar};
use qppt_ssb::queries;
use qppt_trie::{PrefixTree, TrieConfig};

const SF: f64 = 0.01;

fn a1_joinbuffer(c: &mut Criterion) {
    let db = BenchDb::prepare(SF, 42);
    let q = queries::q4_1();
    let mut g = c.benchmark_group("a1_joinbuffer_q4_1");
    g.sample_size(10);
    for buf in PlanOptions::JOIN_BUFFER_CHOICES {
        g.bench_function(BenchmarkId::new("buf", buf), |b| {
            let opts = PlanOptions::default().with_join_buffer(buf);
            b.iter(|| db.run_qppt(&q, &opts))
        });
    }
    g.finish();
}

fn a2_duplicates(c: &mut Criterion) {
    const KEYS: usize = 500;
    const PER_KEY: usize = 1_000;
    let mut rng = Xoshiro256StarStar::new(7);
    let mut order: Vec<u32> = (0..KEYS as u32)
        .flat_map(|k| std::iter::repeat_n(k, PER_KEY))
        .collect();
    rng.shuffle(&mut order);

    let mut seg = DupArena::<u64>::new();
    let mut seg_lists = vec![None; KEYS];
    let mut lnk = LinkedDupArena::<u64>::new();
    let mut lnk_lists = vec![None; KEYS];
    for &k in &order {
        match &mut seg_lists[k as usize] {
            None => seg_lists[k as usize] = Some(seg.new_list(k as u64)),
            Some(l) => seg.push(l, k as u64),
        }
        match &mut lnk_lists[k as usize] {
            None => lnk_lists[k as usize] = Some(lnk.new_list(k as u64)),
            Some(l) => lnk.push(l, k as u64),
        }
    }

    let mut g = c.benchmark_group("a2_duplicate_scan");
    g.bench_function("segmented", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for l in seg_lists.iter().flatten() {
                seg.for_each_segment(l, |vals| sum += vals.iter().sum::<u64>());
            }
            sum
        })
    });
    g.bench_function("linked_list", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for l in lnk_lists.iter().flatten() {
                sum += lnk.iter(l).sum::<u64>();
            }
            sum
        })
    });
    g.finish();
}

fn a3_kprime(c: &mut Criterion) {
    const N: usize = 200_000;
    let mut rng = Xoshiro256StarStar::new(3);
    let keys: Vec<u64> = (0..N).map(|_| rng.next_u32() as u64).collect();
    let mut g = c.benchmark_group("a3_kprime_insert");
    g.sample_size(10);
    for k in [2u8, 4, 8] {
        g.bench_function(BenchmarkId::new("kprime", k), |b| {
            b.iter(|| {
                let mut t = PrefixTree::<u32>::new(TrieConfig::new(32, k).unwrap());
                for (i, &key) in keys.iter().enumerate() {
                    t.insert_merge(key, i as u32, |acc, v| *acc = v);
                }
                t.len()
            })
        });
    }
    g.finish();
}

fn a4_compression(c: &mut Criterion) {
    const N: usize = 200_000;
    let dense = Xoshiro256StarStar::new(4).permutation(N as u32);
    let mut g = c.benchmark_group("a4_kiss_compression_dense_insert");
    g.sample_size(10);
    for compressed in [false, true] {
        let name = if compressed {
            "compressed"
        } else {
            "uncompressed"
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut t = KissTree::<u32>::new(KissConfig {
                    l1_bits: 26,
                    compressed,
                });
                for (i, &key) in dense.iter().enumerate() {
                    t.insert_merge(key, i as u32, |acc, v| *acc = v);
                }
                t.len()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    a1_joinbuffer,
    a2_duplicates,
    a3_kprime,
    a4_compression
);
criterion_main!(benches);
