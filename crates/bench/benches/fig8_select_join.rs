//! Criterion counterpart of Fig. 8: Q1.1 with and without the composed
//! select-join, plus the two baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use qppt_bench::BenchDb;
use qppt_core::PlanOptions;
use qppt_ssb::queries;

const SF: f64 = 0.01;

fn bench(c: &mut Criterion) {
    let db = BenchDb::prepare(SF, 42);
    let cdb = db.column_db();
    let q = queries::q1_1();

    let mut g = c.benchmark_group("fig8_q1_1");
    g.sample_size(10);
    g.bench_function("qppt_with_select_join", |b| {
        let opts = PlanOptions::default().with_select_join(true);
        b.iter(|| db.run_qppt(&q, &opts))
    });
    g.bench_function("qppt_without_select_join", |b| {
        let opts = PlanOptions::default().with_select_join(false);
        b.iter(|| db.run_qppt(&q, &opts))
    });
    g.bench_function("vector_at_a_time", |b| b.iter(|| db.run_vector(&cdb, &q)));
    g.bench_function("column_at_a_time", |b| b.iter(|| db.run_column(&cdb, &q)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
