//! Criterion variant of the parallel-scaling measurement (SSB Q2.3 at
//! 1/2/4/8 workers). See `src/bin/par_scaling.rs` for the dependency-free
//! runner that writes `BENCH_PAR_SCALING.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qppt_bench::BenchDb;
use qppt_core::PlanOptions;
use qppt_par::ParEngine;
use qppt_ssb::queries;

fn bench(c: &mut Criterion) {
    let db = BenchDb::prepare(0.05, 42);
    let spec = queries::q2_3();
    let mut g = c.benchmark_group("par_scaling_q2_3");
    for workers in [1usize, 2, 4, 8] {
        let opts = PlanOptions::default().with_parallelism(workers);
        let engine = ParEngine::new(&db.ssb.db);
        g.bench_function(BenchmarkId::new("workers", workers), |b| {
            b.iter(|| engine.run(&spec, &opts).expect("prepared query runs"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
