//! Batched KISS-Tree operations (§2.3).
//!
//! With only two levels, a batched lookup needs just three rounds: resolve
//! and prefetch the second-level node, resolve and prefetch the content,
//! then read it. The paper highlights that batching benefits the KISS-Tree
//! most in the memory-bound regime, where its non-batched lookups otherwise
//! degrade towards hash-table performance (Fig. 3(b)).

use qppt_mem::prefetch::prefetch_read;

use crate::tree::{KissTree, Values};

impl<V: Copy + Default> KissTree<V> {
    /// Batched lookup: invokes `out(job_index, values)` for every present
    /// key. Equivalent to per-key [`get`](Self::get), with the memory
    /// latency of the two dependent dereferences overlapped across jobs.
    pub fn batch_get<'a>(&'a self, keys: &[u32], mut out: impl FnMut(usize, Values<'a, V>)) {
        // Round 1: root slots → node ids (prefetch node headers).
        let mut node_of: Vec<u32> = Vec::with_capacity(keys.len());
        for &key in keys {
            let (ri, _) = self.config().split(key);
            let n = self.root_slot(ri);
            if n != 0 {
                self.prefetch_node(n);
            }
            node_of.push(n);
        }
        // Round 2: node entries → content ids (prefetch contents).
        let mut content_of: Vec<u32> = Vec::with_capacity(keys.len());
        for (i, &key) in keys.iter().enumerate() {
            let n = node_of[i];
            if n == 0 {
                content_of.push(0);
                continue;
            }
            let (_, ei) = self.config().split(key);
            let e = self.node_entry(n, ei);
            if e != 0 {
                self.prefetch_content(e - 1);
            }
            content_of.push(e);
        }
        // Round 3: deliver.
        for (i, &e) in content_of.iter().enumerate() {
            if e != 0 {
                out(i, self.values_of(e - 1));
            }
        }
    }

    /// Batched first-value lookup (unique indexes).
    pub fn batch_get_first(&self, keys: &[u32]) -> Vec<Option<V>> {
        let mut out = vec![None; keys.len()];
        self.batch_get(keys, |i, mut vs| out[i] = vs.next().copied());
        out
    }

    /// Batched membership test.
    pub fn batch_contains(&self, keys: &[u32]) -> Vec<bool> {
        let mut out = vec![false; keys.len()];
        self.batch_get(keys, |i, _| out[i] = true);
        out
    }

    /// Batched insert. The descent is batched (root slots prefetched);
    /// structural updates are applied per job, which is safe because updates
    /// only append nodes/contents and write previously-empty entries.
    pub fn batch_insert(&mut self, pairs: &[(u32, V)]) {
        // Prefetch the root page of every job first, then insert. The root
        // access is the one most likely to fault a new page in.
        for &(key, _) in pairs {
            let (ri, _) = self.config().split(key);
            self.prefetch_root(ri);
        }
        for &(key, value) in pairs {
            self.insert(key, value);
        }
    }

    #[inline]
    fn prefetch_root(&self, root_idx: usize) {
        // The root vec is private to tree.rs; prefetch via the slot getter's
        // address computed from a reference obtained through iteration —
        // simplest is to reconstruct the address from the first slot.
        let base = self.root_slot_addr(root_idx);
        prefetch_read(base);
    }

    #[inline]
    fn prefetch_node(&self, node_plus_one: u32) {
        prefetch_read(self.node_addr(node_plus_one));
    }

    #[inline]
    fn prefetch_content(&self, content: u32) {
        prefetch_read(self.content_addr(content));
    }
}

#[cfg(test)]
mod tests {
    use crate::{KissConfig, KissTree};
    use qppt_mem::Xoshiro256StarStar;

    #[test]
    fn batch_get_matches_scalar() {
        for compressed in [false, true] {
            let mut t = KissTree::<u32>::new(KissConfig::small(compressed));
            let mut rng = Xoshiro256StarStar::new(21);
            let mut keys = Vec::new();
            for i in 0..4000u32 {
                let k = rng.below(1 << 16) as u32;
                t.insert(k, i);
                keys.push(k);
            }
            let mut probes = keys[..1500].to_vec();
            for _ in 0..1500 {
                probes.push(rng.below(1 << 16) as u32);
            }
            let got = t.batch_get_first(&probes);
            for (i, &k) in probes.iter().enumerate() {
                assert_eq!(got[i], t.get_first(k), "key {k} compressed={compressed}");
            }
        }
    }

    #[test]
    fn batch_insert_equals_scalar_insert() {
        let mut rng = Xoshiro256StarStar::new(22);
        let pairs: Vec<(u32, u32)> = (0..3000u32)
            .map(|i| ((rng.below(1 << 13)) as u32, i))
            .collect();
        let mut scalar = KissTree::<u32>::new(KissConfig::small(false));
        for &(k, v) in &pairs {
            scalar.insert(k, v);
        }
        let mut batched = KissTree::<u32>::new(KissConfig::small(false));
        batched.batch_insert(&pairs);
        let a: Vec<(u32, Vec<u32>)> = scalar
            .iter()
            .map(|(k, v)| (k, v.copied().collect()))
            .collect();
        let b: Vec<(u32, Vec<u32>)> = batched
            .iter()
            .map(|(k, v)| (k, v.copied().collect()))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn batch_on_empty_tree() {
        let t = KissTree::<u32>::new(KissConfig::small(false));
        assert_eq!(t.batch_get_first(&[1, 2, 3]), vec![None, None, None]);
        assert!(t.batch_get_first(&[]).is_empty());
    }

    #[test]
    fn batch_contains_mixed() {
        let mut t = KissTree::<u32>::new(KissConfig::small(false));
        t.insert(10, 0);
        t.insert(20, 0);
        assert_eq!(
            t.batch_contains(&[10, 11, 20, 21]),
            vec![true, false, true, false]
        );
    }
}
