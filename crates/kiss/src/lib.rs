//! KISS-Tree (§2.2 of the QPPT paper; Kissinger et al., DaMoN 2012).
//!
//! The KISS-Tree is a prefix-tree-based index specialised for **32-bit
//! keys**: the key is split into exactly two fragments — 26 bits for the
//! first level and 6 bits for the second — so a lookup needs at most three
//! memory accesses (root slot, second-level node, content) instead of the up
//! to 9 of a `k′ = 4` prefix tree.
//!
//! * The root is a directory of 2²⁶ compact 32-bit pointers. Allocating it
//!   eagerly would cost 256 MB, so the paper allocates it *virtually* and
//!   lets the OS map physical 4 KB pages on demand. We obtain the same
//!   behaviour with a zeroed allocation (`vec![0u32; 1 << 26]`): large
//!   zeroed allocations are served by anonymous `mmap`, whose pages are
//!   faulted in lazily at 4 KB granularity (see DESIGN.md, substitutions).
//! * Second-level nodes hold 64 entries. The original KISS-Tree compresses
//!   them with a 64-bit occupancy bitmask plus a compact entry array, which
//!   saves memory but forces a copy-on-update (the RCU overhead the paper
//!   mentions); QPPT disables the compression for dense key ranges to trade
//!   memory for in-place updates. Both variants are implemented and
//!   selectable via [`KissConfig`]; Ablation A4 measures the difference.
//! * Because a key is fully determined by its position (26 + 6 = 32 bits),
//!   content entries do **not** store the key — unlike the generalized
//!   prefix tree, where dynamic expansion makes key storage necessary.
//!
//! Like the prefix tree, the KISS-Tree is order-preserving, supports
//! multi-value keys via the segmented duplicate storage of §2.4, offers
//! batched operations (§2.3), and participates in synchronous index scans
//! whose root-level pass is bounded by `max(l.min, r.min) ..=
//! min(l.max, r.max)` (§4.2).

mod batch;
mod scan;
mod tree;

pub use scan::{kiss_intersect, kiss_sync_scan, kiss_sync_scan_range};
pub use tree::{KissIter, KissStats, KissTree, Values};

/// Configuration of a [`KissTree`].
///
/// The second level always resolves 6 bits (64-entry nodes, one cache line
/// of compact pointers — fixed by the KISS-Tree design). The root width is
/// configurable: the paper's 26 bits cover the full 32-bit key domain;
/// smaller roots shrink the virtual footprint for tests at the cost of a
/// smaller key domain (`2^(l1_bits + 6)` keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KissConfig {
    /// Bits resolved by the root directory (the paper uses 26; tests may use
    /// fewer to keep virtual footprints tiny). Must be in `6..=26`.
    pub l1_bits: u8,
    /// Whether second-level nodes use the bitmask compression of the
    /// original KISS-Tree (`true`) or QPPT's uncompressed, in-place-updated
    /// variant (`false`).
    pub compressed: bool,
}

impl KissConfig {
    /// The paper's geometry (26/6 split), uncompressed second level — the
    /// variant QPPT uses for its dense intermediate-index keys.
    pub fn paper() -> Self {
        Self {
            l1_bits: 26,
            compressed: false,
        }
    }

    /// The original KISS-Tree: 26/6 split with compressed second level.
    pub fn paper_compressed() -> Self {
        Self {
            l1_bits: 26,
            compressed: true,
        }
    }

    /// Small-root configuration for tests.
    pub fn small(compressed: bool) -> Self {
        Self {
            l1_bits: 10,
            compressed,
        }
    }

    /// Bits resolved by second-level nodes (fixed at 6 by the KISS design).
    #[inline]
    pub fn l2_bits(&self) -> u8 {
        6
    }

    /// Number of root directory slots.
    #[inline]
    pub fn root_slots(&self) -> usize {
        1usize << self.l1_bits
    }

    /// Entries per second-level node (always 64).
    #[inline]
    pub fn node_entries(&self) -> usize {
        64
    }

    /// Exclusive upper bound of the key domain (`None` for the full 32-bit
    /// domain of the paper geometry).
    #[inline]
    pub fn key_limit(&self) -> Option<u32> {
        if self.l1_bits == 26 {
            None
        } else {
            Some(1u32 << (self.l1_bits + 6))
        }
    }

    pub(crate) fn validate(&self) {
        assert!(
            (6..=26).contains(&self.l1_bits),
            "l1_bits must be in 6..=26 (got {})",
            self.l1_bits
        );
    }

    pub(crate) fn check_key(&self, key: u32) {
        if let Some(limit) = self.key_limit() {
            assert!(
                key < limit,
                "key {key:#x} exceeds the {}-bit domain of this root geometry",
                self.l1_bits + 6
            );
        }
    }

    /// Splits a key into (root index, node entry index).
    #[inline]
    pub fn split(&self, key: u32) -> (usize, usize) {
        ((key >> 6) as usize, (key & 63) as usize)
    }

    /// Recombines (root index, node entry index) into the key.
    #[inline]
    pub fn join(&self, root: usize, entry: usize) -> u32 {
        ((root as u32) << 6) | entry as u32
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let c = KissConfig::paper();
        assert_eq!(c.l1_bits, 26);
        assert_eq!(c.l2_bits(), 6);
        assert_eq!(c.root_slots(), 1 << 26);
        assert_eq!(c.node_entries(), 64);
    }

    #[test]
    fn split_join_roundtrip() {
        let c = KissConfig::paper();
        for key in [0u32, 1, 63, 64, u32::MAX, 0xDEAD_BEEF] {
            let (r, e) = c.split(key);
            assert_eq!(c.join(r, e), key);
            assert!(e < 64);
        }
    }

    #[test]
    fn split_is_order_preserving() {
        let c = KissConfig::small(false);
        let keys = [0u32, 5, 1023, 1024, 4096, u32::MAX];
        for &a in &keys {
            for &b in &keys {
                assert_eq!(a < b, c.split(a) < c.split(b));
            }
        }
    }

    #[test]
    #[should_panic(expected = "l1_bits must be in 6..=26")]
    fn invalid_l1_bits_rejected() {
        KissConfig {
            l1_bits: 30,
            compressed: false,
        }
        .validate();
    }
}
