//! Synchronous index scan over two KISS-Trees (§4.2).
//!
//! The root-level pass is bounded by `max(l.min, r.min) ..=
//! min(l.max, r.max)` — the optimisation the paper calls out for dense keys,
//! which avoids scanning two full 256 MB root directories. The scan only
//! visits second-level nodes whose root slot is populated in **both** trees,
//! and within a shared node only entries populated on both sides.

use crate::tree::{KissTree, Values};

/// Runs a synchronous index scan, invoking `f` for every key present in both
/// trees, in ascending key order. Both trees must share the same geometry
/// (`l1_bits`); the compression setting may differ.
pub fn kiss_sync_scan<'l, 'r, VL, VR>(
    left: &'l KissTree<VL>,
    right: &'r KissTree<VR>,
    mut f: impl FnMut(u32, Values<'l, VL>, Values<'r, VR>),
) where
    VL: Copy + Default,
    VR: Copy + Default,
{
    assert_eq!(
        left.config().l1_bits,
        right.config().l1_bits,
        "synchronous scan requires identical root geometry"
    );
    let (Some(lmin), Some(lmax)) = (left.min_key(), left.max_key()) else {
        return;
    };
    let (Some(rmin), Some(rmax)) = (right.min_key(), right.max_key()) else {
        return;
    };
    let lo = lmin.max(rmin);
    let hi = lmax.min(rmax);
    if lo > hi {
        return;
    }
    let cfg = left.config();
    let (root_lo, _) = cfg.split(lo);
    let (root_hi, _) = cfg.split(hi);
    let entries = cfg.node_entries();
    for ri in root_lo..=root_hi {
        let ln = left.root_slot(ri);
        if ln == 0 {
            continue;
        }
        let rn = right.root_slot(ri);
        if rn == 0 {
            continue;
        }
        for ei in 0..entries {
            let le = left.node_entry(ln, ei);
            if le == 0 {
                continue;
            }
            let re = right.node_entry(rn, ei);
            if re == 0 {
                continue;
            }
            let key = cfg.join(ri, ei);
            f(key, left.values_of(le - 1), right.values_of(re - 1));
        }
    }
}

/// Range-restricted synchronous index scan: like [`kiss_sync_scan`], but
/// visits only keys in `[lo, hi]`.
///
/// This is the KISS-Tree **partitioned cursor** of the parallel executor: a
/// morsel is a contiguous root-directory range (a top-level prefix range of
/// the 32-bit key domain), so the root-level pass touches only the slots of
/// this partition; per-key range checks are needed only in the two boundary
/// root slots.
pub fn kiss_sync_scan_range<'l, 'r, VL, VR>(
    left: &'l KissTree<VL>,
    right: &'r KissTree<VR>,
    lo: u32,
    hi: u32,
    mut f: impl FnMut(u32, Values<'l, VL>, Values<'r, VR>),
) where
    VL: Copy + Default,
    VR: Copy + Default,
{
    assert_eq!(
        left.config().l1_bits,
        right.config().l1_bits,
        "synchronous scan requires identical root geometry"
    );
    if lo > hi {
        return;
    }
    let (Some(lmin), Some(lmax)) = (left.min_key(), left.max_key()) else {
        return;
    };
    let (Some(rmin), Some(rmax)) = (right.min_key(), right.max_key()) else {
        return;
    };
    let lo = lo.max(lmin.max(rmin));
    let hi = hi.min(lmax.min(rmax));
    if lo > hi {
        return;
    }
    let cfg = left.config();
    let (root_lo, _) = cfg.split(lo);
    let (root_hi, _) = cfg.split(hi);
    let entries = cfg.node_entries();
    for ri in root_lo..=root_hi {
        let ln = left.root_slot(ri);
        if ln == 0 {
            continue;
        }
        let rn = right.root_slot(ri);
        if rn == 0 {
            continue;
        }
        // Entries of interior root slots are in range by construction; only
        // the boundary slots need the per-key check.
        let boundary = ri == root_lo || ri == root_hi;
        for ei in 0..entries {
            let le = left.node_entry(ln, ei);
            if le == 0 {
                continue;
            }
            let re = right.node_entry(rn, ei);
            if re == 0 {
                continue;
            }
            let key = cfg.join(ri, ei);
            if boundary && (key < lo || key > hi) {
                continue;
            }
            f(key, left.values_of(le - 1), right.values_of(re - 1));
        }
    }
}

/// Set intersection over KISS-Trees: keys present in both, values from the
/// left input (mirror of `qppt_trie::intersect`).
pub fn kiss_intersect<V: Copy + Default>(left: &KissTree<V>, right: &KissTree<V>) -> KissTree<V> {
    let mut out = KissTree::new(left.config());
    kiss_sync_scan(left, right, |key, lvals, _| {
        for v in lvals {
            out.insert(key, *v);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KissConfig;
    use qppt_mem::Xoshiro256StarStar;
    use std::collections::BTreeSet;

    fn tree_of(keys: &[u32], compressed: bool) -> KissTree<u32> {
        let mut t = KissTree::new(KissConfig::small(compressed));
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, i as u32);
        }
        t
    }

    #[test]
    fn scan_matches_set_intersection() {
        let mut rng = Xoshiro256StarStar::new(31);
        let a: Vec<u32> = (0..2500).map(|_| (rng.below(1 << 15)) as u32).collect();
        let b: Vec<u32> = (0..2500).map(|_| (rng.below(1 << 15)) as u32).collect();
        for (ca, cb) in [(false, false), (true, true), (false, true)] {
            let ta = tree_of(&a, ca);
            let tb = tree_of(&b, cb);
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let expect: Vec<u32> = sa.intersection(&sb).copied().collect();
            let mut got = Vec::new();
            kiss_sync_scan(&ta, &tb, |k, _, _| got.push(k));
            assert_eq!(got, expect, "compressed=({ca},{cb})");
        }
    }

    #[test]
    fn range_scan_matches_filtered_full_scan() {
        let mut rng = Xoshiro256StarStar::new(37);
        let a: Vec<u32> = (0..2500).map(|_| (rng.below(1 << 15)) as u32).collect();
        let b: Vec<u32> = (0..2500).map(|_| (rng.below(1 << 15)) as u32).collect();
        let ta = tree_of(&a, false);
        let tb = tree_of(&b, true);
        let mut full = Vec::new();
        kiss_sync_scan(&ta, &tb, |k, _, _| full.push(k));
        for (lo, hi) in [
            (0u32, u32::MAX),
            (0, (1 << 14) - 1),
            (1 << 14, (1 << 15) - 1),
            (1000, 20_000),
            (63, 64), // node boundary
            (5, 5),
            (1 << 16, 1 << 17), // beyond the populated domain
        ] {
            let expect: Vec<u32> = full
                .iter()
                .copied()
                .filter(|&k| k >= lo && k <= hi)
                .collect();
            let mut got = Vec::new();
            kiss_sync_scan_range(&ta, &tb, lo, hi, |k, _, _| got.push(k));
            assert_eq!(got, expect, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn range_scan_partitions_tile_full_scan() {
        let mut rng = Xoshiro256StarStar::new(41);
        let a: Vec<u32> = (0..2000).map(|_| (rng.below(1 << 14)) as u32).collect();
        let b: Vec<u32> = (0..2000).map(|_| (rng.below(1 << 14)) as u32).collect();
        let ta = tree_of(&a, false);
        let tb = tree_of(&b, false);
        let mut full = Vec::new();
        kiss_sync_scan(&ta, &tb, |k, _, _| full.push(k));
        let parts = 16u32;
        let span = (1u32 << 14) / parts;
        let mut tiled = Vec::new();
        for p in 0..parts {
            kiss_sync_scan_range(&ta, &tb, p * span, (p + 1) * span - 1, |k, _, _| {
                tiled.push(k)
            });
        }
        assert_eq!(tiled, full);
    }

    #[test]
    fn range_scan_inverted_is_empty() {
        let ta = tree_of(&[1, 2, 3], false);
        let tb = tree_of(&[2, 3], false);
        let mut n = 0;
        kiss_sync_scan_range(&ta, &tb, 9, 3, |_, _, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn scan_empty_inputs() {
        let empty = tree_of(&[], false);
        let full = tree_of(&[1, 2, 3], false);
        let mut n = 0;
        kiss_sync_scan(&empty, &full, |_, _, _| n += 1);
        kiss_sync_scan(&full, &empty, |_, _, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn scan_disjoint_ranges_is_free() {
        // min/max bounding makes the scan a no-op without visiting roots.
        let ta = tree_of(&[1, 2, 3], false);
        let tb = tree_of(&[60_000, 60_001], false);
        let mut n = 0;
        kiss_sync_scan(&ta, &tb, |_, _, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn scan_passes_duplicates() {
        let mut ta = KissTree::<u32>::new(KissConfig::small(false));
        let mut tb = KissTree::<u32>::new(KissConfig::small(false));
        for i in 0..4 {
            ta.insert(9, i);
        }
        tb.insert(9, 40);
        tb.insert(9, 41);
        tb.insert(10, 50);
        let mut hits = 0;
        kiss_sync_scan(&ta, &tb, |k, lv, rv| {
            assert_eq!(k, 9);
            assert_eq!(lv.count(), 4);
            assert_eq!(rv.count(), 2);
            hits += 1;
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn intersect_builds_tree_with_left_values() {
        let ta = tree_of(&[5, 6, 7], false);
        let tb = tree_of(&[6, 7, 8], false);
        let i = kiss_intersect(&ta, &tb);
        assert_eq!(i.keys().collect::<Vec<_>>(), vec![6, 7]);
        assert_eq!(i.get_first(6), ta.get_first(6));
    }

    #[test]
    #[should_panic(expected = "identical root geometry")]
    fn mismatched_geometry_rejected() {
        let a = KissTree::<u32>::new(KissConfig::small(false));
        let b = KissTree::<u32>::new(KissConfig {
            l1_bits: 12,
            compressed: false,
        });
        kiss_sync_scan(&a, &b, |_, _, _| {});
    }
}
