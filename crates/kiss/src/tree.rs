//! KISS-Tree core structure: root directory, second-level nodes, contents.

use qppt_mem::dup::{DupArena, DupIter, DupList};

use crate::KissConfig;

/// Root and node entry encoding: `0` = empty, otherwise index + 1.
const EMPTY: u32 = 0;

/// Second-level node. The compressed variant is the original KISS-Tree's
/// bitmask node: entry `e` exists iff bit `e` is set, and its slot is the
/// popcount of the lower bits. Updating a compressed node requires copying
/// the compact array (the paper's RCU copy overhead); the uncompressed
/// variant updates in place. Uncompressed node slots live in one shared
/// arena (`KissTree::udata`): allocating a node is a bump, not a malloc.
#[derive(Debug)]
enum L2Node {
    /// Start offset of this node's 64 slots in the arena.
    Uncompressed(u32),
    Compressed {
        bitmap: u64,
        entries: Box<[u32]>,
    },
}

#[derive(Debug, Clone, Copy)]
enum Payload<V> {
    One(V),
    Many(DupList),
}

/// Prefix-tree-based index for 32-bit keys with a two-level layout
/// (see the crate docs). Multimap semantics like `qppt_trie::PrefixTree`.
#[derive(Debug)]
pub struct KissTree<V> {
    cfg: KissConfig,
    /// Root directory; 256 MB virtual for the paper geometry, physically
    /// mapped on demand by the OS at 4 KB granularity.
    root: Vec<u32>,
    nodes: Vec<L2Node>,
    /// Slot arena backing uncompressed second-level nodes.
    udata: Vec<u32>,
    contents: Vec<Payload<V>>,
    dups: DupArena<V>,
    distinct: usize,
    total_values: usize,
    min_key: u32,
    max_key: u32,
    /// Number of compressed-node copies performed (the RCU-analogue cost;
    /// reported by Ablation A4).
    copy_updates: usize,
}

impl<V: Copy + Default> KissTree<V> {
    /// Creates an empty tree. The root directory is allocated zeroed — i.e.
    /// virtually; physical pages appear as slots are written.
    pub fn new(cfg: KissConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            root: vec![EMPTY; cfg.root_slots()],
            nodes: Vec::new(),
            udata: Vec::new(),
            contents: Vec::new(),
            dups: DupArena::new(),
            distinct: 0,
            total_values: 0,
            min_key: u32::MAX,
            max_key: 0,
            copy_updates: 0,
        }
    }

    /// Paper-geometry tree (26/6, uncompressed second level).
    pub fn paper() -> Self {
        Self::new(KissConfig::paper())
    }

    /// The tree's configuration.
    #[inline]
    pub fn config(&self) -> KissConfig {
        self.cfg
    }

    /// Number of distinct keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.distinct
    }

    /// `true` if no keys are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.distinct == 0
    }

    /// Total number of stored values.
    #[inline]
    pub fn total_values(&self) -> usize {
        self.total_values
    }

    /// Smallest stored key (`None` when empty). O(1): maintained on insert,
    /// which is what allows the bounded root scans of §4.2.
    #[inline]
    pub fn min_key(&self) -> Option<u32> {
        (!self.is_empty()).then_some(self.min_key)
    }

    /// Largest stored key (`None` when empty).
    #[inline]
    pub fn max_key(&self) -> Option<u32> {
        (!self.is_empty()).then_some(self.max_key)
    }

    /// Number of copy-on-update events caused by compressed nodes.
    #[inline]
    pub fn copy_updates(&self) -> usize {
        self.copy_updates
    }

    pub(crate) fn root_slot(&self, idx: usize) -> u32 {
        self.root[idx]
    }

    #[inline]
    pub(crate) fn node_entry(&self, node_plus_one: u32, entry: usize) -> u32 {
        match &self.nodes[(node_plus_one - 1) as usize] {
            L2Node::Uncompressed(a) => self.udata[*a as usize + entry],
            L2Node::Compressed { bitmap, entries } => {
                let bit = 1u64 << entry;
                if bitmap & bit == 0 {
                    EMPTY
                } else {
                    let pos = (bitmap & (bit - 1)).count_ones() as usize;
                    entries[pos]
                }
            }
        }
    }

    /// Prefetchable addresses for the batch path (see `batch.rs`).
    pub(crate) fn root_slot_addr(&self, idx: usize) -> *const u32 {
        &self.root[idx]
    }

    pub(crate) fn node_addr(&self, node_plus_one: u32) -> *const u8 {
        match &self.nodes[(node_plus_one - 1) as usize] {
            L2Node::Uncompressed(a) => (&self.udata[*a as usize]) as *const u32 as *const u8,
            n @ L2Node::Compressed { .. } => n as *const L2Node as *const u8,
        }
    }

    pub(crate) fn content_addr(&self, content: u32) -> *const u8 {
        (&self.contents[content as usize]) as *const Payload<V> as *const u8
    }

    /// Inserts `(key, value)`, appending to the key's duplicate list when the
    /// key is already present.
    pub fn insert(&mut self, key: u32, value: V) {
        self.cfg.check_key(key);
        self.total_values += 1;
        let content = self.slot_for(key);
        match content {
            SlotState::New(slot) => {
                let c = self.contents.len() as u32;
                self.contents.push(Payload::One(value));
                self.write_entry(slot, key, c + 1);
                self.distinct += 1;
                self.min_key = self.min_key.min(key);
                self.max_key = self.max_key.max(key);
            }
            SlotState::Existing(c) => match &mut self.contents[c as usize] {
                Payload::One(first) => {
                    let mut list = self.dups.new_list(*first);
                    self.dups.push(&mut list, value);
                    self.contents[c as usize] = Payload::Many(list);
                }
                Payload::Many(list) => self.dups.push(list, value),
            },
        }
    }

    /// Upsert with a merge function (aggregation path; see
    /// `qppt_trie::PrefixTree::insert_merge`).
    pub fn insert_merge(&mut self, key: u32, value: V, merge: impl FnOnce(&mut V, V)) {
        self.cfg.check_key(key);
        let content = self.slot_for(key);
        match content {
            SlotState::New(slot) => {
                let c = self.contents.len() as u32;
                self.contents.push(Payload::One(value));
                self.write_entry(slot, key, c + 1);
                self.distinct += 1;
                self.total_values += 1;
                self.min_key = self.min_key.min(key);
                self.max_key = self.max_key.max(key);
            }
            SlotState::Existing(c) => match &mut self.contents[c as usize] {
                Payload::One(acc) => merge(acc, value),
                Payload::Many(_) => unreachable!("aggregating trees never hold duplicate lists"),
            },
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: u32) -> Option<Values<'_, V>> {
        self.cfg.check_key(key);
        let (ri, ei) = self.cfg.split(key);
        let n = self.root[ri];
        if n == EMPTY {
            return None;
        }
        let e = self.node_entry(n, ei);
        if e == EMPTY {
            return None;
        }
        Some(self.values_of(e - 1))
    }

    /// First value for a key (for unique indexes).
    pub fn get_first(&self, key: u32) -> Option<V> {
        self.get(key).map(|mut v| *v.next().expect("≥1 value"))
    }

    /// `true` if the key is present.
    pub fn contains_key(&self, key: u32) -> bool {
        self.get(key).is_some()
    }

    /// Number of values for `key` (0 if absent).
    pub fn value_count(&self, key: u32) -> usize {
        self.get(key).map_or(0, |v| v.len())
    }

    pub(crate) fn values_of(&self, content: u32) -> Values<'_, V> {
        match &self.contents[content as usize] {
            Payload::One(v) => Values {
                len: 1,
                inner: ValuesInner::One(Some(v)),
            },
            Payload::Many(list) => Values {
                len: list.len(),
                inner: ValuesInner::Many(self.dups.iter(list)),
            },
        }
    }

    /// Finds (or prepares) the entry slot for `key`.
    fn slot_for(&mut self, key: u32) -> SlotState {
        let (ri, ei) = self.cfg.split(key);
        let n = self.root[ri];
        if n == EMPTY {
            return SlotState::New(EntrySlot {
                root_idx: ri,
                entry_idx: ei,
            });
        }
        let e = self.node_entry(n, ei);
        if e == EMPTY {
            SlotState::New(EntrySlot {
                root_idx: ri,
                entry_idx: ei,
            })
        } else {
            SlotState::Existing(e - 1)
        }
    }

    /// Writes `value` (an encoded content pointer) into the node entry,
    /// allocating or copying second-level nodes as required.
    fn write_entry(&mut self, slot: EntrySlot, _key: u32, value: u32) {
        let n = self.root[slot.root_idx];
        if n == EMPTY {
            // Allocate a fresh node holding just this entry.
            let node = if self.cfg.compressed {
                L2Node::Compressed {
                    bitmap: 1u64 << slot.entry_idx,
                    entries: vec![value].into_boxed_slice(),
                }
            } else {
                let a = self.udata.len();
                self.udata.resize(a + self.cfg.node_entries(), EMPTY);
                self.udata[a + slot.entry_idx] = value;
                L2Node::Uncompressed(a as u32)
            };
            self.nodes.push(node);
            self.root[slot.root_idx] = self.nodes.len() as u32;
            return;
        }
        let node = &mut self.nodes[(n - 1) as usize];
        match node {
            L2Node::Uncompressed(a) => {
                let idx = *a as usize + slot.entry_idx;
                debug_assert_eq!(self.udata[idx], EMPTY);
                self.udata[idx] = value;
            }
            L2Node::Compressed { bitmap, entries } => {
                // Copy-on-update: build the widened compact array, then swap
                // it in (the single-threaded analogue of the RCU publish).
                let bit = 1u64 << slot.entry_idx;
                debug_assert_eq!(*bitmap & bit, 0);
                let pos = (*bitmap & (bit - 1)).count_ones() as usize;
                let mut new_entries = Vec::with_capacity(entries.len() + 1);
                new_entries.extend_from_slice(&entries[..pos]);
                new_entries.push(value);
                new_entries.extend_from_slice(&entries[pos..]);
                *bitmap |= bit;
                *entries = new_entries.into_boxed_slice();
                self.copy_updates += 1;
            }
        }
    }

    /// Iterates `(key, values)` in ascending key order. The root pass is
    /// bounded by the maintained min/max keys.
    pub fn iter(&self) -> KissIter<'_, V> {
        let (lo, hi) = if self.is_empty() {
            (1, 0) // empty bounds
        } else {
            (self.min_key, self.max_key)
        };
        self.range(lo, hi)
    }

    /// Iterates `(key, values)` with `lo <= key <= hi` in ascending order.
    /// `hi` is clamped to the configured key domain.
    pub fn range(&self, lo: u32, hi: u32) -> KissIter<'_, V> {
        let hi = match self.cfg.key_limit() {
            Some(limit) => hi.min(limit - 1),
            None => hi,
        };
        let (root_lo, _) = self.cfg.split(lo);
        KissIter {
            tree: self,
            root_idx: root_lo,
            entry_idx: (lo as usize) & (self.cfg.node_entries() - 1),
            lo,
            hi,
            exhausted: lo > hi || self.is_empty(),
        }
    }

    /// All keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = u32> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Memory statistics. `root_virtual_bytes` is the directory's full
    /// (virtual) size; `root_touched_bytes` estimates the physically mapped
    /// portion as the number of distinct 4 KB root pages containing at least
    /// one non-empty slot.
    pub fn stats(&self) -> KissStats {
        const PAGE: usize = 4096;
        let slots_per_page = PAGE / core::mem::size_of::<u32>();
        let mut touched_pages = 0usize;
        let mut page = usize::MAX;
        if !self.is_empty() {
            let (lo, _) = self.cfg.split(self.min_key);
            let (hi, _) = self.cfg.split(self.max_key);
            for ri in lo..=hi {
                if self.root[ri] != EMPTY {
                    let p = ri / slots_per_page;
                    if p != page {
                        touched_pages += 1;
                        page = p;
                    }
                }
            }
        }
        let node_bytes: usize = self.udata.len() * 4
            + self
                .nodes
                .iter()
                .map(|n| match n {
                    L2Node::Uncompressed(_) => 4,
                    L2Node::Compressed { entries, .. } => 8 + entries.len() * 4,
                })
                .sum::<usize>();
        KissStats {
            distinct_keys: self.distinct,
            total_values: self.total_values,
            nodes: self.nodes.len(),
            root_virtual_bytes: self.root.len() * 4,
            root_touched_bytes: touched_pages * PAGE,
            node_bytes,
            content_bytes: self.contents.len() * core::mem::size_of::<Payload<V>>(),
            dup_bytes: self.dups.allocated_bytes(),
            copy_updates: self.copy_updates,
        }
    }
}

enum SlotState {
    New(EntrySlot),
    Existing(u32),
}

struct EntrySlot {
    root_idx: usize,
    entry_idx: usize,
}

/// Memory/structure statistics of a [`KissTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KissStats {
    pub distinct_keys: usize,
    pub total_values: usize,
    pub nodes: usize,
    pub root_virtual_bytes: usize,
    pub root_touched_bytes: usize,
    pub node_bytes: usize,
    pub content_bytes: usize,
    pub dup_bytes: usize,
    pub copy_updates: usize,
}

impl KissStats {
    /// Physically meaningful footprint (touched root pages + nodes +
    /// contents + duplicates).
    pub fn resident_bytes(&self) -> usize {
        self.root_touched_bytes + self.node_bytes + self.content_bytes + self.dup_bytes
    }
}

/// Iterator over the values of one key (mirror of the trie's `Values`).
pub struct Values<'a, V> {
    len: usize,
    inner: ValuesInner<'a, V>,
}

enum ValuesInner<'a, V> {
    One(Option<&'a V>),
    Many(DupIter<'a, V>),
}

impl<'a, V: Copy + Default> Iterator for Values<'a, V> {
    type Item = &'a V;

    fn next(&mut self) -> Option<&'a V> {
        let out = match &mut self.inner {
            ValuesInner::One(v) => v.take(),
            ValuesInner::Many(it) => it.next(),
        };
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.len, Some(self.len))
    }
}

impl<'a, V: Copy + Default> ExactSizeIterator for Values<'a, V> {}

/// Ordered `(key, values)` iterator over a key range.
pub struct KissIter<'a, V> {
    tree: &'a KissTree<V>,
    root_idx: usize,
    entry_idx: usize,
    lo: u32,
    hi: u32,
    exhausted: bool,
}

impl<'a, V: Copy + Default> Iterator for KissIter<'a, V> {
    type Item = (u32, Values<'a, V>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.exhausted {
            return None;
        }
        let cfg = self.tree.cfg;
        let entries = cfg.node_entries();
        let (hi_root, _) = cfg.split(self.hi);
        loop {
            if self.root_idx > hi_root {
                self.exhausted = true;
                return None;
            }
            let n = self.tree.root[self.root_idx];
            if n == EMPTY {
                self.root_idx += 1;
                self.entry_idx = 0;
                continue;
            }
            while self.entry_idx < entries {
                let e = self.tree.node_entry(n, self.entry_idx);
                let key = cfg.join(self.root_idx, self.entry_idx);
                self.entry_idx += 1;
                if e != EMPTY {
                    if key > self.hi {
                        self.exhausted = true;
                        return None;
                    }
                    if key >= self.lo {
                        return Some((key, self.tree.values_of(e - 1)));
                    }
                }
            }
            self.root_idx += 1;
            self.entry_idx = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qppt_mem::Xoshiro256StarStar;
    use std::collections::BTreeMap;

    fn cfgs() -> Vec<KissConfig> {
        vec![KissConfig::small(false), KissConfig::small(true)]
    }

    #[test]
    fn empty_tree() {
        for cfg in cfgs() {
            let t = KissTree::<u32>::new(cfg);
            assert!(t.is_empty());
            assert!(t.get(0).is_none());
            assert_eq!(t.min_key(), None);
            assert_eq!(t.iter().count(), 0);
        }
    }

    #[test]
    fn insert_get_roundtrip_both_variants() {
        for cfg in cfgs() {
            let mut t = KissTree::<u32>::new(cfg);
            let mut rng = Xoshiro256StarStar::new(1);
            let mut model: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
            for i in 0..5000u32 {
                let k = rng.below(1 << 16) as u32;
                t.insert(k, i);
                model.entry(k).or_default().push(i);
            }
            assert_eq!(t.len(), model.len());
            for (&k, vs) in &model {
                let got: Vec<u32> = t.get(k).unwrap().copied().collect();
                assert_eq!(&got, vs, "compressed={}", cfg.compressed);
            }
        }
    }

    #[test]
    fn iteration_is_ordered_and_complete() {
        for cfg in cfgs() {
            let mut t = KissTree::<u32>::new(cfg);
            let mut rng = Xoshiro256StarStar::new(2);
            let mut model: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
            for i in 0..3000u32 {
                let k = (rng.below(1 << 16)) as u32;
                t.insert(k, i);
                model.entry(k).or_default().push(i);
            }
            let got: Vec<(u32, Vec<u32>)> =
                t.iter().map(|(k, v)| (k, v.copied().collect())).collect();
            let expect: Vec<(u32, Vec<u32>)> = model.into_iter().collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn range_matches_model() {
        for cfg in cfgs() {
            let mut t = KissTree::<u32>::new(cfg);
            let mut rng = Xoshiro256StarStar::new(3);
            let mut model: BTreeMap<u32, u32> = BTreeMap::new();
            for i in 0..2000u32 {
                let k = (rng.below(1 << 14)) as u32;
                model.entry(k).or_insert_with(|| {
                    t.insert(k, i);
                    i
                });
            }
            for (lo, hi) in [
                (0u32, u32::MAX),
                (100, 5000),
                (777, 777),
                (16000, 20000),
                (5, 3),
            ] {
                let got: Vec<u32> = t.range(lo, hi).map(|(k, _)| k).collect();
                let expect: Vec<u32> = if lo <= hi {
                    model.range(lo..=hi).map(|(&k, _)| k).collect()
                } else {
                    Vec::new()
                };
                assert_eq!(
                    got, expect,
                    "range [{lo},{hi}] compressed={}",
                    cfg.compressed
                );
            }
        }
    }

    #[test]
    fn min_max_maintained() {
        let mut t = KissTree::<u32>::new(KissConfig::small(false));
        t.insert(500, 0);
        t.insert(10, 0);
        t.insert(60_000, 0);
        assert_eq!(t.min_key(), Some(10));
        assert_eq!(t.max_key(), Some(60_000));
    }

    #[test]
    fn boundary_keys() {
        for cfg in cfgs() {
            let max = cfg.key_limit().map(|l| l - 1).unwrap_or(u32::MAX);
            let mut t = KissTree::<u32>::new(cfg);
            t.insert(0, 1);
            t.insert(max, 2);
            assert_eq!(t.get_first(0), Some(1));
            assert_eq!(t.get_first(max), Some(2));
            let keys: Vec<u32> = t.keys().collect();
            assert_eq!(keys, vec![0, max]);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the 16-bit domain")]
    fn out_of_domain_key_panics() {
        let mut t = KissTree::<u32>::new(KissConfig::small(false));
        t.insert(1 << 16, 0);
    }

    #[test]
    fn compressed_counts_copy_updates_uncompressed_does_not() {
        let mut tc = KissTree::<u32>::new(KissConfig::small(true));
        let mut tu = KissTree::<u32>::new(KissConfig::small(false));
        // Same root slot, distinct entries → compressed copies on each new key.
        for e in 0..10u32 {
            tc.insert(e, e);
            tu.insert(e, e);
        }
        assert!(tc.copy_updates() >= 9);
        assert_eq!(tu.copy_updates(), 0);
    }

    #[test]
    fn insert_merge_aggregates() {
        let mut t = KissTree::<i64>::new(KissConfig::small(false));
        t.insert_merge(7, 5, |a, v| *a += v);
        t.insert_merge(7, 10, |a, v| *a += v);
        t.insert_merge(8, 1, |a, v| *a += v);
        assert_eq!(t.get_first(7), Some(15));
        assert_eq!(t.get_first(8), Some(1));
        assert_eq!(t.total_values(), 2);
    }

    #[test]
    fn compression_saves_node_memory_on_sparse_nodes() {
        let mut tc = KissTree::<u32>::new(KissConfig::small(true));
        let mut tu = KissTree::<u32>::new(KissConfig::small(false));
        // Sparse keys → compressed nodes hold few entries, uncompressed 64.
        let mut rng = Xoshiro256StarStar::new(4);
        for i in 0..200u32 {
            let k = rng.below(1 << 16) as u32;
            tc.insert(k, i);
            tu.insert(k, i);
        }
        assert!(tc.stats().node_bytes < tu.stats().node_bytes);
    }

    #[test]
    fn paper_geometry_smoke() {
        // 256 MB virtual root; only a handful of pages actually touched.
        let mut t = KissTree::<u32>::paper();
        for i in 0..10_000u32 {
            t.insert(i, i);
        }
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.get_first(9999), Some(9999));
        let s = t.stats();
        assert_eq!(s.root_virtual_bytes, 256 << 20);
        assert!(s.root_touched_bytes <= 4096 * 4);
        let keys: Vec<u32> = t.keys().collect();
        assert_eq!(keys.len(), 10_000);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }
}
