//! Property-based model tests: the KISS-Tree must behave exactly like a
//! `BTreeMap<u32, Vec<u32>>` in both compression modes.

use proptest::prelude::*;
use qppt_kiss::{kiss_intersect, kiss_sync_scan, KissConfig, KissTree};
use std::collections::{BTreeMap, BTreeSet};

/// Small-root domain (16-bit keys) so random cases hit collisions.
fn key() -> impl Strategy<Value = u32> {
    prop_oneof![
        0u32..=1024,
        0u32..=u16::MAX as u32,
        Just(0),
        Just(u16::MAX as u32)
    ]
}

fn build(compressed: bool, pairs: &[(u32, u32)]) -> (KissTree<u32>, BTreeMap<u32, Vec<u32>>) {
    let mut t = KissTree::new(KissConfig::small(compressed));
    let mut m: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &(k, v) in pairs {
        t.insert(k, v);
        m.entry(k).or_default().push(v);
    }
    (t, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lookup_matches_model(
        compressed in any::<bool>(),
        keys in prop::collection::vec(key(), 0..300),
        probes in prop::collection::vec(key(), 0..100),
    ) {
        let pairs: Vec<(u32, u32)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let (t, m) = build(compressed, &pairs);
        prop_assert_eq!(t.len(), m.len());
        prop_assert_eq!(t.total_values(), pairs.len());
        for &(k, _) in &pairs {
            let got: Vec<u32> = t.get(k).unwrap().copied().collect();
            prop_assert_eq!(&got, &m[&k]);
        }
        for &p in &probes {
            prop_assert_eq!(t.contains_key(p), m.contains_key(&p));
        }
    }

    #[test]
    fn iteration_ordered_and_complete(
        compressed in any::<bool>(),
        keys in prop::collection::vec(key(), 0..300),
    ) {
        let pairs: Vec<(u32, u32)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let (t, m) = build(compressed, &pairs);
        let got: Vec<(u32, Vec<u32>)> = t.iter().map(|(k, v)| (k, v.copied().collect())).collect();
        let expect: Vec<(u32, Vec<u32>)> = m.clone().into_iter().collect();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(t.min_key(), m.keys().next().copied());
        prop_assert_eq!(t.max_key(), m.keys().next_back().copied());
    }

    #[test]
    fn range_matches_model(
        compressed in any::<bool>(),
        keys in prop::collection::vec(key(), 0..200),
        lo in key(),
        hi in key(),
    ) {
        let pairs: Vec<(u32, u32)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let (t, m) = build(compressed, &pairs);
        let got: Vec<u32> = t.range(lo, hi).map(|(k, _)| k).collect();
        let expect: Vec<u32> = if lo <= hi {
            m.range(lo..=hi).map(|(&k, _)| k).collect()
        } else {
            Vec::new()
        };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn batched_equals_scalar(
        compressed in any::<bool>(),
        keys in prop::collection::vec(key(), 0..200),
        probes in prop::collection::vec(key(), 0..100),
    ) {
        let pairs: Vec<(u32, u32)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let (scalar, _) = build(compressed, &pairs);
        let mut batched = KissTree::new(KissConfig::small(compressed));
        batched.batch_insert(&pairs);
        let a: Vec<(u32, Vec<u32>)> = scalar.iter().map(|(k, v)| (k, v.copied().collect())).collect();
        let b: Vec<(u32, Vec<u32>)> = batched.iter().map(|(k, v)| (k, v.copied().collect())).collect();
        prop_assert_eq!(a, b);
        let bres = batched.batch_get_first(&probes);
        for (i, &p) in probes.iter().enumerate() {
            prop_assert_eq!(bres[i], scalar.get_first(p));
        }
    }

    #[test]
    fn sync_scan_is_sorted_intersection(
        ca in any::<bool>(),
        cb in any::<bool>(),
        a in prop::collection::vec(key(), 0..200),
        b in prop::collection::vec(key(), 0..200),
    ) {
        let ta = build(ca, &a.iter().map(|&k| (k, 0)).collect::<Vec<_>>()).0;
        let tb = build(cb, &b.iter().map(|&k| (k, 0)).collect::<Vec<_>>()).0;
        let sa: BTreeSet<u32> = a.into_iter().collect();
        let sb: BTreeSet<u32> = b.into_iter().collect();
        let expect: Vec<u32> = sa.intersection(&sb).copied().collect();
        let mut got = Vec::new();
        kiss_sync_scan(&ta, &tb, |k, _, _| got.push(k));
        prop_assert_eq!(&got, &expect);
        if ca == cb {
            let inter = kiss_intersect(&ta, &tb);
            prop_assert_eq!(inter.keys().collect::<Vec<_>>(), expect);
        }
    }

    #[test]
    fn insert_merge_equals_fold(
        compressed in any::<bool>(),
        pairs in prop::collection::vec((key(), -50i64..50), 0..200),
    ) {
        let mut t = KissTree::<i64>::new(KissConfig::small(compressed));
        let mut m: BTreeMap<u32, i64> = BTreeMap::new();
        for &(k, v) in &pairs {
            t.insert_merge(k, v, |acc, v| *acc += v);
            *m.entry(k).or_insert(0) += v;
        }
        let got: Vec<(u32, i64)> = t.iter().map(|(k, mut v)| (k, *v.next().unwrap())).collect();
        let expect: Vec<(u32, i64)> = m.into_iter().collect();
        prop_assert_eq!(got, expect);
    }
}
