//! A byte-budgeted, sharded, version-checked LRU map — the storage behind
//! every [`QueryCache`](crate::QueryCache) tier.
//!
//! * **Sharded** — the 64-bit fingerprint key picks a shard (power-of-two
//!   shard count, low bits), each shard behind its own `Mutex`, so
//!   concurrent connections on different queries rarely contend.
//! * **Version-checked** — every entry stores the table-version vector it
//!   was computed at. A lookup whose fingerprint carries *different*
//!   versions removes the entry and reports an **invalidation** (distinct
//!   from a plain miss): MVCC writes don't have to walk the cache —
//!   staleness is detected at the key, O(#tables) per lookup.
//! * **Byte-budgeted LRU** — entries report their heap footprint through
//!   [`CacheValue::heap_bytes`]; each shard keeps an intrusive
//!   doubly-linked recency list threaded through its hash-map entries
//!   (`prev`/`next` keys, no separate allocation, no unsafe), so a lookup
//!   freshens in O(1) and inserting into an over-budget shard pops
//!   victims from the cold end in O(victims) — the O(shard) min-stamp
//!   scan of PR 3 is gone.
//! * **Pin-aware** — eviction prefers victims that are not
//!   [`pinned`](CacheValue::pinned) (an `Arc` also held by an executing
//!   query or a composed prepared query), since reclaiming a pinned entry
//!   frees no memory and forces a pointless rebuild. Pins are advisory,
//!   not a leak vector: if the budget cannot be met any other way, the
//!   coldest pinned entries are dropped from the map too — their memory
//!   stays alive for exactly as long as the outside holders keep their
//!   `Arc`s, so in-flight executions are never disturbed, while the
//!   tier's tracked bytes stay hard-bounded.
//! * **TTL** — with an idle time-to-live configured, entries untouched for
//!   longer are reclaimed lazily (at their next lookup) and proactively
//!   (from the cold end on every insert — recency order *is* idle-age
//!   order), counted separately as **expirations**, so long-idle entries
//!   are reclaimed even when the byte budget has room.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::QueryFingerprint;

/// What addresses a tier: a 64-bit shard/bucket key plus the version
/// vector the entry must have been computed at. [`QueryFingerprint`] is
/// the engine-side implementation (table versions of one database); the
/// router implements it over fleet-wide keys (topology epoch + per-shard
/// table-version vectors) without `qppt-cache` knowing anything about
/// shards.
pub trait CacheKey {
    /// The 64-bit bucket key: picks the shard and the map slot.
    fn key(&self) -> u64;

    /// The version vector a valid entry must match exactly. A lookup
    /// whose key matches but whose versions differ invalidates the entry.
    fn versions(&self) -> &[u64];
}

impl CacheKey for QueryFingerprint {
    fn key(&self) -> u64 {
        self.key
    }

    fn versions(&self) -> &[u64] {
        &self.versions
    }
}

/// What a tier stores: cheap to clone (tiers store `Arc`s), knows its heap
/// footprint, and can report being pinned by holders outside the cache.
pub trait CacheValue: Clone {
    /// Heap bytes attributed to this entry by the tier's byte budget.
    fn heap_bytes(&self) -> usize;

    /// `true` while the value is also held outside the cache (an in-flight
    /// execution, a composed prepared query). Pinned entries never lazily
    /// expire (a pin proves the value is not idle) and are evicted only as
    /// a last resort, when the byte budget cannot be met from unpinned
    /// victims — and even then only the map entry goes; the value lives on
    /// with its holders.
    fn pinned(&self) -> bool {
        false
    }
}

/// Monotonic counters of one cache tier. All relaxed: the counters are
/// observability, not synchronization.
#[derive(Debug, Default)]
pub struct TierCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    expirations: AtomicU64,
    insertions: AtomicU64,
}

/// A point-in-time copy of one tier's counters plus its live entry count
/// and resident bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub invalidations: u64,
    /// Entries removed under byte pressure.
    pub evictions: u64,
    /// Entries removed because they sat idle past the TTL.
    pub expirations: u64,
    pub insertions: u64,
    pub entries: usize,
    /// Live heap bytes across all shards (sum of entry `heap_bytes`).
    pub bytes: usize,
}

#[derive(Debug)]
struct Entry<V> {
    versions: Vec<u64>,
    value: V,
    bytes: usize,
    last_used: Instant,
    /// Intrusive recency links: neighbor keys toward the MRU / LRU ends.
    prev: Option<u64>,
    next: Option<u64>,
}

#[derive(Debug)]
struct Shard<V> {
    map: HashMap<u64, Entry<V>>,
    /// Most recently used entry.
    head: Option<u64>,
    /// Least recently used entry (first eviction candidate).
    tail: Option<u64>,
    bytes: usize,
    budget: usize,
    ttl: Option<Duration>,
}

impl<V> Shard<V> {
    fn expired(&self, e: &Entry<V>, now: Instant) -> bool {
        self.ttl
            .is_some_and(|t| now.saturating_duration_since(e.last_used) > t)
    }

    /// Detaches `key` from the recency list (it stays in the map).
    fn unlink(&mut self, key: u64) {
        let (prev, next) = {
            let e = &self.map[&key];
            (e.prev, e.next)
        };
        match prev {
            Some(p) => self.map.get_mut(&p).expect("linked neighbor").next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.map.get_mut(&n).expect("linked neighbor").prev = prev,
            None => self.tail = prev,
        }
    }

    /// Attaches an already-inserted, detached `key` at the MRU end.
    fn push_front(&mut self, key: u64) {
        let old_head = self.head;
        {
            let e = self.map.get_mut(&key).expect("pushed key exists");
            e.prev = None;
            e.next = old_head;
        }
        match old_head {
            Some(h) => self.map.get_mut(&h).expect("old head exists").prev = Some(key),
            None => self.tail = Some(key),
        }
        self.head = Some(key);
    }

    /// Unlinks and removes `key`, adjusting the byte count.
    fn remove(&mut self, key: u64) -> Option<Entry<V>> {
        if !self.map.contains_key(&key) {
            return None;
        }
        self.unlink(key);
        let e = self.map.remove(&key).expect("checked above");
        self.bytes -= e.bytes;
        Some(e)
    }
}

impl<V: CacheValue> Shard<V> {
    /// Walks from the cold end, removing expired entries and — while the
    /// shard plus `incoming` bytes is over budget — evicting unpinned
    /// victims (recency order is idle-age order, so the walk stops at the
    /// first fresh entry once the budget is satisfied). If the budget
    /// still cannot be met because every remaining victim is pinned, a
    /// second pass drops the coldest entries from the map *regardless* of
    /// pins: their memory stays alive exactly as long as the real holders
    /// (in-flight executions, cached composers) keep their `Arc`s — so
    /// nothing is ever freed out from under anyone — but the tier's
    /// tracked bytes stay bounded and the pinned cold segment cannot turn
    /// every future insert into an O(entries) rewalk.
    fn reclaim(&mut self, incoming: usize, counters: &TierCounters) {
        let now = Instant::now();
        let mut cursor = self.tail;
        while let Some(key) = cursor {
            let over = self.bytes + incoming > self.budget;
            let e = &self.map[&key];
            let expired = self.expired(e, now);
            if !over && !expired {
                break;
            }
            let prev = e.prev;
            if e.value.pinned() {
                // In use outside the cache: prefer victims whose removal
                // frees memory now. A pinned entry is also never *expired*
                // — the pin proves it is not idle.
                cursor = prev;
                continue;
            }
            self.remove(key);
            let c = if expired {
                &counters.expirations
            } else {
                &counters.evictions
            };
            c.fetch_add(1, Ordering::Relaxed);
            cursor = prev;
        }
        // Escalation: only pinned entries remain between us and the
        // budget. Drop the coldest ones from the map (see doc above).
        while self.bytes + incoming > self.budget {
            let Some(key) = self.tail else { break };
            self.remove(key);
            counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The sharded byte-budgeted LRU (see module docs).
#[derive(Debug)]
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
    counters: TierCounters,
}

impl<V: CacheValue> ShardedLru<V> {
    /// A cache holding at most ~`budget_bytes` of entry heap (split evenly
    /// over `shards` shards, rounded up to a power of two), entries idling
    /// past `ttl` reclaimed (`None` = no age limit).
    pub fn new(budget_bytes: usize, shards: usize, ttl: Option<Duration>) -> Self {
        let nshards = shards.max(1).next_power_of_two();
        let per_shard = (budget_bytes / nshards).max(1);
        Self {
            shards: (0..nshards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        head: None,
                        tail: None,
                        bytes: 0,
                        budget: per_shard,
                        ttl,
                    })
                })
                .collect(),
            mask: (nshards - 1) as u64,
            counters: TierCounters::default(),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard<V>> {
        &self.shards[(key & self.mask) as usize]
    }

    /// Looks up `fp`. Same key + same versions (and not idle past the
    /// TTL) → hit (entry moved to the MRU end); same key + different
    /// versions → the entry is stale: removed, counted as an invalidation;
    /// idle past the TTL → removed, counted as an expiration; absent →
    /// miss.
    pub fn get<K: CacheKey>(&self, fp: &K) -> Option<V> {
        let key = fp.key();
        let mut shard = self.shard(key).lock().expect("cache shard lock");
        let now = Instant::now();
        enum Outcome {
            Miss,
            Expired,
            Hit,
            Stale,
        }
        let outcome = match shard.map.get(&key) {
            None => Outcome::Miss,
            // A pinned entry is in active use — by definition not idle —
            // so it never lazily expires; the hit refreshes `last_used`.
            Some(e) if shard.expired(e, now) && !e.value.pinned() => Outcome::Expired,
            Some(e) if e.versions == fp.versions() => Outcome::Hit,
            Some(_) => Outcome::Stale,
        };
        match outcome {
            Outcome::Miss => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Outcome::Expired => {
                shard.remove(key);
                self.counters.expirations.fetch_add(1, Ordering::Relaxed);
                None
            }
            Outcome::Stale => {
                shard.remove(key);
                self.counters.invalidations.fetch_add(1, Ordering::Relaxed);
                None
            }
            Outcome::Hit => {
                shard.unlink(key);
                let value = {
                    let e = shard.map.get_mut(&key).expect("hit entry exists");
                    e.last_used = now;
                    e.value.clone()
                };
                shard.push_front(key);
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
        }
    }

    /// Inserts (or replaces) the entry for `fp` at the MRU end, first
    /// expiring idle entries and evicting cold unpinned ones until the
    /// shard fits its byte budget again (see [`Shard::reclaim`]).
    pub fn put<K: CacheKey>(&self, fp: &K, value: V) {
        let key = fp.key();
        let bytes = value.heap_bytes();
        let mut shard = self.shard(key).lock().expect("cache shard lock");
        shard.remove(key); // replace: old bytes released first
        shard.reclaim(bytes, &self.counters);
        shard.map.insert(
            key,
            Entry {
                versions: fp.versions().to_vec(),
                value,
                bytes,
                last_used: Instant::now(),
                prev: None,
                next: None,
            },
        );
        shard.bytes += bytes;
        shard.push_front(key);
        self.counters.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every entry (counters are preserved — they are lifetime
    /// totals).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut shard = s.lock().expect("cache shard lock");
            shard.map.clear();
            shard.head = None;
            shard.tail = None;
            shard.bytes = 0;
        }
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").map.len())
            .sum()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live entry bytes across all shards.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").bytes)
            .sum()
    }

    /// Counters + entry/byte counts, copied at once.
    pub fn snapshot(&self) -> TierSnapshot {
        let (mut entries, mut bytes) = (0usize, 0usize);
        for s in &self.shards {
            let shard = s.lock().expect("cache shard lock");
            entries += shard.map.len();
            bytes += shard.bytes;
        }
        TierSnapshot {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            invalidations: self.counters.invalidations.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            expirations: self.counters.expirations.load(Ordering::Relaxed),
            insertions: self.counters.insertions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A test value with an explicit byte weight.
    #[derive(Debug, Clone, PartialEq)]
    struct Weighted(u32, usize);

    impl CacheValue for Weighted {
        fn heap_bytes(&self) -> usize {
            self.1
        }
    }

    impl CacheValue for Arc<Weighted> {
        fn heap_bytes(&self) -> usize {
            self.1
        }
        fn pinned(&self) -> bool {
            Arc::strong_count(self) > 1
        }
    }

    fn fp(key: u64, versions: &[u64]) -> QueryFingerprint {
        QueryFingerprint {
            key,
            versions: versions.to_vec(),
        }
    }

    #[test]
    fn hit_miss_invalidation_lifecycle() {
        let lru: ShardedLru<Weighted> = ShardedLru::new(1024, 2, None);
        assert_eq!(lru.get(&fp(1, &[1])), None); // miss
        lru.put(&fp(1, &[1]), Weighted(10, 8));
        assert_eq!(lru.get(&fp(1, &[1])), Some(Weighted(10, 8))); // hit
        assert_eq!(lru.get(&fp(1, &[2])), None); // invalidation (stale)
        assert_eq!(lru.get(&fp(1, &[2])), None); // now a plain miss
        let s = lru.snapshot();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
        assert_eq!((s.entries, s.bytes), (0, 0));
    }

    #[test]
    fn byte_pressure_evicts_from_the_cold_end() {
        // One shard, budget 100: three 40-byte entries can't coexist, and
        // touching key 1 makes key 2 the victim.
        let lru: ShardedLru<Weighted> = ShardedLru::new(100, 1, None);
        lru.put(&fp(1, &[1]), Weighted(1, 40));
        lru.put(&fp(2, &[1]), Weighted(2, 40));
        assert_eq!(lru.get(&fp(1, &[1])), Some(Weighted(1, 40)));
        lru.put(&fp(3, &[1]), Weighted(3, 40));
        assert_eq!(lru.get(&fp(2, &[1])), None, "LRU entry not evicted");
        assert_eq!(lru.get(&fp(1, &[1])), Some(Weighted(1, 40)));
        assert_eq!(lru.get(&fp(3, &[1])), Some(Weighted(3, 40)));
        let s = lru.snapshot();
        assert_eq!(s.evictions, 1);
        assert_eq!((s.entries, s.bytes), (2, 80));
    }

    #[test]
    fn heavy_entry_evicts_many_and_light_entries_pack() {
        let lru: ShardedLru<Weighted> = ShardedLru::new(100, 1, None);
        for k in 0..10 {
            lru.put(&fp(k, &[1]), Weighted(k as u32, 10));
        }
        assert_eq!(lru.snapshot().bytes, 100);
        // One 95-byte entry displaces all ten 10-byte entries.
        lru.put(&fp(100, &[1]), Weighted(0, 95));
        let s = lru.snapshot();
        assert_eq!(s.evictions, 10);
        assert_eq!((s.entries, s.bytes), (1, 95));
    }

    #[test]
    fn replace_same_key_releases_old_bytes_first() {
        let lru: ShardedLru<Weighted> = ShardedLru::new(100, 1, None);
        lru.put(&fp(1, &[1]), Weighted(1, 60));
        lru.put(&fp(2, &[1]), Weighted(2, 30));
        // Replacing key 1 with a bigger value still fits: its own 60 bytes
        // are released before the budget check, so key 2 survives.
        lru.put(&fp(1, &[2]), Weighted(10, 70));
        let s = lru.snapshot();
        assert_eq!(s.evictions, 0);
        assert_eq!(lru.get(&fp(2, &[1])), Some(Weighted(2, 30)));
        assert_eq!(lru.get(&fp(1, &[2])), Some(Weighted(10, 70)));
        assert_eq!(lru.bytes(), 100);
    }

    #[test]
    fn pinned_entries_survive_byte_pressure() {
        let lru: ShardedLru<Arc<Weighted>> = ShardedLru::new(100, 1, None);
        let pinned = Arc::new(Weighted(1, 40));
        lru.put(&fp(1, &[1]), pinned.clone()); // strong_count 2: pinned
        lru.put(&fp(2, &[1]), Arc::new(Weighted(2, 40)));
        // 60 more bytes of pressure: key 1 is the LRU victim but pinned, so
        // key 2 is reclaimed instead and the budget overshoots transiently.
        lru.put(&fp(3, &[1]), Arc::new(Weighted(3, 60)));
        assert!(lru.get(&fp(1, &[1])).is_some(), "pinned entry evicted");
        assert_eq!(lru.get(&fp(2, &[1])), None);
        assert!(lru.get(&fp(3, &[1])).is_some());
        assert_eq!(lru.snapshot().evictions, 1);
        assert_eq!(lru.bytes(), 100);

        // Once the pin drops, byte pressure reclaims the entry normally.
        drop(pinned);
        lru.put(&fp(4, &[1]), Arc::new(Weighted(4, 60)));
        assert_eq!(lru.get(&fp(1, &[1])), None, "unpinned entry kept");
        assert!(lru.bytes() <= 100);
    }

    #[test]
    fn all_pinned_shard_still_honors_the_byte_budget() {
        // When every victim is pinned, the escalation pass drops the
        // coldest map entries anyway — the holders' Arcs keep the data
        // alive, but tracked bytes never run away past the budget.
        let lru: ShardedLru<Arc<Weighted>> = ShardedLru::new(100, 1, None);
        let p1 = Arc::new(Weighted(1, 40));
        let p2 = Arc::new(Weighted(2, 40));
        let p3 = Arc::new(Weighted(3, 40));
        lru.put(&fp(1, &[1]), p1.clone());
        lru.put(&fp(2, &[1]), p2.clone());
        lru.put(&fp(3, &[1]), p3.clone());
        // 120 > 100 even though every entry is pinned: the LRU one (key 1)
        // was dropped from the map, not freed — p1 is still intact.
        assert!(lru.bytes() <= 100, "pins must not break the byte bound");
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&fp(1, &[1])), None);
        assert_eq!(p1.0, 1, "holder's data untouched by the eviction");
        assert!(lru.get(&fp(2, &[1])).is_some());
        assert!(lru.get(&fp(3, &[1])).is_some());
    }

    #[test]
    fn pinned_entries_do_not_lazily_expire() {
        let ttl = Duration::from_millis(40);
        let lru: ShardedLru<Arc<Weighted>> = ShardedLru::new(1024, 1, Some(ttl));
        let pinned = Arc::new(Weighted(1, 8));
        lru.put(&fp(1, &[1]), pinned.clone());
        lru.put(&fp(2, &[1]), Arc::new(Weighted(2, 8)));
        std::thread::sleep(Duration::from_millis(80));
        // The pinned entry is in active use: the lookup refreshes it
        // instead of expiring it; the unpinned idle neighbor expires.
        assert!(lru.get(&fp(1, &[1])).is_some(), "pinned entry expired");
        assert_eq!(lru.get(&fp(2, &[1])), None);
        let s = lru.snapshot();
        assert_eq!((s.hits, s.expirations), (1, 1));
    }

    #[test]
    fn ttl_expires_idle_entries() {
        let ttl = Duration::from_millis(40);
        let lru: ShardedLru<Weighted> = ShardedLru::new(1024, 1, Some(ttl));
        lru.put(&fp(1, &[1]), Weighted(1, 8));
        lru.put(&fp(2, &[1]), Weighted(2, 8));
        assert!(lru.get(&fp(1, &[1])).is_some(), "fresh entry hits");
        std::thread::sleep(Duration::from_millis(80));
        // Lazy reclaim at lookup…
        assert_eq!(lru.get(&fp(1, &[1])), None, "idle entry must expire");
        // …and proactive reclaim from the cold end on insert.
        lru.put(&fp(3, &[1]), Weighted(3, 8));
        let s = lru.snapshot();
        assert_eq!(s.expirations, 2, "one lazy + one proactive expiration");
        assert_eq!(s.entries, 1);
        assert!(lru.get(&fp(3, &[1])).is_some());
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let lru: ShardedLru<Weighted> = ShardedLru::new(4096, 4, None);
        for k in 0..6 {
            lru.put(&fp(k, &[1]), Weighted(k as u32, 16));
        }
        assert_eq!(lru.len(), 6);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.bytes(), 0);
        assert_eq!(lru.snapshot().insertions, 6);
    }

    #[test]
    fn shards_partition_the_key_space() {
        let lru: ShardedLru<Weighted> = ShardedLru::new(64 * 64, 8, None);
        for k in 0..64u64 {
            lru.put(&fp(k, &[1]), Weighted(k as u32, 8));
        }
        assert_eq!(lru.len(), 64);
        for k in 0..64u64 {
            assert_eq!(lru.get(&fp(k, &[1])), Some(Weighted(k as u32, 8)));
        }
    }

    #[test]
    fn recency_list_stays_consistent_under_churn() {
        // Deterministic churn over a small budget: every map entry must
        // remain reachable and the byte count exact after many evictions.
        let lru: ShardedLru<Weighted> = ShardedLru::new(64, 1, None);
        for i in 0..1000u64 {
            let key = i % 13;
            lru.put(&fp(key, &[1]), Weighted(i as u32, 8 + (i % 3) as usize));
            lru.get(&fp((i * 7) % 13, &[1]));
        }
        let s = lru.snapshot();
        assert!(s.bytes <= 64);
        assert_eq!(s.entries, lru.len());
        // Every surviving entry is still retrievable (list and map agree).
        let mut live = 0;
        for k in 0..13u64 {
            if lru.get(&fp(k, &[1])).is_some() {
                live += 1;
            }
        }
        assert_eq!(live, s.entries);
    }
}
