//! A bounded, sharded, version-checked LRU map — the storage behind every
//! [`QueryCache`](crate::QueryCache) tier.
//!
//! * **Sharded** — the 64-bit fingerprint key picks a shard (power-of-two
//!   shard count, low bits), each shard behind its own `Mutex`, so
//!   concurrent connections on different queries rarely contend.
//! * **Version-checked** — every entry stores the table-version vector it
//!   was computed at. A lookup whose fingerprint carries *different*
//!   versions removes the entry and reports an **invalidation** (distinct
//!   from a plain miss): MVCC writes don't have to walk the cache —
//!   staleness is detected at the key, O(#tables) per lookup.
//! * **LRU** — each access stamps the entry from a shard-local clock;
//!   inserting into a full shard evicts the smallest stamp. Eviction scans
//!   the shard (capacities are small; an intrusive list is not worth the
//!   unsafe code here — noted as a ROADMAP follow-on).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::QueryFingerprint;

/// Monotonic counters of one cache tier. All relaxed: the counters are
/// observability, not synchronization.
#[derive(Debug, Default)]
pub struct TierCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

/// A point-in-time copy of one tier's counters plus its live entry count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub invalidations: u64,
    pub evictions: u64,
    pub insertions: u64,
    pub entries: usize,
}

#[derive(Debug)]
struct Entry<V> {
    versions: Vec<u64>,
    value: V,
    stamp: u64,
}

#[derive(Debug)]
struct Shard<V> {
    map: HashMap<u64, Entry<V>>,
    clock: u64,
    capacity: usize,
}

impl<V> Shard<V> {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// The sharded LRU (see module docs). `V` is cheap to clone — tiers store
/// `Arc`s.
#[derive(Debug)]
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
    counters: TierCounters,
}

impl<V: Clone> ShardedLru<V> {
    /// A cache of at most `capacity` entries spread over `shards` shards
    /// (rounded up to a power of two; each shard gets an equal slice).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let nshards = shards.max(1).next_power_of_two();
        let per_shard = capacity.div_ceil(nshards).max(1);
        Self {
            shards: (0..nshards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        clock: 0,
                        capacity: per_shard,
                    })
                })
                .collect(),
            mask: (nshards - 1) as u64,
            counters: TierCounters::default(),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard<V>> {
        &self.shards[(key & self.mask) as usize]
    }

    /// Looks up `fp`. Same key + same versions → hit (entry freshened);
    /// same key + different versions → the entry is stale: it is removed
    /// and the lookup counts as an invalidation; absent → miss.
    pub fn get(&self, fp: &QueryFingerprint) -> Option<V> {
        let mut shard = self.shard(fp.key).lock().expect("cache shard lock");
        let stamp = shard.tick();
        match shard.map.get_mut(&fp.key) {
            Some(e) if e.versions == fp.versions => {
                e.stamp = stamp;
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.value.clone())
            }
            Some(_) => {
                shard.map.remove(&fp.key);
                self.counters.invalidations.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) the entry for `fp`, evicting the
    /// least-recently-used entry of the shard if it is full.
    pub fn put(&self, fp: &QueryFingerprint, value: V) {
        let mut shard = self.shard(fp.key).lock().expect("cache shard lock");
        let stamp = shard.tick();
        if shard.map.len() >= shard.capacity && !shard.map.contains_key(&fp.key) {
            if let Some(&oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k)
            {
                shard.map.remove(&oldest);
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            fp.key,
            Entry {
                versions: fp.versions.clone(),
                value,
                stamp,
            },
        );
        self.counters.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every entry (counters are preserved — they are lifetime
    /// totals).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("cache shard lock").map.clear();
        }
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").map.len())
            .sum()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters + entry count, copied at once.
    pub fn snapshot(&self) -> TierSnapshot {
        TierSnapshot {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            invalidations: self.counters.invalidations.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            insertions: self.counters.insertions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(key: u64, versions: &[u64]) -> QueryFingerprint {
        QueryFingerprint {
            key,
            versions: versions.to_vec(),
        }
    }

    #[test]
    fn hit_miss_invalidation_lifecycle() {
        let lru: ShardedLru<u32> = ShardedLru::new(8, 2);
        assert_eq!(lru.get(&fp(1, &[1])), None); // miss
        lru.put(&fp(1, &[1]), 10);
        assert_eq!(lru.get(&fp(1, &[1])), Some(10)); // hit
        assert_eq!(lru.get(&fp(1, &[2])), None); // invalidation (stale)
        assert_eq!(lru.get(&fp(1, &[2])), None); // now a plain miss
        let s = lru.snapshot();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn lru_evicts_least_recently_used_per_shard() {
        // One shard, capacity 2: touching key 1 makes key 2 the victim.
        let lru: ShardedLru<u32> = ShardedLru::new(2, 1);
        lru.put(&fp(1, &[1]), 1);
        lru.put(&fp(2, &[1]), 2);
        assert_eq!(lru.get(&fp(1, &[1])), Some(1));
        lru.put(&fp(3, &[1]), 3);
        assert_eq!(lru.get(&fp(2, &[1])), None, "LRU entry not evicted");
        assert_eq!(lru.get(&fp(1, &[1])), Some(1));
        assert_eq!(lru.get(&fp(3, &[1])), Some(3));
        assert_eq!(lru.snapshot().evictions, 1);
    }

    #[test]
    fn replace_same_key_does_not_evict_others() {
        let lru: ShardedLru<u32> = ShardedLru::new(2, 1);
        lru.put(&fp(1, &[1]), 1);
        lru.put(&fp(2, &[1]), 2);
        lru.put(&fp(1, &[2]), 10); // replace, shard full but same key
        assert_eq!(lru.snapshot().evictions, 0);
        assert_eq!(lru.get(&fp(2, &[1])), Some(2));
        assert_eq!(lru.get(&fp(1, &[2])), Some(10));
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let lru: ShardedLru<u32> = ShardedLru::new(8, 4);
        for k in 0..6 {
            lru.put(&fp(k, &[1]), k as u32);
        }
        assert_eq!(lru.len(), 6);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.snapshot().insertions, 6);
    }

    #[test]
    fn shards_partition_the_key_space() {
        let lru: ShardedLru<u32> = ShardedLru::new(64, 8);
        for k in 0..64u64 {
            lru.put(&fp(k, &[1]), k as u32);
        }
        assert_eq!(lru.len(), 64);
        for k in 0..64u64 {
            assert_eq!(lru.get(&fp(k, &[1])), Some(k as u32));
        }
    }
}
