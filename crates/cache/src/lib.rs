//! # qppt-cache — snapshot-keyed caching for the serving hot path
//!
//! QPPT's intermediates are ordered, canonical index structures: at an
//! unchanged snapshot the engine rebuilds byte-identical plans, dimension
//! selections, and results on every run. This crate makes that reuse
//! explicit with a four-tier, byte-budgeted, sharded LRU keyed by
//! *snapshot fingerprints* — structural hashes plus the version vector of
//! exactly the tables an entry was computed from:
//!
//! 1. **Plan tier** — `Arc<Plan>` keyed per `(query, options)`: a hit
//!    skips `build_plan`.
//! 2. **Dimension tier** — `Arc<DimSelection>` keyed per *σ*
//!    `(table, predicate set, carried columns, table version)`: one
//!    materialized dimension `InterTable`, shared by **every query** whose
//!    plan contains the same selection (Q3.1/Q3.2/Q3.3 all reuse one
//!    `d_year BETWEEN 1992 AND 1997` table). This is the common-subwork
//!    sharing the selection tier of PR 3 could not express: it cached a
//!    whole `PreparedQuery` per query, so two queries sharing a σ each
//!    paid the materialization.
//! 3. **Selection tier** — `Arc<PreparedQuery>` keyed per
//!    `(query, options)`: since PR 4 a cheap *composition* of shared
//!    dimension handles plus the query-private fused stream; a hit
//!    additionally skips the per-dimension cache walk and the
//!    fused-selection scan.
//! 4. **Result tier** — `Arc<CachedResult>`: a hit returns the decoded
//!    rows without touching the worker pool at all.
//!
//! ## Byte budgets, pinning, TTL
//!
//! Every tier is bounded by a **byte budget**, not an entry count: a
//! materialized selection is orders of magnitude heavier than a plan, so
//! counting entries sized nothing. Entries report their footprint through
//! [`HeapSize`], which bottoms out in the engine's own estimators
//! (`InterTable::memory_bytes`, `QueryResult::memory_bytes`,
//! `Plan::memory_bytes`). Attribution is conservative: σ tables are
//! billed to the dimension tier that owns them *and*, in full, to every
//! cached composer that pins them — a composer is what keeps its σ alive
//! even after the dim tier drops them, so the selection budget must cover
//! that retained memory (total resident selection bytes are bounded by
//! `dim_budget + selection_budget`). Eviction pops from each shard's
//! intrusive recency list (O(victims), see [`lru`]) and prefers victims
//! that are not pinned — an entry whose `Arc` is also held by an
//! executing query or a composed prepared query frees nothing — but pins
//! cannot break the bound: when only pinned entries remain, the coldest
//! are dropped from the map while their holders keep the data alive. An
//! optional idle TTL reclaims long-untouched entries even when the budget
//! has room; pinned entries never count as idle.
//!
//! ## Coherence
//!
//! [`Database`] bumps a monotonic per-table version on every MVCC write
//! and index build. Query-level fingerprints embed the version vector of
//! the tables a query reads (fact + dimensions, O(dims) to collect);
//! dimension fingerprints embed exactly their own table's version. So:
//!
//! * a write to a dimension table kills **exactly** that table's σ
//!   entries (and the prepared/result entries of queries reading it) at
//!   their next lookup — counted as an **invalidation**, stale bytes
//!   never served;
//! * entries over untouched tables keep hitting, including the other
//!   dimension entries of the very queries that were invalidated — after
//!   a write to `date`, a re-run of Q4.2 rebuilds only the date σ and
//!   reuses the part/supplier σ from the dim tier.
//!
//! Under a shared `Arc<Database>` (the serving path), versions cannot
//! change *during* a query — writes need `&mut Database` — so
//! fingerprints computed at `RUN` time stay valid for the whole
//! execution, and a dimension table whose version is unchanged since its
//! entry was built is byte-identical to rematerializing it now.
//!
//! Counters (hits / misses / invalidations / evictions / expirations /
//! insertions, plus live entries and bytes) are kept per tier and
//! surfaced through the server's `CACHE STATS` command and per-query
//! `ExecStats` operator lines.

mod lru;

use std::sync::Arc;
use std::time::Duration;

use qppt_core::exec::materialize_dim_selection;
use qppt_core::plan::DimHandleKind;
use qppt_core::{
    fingerprint_dim, fingerprint_query, DimSelection, ExecStats, Plan, PlanOptions, PreparedQuery,
    QpptError,
};
use qppt_storage::{Database, QueryResult, QuerySpec, Snapshot, StorageError};

pub use lru::{CacheKey, CacheValue, ShardedLru, TierSnapshot};

/// The snapshot fingerprint every tier is keyed on: one 64-bit hash over
/// `(database identity, structural hash)` plus the version vector of the
/// tables the entry reads — for query-level tiers the fact first, then
/// dimensions in spec order; for the dimension tier exactly the one
/// dimension table.
///
/// The [`Database::instance_id`] is folded into the key so a cache shared
/// across engine rebuilds can never serve one database's rows for a
/// *different* database, even when their version vectors coincide (two
/// freshly loaded instances both sit at version 1 everywhere). Mutating a
/// database in place keeps its identity — that is the supported
/// cache-outlives-engine pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryFingerprint {
    /// Structural hash ⊕ database identity.
    pub key: u64,
    /// Per-table versions at computation time.
    pub versions: Vec<u64>,
}

impl QueryFingerprint {
    /// Computes the query-level fingerprint — O(dims): one structural hash
    /// (cheap, no catalog access) plus one version lookup per involved
    /// table.
    pub fn compute(
        db: &Database,
        spec: &QuerySpec,
        opts: &PlanOptions,
    ) -> Result<Self, StorageError> {
        let mut versions = Vec::with_capacity(1 + spec.dims.len());
        versions.push(db.table_version(&spec.fact)?);
        for d in &spec.dims {
            versions.push(db.table_version(&d.table)?);
        }
        let mut key = qppt_core::Fnv64::new();
        key.write_u64(db.instance_id())
            .write_u64(fingerprint_query(spec, opts));
        Ok(Self {
            key: key.finish(),
            versions,
        })
    }

    /// Computes the dimension-tier fingerprint of one resolved σ: the
    /// structural hash covers everything `materialize_dim` reads (see
    /// [`fingerprint_dim`]), the version vector is exactly the dimension
    /// table's version — so the entry dies precisely when *its* table is
    /// written, and queries that merely share it never widen its key.
    pub fn compute_dim(
        db: &Database,
        dim: &qppt_core::plan::ResolvedDim,
        opts: &PlanOptions,
    ) -> Result<Self, StorageError> {
        let mut key = qppt_core::Fnv64::new();
        key.write_u64(db.instance_id())
            .write_u64(fingerprint_dim(dim, opts));
        Ok(Self {
            key: key.finish(),
            versions: vec![db.table_version(&dim.table)?],
        })
    }
}

/// A cached full result: decoded rows plus the statistics of the execution
/// that produced them.
#[derive(Debug, Clone)]
pub struct CachedResult {
    pub result: QueryResult,
    pub stats: ExecStats,
}

/// Heap footprint for the cache's byte budgets. Implemented down through
/// the engine's own estimators; every tier value is an `Arc<T: HeapSize>`,
/// which also supplies the pin signal (an `Arc` held outside the cache).
pub trait HeapSize {
    /// Estimated heap bytes owned by this value.
    fn heap_bytes(&self) -> usize;
}

impl HeapSize for Plan {
    fn heap_bytes(&self) -> usize {
        self.memory_bytes()
    }
}

impl HeapSize for DimSelection {
    fn heap_bytes(&self) -> usize {
        self.memory_bytes()
    }
}

impl HeapSize for PreparedQuery {
    /// Query-private bytes **plus** the composed σ tables, in full. This
    /// deliberately over-counts shared σ (once per composer that pins
    /// them) rather than under-counting: a cached composer is what keeps
    /// its σ alive even after the dimension tier drops them under
    /// pressure, so the selection budget must bound that retained memory.
    /// Billing only `private_bytes` (KiB-scale) would let the tier retain
    /// thousands of composers, each pinning megabytes of selections the
    /// budgets no longer see.
    fn heap_bytes(&self) -> usize {
        self.private_bytes()
            + self
                .dims
                .iter()
                .flatten()
                .map(|d| d.memory_bytes())
                .sum::<usize>()
    }
}

impl HeapSize for CachedResult {
    fn heap_bytes(&self) -> usize {
        self.result.memory_bytes() + self.stats.ops.len() * 96
    }
}

impl HeapSize for qppt_core::PartialAggregate {
    /// The router's partial-aggregate tier stores raw shard payloads; they
    /// budget bytes exactly like decoded results do.
    fn heap_bytes(&self) -> usize {
        self.memory_bytes()
    }
}

impl<T: HeapSize> CacheValue for Arc<T> {
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<T>() + T::heap_bytes(self)
    }

    /// Pinned while anyone outside the cache holds the `Arc`: an in-flight
    /// execution, or — for dimension entries — a composed `PreparedQuery`
    /// (cached or executing). Evicting such an entry frees nothing, so the
    /// LRU treats it as a last-resort victim (see [`CacheValue::pinned`]).
    fn pinned(&self) -> bool {
        Arc::strong_count(self) > 1
    }
}

/// Byte budgets and geometry of a [`QueryCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Byte budget of the plan tier (plans are a few KiB of resolved
    /// metadata — this fits hundreds).
    pub plan_budget: usize,
    /// Byte budget of the dimension tier — the heavy tier: one entry is a
    /// whole materialized `InterTable`. Keep this the largest.
    pub dim_budget: usize,
    /// Byte budget of the selection tier. A composer bills its private
    /// state (plan handle + fused stream) plus, conservatively, the σ
    /// tables it pins — so this budget bounds the selection memory cached
    /// composers keep alive (shared σ count once per composer).
    pub selection_budget: usize,
    /// Byte budget of the result tier (decoded rows; SSB results are ≤ a
    /// few hundred rows).
    pub result_budget: usize,
    /// Idle time-to-live: entries untouched for longer are reclaimed even
    /// when the byte budget has room. `None` = no age limit.
    pub ttl: Option<Duration>,
    /// Shard count per tier (rounded up to a power of two).
    pub shards: usize,
    /// `false` turns every lookup into a pass-through miss and every
    /// insert into a no-op.
    pub enabled: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            plan_budget: 4 << 20,       // 4 MiB
            dim_budget: 256 << 20,      // 256 MiB
            selection_budget: 64 << 20, // 64 MiB
            result_budget: 32 << 20,    // 32 MiB
            ttl: None,
            shards: 8,
            enabled: true,
        }
    }
}

impl CacheConfig {
    /// A configuration with caching switched off entirely.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Sets the idle TTL on all tiers.
    pub fn with_ttl(mut self, ttl: Option<Duration>) -> Self {
        self.ttl = ttl;
        self
    }
}

/// Point-in-time statistics of all four tiers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub plans: TierSnapshot,
    pub dims: TierSnapshot,
    pub selections: TierSnapshot,
    pub results: TierSnapshot,
}

/// How a prepared query's dimension handles were obtained from the
/// dimension tier during assemble-from-parts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DimAssembly {
    /// σ handles served from the dimension tier (shared — possibly
    /// materialized by a *different* query).
    pub shared: usize,
    /// σ handles materialized now (and inserted for the next query).
    pub built: usize,
}

/// The four-tier snapshot-keyed query cache (see module docs). Internally
/// synchronized — share it behind an `Arc` across connections.
#[derive(Debug)]
pub struct QueryCache {
    plans: ShardedLru<Arc<Plan>>,
    dims: ShardedLru<Arc<DimSelection>>,
    selections: ShardedLru<Arc<PreparedQuery>>,
    results: ShardedLru<Arc<CachedResult>>,
    enabled: bool,
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::new(CacheConfig::default())
    }
}

impl QueryCache {
    /// Creates a cache with the given budgets and geometry.
    pub fn new(config: CacheConfig) -> Self {
        Self {
            plans: ShardedLru::new(config.plan_budget, config.shards, config.ttl),
            dims: ShardedLru::new(config.dim_budget, config.shards, config.ttl),
            selections: ShardedLru::new(config.selection_budget, config.shards, config.ttl),
            results: ShardedLru::new(config.result_budget, config.shards, config.ttl),
            enabled: config.enabled,
        }
    }

    /// `false` when the cache was built disabled (every get misses without
    /// counting, every put is dropped).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Result-tier lookup.
    pub fn get_result(&self, fp: &QueryFingerprint) -> Option<Arc<CachedResult>> {
        if !self.enabled {
            return None;
        }
        self.results.get(fp)
    }

    /// Result-tier insert.
    pub fn put_result(&self, fp: &QueryFingerprint, value: Arc<CachedResult>) {
        if self.enabled {
            self.results.put(fp, value);
        }
    }

    /// Plan-tier lookup.
    pub fn get_plan(&self, fp: &QueryFingerprint) -> Option<Arc<Plan>> {
        if !self.enabled {
            return None;
        }
        self.plans.get(fp)
    }

    /// Plan-tier insert.
    pub fn put_plan(&self, fp: &QueryFingerprint, value: Arc<Plan>) {
        if self.enabled {
            self.plans.put(fp, value);
        }
    }

    /// Dimension-tier lookup (key from
    /// [`QueryFingerprint::compute_dim`]).
    pub fn get_dim(&self, fp: &QueryFingerprint) -> Option<Arc<DimSelection>> {
        if !self.enabled {
            return None;
        }
        self.dims.get(fp)
    }

    /// Dimension-tier insert.
    pub fn put_dim(&self, fp: &QueryFingerprint, value: Arc<DimSelection>) {
        if self.enabled {
            self.dims.put(fp, value);
        }
    }

    /// Selection-tier lookup.
    pub fn get_selections(&self, fp: &QueryFingerprint) -> Option<Arc<PreparedQuery>> {
        if !self.enabled {
            return None;
        }
        self.selections.get(fp)
    }

    /// Selection-tier insert.
    pub fn put_selections(&self, fp: &QueryFingerprint, value: Arc<PreparedQuery>) {
        if self.enabled {
            self.selections.put(fp, value);
        }
    }

    /// Composes a [`PreparedQuery`] for an already-built plan, serving
    /// every `Materialized` dimension from the dimension tier when a
    /// version-fresh σ entry exists (whoever built it) and materializing —
    /// and caching — the rest. Only the query-private fused stream is
    /// always built. This is the serving path's assemble-from-parts step
    /// on a selection-tier miss; with the cache disabled it degrades to
    /// [`PreparedQuery::from_plan`] (every σ built, nothing cached).
    pub fn prepare_from_parts(
        &self,
        db: &Database,
        plan: Arc<Plan>,
        opts: &PlanOptions,
        snap: Snapshot,
    ) -> Result<(PreparedQuery, DimAssembly), QpptError> {
        let mut dims = Vec::with_capacity(plan.dims.len());
        let mut assembly = DimAssembly::default();
        for (di, dim) in plan.dims.iter().enumerate() {
            if dim.handle != DimHandleKind::Materialized {
                dims.push(None);
                continue;
            }
            let dfp = QueryFingerprint::compute_dim(db, dim, opts).map_err(QpptError::Storage)?;
            if let Some(shared) = self.get_dim(&dfp) {
                assembly.shared += 1;
                dims.push(Some(shared));
                continue;
            }
            let built = materialize_dim_selection(db, snap, &plan, di)?
                .expect("Materialized dims materialize");
            self.put_dim(&dfp, built.clone());
            assembly.built += 1;
            dims.push(Some(built));
        }
        Ok((PreparedQuery::from_parts(db, plan, dims, snap)?, assembly))
    }

    /// Drops every entry in every tier (lifetime counters survive).
    pub fn clear(&self) {
        self.plans.clear();
        self.dims.clear();
        self.selections.clear();
        self.results.clear();
    }

    /// Drops only the dimension tier (the `CACHE CLEAR dims` sub-verb).
    /// Composed prepared queries keep their handles alive — subsequent
    /// assemblies simply rematerialize and refill.
    pub fn clear_dims(&self) {
        self.dims.clear();
    }

    /// Counters, entry counts, and resident bytes of all tiers.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            plans: self.plans.snapshot(),
            dims: self.dims.snapshot(),
            selections: self.selections.snapshot(),
            results: self.results.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qppt_core::{build_plan, prepare_indexes, QpptEngine};
    use qppt_ssb::{queries, SsbDb};

    #[test]
    fn fingerprint_tracks_only_involved_tables() {
        let mut ssb = SsbDb::generate(0.005, 42);
        let opts = PlanOptions::default();
        let q11 = queries::q1_1(); // fact + date
        let q23 = queries::q2_3(); // fact + part, supplier, date
        for q in [&q11, &q23] {
            prepare_indexes(&mut ssb.db, q, &opts).unwrap();
        }
        let f11 = QueryFingerprint::compute(&ssb.db, &q11, &opts).unwrap();
        let f23 = QueryFingerprint::compute(&ssb.db, &q23, &opts).unwrap();
        assert_ne!(f11.key, f23.key);
        assert_eq!(f11.versions.len(), 2);
        assert_eq!(f23.versions.len(), 4);

        // A write to part changes q2.3's fingerprint but not q1.1's.
        ssb.db.delete_row("part", 0).unwrap();
        let f11b = QueryFingerprint::compute(&ssb.db, &q11, &opts).unwrap();
        let f23b = QueryFingerprint::compute(&ssb.db, &q23, &opts).unwrap();
        assert_eq!(f11, f11b);
        assert_ne!(f23.versions, f23b.versions);
        assert_eq!(f23.key, f23b.key);
    }

    #[test]
    fn dim_fingerprints_shared_across_queries_and_options() {
        // Q3.1/Q3.2/Q3.3 all carry the same date σ (d_year ∈ [1992,1997],
        // carried d_year): their dim fingerprints must coincide, across
        // parallelism settings, while query fingerprints differ.
        let mut ssb = SsbDb::generate(0.005, 42);
        let opts = PlanOptions::default();
        let par4 = PlanOptions::default().with_parallelism(4);
        for q in queries::all_queries() {
            prepare_indexes(&mut ssb.db, &q, &opts).unwrap();
        }
        fn date_fp(db: &Database, spec: &QuerySpec, o: &PlanOptions) -> QueryFingerprint {
            let plan = build_plan(db, spec, o).unwrap();
            let dim = plan
                .dims
                .iter()
                .find(|d| d.table == "date")
                .expect("q3.x joins date");
            assert_eq!(dim.handle, DimHandleKind::Materialized);
            QueryFingerprint::compute_dim(db, dim, o).unwrap()
        }
        let f31 = date_fp(&ssb.db, &queries::q3_1(), &opts);
        let f32 = date_fp(&ssb.db, &queries::q3_2(), &opts);
        let f33 = date_fp(&ssb.db, &queries::q3_3(), &opts);
        let f31p = date_fp(&ssb.db, &queries::q3_1(), &par4);
        assert_eq!(f31, f32, "same σ from different queries must share");
        assert_eq!(f31, f33);
        assert_eq!(f31, f31p, "parallelism must not split the σ key");
        // A different predicate (Q3.4's date month) is a different σ.
        let f34 = date_fp(&ssb.db, &queries::q3_4(), &opts);
        assert_ne!(f31.key, f34.key);
        // A write to date bumps the version, killing exactly these keys.
        ssb.db.delete_row("date", 0).unwrap();
        let f31b = date_fp(&ssb.db, &queries::q3_1(), &opts);
        assert_eq!(f31.key, f31b.key);
        assert_ne!(f31.versions, f31b.versions);
    }

    #[test]
    fn prepare_from_parts_shares_sigma_across_queries() {
        let mut ssb = SsbDb::generate(0.01, 42);
        let opts = PlanOptions::default();
        for q in queries::all_queries() {
            prepare_indexes(&mut ssb.db, &q, &opts).unwrap();
        }
        let db = ssb.db;
        let cache = QueryCache::default();
        let snap = db.snapshot();

        // Q3.1 cold: builds supplier + date σ (customer is fused).
        let plan31 = Arc::new(build_plan(&db, &queries::q3_1(), &opts).unwrap());
        let (p31, a31) = cache.prepare_from_parts(&db, plan31, &opts, snap).unwrap();
        assert_eq!(a31.shared, 0);
        assert!(a31.built >= 2, "q3.1 materializes supplier and date");

        // Q3.2 shares only the date σ; supplier predicate differs.
        let plan32 = Arc::new(build_plan(&db, &queries::q3_2(), &opts).unwrap());
        let (p32, a32) = cache.prepare_from_parts(&db, plan32, &opts, snap).unwrap();
        assert_eq!(a32.shared, 1, "the date σ must come from the dim tier");
        assert_eq!(a32.built, a31.built - 1);

        // The handles are literally the same allocation.
        let date_of = |p: &PreparedQuery| {
            p.plan
                .dims
                .iter()
                .position(|d| d.table == "date")
                .map(|i| p.dims[i].clone().expect("materialized"))
                .expect("date dim")
        };
        assert!(Arc::ptr_eq(&date_of(&p31), &date_of(&p32)));

        // Both compositions execute byte-identically to fresh runs.
        let oracle = QpptEngine::new(&db);
        for (p, q) in [(&p31, queries::q3_1()), (&p32, queries::q3_2())] {
            let (got, _) = p.execute_sequential(&db).unwrap();
            assert_eq!(got, oracle.run(&q, &opts).unwrap(), "{}", q.id);
        }
        let s = cache.stats();
        assert_eq!(s.dims.hits, 1);
        assert_eq!(s.dims.insertions as usize, a31.built + a32.built);
        assert!(s.dims.bytes > 0);
    }

    #[test]
    fn tiers_roundtrip_and_invalidate_independently() {
        let mut ssb = SsbDb::generate(0.005, 42);
        let opts = PlanOptions::default();
        let q = queries::q2_1();
        prepare_indexes(&mut ssb.db, &q, &opts).unwrap();
        let cache = QueryCache::new(CacheConfig {
            shards: 2,
            ..CacheConfig::default()
        });
        let fp = QueryFingerprint::compute(&ssb.db, &q, &opts).unwrap();
        assert!(cache.get_result(&fp).is_none());

        let engine = QpptEngine::new(&ssb.db);
        let (result, stats) = engine.run_with_stats(&q, &opts).unwrap();
        cache.put_result(&fp, Arc::new(CachedResult { result, stats }));
        cache.put_plan(&fp, Arc::new(engine.plan(&q, &opts).unwrap()));
        assert!(cache.get_result(&fp).is_some());
        assert!(cache.get_plan(&fp).is_some());
        assert!(cache.stats().results.bytes > 0);

        // A write to the fact table invalidates on next lookup.
        ssb.db.delete_row("lineorder", 0).unwrap();
        let fp2 = QueryFingerprint::compute(&ssb.db, &q, &opts).unwrap();
        assert!(cache.get_result(&fp2).is_none());
        let s = cache.stats();
        assert_eq!(s.results.invalidations, 1);
        assert_eq!(s.results.hits, 1);
        // The plan tier was never probed with the new fingerprint.
        assert_eq!(s.plans.invalidations, 0);
    }

    #[test]
    fn fingerprints_never_cross_databases() {
        // Two freshly built databases have identical version vectors (all
        // 1s) — the instance id must still keep their fingerprints apart,
        // so a cache shared across engines cannot serve A's rows for B.
        let opts = PlanOptions::default();
        let q = queries::q1_1();
        let mut a = SsbDb::generate(0.005, 42);
        let mut b = SsbDb::generate(0.005, 7);
        prepare_indexes(&mut a.db, &q, &opts).unwrap();
        prepare_indexes(&mut b.db, &q, &opts).unwrap();
        let fa = QueryFingerprint::compute(&a.db, &q, &opts).unwrap();
        let fb = QueryFingerprint::compute(&b.db, &q, &opts).unwrap();
        assert_eq!(fa.versions, fb.versions, "test premise: same versions");
        assert_ne!(fa.key, fb.key, "instance id must separate databases");
        // Mutating in place keeps the identity (the supported pattern).
        a.db.delete_row("date", 0).unwrap();
        let fa2 = QueryFingerprint::compute(&a.db, &q, &opts).unwrap();
        assert_eq!(fa.key, fa2.key);
        assert_ne!(fa.versions, fa2.versions);
    }

    #[test]
    fn disabled_cache_is_a_pass_through() {
        let mut ssb = SsbDb::generate(0.005, 42);
        let q = queries::q2_1();
        let opts = PlanOptions::default();
        prepare_indexes(&mut ssb.db, &q, &opts).unwrap();
        let cache = QueryCache::new(CacheConfig::disabled());
        assert!(!cache.enabled());
        let fp = QueryFingerprint::compute(&ssb.db, &q, &opts).unwrap();
        cache.put_result(
            &fp,
            Arc::new(CachedResult {
                result: QueryResult {
                    group_cols: vec![],
                    agg_cols: vec![],
                    rows: vec![],
                },
                stats: ExecStats::default(),
            }),
        );
        assert!(cache.get_result(&fp).is_none());
        assert_eq!(cache.stats().results.insertions, 0);

        // Assemble-from-parts still works — it just builds every σ and
        // caches nothing (the cache=off contract covers the dim tier too).
        let snap = ssb.db.snapshot();
        let plan = Arc::new(build_plan(&ssb.db, &q, &opts).unwrap());
        let (p, a) = cache
            .prepare_from_parts(&ssb.db, plan, &opts, snap)
            .unwrap();
        assert_eq!(a.shared, 0);
        assert!(a.built > 0);
        let (got, _) = p.execute_sequential(&ssb.db).unwrap();
        assert_eq!(got, QpptEngine::new(&ssb.db).run(&q, &opts).unwrap());
        let s = cache.stats();
        assert_eq!((s.dims.insertions, s.dims.hits, s.dims.misses), (0, 0, 0));
    }
}
