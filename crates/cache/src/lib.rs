//! # qppt-cache — snapshot-keyed caching for the serving hot path
//!
//! QPPT's intermediates are ordered, canonical index structures: at an
//! unchanged snapshot the engine rebuilds byte-identical plans, dimension
//! selections, and results on every run. This crate makes that reuse
//! explicit with a three-tier, bounded, sharded LRU keyed by the *snapshot
//! fingerprint* `(query structure, plan options, table versions)`:
//!
//! 1. **Plan tier** — `Arc<Plan>`: a hit skips `build_plan`.
//! 2. **Selection tier** — `Arc<PreparedQuery>`: a hit additionally skips
//!    every `materialize_dim` call and the fused-selection scan; pooled
//!    executions then run morsels straight off the shared `InterTable`s.
//! 3. **Result tier** — `Arc<CachedResult>`: a hit returns the decoded
//!    rows without touching the worker pool at all.
//!
//! ## Coherence
//!
//! [`Database`] bumps a monotonic per-table version on every MVCC write
//! and index build. Fingerprints embed the version vector of exactly the
//! tables a query reads (fact + dimensions, O(dims) to collect), so:
//!
//! * a write to any table a cached entry depends on changes the entry's
//!   expected versions → the next lookup detects the mismatch, drops the
//!   entry, and counts an **invalidation** (stale results are never
//!   served);
//! * entries over untouched tables keep hitting — invalidation is exact,
//!   not a global flush.
//!
//! Under a shared `Arc<Database>` (the serving path), versions cannot
//! change *during* a query — writes need `&mut Database` — so a
//! fingerprint computed at `RUN` time stays valid for the whole execution.
//!
//! Counters (hits / misses / invalidations / evictions / insertions) are
//! kept per tier and surfaced through the server's `CACHE STATS` command
//! and per-query `ExecStats` operator lines.

mod lru;

use std::sync::Arc;

use qppt_core::{fingerprint_query, ExecStats, Plan, PlanOptions, PreparedQuery};
use qppt_storage::{Database, QueryResult, QuerySpec, StorageError};

pub use lru::{ShardedLru, TierSnapshot};

/// The snapshot fingerprint every tier is keyed on: one 64-bit hash over
/// `(database identity, query structure, options)` plus the version
/// vector of the tables the query reads (fact first, then dimensions in
/// spec order).
///
/// The [`Database::instance_id`] is folded into the key so a cache shared
/// across engine rebuilds can never serve one database's rows for a
/// *different* database, even when their version vectors coincide (two
/// freshly loaded instances both sit at version 1 everywhere). Mutating a
/// database in place keeps its identity — that is the supported
/// cache-outlives-engine pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryFingerprint {
    /// `fingerprint_query(spec, opts)` ⊕ database identity.
    pub key: u64,
    /// Per-table versions at computation time.
    pub versions: Vec<u64>,
}

impl QueryFingerprint {
    /// Computes the fingerprint — O(dims): one structural hash (cheap,
    /// no catalog access) plus one version lookup per involved table.
    pub fn compute(
        db: &Database,
        spec: &QuerySpec,
        opts: &PlanOptions,
    ) -> Result<Self, StorageError> {
        let mut versions = Vec::with_capacity(1 + spec.dims.len());
        versions.push(db.table_version(&spec.fact)?);
        for d in &spec.dims {
            versions.push(db.table_version(&d.table)?);
        }
        let mut key = qppt_core::Fnv64::new();
        key.write_u64(db.instance_id())
            .write_u64(fingerprint_query(spec, opts));
        Ok(Self {
            key: key.finish(),
            versions,
        })
    }
}

/// A cached full result: decoded rows plus the statistics of the execution
/// that produced them.
#[derive(Debug, Clone)]
pub struct CachedResult {
    pub result: QueryResult,
    pub stats: ExecStats,
}

/// Capacity/geometry of a [`QueryCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Max cached plans (cheap: a plan is a few KiB of resolved metadata).
    pub plan_capacity: usize,
    /// Max cached [`PreparedQuery`]s (expensive: materialized dimension
    /// selections — keep this the smallest tier).
    pub selection_capacity: usize,
    /// Max cached results (decoded rows; SSB results are ≤ a few hundred
    /// rows).
    pub result_capacity: usize,
    /// Shard count per tier (rounded up to a power of two).
    pub shards: usize,
    /// `false` turns every lookup into a pass-through miss and every
    /// insert into a no-op.
    pub enabled: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            plan_capacity: 256,
            selection_capacity: 64,
            result_capacity: 256,
            shards: 8,
            enabled: true,
        }
    }
}

impl CacheConfig {
    /// A configuration with caching switched off entirely.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Point-in-time statistics of all three tiers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub plans: TierSnapshot,
    pub selections: TierSnapshot,
    pub results: TierSnapshot,
}

/// The three-tier snapshot-keyed query cache (see module docs). Internally
/// synchronized — share it behind an `Arc` across connections.
#[derive(Debug)]
pub struct QueryCache {
    plans: ShardedLru<Arc<Plan>>,
    selections: ShardedLru<Arc<PreparedQuery>>,
    results: ShardedLru<Arc<CachedResult>>,
    enabled: bool,
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::new(CacheConfig::default())
    }
}

impl QueryCache {
    /// Creates a cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        Self {
            plans: ShardedLru::new(config.plan_capacity, config.shards),
            selections: ShardedLru::new(config.selection_capacity, config.shards),
            results: ShardedLru::new(config.result_capacity, config.shards),
            enabled: config.enabled,
        }
    }

    /// `false` when the cache was built disabled (every get misses without
    /// counting, every put is dropped).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Result-tier lookup.
    pub fn get_result(&self, fp: &QueryFingerprint) -> Option<Arc<CachedResult>> {
        if !self.enabled {
            return None;
        }
        self.results.get(fp)
    }

    /// Result-tier insert.
    pub fn put_result(&self, fp: &QueryFingerprint, value: Arc<CachedResult>) {
        if self.enabled {
            self.results.put(fp, value);
        }
    }

    /// Plan-tier lookup.
    pub fn get_plan(&self, fp: &QueryFingerprint) -> Option<Arc<Plan>> {
        if !self.enabled {
            return None;
        }
        self.plans.get(fp)
    }

    /// Plan-tier insert.
    pub fn put_plan(&self, fp: &QueryFingerprint, value: Arc<Plan>) {
        if self.enabled {
            self.plans.put(fp, value);
        }
    }

    /// Selection-tier lookup.
    pub fn get_selections(&self, fp: &QueryFingerprint) -> Option<Arc<PreparedQuery>> {
        if !self.enabled {
            return None;
        }
        self.selections.get(fp)
    }

    /// Selection-tier insert.
    pub fn put_selections(&self, fp: &QueryFingerprint, value: Arc<PreparedQuery>) {
        if self.enabled {
            self.selections.put(fp, value);
        }
    }

    /// Drops every entry in every tier (lifetime counters survive).
    pub fn clear(&self) {
        self.plans.clear();
        self.selections.clear();
        self.results.clear();
    }

    /// Counters and entry counts of all tiers.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            plans: self.plans.snapshot(),
            selections: self.selections.snapshot(),
            results: self.results.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qppt_core::{prepare_indexes, QpptEngine};
    use qppt_ssb::{queries, SsbDb};

    #[test]
    fn fingerprint_tracks_only_involved_tables() {
        let mut ssb = SsbDb::generate(0.005, 42);
        let opts = PlanOptions::default();
        let q11 = queries::q1_1(); // fact + date
        let q23 = queries::q2_3(); // fact + part, supplier, date
        for q in [&q11, &q23] {
            prepare_indexes(&mut ssb.db, q, &opts).unwrap();
        }
        let f11 = QueryFingerprint::compute(&ssb.db, &q11, &opts).unwrap();
        let f23 = QueryFingerprint::compute(&ssb.db, &q23, &opts).unwrap();
        assert_ne!(f11.key, f23.key);
        assert_eq!(f11.versions.len(), 2);
        assert_eq!(f23.versions.len(), 4);

        // A write to part changes q2.3's fingerprint but not q1.1's.
        ssb.db.delete_row("part", 0).unwrap();
        let f11b = QueryFingerprint::compute(&ssb.db, &q11, &opts).unwrap();
        let f23b = QueryFingerprint::compute(&ssb.db, &q23, &opts).unwrap();
        assert_eq!(f11, f11b);
        assert_ne!(f23.versions, f23b.versions);
        assert_eq!(f23.key, f23b.key);
    }

    #[test]
    fn tiers_roundtrip_and_invalidate_independently() {
        let mut ssb = SsbDb::generate(0.005, 42);
        let opts = PlanOptions::default();
        let q = queries::q2_1();
        prepare_indexes(&mut ssb.db, &q, &opts).unwrap();
        let cache = QueryCache::new(CacheConfig {
            shards: 2,
            ..CacheConfig::default()
        });
        let fp = QueryFingerprint::compute(&ssb.db, &q, &opts).unwrap();
        assert!(cache.get_result(&fp).is_none());

        let engine = QpptEngine::new(&ssb.db);
        let (result, stats) = engine.run_with_stats(&q, &opts).unwrap();
        cache.put_result(&fp, Arc::new(CachedResult { result, stats }));
        cache.put_plan(&fp, Arc::new(engine.plan(&q, &opts).unwrap()));
        assert!(cache.get_result(&fp).is_some());
        assert!(cache.get_plan(&fp).is_some());

        // A write to the fact table invalidates on next lookup.
        ssb.db.delete_row("lineorder", 0).unwrap();
        let fp2 = QueryFingerprint::compute(&ssb.db, &q, &opts).unwrap();
        assert!(cache.get_result(&fp2).is_none());
        let s = cache.stats();
        assert_eq!(s.results.invalidations, 1);
        assert_eq!(s.results.hits, 1);
        // The plan tier was never probed with the new fingerprint.
        assert_eq!(s.plans.invalidations, 0);
    }

    #[test]
    fn fingerprints_never_cross_databases() {
        // Two freshly built databases have identical version vectors (all
        // 1s) — the instance id must still keep their fingerprints apart,
        // so a cache shared across engines cannot serve A's rows for B.
        let opts = PlanOptions::default();
        let q = queries::q1_1();
        let mut a = SsbDb::generate(0.005, 42);
        let mut b = SsbDb::generate(0.005, 7);
        prepare_indexes(&mut a.db, &q, &opts).unwrap();
        prepare_indexes(&mut b.db, &q, &opts).unwrap();
        let fa = QueryFingerprint::compute(&a.db, &q, &opts).unwrap();
        let fb = QueryFingerprint::compute(&b.db, &q, &opts).unwrap();
        assert_eq!(fa.versions, fb.versions, "test premise: same versions");
        assert_ne!(fa.key, fb.key, "instance id must separate databases");
        // Mutating in place keeps the identity (the supported pattern).
        a.db.delete_row("date", 0).unwrap();
        let fa2 = QueryFingerprint::compute(&a.db, &q, &opts).unwrap();
        assert_eq!(fa.key, fa2.key);
        assert_ne!(fa.versions, fa2.versions);
    }

    #[test]
    fn disabled_cache_is_a_pass_through() {
        let ssb = SsbDb::generate(0.005, 42);
        let q = queries::q1_1();
        let opts = PlanOptions::default();
        let cache = QueryCache::new(CacheConfig::disabled());
        assert!(!cache.enabled());
        let fp = QueryFingerprint::compute(&ssb.db, &q, &opts).unwrap();
        cache.put_result(
            &fp,
            Arc::new(CachedResult {
                result: QueryResult {
                    group_cols: vec![],
                    agg_cols: vec![],
                    rows: vec![],
                },
                stats: ExecStats::default(),
            }),
        );
        assert!(cache.get_result(&fp).is_none());
        assert_eq!(cache.stats().results.insertions, 0);
    }
}
