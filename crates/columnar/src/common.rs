//! Query resolution shared by both comparison engines.

use qppt_storage::{
    compile_predicate, ColumnType, CompiledPred, QueryResult, QuerySpec, ResultRow, StorageError,
    Value,
};

use crate::store::ColumnDb;

/// A dimension resolved against the column store.
#[derive(Debug)]
pub struct ResolvedDim {
    pub table: String,
    pub join_col: usize,
    pub fact_col: usize,
    pub preds: Vec<CompiledPred>,
    pub carried: Vec<usize>,
}

/// A star query resolved to column indexes.
#[derive(Debug)]
pub struct Resolved {
    pub fact: String,
    pub dims: Vec<ResolvedDim>,
    pub fact_preds: Vec<CompiledPred>,
    /// Per group-by column: (dim position, index into that dim's `carried`).
    pub group_sources: Vec<(usize, usize)>,
    /// Bit widths of the packed group key (planner-equivalent).
    pub group_widths: Vec<u8>,
    /// Aggregates as fact-column expressions.
    pub aggs: Vec<ResolvedAgg>,
}

/// Aggregate over fact column indexes.
#[derive(Debug, Clone, Copy)]
pub enum ResolvedAgg {
    Col(usize),
    Mul(usize, usize),
    Sub(usize, usize),
}

impl ResolvedAgg {
    /// Evaluates on a fact-column accessor.
    #[inline]
    pub fn eval(&self, get: impl Fn(usize) -> u64) -> i64 {
        match *self {
            ResolvedAgg::Col(a) => get(a) as i64,
            ResolvedAgg::Mul(a, b) => get(a) as i64 * get(b) as i64,
            ResolvedAgg::Sub(a, b) => get(a) as i64 - get(b) as i64,
        }
    }

    /// Fact columns this aggregate reads.
    pub fn columns(&self) -> Vec<usize> {
        match *self {
            ResolvedAgg::Col(a) => vec![a],
            ResolvedAgg::Mul(a, b) | ResolvedAgg::Sub(a, b) => vec![a, b],
        }
    }
}

/// Resolves a [`QuerySpec`] against the column store.
pub fn resolve(cdb: &ColumnDb<'_>, spec: &QuerySpec) -> Result<Resolved, StorageError> {
    let fact_t = cdb.schema_of(&spec.fact)?;
    let mut dims = Vec::with_capacity(spec.dims.len());
    for d in &spec.dims {
        let t = cdb.schema_of(&d.table)?;
        dims.push(ResolvedDim {
            table: d.table.clone(),
            join_col: t.schema().col(&d.join_col)?,
            fact_col: fact_t.schema().col(&d.fact_col)?,
            preds: d
                .predicates
                .iter()
                .map(|p| compile_predicate(t, p))
                .collect::<Result<_, _>>()?,
            carried: d
                .carried
                .iter()
                .map(|c| t.schema().col(c))
                .collect::<Result<_, _>>()?,
        });
    }
    let fact_preds = spec
        .fact_predicates
        .iter()
        .map(|p| compile_predicate(fact_t, p))
        .collect::<Result<_, _>>()?;

    let mut group_sources = Vec::with_capacity(spec.group_by.len());
    let mut group_widths = Vec::with_capacity(spec.group_by.len());
    for g in &spec.group_by {
        let (di, d) = spec
            .dims
            .iter()
            .enumerate()
            .find(|(_, d)| d.table == g.table)
            .ok_or_else(|| StorageError::UnknownTable(g.table.clone()))?;
        let pos = d
            .carried
            .iter()
            .position(|c| *c == g.column)
            .ok_or_else(|| StorageError::UnknownColumn(g.column.clone()))?;
        group_sources.push((di, pos));
        let t = cdb.schema_of(&d.table)?;
        let col = t.schema().col(&g.column)?;
        let max_code = match t.schema().column(col).ty {
            ColumnType::Str => t
                .dict(col)
                .map_or(0, |dd| dd.len().saturating_sub(1) as u64),
            ColumnType::Int => {
                let s = t.stats(col);
                if s.min > s.max {
                    0
                } else {
                    s.max
                }
            }
        };
        group_widths.push((64 - max_code.leading_zeros()).max(1) as u8);
    }

    let aggs = spec
        .aggregates
        .iter()
        .map(|a| {
            let col = |c: &str| fact_t.schema().col(c);
            Ok(match &a.expr {
                qppt_storage::Expr::Col(c) => ResolvedAgg::Col(col(c)?),
                qppt_storage::Expr::Mul(a, b) => ResolvedAgg::Mul(col(a)?, col(b)?),
                qppt_storage::Expr::Sub(a, b) => ResolvedAgg::Sub(col(a)?, col(b)?),
            })
        })
        .collect::<Result<_, StorageError>>()?;

    Ok(Resolved {
        fact: spec.fact.clone(),
        dims,
        fact_preds,
        group_sources,
        group_widths,
        aggs,
    })
}

/// Packs group codes (one per group column) into a `u64` hash/group key.
#[inline]
pub fn pack_group(widths: &[u8], codes: &[u64]) -> u64 {
    let total: u8 = widths.iter().sum();
    debug_assert!(total <= 64);
    let mut key = 0u64;
    let mut used = 0u8;
    for (i, &w) in widths.iter().enumerate() {
        used += w;
        key |= codes[i] << (total - used);
    }
    key
}

/// Inverse of [`pack_group`].
pub fn unpack_group(widths: &[u8], key: u64) -> Vec<u64> {
    let total: u8 = widths.iter().sum();
    let mut out = Vec::with_capacity(widths.len());
    let mut used = 0u8;
    for &w in widths {
        used += w;
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        out.push((key >> (total - used)) & mask);
    }
    out
}

/// Decodes grouped aggregation output into the shared result format and
/// applies the query's order-by.
pub fn decode_result(
    cdb: &ColumnDb<'_>,
    spec: &QuerySpec,
    resolved: &Resolved,
    groups: impl IntoIterator<Item = (u64, Vec<i64>)>,
) -> Result<QueryResult, StorageError> {
    let mut rows = Vec::new();
    for (key, aggs) in groups {
        let codes = unpack_group(&resolved.group_widths, key);
        let mut key_values = Vec::with_capacity(codes.len());
        for (i, &code) in codes.iter().enumerate() {
            let g = &spec.group_by[i];
            let t = cdb.schema_of(&g.table)?;
            let col = t.schema().col(&g.column)?;
            key_values.push(match t.schema().column(col).ty {
                ColumnType::Int => Value::Int(code as i64),
                ColumnType::Str => Value::Str(
                    t.dict(col)
                        .expect("str column has dictionary")
                        .decode(code as u32)
                        .to_string(),
                ),
            });
        }
        rows.push(ResultRow {
            key_values,
            agg_values: aggs,
        });
    }
    let mut result = QueryResult {
        group_cols: spec.group_by.iter().map(|g| g.column.clone()).collect(),
        agg_cols: spec.aggregates.iter().map(|a| a.label.clone()).collect(),
        rows,
    };
    result.apply_order(&spec.order_by);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let widths = [11u8, 10, 5];
        let codes = vec![1997u64, 513, 17];
        let key = pack_group(&widths, &codes);
        assert_eq!(unpack_group(&widths, key), codes);
    }

    #[test]
    fn pack_is_order_preserving() {
        let widths = [8u8, 8];
        assert!(pack_group(&widths, &[1, 255]) < pack_group(&widths, &[2, 0]));
    }
}
