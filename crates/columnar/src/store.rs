//! Column store: the storage layout of the comparison engines.
//!
//! MonetDB-class engines store every attribute as its own dense array. We
//! build the column store from the row store at a chosen MVCC snapshot
//! (column stores snapshot/replicate data on load; versioning columns is out
//! of scope for the comparison, as it is in the paper's single-threaded
//! evaluation).

use std::collections::HashMap;

use qppt_storage::{Database, Snapshot, StorageError, Table};

/// Columnar image of one table (visible rows only, in rid order).
#[derive(Debug)]
pub struct ColumnTable {
    pub name: String,
    /// `columns[c][i]` = encoded value of visible row `i`, column `c`.
    pub columns: Vec<Vec<u64>>,
    /// Number of (visible) rows.
    pub rows: usize,
}

impl ColumnTable {
    fn build(table: &qppt_storage::MvccTable, snap: Snapshot) -> Self {
        let t = table.table();
        let width = t.schema().width();
        let mut columns: Vec<Vec<u64>> = vec![Vec::new(); width];
        let mut rows = 0usize;
        for rid in table.scan_visible(snap) {
            let row = t.row(rid);
            for (c, &v) in row.iter().enumerate() {
                columns[c].push(v);
            }
            rows += 1;
        }
        Self {
            name: t.name().to_string(),
            columns,
            rows,
        }
    }

    /// One column as a slice.
    #[inline]
    pub fn col(&self, c: usize) -> &[u64] {
        &self.columns[c]
    }
}

/// Columnar image of a whole database.
#[derive(Debug)]
pub struct ColumnDb<'a> {
    /// The row-store database (kept for schemas and dictionaries).
    pub db: &'a Database,
    tables: HashMap<String, ColumnTable>,
}

impl<'a> ColumnDb<'a> {
    /// Builds column images for every table at `snap`.
    pub fn new(db: &'a Database, snap: Snapshot) -> Self {
        let mut tables = HashMap::new();
        for name in db.table_names() {
            let mvt = db.table(name).expect("name from catalog");
            tables.insert(name.to_string(), ColumnTable::build(mvt, snap));
        }
        Self { db, tables }
    }

    /// The columnar image of a table.
    pub fn table(&self, name: &str) -> Result<&ColumnTable, StorageError> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// The row-store table (schema/dictionary access).
    pub fn schema_of(&self, name: &str) -> Result<&Table, StorageError> {
        Ok(self.db.table(name)?.table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qppt_storage::{ColumnType, Schema, TableBuilder, Value};

    fn small_db() -> Database {
        let mut b = TableBuilder::new(
            "t",
            Schema::of(&[("a", ColumnType::Int), ("b", ColumnType::Str)]),
        );
        for (a, s) in [(1, "x"), (2, "y"), (3, "x")] {
            b.push_row(vec![Value::Int(a), Value::str(s)]).unwrap();
        }
        let mut db = Database::new();
        db.add_table(b.finish());
        db
    }

    #[test]
    fn columns_mirror_rows() {
        let db = small_db();
        let cdb = ColumnDb::new(&db, db.snapshot());
        let ct = cdb.table("t").unwrap();
        assert_eq!(ct.rows, 3);
        assert_eq!(ct.col(0), &[1, 2, 3]);
        // "x" < "y" → codes 0, 1.
        assert_eq!(ct.col(1), &[0, 1, 0]);
    }

    #[test]
    fn snapshot_filters_versions() {
        let mut db = small_db();
        let before = db.snapshot();
        db.insert_row("t", &[Value::Int(9), Value::str("x")])
            .unwrap();
        db.delete_row("t", 0).unwrap();
        let after = db.snapshot();

        let old = ColumnDb::new(&db, before);
        assert_eq!(old.table("t").unwrap().rows, 3);
        let new = ColumnDb::new(&db, after);
        let ct = new.table("t").unwrap();
        assert_eq!(ct.rows, 3); // -1 deleted, +1 inserted
        assert_eq!(ct.col(0), &[2, 3, 9]);
    }

    #[test]
    fn unknown_table_is_an_error() {
        let db = small_db();
        let cdb = ColumnDb::new(&db, db.snapshot());
        assert!(cdb.table("nope").is_err());
    }
}
