//! Column-at-a-time engine (the MonetDB analogue of §5).
//!
//! Every operator processes one full column and **materializes its entire
//! intermediate result** before the next operator runs, BAT-algebra style:
//! selections produce full rid vectors, joins produce aligned rid-pair
//! vectors, and every attribute a later operator needs is *reconstructed* by
//! gathering the full column through the current rid vector. That
//! per-attribute gather is the tuple-reconstruction overhead the paper's
//! evaluation targets: it grows with the number of attributes touched, which
//! is why the column engine falls behind on the join-heavy Q4.x queries.

use qppt_hash::ChainedHashMap;
use qppt_storage::{CompiledPred, QueryResult, QuerySpec, Snapshot, StorageError};

use crate::common::{decode_result, pack_group, resolve};
use crate::store::ColumnDb;

/// Column-at-a-time executor.
#[derive(Debug, Clone, Copy)]
pub struct ColumnAtATimeEngine;

impl ColumnAtATimeEngine {
    /// Runs a star query, materializing one full column/vector per step.
    pub fn run(cdb: &ColumnDb<'_>, spec: &QuerySpec) -> Result<QueryResult, StorageError> {
        let r = resolve(cdb, spec)?;
        let fact = cdb.table(&r.fact)?;

        // 1. Per-dimension selections: one full scan per predicate, each
        // materializing a rid vector, then positionally intersected.
        // The surviving rows build the join hash table (key → dim row).
        let mut dim_hashes: Vec<ChainedHashMap<u32>> = Vec::with_capacity(r.dims.len());
        for d in &r.dims {
            let dt = cdb.table(&d.table)?;
            let rids = select_rids(dt.rows, &d.preds, |c| dt.col(c));
            let mut h = ChainedHashMap::with_capacity(rids.len());
            let keys = dt.col(d.join_col);
            for &rid in &rids {
                h.insert(keys[rid as usize], rid);
            }
            dim_hashes.push(h);
        }

        // 2. Fact selection: full-column scans materializing a rid vector.
        let mut fact_rids: Vec<u32> = select_rids(fact.rows, &r.fact_preds, |c| fact.col(c));

        // 3. One join at a time. Each join gathers the FK column through the
        // current rid vector (tuple reconstruction), probes the dim hash,
        // and materializes the shrunken rid vector plus one aligned dim-rid
        // vector per joined dimension.
        let mut dim_rid_vectors: Vec<Vec<u32>> = Vec::with_capacity(r.dims.len());
        for (di, d) in r.dims.iter().enumerate() {
            let fk_col = fact.col(d.fact_col);
            // Tuple reconstruction: materialize the FK values for the
            // current intermediate result.
            let fks: Vec<u64> = fact_rids.iter().map(|&rid| fk_col[rid as usize]).collect();
            let mut keep: Vec<u32> = Vec::new();
            let mut matched_dim: Vec<u32> = Vec::new();
            let h = &dim_hashes[di];
            let mut keep_mask: Vec<bool> = Vec::with_capacity(fks.len());
            for (i, fk) in fks.iter().enumerate() {
                match h.get(*fk) {
                    Some(&dim_rid) => {
                        keep.push(fact_rids[i]);
                        matched_dim.push(dim_rid);
                        keep_mask.push(true);
                    }
                    None => keep_mask.push(false),
                }
            }
            // Realign every previously materialized dim-rid vector — more
            // full-vector materialization, the cost the paper highlights.
            for v in &mut dim_rid_vectors {
                let mut next = Vec::with_capacity(keep.len());
                for (i, &m) in keep_mask.iter().enumerate() {
                    if m {
                        next.push(v[i]);
                    }
                }
                *v = next;
            }
            fact_rids = keep;
            dim_rid_vectors.push(matched_dim);
        }

        // 4. Group-by: reconstruct each group column by gathering through
        // the dim-rid vectors, then hash-aggregate.
        let n = fact_rids.len();
        let mut group_cols: Vec<Vec<u64>> = Vec::with_capacity(r.group_sources.len());
        for &(di, carried_pos) in &r.group_sources {
            let d = &r.dims[di];
            let dt = cdb.table(&d.table)?;
            let col = dt.col(d.carried[carried_pos]);
            group_cols.push(
                dim_rid_vectors[di]
                    .iter()
                    .map(|&rid| col[rid as usize])
                    .collect(),
            );
        }
        // Reconstruct aggregate input columns the same way.
        let mut agg_inputs: Vec<(usize, Vec<u64>)> = Vec::new();
        for a in &r.aggs {
            for c in a.columns() {
                if !agg_inputs.iter().any(|(col, _)| *col == c) {
                    let col = fact.col(c);
                    agg_inputs.push((c, fact_rids.iter().map(|&rid| col[rid as usize]).collect()));
                }
            }
        }
        let col_of = |c: usize, i: usize| -> u64 {
            agg_inputs
                .iter()
                .find(|(col, _)| *col == c)
                .expect("gathered above")
                .1[i]
        };

        let mut groups: ChainedHashMap<Vec<i64>> = ChainedHashMap::new();
        let mut codes = vec![0u64; r.group_sources.len()];
        for i in 0..n {
            for (gi, gc) in group_cols.iter().enumerate() {
                codes[gi] = gc[i];
            }
            let key = pack_group(&r.group_widths, &codes);
            let accs = groups.get_or_insert_with(key, || vec![0i64; r.aggs.len().max(1)]);
            for (ai, a) in r.aggs.iter().enumerate() {
                accs[ai] += a.eval(|c| col_of(c, i));
            }
        }

        decode_result(cdb, spec, &r, groups.iter().map(|(k, v)| (k, v.clone())))
    }

    /// Convenience: build the column store and run (used by benches that
    /// measure end-to-end engine time on a prebuilt store instead).
    pub fn run_on_db(
        db: &qppt_storage::Database,
        spec: &QuerySpec,
        snap: Snapshot,
    ) -> Result<QueryResult, StorageError> {
        let cdb = ColumnDb::new(db, snap);
        Self::run(&cdb, spec)
    }
}

/// Column-at-a-time conjunctive selection: one full scan per predicate,
/// each producing a materialized rid vector; vectors are intersected
/// positionally (both inputs sorted by rid).
fn select_rids<'a>(
    rows: usize,
    preds: &[CompiledPred],
    col: impl Fn(usize) -> &'a [u64],
) -> Vec<u32> {
    if preds.is_empty() {
        return (0..rows as u32).collect();
    }
    let mut result: Option<Vec<u32>> = None;
    for p in preds {
        let rids: Vec<u32> = match p {
            CompiledPred::Range { col: c, lo, hi } => {
                let data = col(*c);
                (0..rows as u32)
                    .filter(|&rid| {
                        let v = data[rid as usize];
                        *lo <= v && v <= *hi
                    })
                    .collect()
            }
            CompiledPred::InSet { col: c, codes } => {
                let data = col(*c);
                (0..rows as u32)
                    .filter(|&rid| codes.binary_search(&data[rid as usize]).is_ok())
                    .collect()
            }
            CompiledPred::Never => Vec::new(),
        };
        result = Some(match result {
            None => rids,
            Some(prev) => intersect_sorted(&prev, &rids),
        });
    }
    result.unwrap_or_default()
}

/// Positional intersection of two sorted rid vectors.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_sorted_basic() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[2, 3, 7, 9]), vec![3, 7]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn select_rids_conjunction() {
        let col_a = vec![1u64, 5, 10, 15, 20];
        let col_b = vec![0u64, 1, 0, 1, 0];
        let preds = vec![
            CompiledPred::Range {
                col: 0,
                lo: 5,
                hi: 15,
            },
            CompiledPred::InSet {
                col: 1,
                codes: vec![1],
            },
        ];
        let rids = select_rids(5, &preds, |c| if c == 0 { &col_a } else { &col_b });
        assert_eq!(rids, vec![1, 3]);
    }

    #[test]
    fn select_rids_no_predicates_selects_all() {
        let rids = select_rids(3, &[], |_| &[]);
        assert_eq!(rids, vec![0, 1, 2]);
    }

    #[test]
    fn select_rids_never_is_empty() {
        let rids = select_rids(3, &[CompiledPred::Never], |_| &[]);
        assert!(rids.is_empty());
    }
}
