//! Comparison engines for the QPPT evaluation (§5).
//!
//! The paper compares DexterDB/QPPT against MonetDB (**column-at-a-time**)
//! and a commercial **vector-at-a-time** DBMS, both run single-threaded.
//! Neither system can be bundled, so this crate implements the two
//! processing models those systems embody, over a column store built from
//! the same row-store database the QPPT engine reads:
//!
//! * [`ColumnAtATimeEngine`] — one operator processes one full column and
//!   materializes its entire intermediate result; attribute access after a
//!   join requires per-column gathers (tuple reconstruction), the cost that
//!   grows with join count and makes Q4.x expensive (§5).
//! * [`VectorAtATimeEngine`] — fused pipeline over 1024-tuple vectors with
//!   selection vectors and pre-built dimension hash tables; no full-column
//!   intermediates.
//!
//! Both engines plan from the same [`qppt_storage::QuerySpec`] as QPPT and
//! the reference oracle, so cross-engine result equality is checked
//! end-to-end in the integration tests.

pub mod colat;
pub mod common;
pub mod store;
pub mod vecat;

pub use colat::ColumnAtATimeEngine;
pub use store::{ColumnDb, ColumnTable};
pub use vecat::{VectorAtATimeEngine, VECTOR_SIZE};
