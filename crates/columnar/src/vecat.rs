//! Vector-at-a-time engine (the "commercial DBMS" analogue of §5,
//! MonetDB/X100 style).
//!
//! The fact table is processed in cache-sized vectors (1024 tuples). Each
//! vector flows through the whole pipeline — residual selection, one hash
//! probe per dimension, aggregation — before the next vector is read, so no
//! full-column intermediate is ever materialized. Selection vectors track
//! the qualifying tuples within the current vector.

use qppt_hash::ChainedHashMap;
use qppt_storage::{QueryResult, QuerySpec, Snapshot, StorageError};

use crate::common::{decode_result, pack_group, resolve};
use crate::store::ColumnDb;

/// Tuples per vector — "small batches that fit into the processor's caches"
/// (§6 related work).
pub const VECTOR_SIZE: usize = 1024;

/// Vector-at-a-time executor.
#[derive(Debug, Clone, Copy)]
pub struct VectorAtATimeEngine;

impl VectorAtATimeEngine {
    /// Runs a star query with a pipelined, vectorized plan.
    pub fn run(cdb: &ColumnDb<'_>, spec: &QuerySpec) -> Result<QueryResult, StorageError> {
        Self::run_with_vector_size(cdb, spec, VECTOR_SIZE)
    }

    /// Same, with an explicit vector size (tests cover boundary sizes).
    pub fn run_with_vector_size(
        cdb: &ColumnDb<'_>,
        spec: &QuerySpec,
        vector_size: usize,
    ) -> Result<QueryResult, StorageError> {
        assert!(vector_size > 0, "vector size must be positive");
        let r = resolve(cdb, spec)?;
        let fact = cdb.table(&r.fact)?;

        // Build-side: dimension hash tables (key → carried codes), exactly
        // once, before the pipeline runs.
        let mut dim_hashes: Vec<ChainedHashMap<Vec<u64>>> = Vec::with_capacity(r.dims.len());
        for d in &r.dims {
            let dt = cdb.table(&d.table)?;
            let keys = dt.col(d.join_col);
            let mut h = ChainedHashMap::new();
            'rows: for (rid, &key) in keys.iter().enumerate().take(dt.rows) {
                for p in &d.preds {
                    if !p.matches(|c| dt.col(c)[rid]) {
                        continue 'rows;
                    }
                }
                let carried: Vec<u64> = d.carried.iter().map(|&c| dt.col(c)[rid]).collect();
                h.insert(key, carried);
            }
            dim_hashes.push(h);
        }

        // Probe-side pipeline state.
        let naggs = r.aggs.len().max(1);
        let mut groups: ChainedHashMap<Vec<i64>> = ChainedHashMap::new();
        let mut sel: Vec<u32> = Vec::with_capacity(vector_size);
        // One carried-code register per (dim, carried col), vector-aligned.
        let mut carried_regs: Vec<Vec<Vec<u64>>> = r
            .dims
            .iter()
            .map(|d| vec![vec![0u64; vector_size]; d.carried.len()])
            .collect();
        let mut codes = vec![0u64; r.group_sources.len()];

        let mut base = 0usize;
        while base < fact.rows {
            let len = vector_size.min(fact.rows - base);
            // Selection vector starts full, then narrows per operator.
            sel.clear();
            sel.extend(0..len as u32);

            // Residual predicates (vectorized filter).
            for p in &r.fact_preds {
                filter_in_place(&mut sel, |i| p.matches(|c| fact.col(c)[base + i as usize]));
            }

            // One hash probe per dimension; matched carried codes land in
            // vector registers.
            for (di, d) in r.dims.iter().enumerate() {
                let fk = fact.col(d.fact_col);
                let h = &dim_hashes[di];
                let regs = &mut carried_regs[di];
                let mut out = Vec::with_capacity(sel.len());
                for &i in &sel {
                    if let Some(carried) = h.get(fk[base + i as usize]) {
                        for (k, &v) in carried.iter().enumerate() {
                            regs[k][i as usize] = v;
                        }
                        out.push(i);
                    }
                }
                sel = out;
                if sel.is_empty() {
                    break;
                }
            }

            // Vectorized aggregation into the hash table.
            for &i in &sel {
                for (gi, &(di, pos)) in r.group_sources.iter().enumerate() {
                    codes[gi] = carried_regs[di][pos][i as usize];
                }
                let key = pack_group(&r.group_widths, &codes);
                let accs = groups.get_or_insert_with(key, || vec![0i64; naggs]);
                for (ai, a) in r.aggs.iter().enumerate() {
                    accs[ai] += a.eval(|c| fact.col(c)[base + i as usize]);
                }
            }
            base += len;
        }

        decode_result(cdb, spec, &r, groups.iter().map(|(k, v)| (k, v.clone())))
    }

    /// Convenience: build the column store and run.
    pub fn run_on_db(
        db: &qppt_storage::Database,
        spec: &QuerySpec,
        snap: Snapshot,
    ) -> Result<QueryResult, StorageError> {
        let cdb = ColumnDb::new(db, snap);
        Self::run(&cdb, spec)
    }
}

/// In-place selection-vector refinement.
#[inline]
fn filter_in_place(sel: &mut Vec<u32>, keep: impl Fn(u32) -> bool) {
    sel.retain(|&i| keep(i));
}

#[cfg(test)]
mod tests {
    use super::*;
    use qppt_storage::CompiledPred;

    #[test]
    fn filter_in_place_refines() {
        let mut sel = vec![0u32, 1, 2, 3, 4];
        filter_in_place(&mut sel, |i| i % 2 == 0);
        assert_eq!(sel, vec![0, 2, 4]);
    }

    #[test]
    fn compiled_preds_behave_on_vectors() {
        let p = CompiledPred::Range {
            col: 0,
            lo: 2,
            hi: 4,
        };
        let col = [1u64, 3, 5];
        let mut sel = vec![0u32, 1, 2];
        filter_in_place(&mut sel, |i| p.matches(|_| col[i as usize]));
        assert_eq!(sel, vec![1]);
    }
}
