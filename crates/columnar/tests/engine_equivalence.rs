//! Both comparison engines must produce exactly the oracle's results for
//! every SSB query — otherwise Fig. 7/8/9 comparisons would be meaningless.

use qppt_columnar::{ColumnAtATimeEngine, ColumnDb, VectorAtATimeEngine};
use qppt_ssb::{queries, run_reference, SsbDb};
use qppt_storage::QueryResult;

fn assert_same(a: &QueryResult, b: &QueryResult, ctx: &str) {
    assert_eq!(
        a.clone().canonicalized(),
        b.clone().canonicalized(),
        "{ctx}: results differ"
    );
}

#[test]
fn column_at_a_time_matches_reference() {
    let ssb = SsbDb::generate(0.02, 42);
    let snap = ssb.db.snapshot();
    let cdb = ColumnDb::new(&ssb.db, snap);
    for q in queries::all_queries() {
        let expect = run_reference(&ssb.db, &q, snap).unwrap();
        let got = ColumnAtATimeEngine::run(&cdb, &q).unwrap();
        assert_same(&got, &expect, &format!("{} column-at-a-time", q.id));
    }
}

#[test]
fn vector_at_a_time_matches_reference() {
    let ssb = SsbDb::generate(0.02, 42);
    let snap = ssb.db.snapshot();
    let cdb = ColumnDb::new(&ssb.db, snap);
    for q in queries::all_queries() {
        let expect = run_reference(&ssb.db, &q, snap).unwrap();
        let got = VectorAtATimeEngine::run(&cdb, &q).unwrap();
        assert_same(&got, &expect, &format!("{} vector-at-a-time", q.id));
    }
}

#[test]
fn vector_size_boundaries_agree() {
    let ssb = SsbDb::generate(0.01, 9);
    let snap = ssb.db.snapshot();
    let cdb = ColumnDb::new(&ssb.db, snap);
    let q = queries::q2_1();
    let reference = VectorAtATimeEngine::run_with_vector_size(&cdb, &q, 1024).unwrap();
    // 1 (degenerate tuple-at-a-time), a non-divisor of the row count, and a
    // vector larger than the table.
    for vs in [1usize, 7, 977, 1 << 22] {
        let got = VectorAtATimeEngine::run_with_vector_size(&cdb, &q, vs).unwrap();
        assert_same(&got, &reference, &format!("vector_size={vs}"));
    }
}

#[test]
fn engines_agree_on_mvcc_snapshots() {
    let mut ssb = SsbDb::generate(0.01, 5);
    let before = ssb.db.snapshot();
    // Delete the first lineorder row; new snapshots must not count it.
    ssb.db.delete_row("lineorder", 0).unwrap();
    let after = ssb.db.snapshot();
    let q = queries::q1_1();

    for snap in [before, after] {
        let cdb = ColumnDb::new(&ssb.db, snap);
        let expect = run_reference(&ssb.db, &q, snap).unwrap();
        let a = ColumnAtATimeEngine::run(&cdb, &q).unwrap();
        let b = VectorAtATimeEngine::run(&cdb, &q).unwrap();
        assert_same(&a, &expect, "column @snap");
        assert_same(&b, &expect, "vector @snap");
    }
}

#[test]
fn ordered_output_follows_spec() {
    let ssb = SsbDb::generate(0.02, 12);
    let snap = ssb.db.snapshot();
    let cdb = ColumnDb::new(&ssb.db, snap);
    for engine_result in [
        ColumnAtATimeEngine::run(&cdb, &queries::q3_1()).unwrap(),
        VectorAtATimeEngine::run(&cdb, &queries::q3_1()).unwrap(),
    ] {
        assert!(!engine_result.rows.is_empty());
        for w in engine_result.rows.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let (ya, yb) = (a.key_values[2].as_int(), b.key_values[2].as_int());
            assert!(ya < yb || (ya == yb && a.agg_values[0] >= b.agg_values[0]));
        }
    }
}
