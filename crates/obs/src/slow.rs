//! The slow-query ring buffer: the last N requests that crossed the
//! `--slow-query-micros` threshold, each with the context an operator
//! actually needs — the request line itself, the cache outcome, and the
//! request's span tree when it was traced. Replaces the old one-line
//! stderr log: instead of tailing a process's stderr, `METRICS SLOW`
//! reads the ring over the wire from any server or router.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::trace::SpanRec;

/// One slow request, captured at response time by the dispatcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// The request verb (`RUN`, `QUERY`).
    pub verb: String,
    /// The raw request line as received.
    pub line: String,
    /// Where the answer came from: a cache-tier label (`cache: result
    /// hit`, `router cache: partial merge`, …), `bypass`, or `routed`.
    pub outcome: String,
    /// Request wall time, microseconds.
    pub micros: u64,
    /// The request's span tree (empty when untraced).
    pub spans: Vec<SpanRec>,
}

impl SlowEntry {
    /// Renders the entry's `METRICS SLOW` body line (the span lines
    /// follow separately, one `# span <wire>` each).
    pub fn wire(&self) -> String {
        format!(
            "slow verb={} micros={} outcome=\"{}\" | {}",
            self.verb, self.micros, self.outcome, self.line
        )
    }
}

/// A bounded, internally synchronized ring of [`SlowEntry`]s — newest
/// last, oldest evicted first. Pushes are rare by construction (only
/// requests past the slow threshold), so a mutex is fine here.
#[derive(Debug)]
pub struct SlowRing {
    cap: usize,
    entries: Mutex<VecDeque<SlowEntry>>,
}

impl SlowRing {
    /// Default ring capacity: enough to hold a burst without unbounded
    /// growth on a pathological workload.
    pub const DEFAULT_CAP: usize = 32;

    /// Creates a ring holding at most `cap` entries (at least one).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends an entry, evicting the oldest once full.
    pub fn push(&self, entry: SlowEntry) {
        let mut q = self.entries.lock().expect("slow ring lock");
        if q.len() == self.cap {
            q.pop_front();
        }
        q.push_back(entry);
    }

    /// The current contents, oldest first.
    pub fn snapshot(&self) -> Vec<SlowEntry> {
        self.entries
            .lock()
            .expect("slow ring lock")
            .iter()
            .cloned()
            .collect()
    }
}

impl Default for SlowRing {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u64) -> SlowEntry {
        SlowEntry {
            verb: "RUN".to_string(),
            line: format!("RUN q{n}"),
            outcome: "cache: cold".to_string(),
            micros: n,
            spans: Vec::new(),
        }
    }

    #[test]
    fn ring_keeps_the_newest_cap_entries_in_order() {
        let ring = SlowRing::new(3);
        for n in 0..5 {
            ring.push(entry(n));
        }
        let got: Vec<u64> = ring.snapshot().iter().map(|e| e.micros).collect();
        assert_eq!(got, [2, 3, 4]);
    }

    #[test]
    fn wire_line_carries_verb_outcome_and_the_raw_request() {
        let e = SlowEntry {
            verb: "QUERY".to_string(),
            line: "QUERY fact=lineorder agg=sum(lo_revenue):r".to_string(),
            outcome: "router cache: result hit".to_string(),
            micros: 1234,
            spans: Vec::new(),
        };
        assert_eq!(
            e.wire(),
            "slow verb=QUERY micros=1234 outcome=\"router cache: result hit\" \
             | QUERY fact=lineorder agg=sum(lo_revenue):r"
        );
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = SlowRing::new(0);
        ring.push(entry(1));
        ring.push(entry(2));
        assert_eq!(ring.snapshot().len(), 1);
    }
}
