//! # qppt-obs — fleet-wide metrics and per-request tracing
//!
//! The QPPT paper's demonstrator (Appendix A) is built around live
//! observability: execution-time share per operator, intermediate index
//! sizes, index types overlaid on the plan. `OpStats` captures those
//! numbers per query; this crate is the system-wide counterpart — the
//! substrate the serving stack (server verbs, cache tiers, worker pool,
//! router scatter/gather) reports into, and the self-tuning items on the
//! ROADMAP read from.
//!
//! Three parts, all dependency-free:
//!
//! * [`metrics`] — sharded lock-free [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket latency [`Histogram`]s with p50/p90/p99 summaries.
//!   Recording is a relaxed atomic add on a per-thread shard; reading is
//!   a sum over shards. No locks anywhere near a hot path.
//! * [`registry`] — a named, labeled family registry rendering the
//!   standard Prometheus text exposition format (`# HELP` / `# TYPE` /
//!   `name{label="v"} value`), served by the `METRICS` wire verb.
//! * [`trace`] — a per-request span tree (plan → σ materialize → exec →
//!   decode/merge) surfaced as `# span` response lines by the `TRACE on`
//!   request option, and stitched across processes by the router (shard
//!   span trees re-parented under the router's scatter span).
//!
//! [`expo`] holds the text-format helpers shared by both directions: a
//! writer used by the registry, a strict parser used by tests and the CI
//! smoke probe, and the fleet merge the router uses to relabel per-shard
//! scrapes and append summed `shard="fleet"` samples.
//!
//! [`Counter`]: metrics::Counter
//! [`Gauge`]: metrics::Gauge
//! [`Histogram`]: metrics::Histogram

pub mod expo;
pub mod metrics;
pub mod registry;
pub mod slow;
pub mod trace;

pub use expo::{merge_exposition, parse_exposition, Exposition, Sample};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary};
pub use registry::Registry;
pub use slow::{SlowEntry, SlowRing};
pub use trace::{validate_span_tree, SpanId, SpanRec, Trace};
