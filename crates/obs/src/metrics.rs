//! Lock-free metric primitives: sharded counters, gauges, and fixed-bucket
//! latency histograms.
//!
//! Recording is a single relaxed atomic RMW on a cache-line-padded shard
//! picked per thread, so concurrent connection handlers and pool workers
//! never contend on one cell. Reads sum the shards — metrics are scraped
//! orders of magnitude less often than they are written, so the asymmetry
//! is the right one. All values are monotone (counters) or small (gauges);
//! relaxed ordering is sufficient because scrapes are advisory snapshots,
//! not synchronization points.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Write shards per metric. 8 covers the pool sizes and connection counts
/// this stack runs at; beyond that threads share shards round-robin.
const SHARDS: usize = 8;

/// One cache line per cell so two shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct Cell(AtomicU64);

fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A monotonically increasing counter (events since process start).
#[derive(Default)]
pub struct Counter {
    cells: [Cell; SHARDS],
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cells[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total (sum over shards).
    pub fn get(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A signed instantaneous value (queue depths, entry counts). Gauges are
/// read-modify-write from many threads, so they stay a single atomic —
/// their update rates (job enqueue/retire) are far below counter rates.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

/// The fixed bucket upper bounds (microseconds) every latency histogram
/// shares: a 1-2.5-5 ladder from 10 µs to 60 s. Fixed bounds keep
/// recording branch-free-ish (one linear scan over 21 bounds), make
/// cross-shard merging trivial (same bounds everywhere), and cover the
/// stack's whole latency range — warm result hits are tens of µs, cold
/// scatter/gathers tens of ms, index preparation seconds.
pub const LATENCY_BUCKETS_MICROS: [u64; 21] = [
    10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
    500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
];

/// Quantile summary of a histogram at one point in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Estimated quantiles (each reported as its bucket's upper bound).
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values (µs).
    pub sum: u64,
}

/// A fixed-bucket latency histogram over [`LATENCY_BUCKETS_MICROS`], plus
/// an overflow (`+Inf`) bucket. Buckets are stored *non*-cumulative and
/// accumulated at render/summary time.
pub struct Histogram {
    /// One slot per finite bound, plus the overflow bucket at the end.
    buckets: Vec<AtomicU64>,
    sum: Counter,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            buckets: (0..=LATENCY_BUCKETS_MICROS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            sum: Counter::new(),
        }
    }

    /// Records one observation of `micros`.
    pub fn record(&self, micros: u64) {
        let i = LATENCY_BUCKETS_MICROS
            .iter()
            .position(|&b| micros <= b)
            .unwrap_or(LATENCY_BUCKETS_MICROS.len());
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.sum.add(micros);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of recorded values (µs).
    pub fn sum(&self) -> u64 {
        self.sum.get()
    }

    /// A snapshot of the per-bucket counts (non-cumulative, overflow
    /// bucket last).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The value at quantile `q` (0..=1), reported as the upper bound of
    /// the bucket the quantile falls in (the overflow bucket reports the
    /// largest finite bound). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return LATENCY_BUCKETS_MICROS
                    .get(i)
                    .copied()
                    .unwrap_or(*LATENCY_BUCKETS_MICROS.last().expect("non-empty bounds"));
            }
        }
        *LATENCY_BUCKETS_MICROS.last().expect("non-empty bounds")
    }

    /// The p50/p90/p99 summary.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.summary();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.p50)
            .field("p99", &s.p99)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        c.add(42);
        assert_eq!(c.get(), 8042);
    }

    #[test]
    fn gauge_tracks_depth() {
        let g = Gauge::new();
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-1);
        assert_eq!(g.get(), -1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram quantile is 0");
        // 90 fast (≤10 µs bucket), 9 medium (≤1 ms), 1 slow (≤1 s).
        for _ in 0..90 {
            h.record(7);
        }
        for _ in 0..9 {
            h.record(800);
        }
        h.record(900_000);
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 90 * 7 + 9 * 800 + 900_000);
        assert_eq!(s.p50, 10);
        assert_eq!(s.p90, 10);
        assert_eq!(s.p99, 1_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        // The overflow bucket reports the largest finite bound.
        assert_eq!(h.quantile(0.5), 60_000_000);
        let counts = h.bucket_counts();
        assert_eq!(counts.len(), LATENCY_BUCKETS_MICROS.len() + 1);
        assert_eq!(*counts.last().unwrap(), 1);
    }

    #[test]
    fn histogram_boundary_values_land_inclusive() {
        let h = Histogram::new();
        h.record(10); // exactly the first bound → first bucket (le semantics)
        assert_eq!(h.bucket_counts()[0], 1);
    }
}
