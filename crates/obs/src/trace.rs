//! Request-scoped span trees.
//!
//! A [`Trace`] is allocated per traced request and records a tree of
//! named, timed spans: the server emits `request → plan → sigma → exec →
//! decode`, the router emits `request → scatter → shard<i>… → merge` with
//! each shard's own tree grafted under the scatter span. Spans carry
//! *durations only* — no wall-clock timestamps — so stitching trees from
//! different machines never needs clock synchronization; the child ≤
//! parent invariant holds by physical containment (a shard's measured
//! service time is a slice of the router's measured exchange time).
//!
//! Wire format (one response comment line per span):
//!
//! ```text
//! # span id=<n> parent=<n|-> name=<ident> micros=<m>
//! ```
//!
//! Parents always precede children in the line stream, so a single
//! forward pass can rebuild (or re-parent) the tree.

/// Span identifier, unique within one trace. The root is always id 0.
pub type SpanId = u32;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    pub id: SpanId,
    /// `None` for the root span.
    pub parent: Option<SpanId>,
    /// Identifier-like name (no whitespace): `request`, `plan`, `sigma`,
    /// `exec`, `decode`, `scatter`, `shard3`, `merge`, …
    pub name: String,
    /// Elapsed wall time of the span, microseconds.
    pub micros: u64,
}

impl SpanRec {
    /// Renders the span's wire body (the part after `# span `).
    pub fn wire(&self) -> String {
        let parent = match self.parent {
            Some(p) => p.to_string(),
            None => "-".to_string(),
        };
        format!(
            "id={} parent={} name={} micros={}",
            self.id, parent, self.name, self.micros
        )
    }

    /// Parses a wire body produced by [`SpanRec::wire`].
    pub fn parse(body: &str) -> Result<SpanRec, String> {
        let mut id = None;
        let mut parent = None;
        let mut name = None;
        let mut micros = None;
        for field in body.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("span field {field:?} missing '='"))?;
            match key {
                "id" => {
                    id = Some(
                        value
                            .parse::<SpanId>()
                            .map_err(|_| format!("bad span id {value:?}"))?,
                    )
                }
                "parent" => {
                    parent = Some(if value == "-" {
                        None
                    } else {
                        Some(
                            value
                                .parse::<SpanId>()
                                .map_err(|_| format!("bad span parent {value:?}"))?,
                        )
                    })
                }
                "name" => name = Some(value.to_string()),
                "micros" => {
                    micros = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("bad span micros {value:?}"))?,
                    )
                }
                other => return Err(format!("unknown span field {other:?}")),
            }
        }
        Ok(SpanRec {
            id: id.ok_or("span missing id")?,
            parent: parent.ok_or("span missing parent")?,
            name: name.ok_or("span missing name")?,
            micros: micros.ok_or("span missing micros")?,
        })
    }
}

/// A span tree under construction for one request.
#[derive(Debug)]
pub struct Trace {
    id: u64,
    spans: Vec<SpanRec>,
    next: SpanId,
}

impl Trace {
    /// Starts a trace: span 0 is the root `request` span; its duration
    /// is stamped by [`Trace::finish`].
    pub fn new(id: u64) -> Self {
        Trace {
            id,
            spans: vec![SpanRec {
                id: 0,
                parent: None,
                name: "request".to_string(),
                micros: 0,
            }],
            next: 1,
        }
    }

    /// The trace id carried in the `trace=<id>` wire option.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The root span's id (always 0).
    pub fn root(&self) -> SpanId {
        0
    }

    /// Appends a finished span under `parent` and returns its id.
    pub fn add(&mut self, parent: SpanId, name: &str, micros: u64) -> SpanId {
        debug_assert!(
            !name.contains(char::is_whitespace),
            "span names are identifiers"
        );
        let id = self.next;
        self.next += 1;
        self.spans.push(SpanRec {
            id,
            parent: Some(parent),
            name: name.to_string(),
            micros,
        });
        id
    }

    /// Grafts a foreign span tree (e.g. one shard's spans, parsed off the
    /// wire) under `parent`: ids are offset into this trace's id space,
    /// and the foreign root is renamed `root_name` (its duration is
    /// kept). The foreign tree must itself be valid.
    pub fn graft(
        &mut self,
        parent: SpanId,
        root_name: &str,
        foreign: &[SpanRec],
    ) -> Result<SpanId, String> {
        validate_span_tree(foreign).map_err(|e| format!("grafted subtree invalid: {e}"))?;
        let offset = self.next;
        let mut grafted_root = None;
        for span in foreign {
            let id = span
                .id
                .checked_add(offset)
                .ok_or("span id overflow in graft")?;
            self.next = self.next.max(id + 1);
            match span.parent {
                None => {
                    self.spans.push(SpanRec {
                        id,
                        parent: Some(parent),
                        name: root_name.to_string(),
                        micros: span.micros,
                    });
                    grafted_root = Some(id);
                }
                Some(p) => self.spans.push(SpanRec {
                    id,
                    parent: Some(p + offset),
                    name: span.name.clone(),
                    micros: span.micros,
                }),
            }
        }
        grafted_root.ok_or_else(|| "grafted subtree has no root".to_string())
    }

    /// Stamps the root span with the request's total wall time and
    /// returns the finished spans. The root is raised to the largest
    /// direct-child duration if µs rounding would otherwise violate the
    /// child ≤ parent invariant.
    pub fn finish(mut self, total_micros: u64) -> Vec<SpanRec> {
        let max_child = self
            .spans
            .iter()
            .filter(|s| s.parent == Some(0))
            .map(|s| s.micros)
            .max()
            .unwrap_or(0);
        self.spans[0].micros = total_micros.max(max_child);
        self.spans
    }

    /// The spans recorded so far (root duration still unstamped).
    pub fn spans(&self) -> &[SpanRec] {
        &self.spans
    }
}

/// Validates a span tree: exactly one root, unique ids, every parent
/// declared before its children, and every child's duration ≤ its
/// parent's. This is the acceptance check for stitched routed traces.
pub fn validate_span_tree(spans: &[SpanRec]) -> Result<(), String> {
    if spans.is_empty() {
        return Err("empty span tree".to_string());
    }
    let mut roots = 0usize;
    let mut seen: Vec<(SpanId, u64)> = Vec::with_capacity(spans.len());
    for span in spans {
        if seen.iter().any(|(id, _)| *id == span.id) {
            return Err(format!("duplicate span id {}", span.id));
        }
        match span.parent {
            None => roots += 1,
            Some(p) => {
                let (_, parent_micros) = seen
                    .iter()
                    .find(|(id, _)| *id == p)
                    .ok_or_else(|| format!("span {} references undeclared parent {p}", span.id))?;
                if span.micros > *parent_micros {
                    return Err(format!(
                        "span {} ({}) micros {} exceeds parent {p} micros {parent_micros}",
                        span.id, span.name, span.micros
                    ));
                }
            }
        }
        seen.push((span.id, span.micros));
    }
    if roots != 1 {
        return Err(format!("expected exactly 1 root span, found {roots}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let span = SpanRec {
            id: 3,
            parent: Some(1),
            name: "exec".to_string(),
            micros: 1234,
        };
        assert_eq!(span.wire(), "id=3 parent=1 name=exec micros=1234");
        assert_eq!(SpanRec::parse(&span.wire()).unwrap(), span);
        let root = SpanRec {
            id: 0,
            parent: None,
            name: "request".to_string(),
            micros: 9,
        };
        assert_eq!(SpanRec::parse(&root.wire()).unwrap(), root);
        assert!(SpanRec::parse("id=1 name=x").is_err()); // missing fields
        assert!(SpanRec::parse("id=x parent=- name=y micros=1").is_err());
    }

    #[test]
    fn build_and_validate() {
        let mut t = Trace::new(42);
        let plan = t.add(t.root(), "plan", 10);
        assert_eq!(plan, 1);
        t.add(t.root(), "exec", 90);
        let spans = t.finish(120);
        assert_eq!(spans[0].micros, 120);
        validate_span_tree(&spans).expect("valid tree");
    }

    #[test]
    fn finish_raises_root_over_children() {
        let mut t = Trace::new(1);
        t.add(0, "exec", 50);
        let spans = t.finish(49); // rounding artifact: child measured longer
        assert_eq!(spans[0].micros, 50);
        validate_span_tree(&spans).expect("clamped tree is valid");
    }

    #[test]
    fn graft_offsets_and_reparents() {
        // Shard-side tree, ids 0..3 in its own space.
        let mut shard = Trace::new(7);
        let plan = shard.add(0, "plan", 5);
        assert_eq!(plan, 1);
        shard.add(1, "lookup", 2);
        let shard_spans = shard.finish(30);

        let mut router = Trace::new(7);
        let scatter = router.add(router.root(), "scatter", 100);
        let grafted = router.graft(scatter, "shard0", &shard_spans).unwrap();
        router.add(router.root(), "merge", 8);
        let spans = router.finish(150);
        validate_span_tree(&spans).expect("stitched tree is valid");

        let shard_root = spans.iter().find(|s| s.id == grafted).unwrap();
        assert_eq!(shard_root.name, "shard0");
        assert_eq!(shard_root.parent, Some(scatter));
        assert_eq!(shard_root.micros, 30);
        // The shard's plan span survived, re-parented under shard0.
        let plan = spans.iter().find(|s| s.name == "plan").unwrap();
        assert_eq!(plan.parent, Some(grafted));
        assert_eq!(plan.micros, 5);
    }

    #[test]
    fn validate_rejects_bad_trees() {
        let root = SpanRec {
            id: 0,
            parent: None,
            name: "request".into(),
            micros: 10,
        };
        assert!(validate_span_tree(&[]).is_err());
        // Child exceeds parent.
        let fat_child = SpanRec {
            id: 1,
            parent: Some(0),
            name: "exec".into(),
            micros: 11,
        };
        assert!(validate_span_tree(&[root.clone(), fat_child]).is_err());
        // Duplicate id.
        assert!(validate_span_tree(&[root.clone(), root.clone()]).is_err());
        // Undeclared parent.
        let orphan = SpanRec {
            id: 2,
            parent: Some(9),
            name: "x".into(),
            micros: 1,
        };
        assert!(validate_span_tree(&[root.clone(), orphan]).is_err());
        // Two roots.
        let root2 = SpanRec {
            id: 1,
            parent: None,
            name: "request".into(),
            micros: 1,
        };
        assert!(validate_span_tree(&[root, root2]).is_err());
    }
}
