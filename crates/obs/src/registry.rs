//! Named metric families with label sets, rendered in Prometheus text
//! exposition format.
//!
//! Registration is get-or-create by `(name, labels)`: the first caller
//! allocates the metric, later callers get the same `Arc`. Callers hold
//! the returned handles and record through them lock-free; the registry
//! mutex is only taken at registration and render time. Families render
//! in registration order so scrapes are stable and diffable.

use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram, LATENCY_BUCKETS_MICROS};

/// A `(key, value)` label pair; values are rendered escaped per the
/// Prometheus text format.
pub type Label = (&'static str, String);

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Series {
    labels: Vec<Label>,
    metric: Metric,
}

struct Family {
    name: &'static str,
    help: &'static str,
    kind: &'static str, // "counter" | "gauge" | "histogram"
    series: Vec<Series>,
}

/// The process-wide metric registry behind the `METRICS` verb.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, Vec::new())
    }

    /// Registers (or retrieves) a counter with a label set.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<Label>,
    ) -> Arc<Counter> {
        let mut families = self.families.lock().expect("registry poisoned");
        let family = Self::family(&mut families, name, help, "counter");
        if let Some(s) = family.series.iter().find(|s| s.labels == labels) {
            match &s.metric {
                Metric::Counter(c) => return c.clone(),
                _ => panic!("metric {name} registered with a different type"),
            }
        }
        let c = Arc::new(Counter::new());
        family.series.push(Series {
            labels,
            metric: Metric::Counter(c.clone()),
        });
        c
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, help, Vec::new())
    }

    /// Registers (or retrieves) a gauge with a label set.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<Label>,
    ) -> Arc<Gauge> {
        let mut families = self.families.lock().expect("registry poisoned");
        let family = Self::family(&mut families, name, help, "gauge");
        if let Some(s) = family.series.iter().find(|s| s.labels == labels) {
            match &s.metric {
                Metric::Gauge(g) => return g.clone(),
                _ => panic!("metric {name} registered with a different type"),
            }
        }
        let g = Arc::new(Gauge::new());
        family.series.push(Series {
            labels,
            metric: Metric::Gauge(g.clone()),
        });
        g
    }

    /// Registers (or retrieves) an unlabeled histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        self.histogram_with(name, help, Vec::new())
    }

    /// Registers (or retrieves) a histogram with a label set.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<Label>,
    ) -> Arc<Histogram> {
        let mut families = self.families.lock().expect("registry poisoned");
        let family = Self::family(&mut families, name, help, "histogram");
        if let Some(s) = family.series.iter().find(|s| s.labels == labels) {
            match &s.metric {
                Metric::Histogram(h) => return h.clone(),
                _ => panic!("metric {name} registered with a different type"),
            }
        }
        let h = Arc::new(Histogram::new());
        family.series.push(Series {
            labels,
            metric: Metric::Histogram(h.clone()),
        });
        h
    }

    fn family<'a>(
        families: &'a mut Vec<Family>,
        name: &'static str,
        help: &'static str,
        kind: &'static str,
    ) -> &'a mut Family {
        if let Some(i) = families.iter().position(|f| f.name == name) {
            assert_eq!(
                families[i].kind, kind,
                "metric {name} registered as both {} and {kind}",
                families[i].kind
            );
            return &mut families[i];
        }
        families.push(Family {
            name,
            help,
            kind,
            series: Vec::new(),
        });
        families.last_mut().expect("just pushed")
    }

    /// Renders the full exposition in Prometheus text format. Families
    /// appear in registration order; histogram buckets are cumulative
    /// with a trailing `+Inf` bucket, `_sum`, and `_count`.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("registry poisoned");
        let mut out = String::new();
        for family in families.iter() {
            out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            out.push_str(&format!("# TYPE {} {}\n", family.name, family.kind));
            for series in &family.series {
                match &series.metric {
                    Metric::Counter(c) => out.push_str(&sample_line(
                        family.name,
                        &series.labels,
                        None,
                        c.get() as i64,
                    )),
                    Metric::Gauge(g) => {
                        out.push_str(&sample_line(family.name, &series.labels, None, g.get()))
                    }
                    Metric::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut cum = 0u64;
                        for (i, c) in counts.iter().enumerate() {
                            cum += c;
                            let le = LATENCY_BUCKETS_MICROS
                                .get(i)
                                .map(|b| b.to_string())
                                .unwrap_or_else(|| "+Inf".to_string());
                            let mut labels = series.labels.clone();
                            labels.push(("le", le));
                            out.push_str(&sample_line(
                                family.name,
                                &labels,
                                Some("_bucket"),
                                cum as i64,
                            ));
                        }
                        out.push_str(&sample_line(
                            family.name,
                            &series.labels,
                            Some("_sum"),
                            h.sum() as i64,
                        ));
                        out.push_str(&sample_line(
                            family.name,
                            &series.labels,
                            Some("_count"),
                            h.count() as i64,
                        ));
                    }
                }
            }
        }
        out
    }
}

fn sample_line(name: &str, labels: &[Label], suffix: Option<&str>, value: i64) -> String {
    let mut line = String::new();
    line.push_str(name);
    if let Some(s) = suffix {
        line.push_str(s);
    }
    if !labels.is_empty() {
        line.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("{k}=\"{}\"", escape_label(v)));
        }
        line.push('}');
    }
    line.push_str(&format!(" {value}\n"));
    line
}

/// Escapes a label value per the Prometheus text format.
pub fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("qppt_test_total", "test counter");
        let b = r.counter("qppt_test_total", "test counter");
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let r = Registry::new();
        let q = r.counter_with("qppt_req_total", "reqs", vec![("verb", "QUERY".into())]);
        let p = r.counter_with("qppt_req_total", "reqs", vec![("verb", "PING".into())]);
        q.add(3);
        p.add(5);
        assert_eq!(q.get(), 3);
        assert_eq!(p.get(), 5);
        let text = r.render();
        assert!(text.contains("qppt_req_total{verb=\"QUERY\"} 3"));
        assert!(text.contains("qppt_req_total{verb=\"PING\"} 5"));
        // One HELP/TYPE pair for the whole family.
        assert_eq!(text.matches("# TYPE qppt_req_total counter").count(), 1);
    }

    #[test]
    fn render_histogram_is_cumulative_with_inf() {
        let r = Registry::new();
        let h = r.histogram("qppt_lat_micros", "latency");
        h.record(7);
        h.record(7);
        h.record(u64::MAX); // overflow bucket
        let text = r.render();
        assert!(text.contains("# TYPE qppt_lat_micros histogram"));
        assert!(text.contains("qppt_lat_micros_bucket{le=\"10\"} 2"));
        assert!(text.contains("qppt_lat_micros_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("qppt_lat_micros_count 3"));
    }

    #[test]
    fn gauge_renders_negative() {
        let r = Registry::new();
        let g = r.gauge("qppt_depth", "queue depth");
        g.set(-2);
        assert!(r.render().contains("qppt_depth -2"));
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
