//! Prometheus text-format helpers: a strict parser/validator (used by
//! tests and the CI smoke probe) and the fleet merge the router applies
//! to per-shard scrapes.
//!
//! The parser accepts the subset of the format this stack emits: integer
//! sample values, `# HELP`/`# TYPE` metadata preceding each family's
//! samples, and `key="value"` labels with the standard escapes. Being
//! strict is the point — the acceptance criterion is "valid exposition",
//! and a lenient parser would hide framing bugs.

use std::collections::BTreeMap;

/// One sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Full sample name, including any `_bucket`/`_sum`/`_count` suffix.
    pub name: String,
    /// Label pairs in appearance order.
    pub labels: Vec<(String, String)>,
    pub value: i64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Declared family metadata (`# HELP` + `# TYPE`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyMeta {
    pub name: String,
    pub help: String,
    pub kind: String,
}

/// A parsed exposition: family metadata plus every sample, in input
/// order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Exposition {
    pub families: Vec<FamilyMeta>,
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// The declared kind of family `name`, if any.
    pub fn kind(&self, name: &str) -> Option<&str> {
        self.families
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.kind.as_str())
    }

    /// The value of the sample with exactly `name` and the given label
    /// pairs (order-insensitive), if present.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && labels.iter().all(|(k, v)| s.label(k) == Some(*v))
            })
            .map(|s| s.value)
    }
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

/// Strips a histogram sample suffix to recover the family name.
fn family_of(sample_name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample_name.strip_suffix(suffix) {
            return base;
        }
    }
    sample_name
}

/// Parses and validates an exposition. Errors name the offending line.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut expo = Exposition::default();
    let mut helps: BTreeMap<String, String> = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: {line:?}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').ok_or_else(|| err("malformed HELP"))?;
            if !valid_metric_name(name) {
                return Err(err("invalid metric name in HELP"));
            }
            helps.insert(name.to_string(), help.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').ok_or_else(|| err("malformed TYPE"))?;
            if !valid_metric_name(name) {
                return Err(err("invalid metric name in TYPE"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(err("unknown metric type"));
            }
            if expo.families.iter().any(|f| f.name == name) {
                return Err(err("duplicate TYPE declaration"));
            }
            expo.families.push(FamilyMeta {
                name: name.to_string(),
                help: helps.get(name).cloned().unwrap_or_default(),
                kind: kind.to_string(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // comment
        }
        let sample = parse_sample(line).map_err(|m| err(&m))?;
        let family = family_of(&sample.name);
        let declared = expo
            .families
            .iter()
            .find(|f| f.name == family || f.name == sample.name);
        match declared {
            None => return Err(err("sample before TYPE declaration")),
            Some(f) => {
                if f.kind == "histogram" {
                    if f.name == sample.name {
                        return Err(err("bare sample for histogram family"));
                    }
                    if sample.name.ends_with("_bucket") && sample.label("le").is_none() {
                        return Err(err("histogram bucket without le label"));
                    }
                } else if f.name != sample.name {
                    // A counter/gauge family whose name happens to be a
                    // prefix of this sample after suffix-stripping; fall
                    // through only if the full name matched.
                    return Err(err("sample before TYPE declaration"));
                }
            }
        }
        expo.samples.push(sample);
    }
    Ok(expo)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_labels, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| "missing value".to_string())?;
    let value: i64 = value
        .parse()
        .map_err(|_| format!("non-integer value {value:?}"))?;
    let (name, labels) = match name_labels.split_once('{') {
        None => (name_labels.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| "unterminated label set".to_string())?;
            (name.to_string(), parse_labels(body)?)
        }
    };
    if !valid_metric_name(&name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err("empty label key".to_string());
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key} value not quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated label value".to_string()),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => value.push(c),
            }
        }
        labels.push((key, value));
        match chars.next() {
            None => return Ok(labels),
            Some(',') => continue,
            Some(c) => return Err(format!("unexpected {c:?} after label value")),
        }
    }
}

/// Merges per-shard expositions into one fleet exposition: every sample
/// gains a `shard="<id>"` label, and for each distinct
/// `(name, other labels)` a summed `shard="fleet"` sample is appended.
/// Summing holds for every kind this stack emits — counters and
/// histogram buckets are event counts, and the fleet reading of a gauge
/// (total queue depth, total cache entries) is the sum too.
pub fn merge_exposition(shards: &[(String, String)]) -> Result<String, String> {
    let mut parsed = Vec::new();
    for (shard, text) in shards {
        let expo = parse_exposition(text).map_err(|e| format!("shard {shard} exposition: {e}"))?;
        parsed.push((shard.clone(), expo));
    }
    // Family order: first appearance across shards.
    let mut families: Vec<FamilyMeta> = Vec::new();
    for (_, expo) in &parsed {
        for f in &expo.families {
            if !families.iter().any(|g| g.name == f.name) {
                families.push(f.clone());
            }
        }
    }
    let mut out = String::new();
    for family in &families {
        out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
        out.push_str(&format!("# TYPE {} {}\n", family.name, family.kind));
        // (sample name, non-shard labels) → summed value, in first-seen order.
        type FleetSample = (String, Vec<(String, String)>, i64);
        let mut fleet: Vec<FleetSample> = Vec::new();
        for (shard, expo) in &parsed {
            for s in &expo.samples {
                if family_of(&s.name) != family.name && s.name != family.name {
                    continue;
                }
                let mut labels = vec![("shard".to_string(), shard.clone())];
                labels.extend(s.labels.iter().cloned());
                out.push_str(&render_sample(&s.name, &labels, s.value));
                match fleet
                    .iter_mut()
                    .find(|(n, l, _)| *n == s.name && *l == s.labels)
                {
                    Some((_, _, v)) => *v += s.value,
                    None => fleet.push((s.name.clone(), s.labels.clone(), s.value)),
                }
            }
        }
        for (name, base_labels, value) in fleet {
            let mut labels = vec![("shard".to_string(), "fleet".to_string())];
            labels.extend(base_labels);
            out.push_str(&render_sample(&name, &labels, value));
        }
    }
    Ok(out)
}

fn render_sample(name: &str, labels: &[(String, String)], value: i64) -> String {
    let mut line = String::from(name);
    if !labels.is_empty() {
        line.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("{k}=\"{}\"", crate::registry::escape_label(v)));
        }
        line.push('}');
    }
    line.push_str(&format!(" {value}\n"));
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHARD_TEXT: &str = "\
# HELP qppt_requests_total Requests served by verb.
# TYPE qppt_requests_total counter
qppt_requests_total{verb=\"QUERY\"} 4
# HELP qppt_pool_queue_depth Jobs queued or running.
# TYPE qppt_pool_queue_depth gauge
qppt_pool_queue_depth 1
";

    #[test]
    fn roundtrip_registry_render() {
        let r = crate::Registry::new();
        r.counter_with(
            "qppt_requests_total",
            "reqs",
            vec![("verb", "QUERY".into())],
        )
        .add(4);
        r.histogram("qppt_request_micros", "latency").record(12);
        let text = r.render();
        let expo = parse_exposition(&text).expect("registry output parses");
        assert_eq!(expo.kind("qppt_requests_total"), Some("counter"));
        assert_eq!(expo.kind("qppt_request_micros"), Some("histogram"));
        assert_eq!(
            expo.value("qppt_requests_total", &[("verb", "QUERY")]),
            Some(4)
        );
        assert_eq!(expo.value("qppt_request_micros_count", &[]), Some(1));
        assert_eq!(
            expo.value("qppt_request_micros_bucket", &[("le", "25")]),
            Some(1)
        );
    }

    #[test]
    fn rejects_sample_without_type() {
        assert!(parse_exposition("qppt_orphan_total 1\n").is_err());
    }

    #[test]
    fn rejects_malformed_labels() {
        let text = "# TYPE a counter\na{x=unquoted} 1\n";
        assert!(parse_exposition(text).is_err());
        let text = "# TYPE a counter\na{x=\"open} 1\n";
        assert!(parse_exposition(text).is_err());
    }

    #[test]
    fn rejects_duplicate_type() {
        let text = "# TYPE a counter\n# TYPE a counter\na 1\n";
        assert!(parse_exposition(text).is_err());
    }

    #[test]
    fn label_escape_roundtrip() {
        let text = format!(
            "# TYPE a counter\na{{k=\"{}\"}} 1\n",
            crate::registry::escape_label("x\"y\\z")
        );
        let expo = parse_exposition(&text).expect("escaped labels parse");
        assert_eq!(expo.samples[0].label("k"), Some("x\"y\\z"));
    }

    #[test]
    fn merge_labels_and_sums() {
        let shard1 = SHARD_TEXT.to_string();
        let shard2 = SHARD_TEXT.replace(" 4\n", " 6\n").replace(" 1\n", " 2\n");
        let merged =
            merge_exposition(&[("0".to_string(), shard1), ("1".to_string(), shard2)]).unwrap();
        let expo = parse_exposition(&merged).expect("merged output parses");
        assert_eq!(
            expo.value("qppt_requests_total", &[("shard", "0"), ("verb", "QUERY")]),
            Some(4)
        );
        assert_eq!(
            expo.value("qppt_requests_total", &[("shard", "1"), ("verb", "QUERY")]),
            Some(6)
        );
        assert_eq!(
            expo.value(
                "qppt_requests_total",
                &[("shard", "fleet"), ("verb", "QUERY")]
            ),
            Some(10)
        );
        assert_eq!(
            expo.value("qppt_pool_queue_depth", &[("shard", "fleet")]),
            Some(3)
        );
        // Metadata appears once per family in the merged output.
        assert_eq!(merged.matches("# TYPE qppt_requests_total").count(), 1);
    }
}
