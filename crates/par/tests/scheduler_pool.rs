//! Direct scheduler coverage: work pulling under contention, empty
//! partitions, deterministic merges across worker orders, and the
//! pool-parallel index build — properties `par_equivalence` only exercises
//! indirectly.

use std::sync::Arc;

use qppt_core::inter::AggTable;
use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_par::{prepare_indexes_pooled, PooledEngine, WorkerPool};
use qppt_ssb::{queries, SsbDb};
use qppt_storage::{ColumnType, Database, Schema, TableBuilder, TreeIndex, Value};

fn prepared_db(sf: f64, seed: u64) -> SsbDb {
    let mut ssb = SsbDb::generate(sf, seed);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &PlanOptions::default()).unwrap();
    }
    ssb
}

#[test]
fn pooled_engine_matches_sequential_for_all_queries() {
    let ssb = prepared_db(0.02, 42);
    let db = Arc::new(ssb.db);
    let sequential = QpptEngine::new(&db);
    let pool = WorkerPool::new(3, 8);
    let pooled = PooledEngine::new(db.clone(), pool.clone());
    for q in queries::all_queries() {
        let expected = sequential.run(&q, &PlanOptions::default()).unwrap();
        for workers in [1usize, 2, 8] {
            let opts = PlanOptions::default().with_parallelism(workers);
            let got = pooled.run(&q, &opts).unwrap();
            assert_eq!(got, expected, "{} @ {workers} workers (pooled)", q.id);
        }
    }
    // However many queries ran, the pool never grew.
    assert_eq!(pool.threads_created(), 3);
    pool.shutdown();
}

#[test]
fn run_prepared_matches_sequential_for_all_queries() {
    // Executing from a shared PreparedQuery — cached plan, cached dim
    // selections, replayed fused stream — must stay byte-identical to the
    // sequential engine at every parallelism, including repeated and
    // concurrent executions off the *same* prepared state.
    use qppt_core::PreparedQuery;
    let ssb = prepared_db(0.02, 42);
    let db = Arc::new(ssb.db);
    let sequential = QpptEngine::new(&db);
    let pool = WorkerPool::new(3, 8);
    let pooled = PooledEngine::new(db.clone(), pool.clone());
    let snap = db.snapshot();
    for q in queries::all_queries() {
        let expected = sequential.run(&q, &PlanOptions::default()).unwrap();
        for workers in [1usize, 2, 8] {
            let opts = PlanOptions::default().with_parallelism(workers);
            let prepared = Arc::new(PreparedQuery::build(&db, &q, &opts, snap).unwrap());
            let (first, _) = pooled.run_prepared(&prepared, 0).unwrap();
            assert_eq!(first, expected, "{} @ {workers} workers (prepared)", q.id);
            // Concurrent executions sharing one prepared state.
            std::thread::scope(|s| {
                for _ in 0..3 {
                    let pooled = &pooled;
                    let prepared = &prepared;
                    let expected = &expected;
                    let id = q.id.clone();
                    s.spawn(move || {
                        let (got, _) = pooled.run_prepared(prepared, 0).unwrap();
                        assert_eq!(got, *expected, "{id} concurrent prepared run");
                    });
                }
            });
        }
    }
    assert_eq!(pool.threads_created(), 3);
    pool.shutdown();
}

#[test]
fn work_pulling_under_contention() {
    // Many concurrent queries × fine-grained morsels (up to 4096 per
    // query) on a tiny pool: every claim races, results must not.
    let ssb = prepared_db(0.01, 7);
    let db = Arc::new(ssb.db);
    let sequential = QpptEngine::new(&db);
    let pool = WorkerPool::new(2, 16);
    let pooled = PooledEngine::new(db.clone(), pool.clone());
    let specs = [queries::q1_1(), queries::q2_3(), queries::q4_1()];
    let expected: Vec<_> = specs
        .iter()
        .map(|q| sequential.run(q, &PlanOptions::default()).unwrap())
        .collect();
    std::thread::scope(|s| {
        for round in 0..4 {
            for (qi, q) in specs.iter().enumerate() {
                let pooled = &pooled;
                let expected = &expected;
                s.spawn(move || {
                    let opts = PlanOptions::default()
                        .with_parallelism(4)
                        .with_morsel_bits(12);
                    let got = pooled
                        .run_at(q, &opts, pooled.db().snapshot(), (round + qi) as i32 % 3)
                        .unwrap()
                        .0;
                    assert_eq!(got, expected[qi], "{} under contention", q.id);
                });
            }
        }
    });
    assert_eq!(pool.threads_created(), 2);
    pool.shutdown();
}

/// A one-dim star over an **empty** fact table: the partitioner falls back
/// to a single full-range morsel and both engines return the empty result.
#[test]
fn empty_fact_partitions_handled() {
    let mut db = Database::new();
    let dim_schema = Schema::of(&[("d_key", ColumnType::Int), ("d_year", ColumnType::Int)]);
    let mut b = TableBuilder::new("dim", dim_schema);
    for k in 1..=5i64 {
        b.push_row(vec![Value::Int(k), Value::Int(1990 + k)])
            .unwrap();
    }
    db.add_table(b.finish());
    let fact_schema = Schema::of(&[("f_dim", ColumnType::Int), ("f_rev", ColumnType::Int)]);
    db.add_table(TableBuilder::new("fact", fact_schema).finish());

    let spec = qppt_storage::QuerySpec {
        id: "empty".into(),
        fact: "fact".into(),
        dims: vec![qppt_storage::DimSpec {
            table: "dim".into(),
            join_col: "d_key".into(),
            fact_col: "f_dim".into(),
            predicates: vec![],
            carried: vec!["d_year".into()],
        }],
        fact_predicates: vec![],
        group_by: vec![qppt_storage::ColRef::new("dim", "d_year")],
        aggregates: vec![qppt_storage::AggExpr::sum(
            qppt_storage::Expr::Col("f_rev".into()),
            "revenue",
        )],
        order_by: vec![],
    };
    let opts = PlanOptions::default().with_parallelism(4);
    prepare_indexes(&mut db, &spec, &opts).unwrap();
    let db = Arc::new(db);
    let expected = QpptEngine::new(&db).run(&spec, &opts).unwrap();
    assert!(expected.rows.is_empty());
    let pool = WorkerPool::new(2, 4);
    let got = PooledEngine::new(db.clone(), pool.clone())
        .run(&spec, &opts)
        .unwrap();
    assert_eq!(got, expected);
    pool.shutdown();
}

/// `AggTable::merge_from` must give the same table for **every** worker
/// completion order, not just the sorted one the scheduler happens to use.
#[test]
fn merge_from_deterministic_across_worker_orders() {
    let partial = |entries: &[(u64, i64, i64)]| {
        let mut t = AggTable::new(TreeIndex::new_kiss(), 2);
        for &(k, a, b) in entries {
            t.merge(k, &[a, b]);
        }
        t
    };
    let collect = |t: &AggTable| {
        let mut v = Vec::new();
        t.for_each_ordered(|k, accs| v.push((k, accs.to_vec())));
        v
    };
    // Overlapping group keys across "workers", including negatives.
    let parts = [
        partial(&[(3, 10, 1), (7, -5, 2), (12, 100, 1)]),
        partial(&[(7, 5, 1), (3, 1, 1)]),
        partial(&[(12, -100, 3), (1, 9, 9)]),
        partial(&[]),
    ];
    let mut reference: Option<Vec<(u64, Vec<i64>)>> = None;
    // All 24 permutations of 4 partials.
    let perms = permutations(&[0, 1, 2, 3]);
    for perm in perms {
        let mut merged = AggTable::new(TreeIndex::new_kiss(), 2);
        for &i in &perm {
            merged.merge_from(&parts[i]);
        }
        let got = collect(&merged);
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "merge order {perm:?} diverged"),
        }
    }
    let r = reference.unwrap();
    assert_eq!(
        r,
        vec![
            (1, vec![9, 9]),
            (3, vec![11, 2]),
            (7, vec![0, 3]),
            (12, vec![0, 4]),
        ]
    );
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

/// The pool-parallel index build must produce bit-identical indexes: same
/// clustered insertion order, same query answers — including composite
/// (multidim) and per-predicate (set-ops) indexes.
#[test]
fn parallel_index_build_bit_identical() {
    let opts_seq = PlanOptions::default()
        .with_set_ops(true)
        .with_multidim(true);
    let opts_par = opts_seq.with_par_index_build(true).with_parallelism(4);

    let mut seq = SsbDb::generate(0.01, 99);
    for q in queries::all_queries() {
        prepare_indexes(&mut seq.db, &q, &opts_seq).unwrap();
    }

    let pool = WorkerPool::new(3, 4);
    let mut par = SsbDb::generate(0.01, 99);
    for q in queries::all_queries() {
        prepare_indexes_pooled(&mut par.db, &q, &opts_par, &pool).unwrap();
    }

    // Same index count, same per-index clustered (key, payload) sequence.
    assert_eq!(seq.db.indexes().len(), par.db.indexes().len());
    for (a, b) in seq.db.indexes().iter().zip(par.db.indexes()) {
        assert_eq!(a.table_idx, b.table_idx);
        assert_eq!(a.key_col, b.key_col);
        assert_eq!(a.carried, b.carried);
        assert_eq!(a.data.tuple_count(), b.data.tuple_count());
        let dump = |bi: &qppt_storage::BaseIndex| {
            let mut v: Vec<(u64, Vec<u64>)> = Vec::new();
            bi.data.for_each_row(|k, row| v.push((k, row.to_vec())));
            v
        };
        assert_eq!(dump(a), dump(b), "index on col {} diverged", a.key_col);
    }

    // And the answers agree on every query, for both engines.
    let seq_engine = QpptEngine::new(&seq.db);
    let par_db = Arc::new(par.db);
    let pooled = PooledEngine::new(par_db.clone(), pool.clone());
    for q in queries::all_queries() {
        let expected = seq_engine.run(&q, &opts_seq).unwrap();
        let got = pooled.run(&q, &opts_par).unwrap();
        assert_eq!(got, expected, "{} on parallel-built indexes", q.id);
    }
    pool.shutdown();
}
