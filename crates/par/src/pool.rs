//! The persistent, shared worker pool: std threads created **once**,
//! serving the morsel queues of many concurrent queries.
//!
//! `ParEngine` (the original, embedded entry point) spawns a scoped thread
//! pool per query — fine for one-shot library use, but under concurrent
//! load N queries × P workers means N×P thread spawns per batch, and spawn
//! cost dominates at small scale factors. [`WorkerPool`] is the serving-path
//! alternative (Leis et al.'s shared morsel-driven pool): a fixed set of
//! workers created at startup, to which queries submit *jobs* — bundles of
//! pull-able tasks (morsels, dimension selections, index-build partitions).
//!
//! Scheduling model:
//!
//! * **Work pulling within a job** — a job exposes an atomic task dispenser
//!   through [`PoolJob::work`]; every worker that *joins* the job pulls
//!   tasks until none remain, so skewed tasks self-balance exactly as in
//!   the scoped scheduler.
//! * **Priority across jobs** — idle workers join the admitted job with the
//!   highest `priority` (ties: submission order, i.e. FIFO). A job never
//!   uses more than [`PoolJob::max_workers`] workers, so one wide query
//!   cannot monopolize the pool against a concurrent narrow one any harder
//!   than its own parallelism setting allows.
//! * **Admission budget** — at most `max_active` jobs are admitted at once;
//!   [`WorkerPool::submit`] blocks until a slot frees. This bounds memory
//!   (per-query partial aggregation tables) and keeps tail latency sane
//!   under overload, which is the server's admission control.
//!
//! Determinism: the pool adds no nondeterminism of its own — jobs own their
//! task dispensers and merge their partials in participant order, and all
//! QPPT partials merge commutatively (accumulator sums), so results are
//! byte-identical no matter which worker ran which task (see
//! `par_equivalence` and the `serve_equivalence` integration test).
//!
//! Shutdown semantics: jobs that have started (≥ 1 worker joined) run to
//! completion; jobs still queued unstarted are aborted, and waiting on them
//! returns [`JobAborted`](JobHandle::wait). [`WorkerPool::shutdown`] then
//! joins every worker thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use qppt_obs::{Counter, Gauge, Registry};

/// Handles the pool records into when observability is enabled. Stored
/// immutably inside the pool at construction, so the hot paths read an
/// `Option` and touch relaxed atomics — no extra locking.
#[derive(Clone)]
pub struct PoolMetrics {
    /// Jobs currently admitted (queued or executing).
    pub queue_depth: Arc<Gauge>,
    /// Jobs admitted into the queue (empty jobs count as started and
    /// completed immediately, so `started == completed` at idle).
    pub jobs_started: Arc<Counter>,
    /// Jobs retired after running all their tasks.
    pub jobs_completed: Arc<Counter>,
    /// Submissions that had to block on the admission budget.
    pub admission_waits: Arc<Counter>,
    /// Jobs aborted by shutdown before any worker joined.
    pub admission_rejections: Arc<Counter>,
}

impl PoolMetrics {
    /// Registers the pool's metric families in `registry` under their
    /// stable exported names.
    pub fn register(registry: &Registry) -> Self {
        Self {
            queue_depth: registry.gauge(
                "qppt_pool_queue_depth",
                "Jobs currently admitted to the worker pool (queued or executing).",
            ),
            jobs_started: registry.counter(
                "qppt_pool_jobs_started_total",
                "Jobs admitted to the worker pool since start.",
            ),
            jobs_completed: registry.counter(
                "qppt_pool_jobs_completed_total",
                "Jobs that ran all their tasks to completion.",
            ),
            admission_waits: registry.counter(
                "qppt_pool_admission_waits_total",
                "Submissions that blocked on the admission budget.",
            ),
            admission_rejections: registry.counter(
                "qppt_pool_admission_rejections_total",
                "Jobs aborted by shutdown before any worker joined.",
            ),
        }
    }
}

/// A bundle of pull-able tasks submitted to the [`WorkerPool`].
///
/// Implementations hold their own atomic task dispenser and per-participant
/// result slots; the pool only decides *which workers* call [`work`] and
/// *when the job is finished* (no unclaimed tasks and no worker still
/// inside `work`).
///
/// [`work`]: PoolJob::work
pub trait PoolJob: Send + Sync {
    /// Upper bound on concurrently useful workers (e.g. the query's
    /// `parallelism`, clamped to its task count). The pool never lets more
    /// than this many workers join.
    fn max_workers(&self) -> usize;

    /// `true` while unclaimed tasks remain. Once this returns `false` it
    /// must stay `false` (jobs may flip it early to abort, e.g. on error).
    fn has_work(&self) -> bool;

    /// Pull tasks from the job's dispenser and run them until none remain.
    /// Called by up to [`max_workers`](PoolJob::max_workers) pool threads;
    /// must not panic (worker threads treat panics as fatal).
    fn work(&self);
}

/// Completion ticket for a submitted job.
#[derive(Debug)]
pub struct JobHandle {
    slot: Arc<DoneSlot>,
}

impl JobHandle {
    /// Blocks until the job finished (all tasks executed and every
    /// participating worker returned). Returns `Err(JobAborted)` if the
    /// pool shut down before the job started.
    pub fn wait(self) -> Result<(), JobAborted> {
        let mut st = self.slot.state.lock().expect("pool lock");
        while *st == SlotState::Pending {
            st = self.slot.cv.wait(st).expect("pool lock");
        }
        match *st {
            SlotState::Done => Ok(()),
            SlotState::Aborted => Err(JobAborted),
            SlotState::Pending => unreachable!(),
        }
    }
}

/// The pool shut down before the job ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobAborted;

impl std::fmt::Display for JobAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker pool shut down before the job ran")
    }
}

impl std::error::Error for JobAborted {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Pending,
    Done,
    Aborted,
}

#[derive(Debug)]
struct DoneSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl DoneSlot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SlotState::Pending),
            cv: Condvar::new(),
        })
    }

    fn finish(&self, state: SlotState) {
        *self.state.lock().expect("pool lock") = state;
        self.cv.notify_all();
    }
}

struct Entry {
    seq: u64,
    priority: i32,
    /// Workers that ever joined (never decremented; capped at
    /// `job.max_workers()`).
    joined: usize,
    /// Workers currently inside `job.work()`.
    active: usize,
    job: Arc<dyn PoolJob>,
    slot: Arc<DoneSlot>,
}

struct PoolState {
    queue: Vec<Entry>,
    next_seq: u64,
    shutdown: bool,
}

struct Inner {
    state: Mutex<PoolState>,
    /// Workers wait here for admitted work.
    work_cv: Condvar,
    /// Submitters wait here for an admission slot.
    admit_cv: Condvar,
    max_active: usize,
    /// Observability handles, `None` when the pool runs uninstrumented.
    metrics: Option<PoolMetrics>,
}

impl Inner {
    /// Records a retired (completed) job.
    fn job_retired(&self) {
        if let Some(m) = &self.metrics {
            m.queue_depth.sub(1);
            m.jobs_completed.inc();
        }
    }
}

/// The shared worker pool (see module docs).
pub struct WorkerPool {
    inner: Arc<Inner>,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
    size: usize,
    threads_created: AtomicUsize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size)
            .field("max_active", &self.inner.max_active)
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool of `size` worker threads (≥ 1) admitting at most
    /// `max_active` concurrent jobs (≥ 1). All threads are spawned here —
    /// queries never spawn again.
    pub fn new(size: usize, max_active: usize) -> Arc<Self> {
        Self::new_with_metrics(size, max_active, None)
    }

    /// [`new`](Self::new) with observability: the pool reports queue depth
    /// and job/admission counters through `metrics`.
    pub fn new_with_metrics(
        size: usize,
        max_active: usize,
        metrics: Option<PoolMetrics>,
    ) -> Arc<Self> {
        let size = size.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(PoolState {
                queue: Vec::new(),
                next_seq: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            admit_cv: Condvar::new(),
            max_active: max_active.max(1),
            metrics,
        });
        let pool = Arc::new(Self {
            inner: inner.clone(),
            threads: Mutex::new(Vec::with_capacity(size)),
            size,
            threads_created: AtomicUsize::new(0),
        });
        let mut threads = pool.threads.lock().expect("pool lock");
        for wid in 0..size {
            let inner = inner.clone();
            pool.threads_created.fetch_add(1, Ordering::Relaxed);
            threads.push(
                thread::Builder::new()
                    .name(format!("qppt-pool-{wid}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn pool worker"),
            );
        }
        drop(threads);
        pool
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Admission budget (max concurrently admitted jobs).
    pub fn max_active(&self) -> usize {
        self.inner.max_active
    }

    /// Total worker threads ever spawned by this pool — exactly
    /// [`size`](Self::size), however many queries ran. The
    /// `serve_equivalence` test asserts on this to pin down the
    /// "one pool, not queries × parallelism threads" contract.
    pub fn threads_created(&self) -> usize {
        self.threads_created.load(Ordering::Relaxed)
    }

    /// Submits a job at `priority` (higher runs first; FIFO within a
    /// priority). Blocks while the admission budget is exhausted. The job
    /// starts executing as soon as a worker is free; call
    /// [`JobHandle::wait`] for completion.
    ///
    /// A job with no work at submission completes immediately; a submission
    /// after [`shutdown`](Self::shutdown) is aborted.
    pub fn submit(&self, job: Arc<dyn PoolJob>, priority: i32) -> JobHandle {
        self.submit_inner(job, priority, false).0
    }

    /// [`submit`](Self::submit), also returning the queue sequence number
    /// when the job was actually enqueued (`None`: aborted or completed
    /// immediately). With `participating`, the entry starts with the
    /// *caller* pre-joined (`joined = active = 1`): pool workers then fill
    /// only the remaining `max_workers - 1` slots, and shutdown treats the
    /// job as started (it runs to completion instead of aborting).
    fn submit_inner(
        &self,
        job: Arc<dyn PoolJob>,
        priority: i32,
        participating: bool,
    ) -> (JobHandle, Option<u64>) {
        let slot = DoneSlot::new();
        let mut enqueued = None;
        let mut st = self.inner.state.lock().expect("pool lock");
        if st.queue.len() >= self.inner.max_active && !st.shutdown {
            if let Some(m) = &self.inner.metrics {
                m.admission_waits.inc();
            }
        }
        while st.queue.len() >= self.inner.max_active && !st.shutdown {
            st = self.inner.admit_cv.wait(st).expect("pool lock");
        }
        if st.shutdown {
            if let Some(m) = &self.inner.metrics {
                m.admission_rejections.inc();
            }
            slot.finish(SlotState::Aborted);
        } else if !job.has_work() {
            if let Some(m) = &self.inner.metrics {
                m.jobs_started.inc();
                m.jobs_completed.inc();
            }
            slot.finish(SlotState::Done);
        } else {
            let seq = st.next_seq;
            st.next_seq += 1;
            let caller = participating as usize;
            st.queue.push(Entry {
                seq,
                priority,
                joined: caller,
                active: caller,
                job,
                slot: slot.clone(),
            });
            if let Some(m) = &self.inner.metrics {
                m.queue_depth.add(1);
                m.jobs_started.inc();
            }
            self.inner.work_cv.notify_all();
            enqueued = Some(seq);
        }
        drop(st);
        (JobHandle { slot }, enqueued)
    }

    /// Convenience: submit and wait.
    pub fn run(&self, job: Arc<dyn PoolJob>, priority: i32) -> Result<(), JobAborted> {
        self.submit(job, priority).wait()
    }

    /// Submits `job` and **participates**: the calling thread runs
    /// [`PoolJob::work`] itself — counting as one of the job's
    /// [`max_workers`](PoolJob::max_workers) participants — while free pool
    /// workers fill the remaining slots; then waits for completion.
    ///
    /// This is the serving-path latency fix for low concurrency: the caller
    /// starts pulling tasks immediately instead of paying a condvar
    /// round-trip to a (possibly busy) pool thread. At one client the query
    /// effectively runs inline on the connection thread; under load the
    /// pool still balances, and results stay byte-identical because the
    /// job's partial merge is participant-ordered and commutative.
    /// Admission is unchanged: the call blocks while the budget is
    /// exhausted; after [`shutdown`](Self::shutdown) the job is aborted
    /// without the caller working.
    pub fn run_participating(
        &self,
        job: Arc<dyn PoolJob>,
        priority: i32,
    ) -> Result<(), JobAborted> {
        let (handle, enqueued) = self.submit_inner(job.clone(), priority, true);
        if let Some(seq) = enqueued {
            job.work();
            self.leave(seq);
        }
        handle.wait()
    }

    /// The caller's counterpart of the worker-loop retirement: drops the
    /// caller's `active` slot for entry `seq` and retires the job if the
    /// caller was the last participant inside `work()`.
    fn leave(&self, seq: u64) {
        let mut st = self.inner.state.lock().expect("pool lock");
        let i = st
            .queue
            .iter()
            .position(|e| e.seq == seq)
            .expect("participating jobs stay queued until their last worker leaves");
        st.queue[i].active -= 1;
        if st.queue[i].active == 0 && !st.queue[i].job.has_work() {
            let e = st.queue.remove(i);
            e.slot.finish(SlotState::Done);
            self.inner.job_retired();
            self.inner.admit_cv.notify_all();
        }
    }

    /// Stops the pool: started jobs run to completion, unstarted queued
    /// jobs are aborted, worker threads are joined. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().expect("pool lock");
            if st.shutdown {
                return;
            }
            st.shutdown = true;
            // Abort jobs nobody has started; in-flight jobs retire normally.
            let metrics = self.inner.metrics.as_ref();
            st.queue.retain(|e| {
                if e.joined == 0 {
                    e.slot.finish(SlotState::Aborted);
                    if let Some(m) = metrics {
                        m.queue_depth.sub(1);
                        m.admission_rejections.inc();
                    }
                    false
                } else {
                    true
                }
            });
            self.inner.work_cv.notify_all();
            self.inner.admit_cv.notify_all();
        }
        let mut threads = self.threads.lock().expect("pool lock");
        for t in threads.drain(..) {
            t.join().expect("pool worker does not panic");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        // Pick the best joinable job: has unclaimed work, worker cap not
        // reached, highest priority, earliest submission.
        let (job, seq) = {
            let mut st = inner.state.lock().expect("pool lock");
            loop {
                let best = st
                    .queue
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.joined < e.job.max_workers() && e.job.has_work())
                    .max_by_key(|(_, e)| (e.priority, std::cmp::Reverse(e.seq)))
                    .map(|(i, _)| i);
                if let Some(i) = best {
                    st.queue[i].joined += 1;
                    st.queue[i].active += 1;
                    break (st.queue[i].job.clone(), st.queue[i].seq);
                }
                if st.shutdown {
                    // Nothing joinable remains; in-flight entries are
                    // retired by their own last active worker.
                    return;
                }
                st = inner.work_cv.wait(st).expect("pool lock");
            }
        };

        // Work-pull until the job's dispenser is empty.
        job.work();

        // Retire the job when its last active worker returns.
        let mut st = inner.state.lock().expect("pool lock");
        let i = st
            .queue
            .iter()
            .position(|e| e.seq == seq)
            .expect("in-flight jobs stay queued");
        st.queue[i].active -= 1;
        if st.queue[i].active == 0 && !st.queue[i].job.has_work() {
            let e = st.queue.remove(i);
            e.slot.finish(SlotState::Done);
            inner.job_retired();
            // A freed admission slot may unblock a submitter; new workers
            // cannot be needed (retiring adds no work).
            inner.admit_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A job whose tasks increment a counter, with optional per-task spin
    /// to force contention.
    struct CountJob {
        next: AtomicUsize,
        tasks: usize,
        done: AtomicUsize,
        max_workers: usize,
        spin: u32,
        participants: AtomicUsize,
    }

    impl CountJob {
        fn new(tasks: usize, max_workers: usize, spin: u32) -> Arc<Self> {
            Arc::new(Self {
                next: AtomicUsize::new(0),
                tasks,
                done: AtomicUsize::new(0),
                max_workers,
                spin,
                participants: AtomicUsize::new(0),
            })
        }
    }

    impl PoolJob for CountJob {
        fn max_workers(&self) -> usize {
            self.max_workers
        }

        fn has_work(&self) -> bool {
            self.next.load(Ordering::Relaxed) < self.tasks
        }

        fn work(&self) {
            self.participants.fetch_add(1, Ordering::Relaxed);
            loop {
                let i = self.next.fetch_add(1, Ordering::Relaxed);
                if i >= self.tasks {
                    break;
                }
                for s in 0..self.spin {
                    std::hint::black_box(s);
                }
                self.done.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(4, 8);
        let job = CountJob::new(1000, 4, 0);
        pool.run(job.clone(), 0).unwrap();
        assert_eq!(job.done.load(Ordering::Relaxed), 1000);
        pool.shutdown();
    }

    #[test]
    fn many_concurrent_jobs_share_the_fixed_pool() {
        let pool = WorkerPool::new(3, 16);
        let jobs: Vec<_> = (0..12).map(|_| CountJob::new(50, 4, 100)).collect();
        let handles: Vec<_> = jobs
            .iter()
            .map(|j| pool.submit(j.clone() as Arc<dyn PoolJob>, 0))
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        for j in &jobs {
            assert_eq!(j.done.load(Ordering::Relaxed), 50);
            // Never more participants than the per-job cap or the pool.
            assert!(j.participants.load(Ordering::Relaxed) <= 3);
        }
        assert_eq!(pool.threads_created(), 3);
        pool.shutdown();
        assert_eq!(pool.threads_created(), 3);
    }

    #[test]
    fn empty_job_completes_immediately() {
        let pool = WorkerPool::new(2, 2);
        let job = CountJob::new(0, 4, 0);
        pool.run(job.clone(), 0).unwrap();
        assert_eq!(job.done.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn max_workers_one_serializes_job() {
        let pool = WorkerPool::new(4, 4);
        let job = CountJob::new(200, 1, 50);
        pool.run(job.clone(), 0).unwrap();
        assert_eq!(job.done.load(Ordering::Relaxed), 200);
        assert_eq!(job.participants.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn admission_budget_blocks_but_preserves_all_work() {
        // Budget of 1: submissions serialize, everything still completes.
        let pool = WorkerPool::new(2, 1);
        let jobs: Vec<_> = (0..6).map(|_| CountJob::new(40, 2, 20)).collect();
        thread::scope(|s| {
            for j in &jobs {
                let pool = &pool;
                s.spawn(move || pool.run(j.clone() as Arc<dyn PoolJob>, 0).unwrap());
            }
        });
        for j in &jobs {
            assert_eq!(j.done.load(Ordering::Relaxed), 40);
        }
    }

    #[test]
    fn submit_after_shutdown_aborts() {
        let pool = WorkerPool::new(1, 1);
        pool.shutdown();
        let job = CountJob::new(10, 1, 0);
        assert_eq!(pool.run(job.clone(), 0), Err(JobAborted));
        assert_eq!(job.done.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn participating_caller_drains_and_completes() {
        let pool = WorkerPool::new(2, 4);
        let job = CountJob::new(500, 3, 10);
        pool.run_participating(job.clone(), 0).unwrap();
        assert_eq!(job.done.load(Ordering::Relaxed), 500);
        // Caller + at most (max_workers - 1) pool workers.
        assert!(job.participants.load(Ordering::Relaxed) <= 3);
        assert!(job.participants.load(Ordering::Relaxed) >= 1);
        pool.shutdown();
    }

    #[test]
    fn participating_with_max_workers_one_runs_caller_only() {
        let pool = WorkerPool::new(4, 4);
        let job = CountJob::new(100, 1, 0);
        pool.run_participating(job.clone(), 0).unwrap();
        assert_eq!(job.done.load(Ordering::Relaxed), 100);
        assert_eq!(job.participants.load(Ordering::Relaxed), 1);
        pool.shutdown();
    }

    #[test]
    fn participating_after_shutdown_aborts_without_working() {
        let pool = WorkerPool::new(1, 1);
        pool.shutdown();
        let job = CountJob::new(10, 2, 0);
        assert_eq!(pool.run_participating(job.clone(), 0), Err(JobAborted));
        assert_eq!(job.done.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn participating_under_contention_completes_every_job() {
        let pool = WorkerPool::new(2, 8);
        let jobs: Vec<_> = (0..8).map(|_| CountJob::new(60, 3, 50)).collect();
        thread::scope(|s| {
            for j in &jobs {
                let pool = &pool;
                s.spawn(move || {
                    pool.run_participating(j.clone() as Arc<dyn PoolJob>, 0)
                        .unwrap()
                });
            }
        });
        for j in &jobs {
            assert_eq!(j.done.load(Ordering::Relaxed), 60);
            assert!(j.participants.load(Ordering::Relaxed) <= 3);
        }
        assert_eq!(pool.threads_created(), 2);
        pool.shutdown();
    }

    #[test]
    fn metrics_track_job_lifecycle() {
        let registry = Registry::new();
        let metrics = PoolMetrics::register(&registry);
        let pool = WorkerPool::new_with_metrics(2, 8, Some(metrics.clone()));
        let job = CountJob::new(100, 2, 0);
        pool.run(job.clone(), 0).unwrap();
        // Empty jobs complete immediately but still count.
        pool.run(CountJob::new(0, 2, 0), 0).unwrap();
        assert_eq!(metrics.jobs_started.get(), 2);
        assert_eq!(metrics.jobs_completed.get(), 2);
        assert_eq!(metrics.queue_depth.get(), 0);
        assert_eq!(metrics.admission_rejections.get(), 0);
        pool.shutdown();
        // A post-shutdown submission is a rejection.
        assert_eq!(pool.run(CountJob::new(5, 1, 0), 0), Err(JobAborted));
        assert_eq!(metrics.admission_rejections.get(), 1);
        assert_eq!(metrics.jobs_started.get(), 2);
        let text = registry.render();
        assert!(text.contains("qppt_pool_jobs_started_total 2"));
        assert!(text.contains("qppt_pool_queue_depth 0"));
    }

    #[test]
    fn metrics_count_admission_waits() {
        let registry = Registry::new();
        let metrics = PoolMetrics::register(&registry);
        // Budget of 1: while the blocker occupies the only admission slot,
        // a second submission must block (and be counted as a wait).
        struct GateJob {
            claimed: AtomicUsize,
            release: AtomicUsize,
        }
        impl PoolJob for GateJob {
            fn max_workers(&self) -> usize {
                1
            }
            fn has_work(&self) -> bool {
                self.claimed.load(Ordering::Relaxed) == 0
            }
            fn work(&self) {
                self.claimed.store(1, Ordering::Relaxed);
                while self.release.load(Ordering::Relaxed) == 0 {
                    thread::yield_now();
                }
            }
        }
        let pool = WorkerPool::new_with_metrics(2, 1, Some(metrics.clone()));
        let blocker = Arc::new(GateJob {
            claimed: AtomicUsize::new(0),
            release: AtomicUsize::new(0),
        });
        let handle = pool.submit(blocker.clone(), 0);
        while blocker.claimed.load(Ordering::Relaxed) == 0 {
            thread::yield_now();
        }
        assert_eq!(metrics.queue_depth.get(), 1);
        let second = CountJob::new(1, 1, 0);
        let waiter = {
            let pool = pool.clone();
            let second = second.clone();
            thread::spawn(move || pool.run(second as Arc<dyn PoolJob>, 0).unwrap())
        };
        // The second submission is blocked on admission until the gate
        // opens; wait until its blocked state is observable, then release.
        while metrics.admission_waits.get() == 0 {
            thread::yield_now();
        }
        blocker.release.store(1, Ordering::Relaxed);
        handle.wait().unwrap();
        waiter.join().unwrap();
        assert_eq!(metrics.admission_waits.get(), 1);
        assert_eq!(metrics.jobs_started.get(), 2);
        assert_eq!(metrics.jobs_completed.get(), 2);
        assert_eq!(metrics.queue_depth.get(), 0);
        pool.shutdown();
    }

    #[test]
    fn priority_orders_pending_jobs() {
        // One worker, saturated by a long job; then a low- and a
        // high-priority job are queued. The high one must run first.
        let pool = WorkerPool::new(1, 8);
        let blocker = CountJob::new(1, 1, 2_000_000);
        let lo = CountJob::new(1, 1, 0);
        let hi = CountJob::new(1, 1, 0);
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));

        struct Tagged {
            inner: Arc<CountJob>,
            tag: &'static str,
            order: Arc<Mutex<Vec<&'static str>>>,
        }
        impl PoolJob for Tagged {
            fn max_workers(&self) -> usize {
                self.inner.max_workers()
            }
            fn has_work(&self) -> bool {
                self.inner.has_work()
            }
            fn work(&self) {
                self.order.lock().unwrap().push(self.tag);
                self.inner.work();
            }
        }

        let hb = pool.submit(blocker.clone(), 0);
        // Give the worker a moment to join the blocker, then queue the rest.
        while blocker.participants.load(Ordering::Relaxed) == 0 {
            thread::yield_now();
        }
        let hl = pool.submit(
            Arc::new(Tagged {
                inner: lo,
                tag: "lo",
                order: order.clone(),
            }),
            -1,
        );
        let hh = pool.submit(
            Arc::new(Tagged {
                inner: hi,
                tag: "hi",
                order: order.clone(),
            }),
            1,
        );
        hb.wait().unwrap();
        hh.wait().unwrap();
        hl.wait().unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["hi", "lo"]);
    }
}
