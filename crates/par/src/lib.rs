//! # qppt-par — morsel-driven parallel execution over prefix-tree partitions
//!
//! QPPT's indexed table-at-a-time model exchanges *clustered prefix-tree
//! indexes* between operators — and a prefix tree is naturally partitionable
//! by key prefix: the subtree under a top-level prefix holds exactly the
//! keys of one contiguous range, independent of every other subtree. This
//! crate exploits that to parallelize the engine in `qppt-core` without
//! changing its operator semantics:
//!
//! 1. **Partition** ([`Partitioner`]) — the key domain of the stage-1 join
//!    attribute is split on its top [`morsel_bits`](qppt_core::PlanOptions)
//!    bits into prefix-aligned [`KeyRange`](qppt_core::KeyRange) *morsels*.
//!    Because both index structures resolve the most significant bits
//!    first, each morsel corresponds to whole subtrees, and the partitioned
//!    cursors (`qppt_trie::sync_scan_range`,
//!    `qppt_kiss::kiss_sync_scan_range`) walk only those subtrees.
//! 2. **Schedule** — workers pull morsel indexes from an atomic dispenser;
//!    each worker runs the *entire* fact pipeline — synchronous index scan
//!    or fused select-join, assisting probes, all later stages — restricted
//!    to its morsel, into a **private** aggregation index. Work-pulling
//!    self-balances skewed subtrees; nothing is shared mutably.
//! 3. **Merge** — per-worker aggregation tables are folded with
//!    [`AggTable::merge_from`](qppt_core::inter::AggTable::merge_from) and
//!    per-worker [`OpStats`](qppt_core::OpStats) with
//!    [`ExecStats::merge_partition`](qppt_core::ExecStats::merge_partition),
//!    in participant order. Accumulators are sums, so the merged index —
//!    and therefore the decoded, ordered
//!    [`QueryResult`](qppt_storage::QueryResult) — is byte-identical to a
//!    sequential run, whatever the thread timing.
//!
//! Two engines drive that machinery:
//!
//! * [`ParEngine`] — the embedded, one-shot path: a **scoped** thread pool
//!   spawned per query. Zero setup, but per-query spawn cost — the
//!   spawn-per-query baseline of `BENCH_SERVER_THROUGHPUT.json`.
//! * [`PooledEngine`] — the serving path: queries submit their morsel
//!   queues as jobs to a persistent shared [`WorkerPool`] (std threads
//!   created once, priority + admission budget), so N concurrent queries
//!   share one fixed set of threads instead of spawning N×P. This is what
//!   `qppt-server` runs on.
//!
//! Dimension selections (σ) are materialized **once**, before the fact
//! pipeline starts, optionally in parallel (one task per dimension,
//! [`par_selections`](qppt_core::PlanOptions::par_selections)), and shared
//! read-only by all workers. The per-class switches
//! [`par_scans`](qppt_core::PlanOptions::par_scans) /
//! [`par_joins`](qppt_core::PlanOptions::par_joins) gate whether a
//! sync-scan-led or select-join-led pipeline is partitioned at all. Base
//! and composite index *builds* can also ride the shared pool — see
//! [`prepare_indexes_pooled`] ([`par_index_build`](qppt_core::PlanOptions::par_index_build)).
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
//! use qppt_par::{ParEngine, PooledEngine, RunParallel, WorkerPool};
//! use qppt_ssb::{queries, SsbDb};
//!
//! let mut ssb = SsbDb::generate(0.01, 42);
//! let opts = PlanOptions::default().with_parallelism(4).with_morsel_bits(5);
//! let spec = queries::q2_3();
//! prepare_indexes(&mut ssb.db, &spec, &opts).unwrap();
//!
//! // The one-shot engine (scoped threads per query) …
//! let par = ParEngine::new(&ssb.db);
//! let parallel = par.run(&spec, &opts).unwrap();
//!
//! // … the extension method on the sequential engine …
//! let engine = QpptEngine::new(&ssb.db);
//! let sequential = engine.run(&spec, &opts).unwrap();
//! assert_eq!(engine.run_parallel(&spec, &opts).unwrap(), parallel);
//!
//! // … and the serving path: a persistent pool shared across queries.
//! let db = Arc::new(ssb.db);
//! let pool = WorkerPool::new(4, 8);
//! let pooled = PooledEngine::new(db, pool.clone());
//! assert_eq!(pooled.run(&spec, &opts).unwrap(), sequential);
//! pool.shutdown(); // started queries finish; threads join
//! ```

mod morsel;
mod pool;
mod pooled;
mod prepare;
mod scheduler;

pub use morsel::Partitioner;
pub use pool::{JobAborted, JobHandle, PoolJob, PoolMetrics, WorkerPool};
pub use pooled::PooledEngine;
pub use prepare::prepare_indexes_pooled;

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use qppt_core::exec::{
    decode_result, materialize_dim_selection, materialize_fused_selection, new_agg_table,
    run_pipeline, DimSelection,
};
use qppt_core::inter::AggTable;
use qppt_core::plan::MainInput;
use qppt_core::{build_plan, ExecStats, Plan, PlanOptions, QpptEngine, QpptError};
use qppt_storage::{Database, QueryResult, QuerySpec, Snapshot};

/// Worker count for the fact pipeline: `opts.parallelism` if the stage-1
/// operator's class is switched on, else 1 (sequential).
pub(crate) fn pipeline_workers(plan: &Plan) -> usize {
    let class_on = match plan.stages[0].main {
        MainInput::SyncScan { .. } => plan.opts.par_scans,
        MainInput::SelectProbe { .. } => plan.opts.par_joins,
    };
    if class_on {
        plan.opts.parallelism.max(1)
    } else {
        1
    }
}

/// Morsels over the populated key interval of the stage-1 fact index.
pub(crate) fn partition_morsels(
    db: &Database,
    plan: &Plan,
) -> Result<Vec<qppt_core::KeyRange>, QpptError> {
    let fact_base = db.find_index(&plan.spec.fact, &plan.dims[0].fact_col_name)?;
    let (Some(min), Some(max)) = (
        fact_base.data.index.min_key(),
        fact_base.data.index.max_key(),
    ) else {
        // Empty fact index: one full-range morsel keeps the pipeline
        // shape (and its statistics records) intact.
        return Ok(vec![qppt_core::KeyRange::full()]);
    };
    Ok(Partitioner::new(min, max, plan.opts.morsel_bits)
        .morsels()
        .to_vec())
}

/// Post-merge statistics fixup shared by both parallel engines.
///
/// Merged `out_keys`/`out_tuples`/`memory_bytes` are per-partition sums.
/// For the final join-group operator the same group key can appear in many
/// partitions, so the sum overcounts — overwrite it with the merged index's
/// true numbers. The last stage is always the aggregating one by plan
/// construction, and its record is always the last operator pushed.
/// Intermediate-stage records keep the summed semantics (their `out_keys`
/// is an upper bound on distinct keys when a stage-2+ join key spans
/// partitions); see `OpStats::absorb_partition`.
pub(crate) fn fix_merged_agg_stats(plan: &Plan, agg: &AggTable, stats: &mut ExecStats) {
    debug_assert!(matches!(
        plan.stages.last().map(|s| &s.output),
        Some(qppt_core::plan::StageOutput::Agg)
    ));
    if let Some(last) = stats.ops.last_mut() {
        last.out_keys = agg.group_count();
        last.out_tuples = agg.group_count();
        last.memory_bytes = agg.memory_bytes();
    }
}

/// Merges per-shard partial aggregates into one, in participant (shard)
/// order — the distributed counterpart of the per-worker
/// [`AggTable::merge_from`] fold the morsel scheduler performs.
///
/// The merge literally reuses [`AggTable::merge`]: every shard row is an
/// upsert of commutative sums keyed on the packed `u64` group key, so the
/// merged index — iterated in ascending key order — reproduces exactly the
/// aggregation index a single node would have built over the union of the
/// shards' fact rows. Group values ride along from the first shard that
/// reports a group (they are identical on every shard: group-key widths and
/// dictionary codes derive only from the replicated dimension tables).
///
/// Returns `None` when `parts` is empty. Callers feed shards in index
/// order; mismatched output schemas (different queries) are a caller bug
/// and yield an `Err`.
pub fn merge_partial_aggregates(
    parts: Vec<qppt_core::PartialAggregate>,
) -> Result<Option<qppt_core::PartialAggregate>, QpptError> {
    use std::collections::BTreeMap;

    let mut iter = parts.into_iter();
    let Some(first) = iter.next() else {
        return Ok(None);
    };
    let naggs = first.agg_cols.len().max(1);
    let max_key = |p: &qppt_core::PartialAggregate| p.rows.last().map_or(0, |r| r.key);
    let mut domain = max_key(&first);
    let rest: Vec<qppt_core::PartialAggregate> = iter.collect();
    for p in &rest {
        if p.group_cols != first.group_cols || p.agg_cols != first.agg_cols {
            return Err(QpptError::Internal(format!(
                "partial aggregates disagree on output schema: {:?}/{:?} vs {:?}/{:?}",
                first.group_cols, first.agg_cols, p.group_cols, p.agg_cols
            )));
        }
        domain = domain.max(max_key(p));
    }

    let group_cols = first.group_cols.clone();
    let agg_cols = first.agg_cols.clone();
    let mut agg = AggTable::new(qppt_storage::TreeIndex::for_domain(domain, true), naggs);
    let mut group_values: BTreeMap<u64, Vec<qppt_storage::Value>> = BTreeMap::new();
    for part in std::iter::once(first).chain(rest) {
        for row in part.rows {
            if row.accs.len() != naggs {
                return Err(QpptError::Internal(format!(
                    "partial row has {} accumulators, expected {naggs}",
                    row.accs.len()
                )));
            }
            agg.merge(row.key, &row.accs);
            group_values.entry(row.key).or_insert(row.group_values);
        }
    }

    let mut rows = Vec::with_capacity(agg.group_count());
    agg.for_each_ordered(|key, accs| {
        let values = group_values
            .get(&key)
            .cloned()
            .expect("every merged key was inserted with group values");
        rows.push(qppt_core::PartialRow {
            key,
            group_values: values,
            accs: accs.to_vec(),
        });
    });
    Ok(Some(qppt_core::PartialAggregate {
        group_cols,
        agg_cols,
        rows,
    }))
}

/// The parallel QPPT engine: same contract as
/// [`QpptEngine`](qppt_core::QpptEngine), executed morsel-parallel according
/// to the [`PlanOptions`] parallel knobs on a **scoped, per-query** thread
/// pool. For a shared pool serving concurrent queries, see
/// [`PooledEngine`].
#[derive(Debug, Clone, Copy)]
pub struct ParEngine<'a> {
    db: &'a Database,
}

impl<'a> ParEngine<'a> {
    /// Creates a parallel engine over `db`.
    pub fn new(db: &'a Database) -> Self {
        Self { db }
    }

    /// Runs a query at the latest snapshot with `opts.parallelism` workers.
    pub fn run(&self, spec: &QuerySpec, opts: &PlanOptions) -> Result<QueryResult, QpptError> {
        Ok(self.run_with_stats(spec, opts)?.0)
    }

    /// Runs a query, returning merged per-operator statistics too. Operator
    /// `micros` are summed across workers (CPU time, not wall time);
    /// `total_micros` remains end-to-end wall time.
    pub fn run_with_stats(
        &self,
        spec: &QuerySpec,
        opts: &PlanOptions,
    ) -> Result<(QueryResult, ExecStats), QpptError> {
        self.run_at(spec, opts, self.db.snapshot())
    }

    /// Runs a query at an explicit snapshot (MVCC reads).
    pub fn run_at(
        &self,
        spec: &QuerySpec,
        opts: &PlanOptions,
        snap: Snapshot,
    ) -> Result<(QueryResult, ExecStats), QpptError> {
        let plan = build_plan(self.db, spec, opts)?;
        let started = Instant::now();
        let mut stats = ExecStats::default();
        // Fresh plan: its options are the request's, so deriving the batch
        // mode from the plan is exact.
        let batch = plan.opts.batch_mode();

        // 1. Materialize dimension selections once, shared by all workers.
        let dim_tables = self.materialize_dims(snap, &plan, &mut stats)?;

        // 2. Fact pipeline: morsel-parallel when the stage-1 operator's
        //    class is enabled, sequential otherwise.
        let (agg, pipeline_stats) = if pipeline_workers(&plan) > 1 {
            // The fused select-join stream (if any) is materialized once
            // and shared, so morsel workers do not re-evaluate the
            // selection predicates per morsel.
            let fused = materialize_fused_selection(self.db, snap, &plan)?;
            let morsels = partition_morsels(self.db, &plan)?;
            let workers = pipeline_workers(&plan).min(morsels.len()).max(1);
            scheduler::run_morsels(
                self.db,
                snap,
                &plan,
                &dim_tables,
                fused.as_ref(),
                &morsels,
                workers,
                batch,
            )?
        } else {
            let mut agg = new_agg_table(&plan);
            let ops = run_pipeline(
                self.db,
                snap,
                &plan,
                &dim_tables,
                None,
                None,
                batch,
                &mut agg,
            )?;
            (
                agg,
                ExecStats {
                    ops,
                    total_micros: 0,
                },
            )
        };
        stats.ops.extend(pipeline_stats.ops);
        fix_merged_agg_stats(&plan, &agg, &mut stats);

        // 3. Decode the merged aggregation index.
        let result = decode_result(self.db, &plan, &agg);
        stats.total_micros = started.elapsed().as_micros();
        Ok((result, stats))
    }

    /// Materializes every `Materialized` dimension selection — in parallel
    /// (one task per dimension) when `par_selections` is on and more than
    /// one worker is configured. Statistics are appended in dimension
    /// order either way.
    fn materialize_dims(
        &self,
        snap: Snapshot,
        plan: &Plan,
        stats: &mut ExecStats,
    ) -> Result<Vec<Option<Arc<DimSelection>>>, QpptError> {
        let n = plan.dims.len();
        let materialized: Vec<usize> = (0..n)
            .filter(|&di| plan.dims[di].handle == qppt_core::plan::DimHandleKind::Materialized)
            .collect();
        let results: Vec<Option<Arc<DimSelection>>> =
            if plan.opts.par_selections && plan.opts.parallelism > 1 && materialized.len() > 1 {
                // One task per *materialized* dimension (Base/Fused handles
                // have no materialization step, so spawning for them would
                // be pure overhead), in chunks of at most `parallelism`
                // concurrent tasks so the configured worker budget also
                // bounds this phase.
                let db = self.db;
                let mut results: Vec<Option<Arc<DimSelection>>> = (0..n).map(|_| None).collect();
                for chunk in materialized.chunks(plan.opts.parallelism) {
                    let done = thread::scope(|scope| {
                        let handles: Vec<_> = chunk
                            .iter()
                            .map(|&di| {
                                scope.spawn(move || materialize_dim_selection(db, snap, plan, di))
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("selection tasks do not panic"))
                            .collect::<Result<Vec<_>, QpptError>>()
                    })?;
                    for (&di, r) in chunk.iter().zip(done) {
                        results[di] = r;
                    }
                }
                results
            } else {
                (0..n)
                    .map(|di| materialize_dim_selection(self.db, snap, plan, di))
                    .collect::<Result<Vec<_>, QpptError>>()?
            };
        let mut dim_tables = Vec::with_capacity(n);
        for r in results {
            match r {
                Some(sel) => {
                    stats.push(sel.op.clone());
                    dim_tables.push(Some(sel));
                }
                None => dim_tables.push(None),
            }
        }
        Ok(dim_tables)
    }
}

/// Extension trait adding parallel entry points to the sequential
/// [`QpptEngine`], so call sites choose per query:
/// `engine.run(..)` vs `engine.run_parallel(..)`.
pub trait RunParallel {
    /// Runs the query with `opts.parallelism` morsel workers; results are
    /// byte-identical to the sequential [`QpptEngine::run`].
    fn run_parallel(&self, spec: &QuerySpec, opts: &PlanOptions) -> Result<QueryResult, QpptError>;

    /// Like [`run_parallel`](Self::run_parallel), also returning merged
    /// per-operator statistics.
    fn run_parallel_with_stats(
        &self,
        spec: &QuerySpec,
        opts: &PlanOptions,
    ) -> Result<(QueryResult, ExecStats), QpptError>;
}

impl RunParallel for QpptEngine<'_> {
    fn run_parallel(&self, spec: &QuerySpec, opts: &PlanOptions) -> Result<QueryResult, QpptError> {
        ParEngine::new(self.db()).run(spec, opts)
    }

    fn run_parallel_with_stats(
        &self,
        spec: &QuerySpec,
        opts: &PlanOptions,
    ) -> Result<(QueryResult, ExecStats), QpptError> {
        ParEngine::new(self.db()).run_with_stats(spec, opts)
    }
}
