//! [`PooledEngine`]: the serving-path engine — same plans, same
//! byte-identical results as [`QpptEngine`](qppt_core::QpptEngine) and
//! [`ParEngine`](crate::ParEngine), executed on a persistent shared
//! [`WorkerPool`] instead of a scoped per-query pool.
//!
//! N concurrent queries submit their morsel queues (and, with
//! `par_selections`, their dimension-selection tasks) as [`PoolJob`]s; the
//! pool's fixed workers interleave them under the priority/admission policy.
//! Total threads are bounded by the pool size, not queries × parallelism —
//! the property `qppt-server` is built on.
//!
//! Two latency paths matter for serving:
//!
//! * **Inline fast path** — `parallelism = 1` queries never touch the pool:
//!   they run the whole sequential executor on the calling (connection)
//!   thread, so a single-client workload pays zero cross-thread
//!   round-trips.
//! * **Caller participation** — parallel queries submit their jobs with
//!   [`WorkerPool::run_participating`]: the calling thread counts as one
//!   of the job's workers and starts pulling tasks immediately; free pool
//!   workers fill the remaining slots. At low concurrency the query runs
//!   mostly inline, under load the pool balances as before.
//!
//! The engine can also execute from a cached
//! [`PreparedQuery`](qppt_core::PreparedQuery)
//! ([`run_prepared`](PooledEngine::run_prepared)): planning, dimension
//! materialization, and the fused-selection scan are all skipped, and the
//! prepared `InterTable`s are shared read-only across every morsel worker
//! of every execution — the `qppt-cache` selection-tier hot path.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use qppt_core::exec::{
    decode_result, execute_agg, materialize_dim_selection, materialize_fused_selection,
    new_agg_table, run_pipeline, DimSelection, FusedSelection,
};
use qppt_core::inter::AggTable;
use qppt_core::{
    build_plan, BatchMode, ExecStats, KeyRange, Plan, PlanOptions, PreparedQuery, QpptError,
};
use qppt_storage::{Database, QueryResult, QuerySpec, Snapshot};

use crate::pool::{PoolJob, WorkerPool};
use crate::scheduler::{drain_morsels, merge_partials};
use crate::{partition_morsels, pipeline_workers};

/// The shared-pool QPPT engine (see module docs). Cheap to clone; clones
/// share the database and the pool.
#[derive(Debug, Clone)]
pub struct PooledEngine {
    db: Arc<Database>,
    pool: Arc<WorkerPool>,
}

impl PooledEngine {
    /// Creates an engine over a shared database and worker pool.
    pub fn new(db: Arc<Database>, pool: Arc<WorkerPool>) -> Self {
        Self { db, pool }
    }

    /// The shared database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The shared worker pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Runs a query at the latest snapshot (priority 0).
    pub fn run(&self, spec: &QuerySpec, opts: &PlanOptions) -> Result<QueryResult, QpptError> {
        Ok(self.run_with_stats(spec, opts)?.0)
    }

    /// Runs a query, returning merged per-operator statistics (priority 0).
    pub fn run_with_stats(
        &self,
        spec: &QuerySpec,
        opts: &PlanOptions,
    ) -> Result<(QueryResult, ExecStats), QpptError> {
        self.run_at(spec, opts, self.db.snapshot(), 0)
    }

    /// Runs a query at an explicit snapshot with an explicit pool priority
    /// (higher preempts lower for idle workers; in-flight morsels are never
    /// preempted).
    pub fn run_at(
        &self,
        spec: &QuerySpec,
        opts: &PlanOptions,
        snap: Snapshot,
        priority: i32,
    ) -> Result<(QueryResult, ExecStats), QpptError> {
        let started = Instant::now();
        let (plan, agg, mut stats) = self.run_at_agg(spec, opts, snap, priority)?;
        // Decode the merged aggregation index.
        let result = decode_result(&self.db, &plan, &agg);
        stats.total_micros = started.elapsed().as_micros();
        Ok((result, stats))
    }

    /// Like [`run_at`](Self::run_at), but stops at the merged aggregation
    /// index — the shard-side entry point when a router performs the final
    /// decode after the cross-shard merge. Also returns the plan, which the
    /// partial-aggregate encoding needs.
    pub fn run_at_agg(
        &self,
        spec: &QuerySpec,
        opts: &PlanOptions,
        snap: Snapshot,
        priority: i32,
    ) -> Result<(Arc<Plan>, AggTable, ExecStats), QpptError> {
        let plan = build_plan(&self.db, spec, opts)?;
        // Fresh plan: its options are the request's, so deriving the batch
        // mode from the plan is exact.
        let batch = plan.opts.batch_mode();

        // Inline fast path: a sequential query runs the whole executor on
        // the calling thread — no jobs, no handles, no pool wakeups. This
        // is byte-identical by construction (it *is* the sequential
        // engine's code path).
        if plan.opts.parallelism == 1 {
            let plan = Arc::new(plan);
            let (agg, stats) = execute_agg(&self.db, snap, &plan)?;
            return Ok((plan, agg, stats));
        }

        let plan = Arc::new(plan);
        let started = Instant::now();
        let mut stats = ExecStats::default();

        // 1. Dimension selections — as a participating pool job when
        //    parallel selections are on and there is more than one to
        //    build.
        let dim_tables = Arc::new(self.materialize_dims(snap, &plan, priority, &mut stats)?);

        // 2. Fact pipeline. The fused stage-1 stream is materialized once
        //    (shared by all morsel workers) only when the pipeline is
        //    actually partitioned.
        let fused = if self.pipeline_participants(&plan) > 1 {
            Arc::new(materialize_fused_selection(&self.db, snap, &plan)?)
        } else {
            Arc::new(None)
        };
        let (agg, pipeline_stats) =
            self.execute_pipeline(snap, &plan, &dim_tables, &fused, priority, batch)?;
        stats.ops.extend(pipeline_stats.ops);
        crate::fix_merged_agg_stats(&plan, &agg, &mut stats);
        stats.total_micros = started.elapsed().as_micros();
        Ok((plan, agg, stats))
    }

    /// Executes a query from prepared, shared state (the `qppt-cache`
    /// selection-tier hit): no planning, no dimension materialization, no
    /// selection-predicate evaluation — the pipeline runs straight off the
    /// prepared `InterTable`s and fused stream, which are shared (`Arc`)
    /// across concurrent executions.
    ///
    /// Coherence contract (see [`PreparedQuery`]): only call this while
    /// the versions of every table the plan reads are unchanged since the
    /// prepared state was built; execution then happens at the *prepared*
    /// snapshot, which sees the same rows as any current one.
    pub fn run_prepared(
        &self,
        prepared: &PreparedQuery,
        priority: i32,
    ) -> Result<(QueryResult, ExecStats), QpptError> {
        let started = Instant::now();
        let batch = prepared.plan.opts.batch_mode();
        let (agg, mut stats) = self.run_prepared_agg(prepared, priority, batch)?;
        let result = decode_result(&self.db, &prepared.plan, &agg);
        stats.total_micros = started.elapsed().as_micros();
        Ok((result, stats))
    }

    /// Like [`run_prepared`](Self::run_prepared), but stops at the merged
    /// aggregation index — the cached shard-side entry point for
    /// partial-aggregate serving. `batch` is the *request's* execution
    /// mode: batch knobs are excluded from the cache fingerprints, so a
    /// cached prepared query's plan may carry stale knobs — scalar and
    /// batched requests share the same entry and produce byte-identical
    /// aggregates.
    pub fn run_prepared_agg(
        &self,
        prepared: &PreparedQuery,
        priority: i32,
        batch: BatchMode,
    ) -> Result<(AggTable, ExecStats), QpptError> {
        // Inline fast path, as in `run_at`.
        if prepared.plan.opts.parallelism == 1 {
            return prepared.execute_sequential_agg(&self.db, batch);
        }

        let started = Instant::now();
        let mut stats = ExecStats {
            ops: prepared.dim_stats(),
            total_micros: 0,
        };
        let (agg, pipeline_stats) = self.execute_pipeline(
            prepared.snap,
            &prepared.plan,
            &prepared.dims,
            &prepared.fused,
            priority,
            batch,
        )?;
        stats.ops.extend(pipeline_stats.ops);
        crate::fix_merged_agg_stats(&prepared.plan, &agg, &mut stats);
        stats.total_micros = started.elapsed().as_micros();
        Ok((agg, stats))
    }

    /// Workers the fact pipeline may use, caller included (the calling
    /// thread participates in its own jobs, so the bound is pool + 1).
    fn pipeline_participants(&self, plan: &Plan) -> usize {
        pipeline_workers(plan).min(self.pool.size() + 1)
    }

    /// Runs the fact pipeline — as a participating morsel job on the
    /// shared pool when the stage-1 operator class allows more than one
    /// worker, inline on the calling thread otherwise.
    fn execute_pipeline(
        &self,
        snap: Snapshot,
        plan: &Arc<Plan>,
        dim_tables: &Arc<Vec<Option<Arc<DimSelection>>>>,
        fused: &Arc<Option<FusedSelection>>,
        priority: i32,
        batch: BatchMode,
    ) -> Result<(AggTable, ExecStats), QpptError> {
        let workers = self.pipeline_participants(plan);
        if workers > 1 {
            let morsels = partition_morsels(&self.db, plan)?;
            let max_workers = workers.min(morsels.len()).max(1);
            let job = Arc::new(MorselJob {
                db: self.db.clone(),
                snap,
                plan: plan.clone(),
                dim_tables: dim_tables.clone(),
                fused: fused.clone(),
                morsels,
                next: AtomicUsize::new(0),
                participants: AtomicUsize::new(0),
                partials: Mutex::new(Vec::new()),
                error: Mutex::new(None),
                aborted: AtomicBool::new(false),
                max_workers,
                batch,
            });
            self.pool
                .run_participating(job.clone() as Arc<dyn PoolJob>, priority)
                .map_err(|_| pool_down())?;
            if let Some(e) = job.error.lock().expect("job lock").take() {
                return Err(e);
            }
            let partials = std::mem::take(&mut *job.partials.lock().expect("job lock"));
            if partials.is_empty() {
                Ok((new_agg_table(plan), ExecStats::default()))
            } else {
                Ok(merge_partials(partials))
            }
        } else {
            let mut agg = new_agg_table(plan);
            let ops = run_pipeline(
                &self.db,
                snap,
                plan,
                dim_tables,
                None,
                fused.as_ref().as_ref(),
                batch,
                &mut agg,
            )?;
            Ok((
                agg,
                ExecStats {
                    ops,
                    total_micros: 0,
                },
            ))
        }
    }

    /// Materializes every `Materialized` dimension selection — as one
    /// participating pool job (one task per dimension) when
    /// `par_selections` is on, inline otherwise. Statistics are appended
    /// in dimension order either way.
    fn materialize_dims(
        &self,
        snap: Snapshot,
        plan: &Arc<Plan>,
        priority: i32,
        stats: &mut ExecStats,
    ) -> Result<Vec<Option<Arc<DimSelection>>>, QpptError> {
        let n = plan.dims.len();
        let materialized: Vec<usize> = (0..n)
            .filter(|&di| plan.dims[di].handle == qppt_core::plan::DimHandleKind::Materialized)
            .collect();
        // Even a size-1 pool is worth submitting to: the caller
        // participates, so the job always has ≥ 2 potential workers.
        let pooled =
            plan.opts.par_selections && plan.opts.parallelism > 1 && materialized.len() > 1;
        let results: Vec<Option<Arc<DimSelection>>> = if pooled {
            let max_workers = plan.opts.parallelism.min(materialized.len());
            let job = Arc::new(DimJob {
                db: self.db.clone(),
                snap,
                plan: plan.clone(),
                tasks: materialized,
                next: AtomicUsize::new(0),
                results: Mutex::new((0..n).map(|_| None).collect()),
                error: Mutex::new(None),
                aborted: AtomicBool::new(false),
                max_workers,
            });
            self.pool
                .run_participating(job.clone() as Arc<dyn PoolJob>, priority)
                .map_err(|_| pool_down())?;
            if let Some(e) = job.error.lock().expect("job lock").take() {
                return Err(e);
            }
            let results = std::mem::take(&mut *job.results.lock().expect("job lock"));
            results
        } else {
            (0..n)
                .map(|di| materialize_dim_selection(&self.db, snap, plan, di))
                .collect::<Result<Vec<_>, QpptError>>()?
        };
        let mut dim_tables = Vec::with_capacity(n);
        for r in results {
            match r {
                Some(sel) => {
                    stats.push(sel.op.clone());
                    dim_tables.push(Some(sel));
                }
                None => dim_tables.push(None),
            }
        }
        Ok(dim_tables)
    }
}

fn pool_down() -> QpptError {
    QpptError::Internal("worker pool shut down while the query was queued".into())
}

/// The fact-pipeline job: a per-query morsel queue on the shared pool.
struct MorselJob {
    db: Arc<Database>,
    snap: Snapshot,
    plan: Arc<Plan>,
    dim_tables: Arc<Vec<Option<Arc<DimSelection>>>>,
    fused: Arc<Option<FusedSelection>>,
    morsels: Vec<KeyRange>,
    /// Atomic morsel dispenser (work pulling).
    next: AtomicUsize,
    /// Participant ids for the deterministic merge order.
    participants: AtomicUsize,
    partials: Mutex<Vec<(usize, AggTable, ExecStats)>>,
    error: Mutex<Option<QpptError>>,
    aborted: AtomicBool,
    max_workers: usize,
    /// The request's execution mode (scalar vs. columnar inner loops).
    batch: BatchMode,
}

impl PoolJob for MorselJob {
    fn max_workers(&self) -> usize {
        self.max_workers
    }

    fn has_work(&self) -> bool {
        !self.aborted.load(Ordering::Relaxed)
            && self.next.load(Ordering::Relaxed) < self.morsels.len()
    }

    fn work(&self) {
        let pid = self.participants.fetch_add(1, Ordering::Relaxed);
        match drain_morsels(
            &self.db,
            self.snap,
            &self.plan,
            &self.dim_tables,
            self.fused.as_ref().as_ref(),
            &self.morsels,
            &self.next,
            self.batch,
        ) {
            Ok(Some((agg, stats))) => {
                self.partials
                    .lock()
                    .expect("job lock")
                    .push((pid, agg, stats));
            }
            Ok(None) => {}
            Err(e) => {
                self.aborted.store(true, Ordering::Relaxed);
                let mut err = self.error.lock().expect("job lock");
                err.get_or_insert(e);
            }
        }
    }
}

/// The dimension-selection job: one task per materialized dimension.
struct DimJob {
    db: Arc<Database>,
    snap: Snapshot,
    plan: Arc<Plan>,
    /// Dimension indexes to materialize.
    tasks: Vec<usize>,
    next: AtomicUsize,
    /// Slot per dimension (not per task), so output stays in dim order.
    results: Mutex<Vec<Option<Arc<DimSelection>>>>,
    error: Mutex<Option<QpptError>>,
    aborted: AtomicBool,
    max_workers: usize,
}

impl PoolJob for DimJob {
    fn max_workers(&self) -> usize {
        self.max_workers
    }

    fn has_work(&self) -> bool {
        !self.aborted.load(Ordering::Relaxed)
            && self.next.load(Ordering::Relaxed) < self.tasks.len()
    }

    fn work(&self) {
        loop {
            let t = self.next.fetch_add(1, Ordering::Relaxed);
            let Some(&di) = self.tasks.get(t) else {
                break;
            };
            match materialize_dim_selection(&self.db, self.snap, &self.plan, di) {
                Ok(r) => self.results.lock().expect("job lock")[di] = r,
                Err(e) => {
                    self.aborted.store(true, Ordering::Relaxed);
                    let mut err = self.error.lock().expect("job lock");
                    err.get_or_insert(e);
                    break;
                }
            }
        }
    }
}
