//! [`PooledEngine`]: the serving-path engine — same plans, same
//! byte-identical results as [`QpptEngine`](qppt_core::QpptEngine) and
//! [`ParEngine`](crate::ParEngine), executed on a persistent shared
//! [`WorkerPool`] instead of a scoped per-query pool.
//!
//! N concurrent queries submit their morsel queues (and, with
//! `par_selections`, their dimension-selection tasks) as [`PoolJob`]s; the
//! pool's fixed workers interleave them under the priority/admission policy.
//! Total threads are bounded by the pool size, not queries × parallelism —
//! the property `qppt-server` is built on.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use qppt_core::exec::{
    decode_result, materialize_dim, materialize_fused_selection, new_agg_table, run_pipeline,
    FusedSelection,
};
use qppt_core::inter::{AggTable, InterTable};
use qppt_core::{build_plan, ExecStats, KeyRange, OpStats, Plan, PlanOptions, QpptError};
use qppt_storage::{Database, QueryResult, QuerySpec, Snapshot};

use crate::pool::{PoolJob, WorkerPool};
use crate::scheduler::{drain_morsels, merge_partials};
use crate::{partition_morsels, pipeline_workers};

/// The shared-pool QPPT engine (see module docs). Cheap to clone; clones
/// share the database and the pool.
#[derive(Debug, Clone)]
pub struct PooledEngine {
    db: Arc<Database>,
    pool: Arc<WorkerPool>,
}

impl PooledEngine {
    /// Creates an engine over a shared database and worker pool.
    pub fn new(db: Arc<Database>, pool: Arc<WorkerPool>) -> Self {
        Self { db, pool }
    }

    /// The shared database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The shared worker pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Runs a query at the latest snapshot (priority 0).
    pub fn run(&self, spec: &QuerySpec, opts: &PlanOptions) -> Result<QueryResult, QpptError> {
        Ok(self.run_with_stats(spec, opts)?.0)
    }

    /// Runs a query, returning merged per-operator statistics (priority 0).
    pub fn run_with_stats(
        &self,
        spec: &QuerySpec,
        opts: &PlanOptions,
    ) -> Result<(QueryResult, ExecStats), QpptError> {
        self.run_at(spec, opts, self.db.snapshot(), 0)
    }

    /// Runs a query at an explicit snapshot with an explicit pool priority
    /// (higher preempts lower for idle workers; in-flight morsels are never
    /// preempted).
    pub fn run_at(
        &self,
        spec: &QuerySpec,
        opts: &PlanOptions,
        snap: Snapshot,
        priority: i32,
    ) -> Result<(QueryResult, ExecStats), QpptError> {
        let plan = Arc::new(build_plan(&self.db, spec, opts)?);
        let started = Instant::now();
        let mut stats = ExecStats::default();

        // 1. Dimension selections — as a pool job when parallel selections
        //    are on and there is more than one to build.
        let dim_tables = Arc::new(self.materialize_dims(snap, &plan, priority, &mut stats)?);

        // 2. Fact pipeline: a morsel job on the shared pool when the
        //    stage-1 operator class is parallel-enabled, inline otherwise.
        let workers = pipeline_workers(&plan).min(self.pool.size());
        let (agg, pipeline_stats) = if workers > 1 {
            let fused = materialize_fused_selection(&self.db, snap, &plan)?;
            let morsels = partition_morsels(&self.db, &plan)?;
            let max_workers = workers.min(morsels.len()).max(1);
            let job = Arc::new(MorselJob {
                db: self.db.clone(),
                snap,
                plan: plan.clone(),
                dim_tables: dim_tables.clone(),
                fused,
                morsels,
                next: AtomicUsize::new(0),
                participants: AtomicUsize::new(0),
                partials: Mutex::new(Vec::new()),
                error: Mutex::new(None),
                aborted: AtomicBool::new(false),
                max_workers,
            });
            self.pool
                .submit(job.clone() as Arc<dyn PoolJob>, priority)
                .wait()
                .map_err(|_| pool_down())?;
            if let Some(e) = job.error.lock().expect("job lock").take() {
                return Err(e);
            }
            let partials = std::mem::take(&mut *job.partials.lock().expect("job lock"));
            if partials.is_empty() {
                (new_agg_table(&plan), ExecStats::default())
            } else {
                merge_partials(partials)
            }
        } else {
            let mut agg = new_agg_table(&plan);
            let ops = run_pipeline(&self.db, snap, &plan, &dim_tables, None, None, &mut agg)?;
            (
                agg,
                ExecStats {
                    ops,
                    total_micros: 0,
                },
            )
        };
        stats.ops.extend(pipeline_stats.ops);
        crate::fix_merged_agg_stats(&plan, &agg, &mut stats);

        // 3. Decode the merged aggregation index.
        let result = decode_result(&self.db, &plan, &agg);
        stats.total_micros = started.elapsed().as_micros();
        Ok((result, stats))
    }

    /// Materializes every `Materialized` dimension selection — as one pool
    /// job (one task per dimension) when `par_selections` is on, inline
    /// otherwise. Statistics are appended in dimension order either way.
    fn materialize_dims(
        &self,
        snap: Snapshot,
        plan: &Arc<Plan>,
        priority: i32,
        stats: &mut ExecStats,
    ) -> Result<Vec<Option<InterTable>>, QpptError> {
        let n = plan.dims.len();
        let materialized: Vec<usize> = (0..n)
            .filter(|&di| plan.dims[di].handle == qppt_core::plan::DimHandleKind::Materialized)
            .collect();
        let pooled = plan.opts.par_selections
            && plan.opts.parallelism > 1
            && materialized.len() > 1
            && self.pool.size() > 1;
        let results: Vec<Option<(InterTable, OpStats)>> = if pooled {
            let max_workers = plan.opts.parallelism.min(materialized.len());
            let job = Arc::new(DimJob {
                db: self.db.clone(),
                snap,
                plan: plan.clone(),
                tasks: materialized,
                next: AtomicUsize::new(0),
                results: Mutex::new((0..n).map(|_| None).collect()),
                error: Mutex::new(None),
                aborted: AtomicBool::new(false),
                max_workers,
            });
            self.pool
                .submit(job.clone() as Arc<dyn PoolJob>, priority)
                .wait()
                .map_err(|_| pool_down())?;
            if let Some(e) = job.error.lock().expect("job lock").take() {
                return Err(e);
            }
            let results = std::mem::take(&mut *job.results.lock().expect("job lock"));
            results
        } else {
            (0..n)
                .map(|di| materialize_dim(&self.db, snap, plan, di))
                .collect::<Result<Vec<_>, QpptError>>()?
        };
        let mut dim_tables = Vec::with_capacity(n);
        for r in results {
            match r {
                Some((table, op)) => {
                    stats.push(op);
                    dim_tables.push(Some(table));
                }
                None => dim_tables.push(None),
            }
        }
        Ok(dim_tables)
    }
}

fn pool_down() -> QpptError {
    QpptError::Internal("worker pool shut down while the query was queued".into())
}

/// The fact-pipeline job: a per-query morsel queue on the shared pool.
struct MorselJob {
    db: Arc<Database>,
    snap: Snapshot,
    plan: Arc<Plan>,
    dim_tables: Arc<Vec<Option<InterTable>>>,
    fused: Option<FusedSelection>,
    morsels: Vec<KeyRange>,
    /// Atomic morsel dispenser (work pulling).
    next: AtomicUsize,
    /// Participant ids for the deterministic merge order.
    participants: AtomicUsize,
    partials: Mutex<Vec<(usize, AggTable, ExecStats)>>,
    error: Mutex<Option<QpptError>>,
    aborted: AtomicBool,
    max_workers: usize,
}

impl PoolJob for MorselJob {
    fn max_workers(&self) -> usize {
        self.max_workers
    }

    fn has_work(&self) -> bool {
        !self.aborted.load(Ordering::Relaxed)
            && self.next.load(Ordering::Relaxed) < self.morsels.len()
    }

    fn work(&self) {
        let pid = self.participants.fetch_add(1, Ordering::Relaxed);
        match drain_morsels(
            &self.db,
            self.snap,
            &self.plan,
            &self.dim_tables,
            self.fused.as_ref(),
            &self.morsels,
            &self.next,
        ) {
            Ok(Some((agg, stats))) => {
                self.partials
                    .lock()
                    .expect("job lock")
                    .push((pid, agg, stats));
            }
            Ok(None) => {}
            Err(e) => {
                self.aborted.store(true, Ordering::Relaxed);
                let mut err = self.error.lock().expect("job lock");
                err.get_or_insert(e);
            }
        }
    }
}

/// The dimension-selection job: one task per materialized dimension.
struct DimJob {
    db: Arc<Database>,
    snap: Snapshot,
    plan: Arc<Plan>,
    /// Dimension indexes to materialize.
    tasks: Vec<usize>,
    next: AtomicUsize,
    /// Slot per dimension (not per task), so output stays in dim order.
    results: Mutex<Vec<Option<(InterTable, OpStats)>>>,
    error: Mutex<Option<QpptError>>,
    aborted: AtomicBool,
    max_workers: usize,
}

impl PoolJob for DimJob {
    fn max_workers(&self) -> usize {
        self.max_workers
    }

    fn has_work(&self) -> bool {
        !self.aborted.load(Ordering::Relaxed)
            && self.next.load(Ordering::Relaxed) < self.tasks.len()
    }

    fn work(&self) {
        loop {
            let t = self.next.fetch_add(1, Ordering::Relaxed);
            let Some(&di) = self.tasks.get(t) else {
                break;
            };
            match materialize_dim(&self.db, self.snap, &self.plan, di) {
                Ok(r) => self.results.lock().expect("job lock")[di] = r,
                Err(e) => {
                    self.aborted.store(true, Ordering::Relaxed);
                    let mut err = self.error.lock().expect("job lock");
                    err.get_or_insert(e);
                    break;
                }
            }
        }
    }
}
