//! Parallel index build on the shared worker pool.
//!
//! `prepare_indexes` dominates cold start: every base/composite index sorts
//! all row versions by key before the clustered insertion. The sort
//! partitions the same way the scans do — rids are bucketed on the top
//! [`morsel_bits`](qppt_core::PlanOptions::morsel_bits) bits of the key
//! domain (prefix-aligned, so buckets are key-disjoint and ordered), each
//! bucket sorts as one task on the [`WorkerPool`], and concatenating the
//! buckets in ascending order reproduces **exactly** the stable key-sorted
//! order of the sequential build (ties keep rid order within a bucket, and
//! buckets are filled in rid order). The indexes that come out are
//! bit-identical; only the sort ran in parallel.
//!
//! Gated by [`PlanOptions::par_index_build`] (sequential default): with the
//! switch off — or a single-thread pool — this delegates to
//! [`qppt_core::prepare_indexes`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use qppt_core::{planned_indexes, PlanOptions, QpptError};
use qppt_storage::{CompositeIndex, Database, QuerySpec};

use crate::morsel::Partitioner;
use crate::pool::{PoolJob, WorkerPool};

/// Creates (or widens) every index the query needs, exactly as
/// [`qppt_core::prepare_indexes`] would, but with the key sorts of new
/// index builds partitioned across `pool` when
/// [`par_index_build`](PlanOptions::par_index_build) is on.
pub fn prepare_indexes_pooled(
    db: &mut Database,
    spec: &QuerySpec,
    opts: &PlanOptions,
    pool: &Arc<WorkerPool>,
) -> Result<(), QpptError> {
    if !opts.par_index_build || pool.size() <= 1 {
        return qppt_core::prepare_indexes(db, spec, opts);
    }
    db.prefer_kiss = opts.prefer_kiss;
    let planned = planned_indexes(db, spec, opts)?;
    for def in &planned.base {
        db.create_index_with(def, |table, key_col| {
            let keys: Vec<u64> = (0..table.version_count() as u32)
                .map(|rid| table.table().get(rid, key_col))
                .collect();
            par_sorted_order(pool, keys, opts.morsel_bits)
        })?;
    }
    for c in &planned.composite {
        let keys: Vec<&str> = c.keys.iter().map(String::as_str).collect();
        let carried: Vec<&str> = c.carried.iter().map(String::as_str).collect();
        db.create_composite_index_with(&c.table, &keys, &carried, |table, key_cols| {
            let packed = CompositeIndex::packed_keys(table, key_cols)?;
            Ok(par_sorted_order(pool, packed, opts.morsel_bits))
        })?;
    }
    Ok(())
}

/// Stable key-sorted rid order (`rid → keys[rid]`), computed by prefix
/// partitioning + per-bucket parallel sorts on the pool. Equals
/// `qppt_storage::key_sorted_rids` output for the same keys.
fn par_sorted_order(pool: &WorkerPool, keys: Vec<u64>, morsel_bits: u8) -> Vec<u32> {
    if keys.is_empty() {
        return Vec::new();
    }
    let (min, max) = keys
        .iter()
        .fold((u64::MAX, 0u64), |(lo, hi), &k| (lo.min(k), hi.max(k)));
    let ranges = Partitioner::new(min, max, morsel_bits).morsels().to_vec();
    // Bucket in rid order: within a bucket rids stay ascending, which a
    // stable per-bucket sort preserves for equal keys — the global stable
    // order falls out of ascending-bucket concatenation.
    let mut buckets: Vec<Vec<u32>> = (0..ranges.len()).map(|_| Vec::new()).collect();
    for (rid, &k) in keys.iter().enumerate() {
        let b = ranges.partition_point(|r| r.hi < k);
        debug_assert!(ranges[b].contains(k));
        buckets[b].push(rid as u32);
    }
    let job = Arc::new(SortJob {
        keys,
        buckets: buckets.into_iter().map(Mutex::new).collect(),
        next: AtomicUsize::new(0),
        max_workers: pool.size(),
    });
    // An aborted job (pool shut down before it started — started jobs
    // always run to completion) leaves every bucket unsorted; sort them
    // here rather than building a corrupt index.
    let aborted = pool
        .submit(job.clone() as Arc<dyn PoolJob>, 0)
        .wait()
        .is_err();
    let mut order = Vec::with_capacity(job.keys.len());
    for b in &job.buckets {
        let mut bucket = std::mem::take(&mut *b.lock().expect("sort lock"));
        if aborted {
            bucket.sort_by_key(|&rid| job.keys[rid as usize]);
        }
        order.extend_from_slice(&bucket);
    }
    order
}

/// One task per bucket: sort its rids by key (stable).
struct SortJob {
    keys: Vec<u64>,
    buckets: Vec<Mutex<Vec<u32>>>,
    next: AtomicUsize,
    max_workers: usize,
}

impl PoolJob for SortJob {
    fn max_workers(&self) -> usize {
        self.max_workers
    }

    fn has_work(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.buckets.len()
    }

    fn work(&self) {
        loop {
            let b = self.next.fetch_add(1, Ordering::Relaxed);
            let Some(bucket) = self.buckets.get(b) else {
                break;
            };
            bucket
                .lock()
                .expect("sort lock")
                .sort_by_key(|&rid| self.keys[rid as usize]);
        }
    }
}
