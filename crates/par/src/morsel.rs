//! Morsel partitioning: splitting a prefix-tree key domain into top-level
//! prefix ranges.
//!
//! A *morsel* is one contiguous, prefix-aligned key range of the stage-1
//! join attribute. Because both the generalized prefix tree and the
//! KISS-Tree resolve the **most significant** key bits first, a range whose
//! bounds are aligned to the top `morsel_bits` bits corresponds to a set of
//! whole subtrees — the partitioned cursors
//! ([`qppt_trie::sync_scan_range`](https://docs.rs/qppt-trie),
//! `qppt_kiss::kiss_sync_scan_range`) descend only into those subtrees, so
//! per-morsel work is proportional to the morsel's population.

use qppt_core::KeyRange;

/// Splits a key domain into prefix-aligned [`KeyRange`] morsels.
#[derive(Debug, Clone)]
pub struct Partitioner {
    morsels: Vec<KeyRange>,
}

impl Partitioner {
    /// Partitions `[0, max_key]` on the top `morsel_bits` bits of the
    /// domain, keeping only morsels that intersect the populated interval
    /// `[min_key, max_key]`. Yields at most `2^morsel_bits` morsels; the
    /// union of the returned ranges covers `[min_key, max_key]` exactly,
    /// and the ranges are disjoint and ascending.
    pub fn new(min_key: u64, max_key: u64, morsel_bits: u8) -> Self {
        debug_assert!((1..=16).contains(&morsel_bits), "validated by PlanOptions");
        debug_assert!(min_key <= max_key);
        // Bits needed to address the domain; at least `morsel_bits` so a
        // morsel spans at least one key.
        let domain_bits = (64 - max_key.leading_zeros()).max(morsel_bits as u32);
        let span_bits = domain_bits - morsel_bits as u32;
        let mut morsels = Vec::with_capacity(1 << morsel_bits);
        for m in 0..(1u64 << morsel_bits) {
            let lo = m << span_bits;
            // `(m+1) << span_bits` can be 2^64 on the last morsel of a
            // 64-bit domain; the wrap yields exactly u64::MAX after -1.
            let hi = ((m + 1) << span_bits).wrapping_sub(1);
            if hi < min_key {
                continue;
            }
            if lo > max_key {
                break;
            }
            morsels.push(KeyRange { lo, hi });
        }
        Self { morsels }
    }

    /// The morsels, in ascending key order.
    pub fn morsels(&self) -> &[KeyRange] {
        &self.morsels
    }

    /// Number of morsels.
    pub fn len(&self) -> usize {
        self.morsels.len()
    }

    /// `true` if no morsel intersects the populated domain.
    pub fn is_empty(&self) -> bool {
        self.morsels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_tiles(p: &Partitioner, min: u64, max: u64) {
        let ms = p.morsels();
        assert!(!ms.is_empty());
        assert!(ms[0].lo <= min);
        assert!(ms[ms.len() - 1].hi >= max);
        for w in ms.windows(2) {
            assert_eq!(w[0].hi + 1, w[1].lo, "disjoint and contiguous");
        }
    }

    #[test]
    fn partitions_small_domain() {
        let p = Partitioner::new(0, 1023, 4);
        assert_eq!(p.len(), 16);
        assert_eq!(p.morsels()[0], KeyRange { lo: 0, hi: 63 });
        assert_eq!(p.morsels()[15], KeyRange { lo: 960, hi: 1023 });
        assert_tiles(&p, 0, 1023);
    }

    #[test]
    fn partitions_unaligned_domain() {
        // max_key = 1000 → domain_bits = 10, same spans as a 1024 domain,
        // but the last morsel (lo > 1000 excluded) set is trimmed.
        let p = Partitioner::new(0, 1000, 4);
        assert_eq!(p.len(), 16);
        assert_tiles(&p, 0, 1000);
    }

    #[test]
    fn skips_morsels_below_min() {
        let p = Partitioner::new(900, 1023, 4);
        assert!(p.len() <= 2);
        assert!(p.morsels()[0].hi >= 900);
        assert_tiles(&p, 900, 1023);
    }

    #[test]
    fn full_64bit_domain_wraps_cleanly() {
        let p = Partitioner::new(0, u64::MAX, 6);
        assert_eq!(p.len(), 64);
        assert_eq!(p.morsels()[63].hi, u64::MAX);
        assert_tiles(&p, 0, u64::MAX);
    }

    #[test]
    fn tiny_domain_degenerates_to_single_keys() {
        // domain_bits clamps to morsel_bits: each morsel is one key.
        let p = Partitioner::new(0, 3, 4);
        assert_eq!(p.len(), 4);
        for (i, m) in p.morsels().iter().enumerate() {
            assert_eq!((m.lo, m.hi), (i as u64, i as u64));
        }
    }

    #[test]
    fn singleton_domain() {
        let p = Partitioner::new(7, 7, 8);
        assert_eq!(p.len(), 1);
        assert!(p.morsels()[0].contains(7));
    }
}
