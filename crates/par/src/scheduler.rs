//! The morsel-driven scheduler: a pool of std threads pulling morsels from
//! a shared atomic dispenser.
//!
//! Scheduling is *work-pulling* (Leis et al.'s morsel-driven model): workers
//! grab the next unclaimed morsel index from an atomic counter, so skewed
//! partitions self-balance — a worker stuck in a dense subtree simply claims
//! fewer morsels. Each worker accumulates into a **private** aggregation
//! table and operator statistics; nothing is shared mutably, so there are no
//! locks on the hot path. After the pool joins, partials are merged in
//! worker-index order, which (with commutative accumulator sums) makes the
//! merged result independent of thread timing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use qppt_core::exec::{new_agg_table, run_pipeline, FusedSelection};
use qppt_core::inter::{AggTable, InterTable};
use qppt_core::stats::ExecStats;
use qppt_core::{KeyRange, Plan, QpptError};
use qppt_storage::{Database, Snapshot};

/// Runs the fact pipeline over `morsels` on `workers` threads, returning
/// the merged aggregation table and the merged per-operator statistics.
///
/// `dim_tables` (materialized dimension selections) and `fused` (the
/// pre-materialized stage-1 select-join stream, if the plan has one) are
/// shared read-only by every worker.
pub(crate) fn run_morsels(
    db: &Database,
    snap: Snapshot,
    plan: &Plan,
    dim_tables: &[Option<InterTable>],
    fused: Option<&FusedSelection>,
    morsels: &[KeyRange],
    workers: usize,
) -> Result<(AggTable, ExecStats), QpptError> {
    debug_assert!(workers >= 1);
    let next = AtomicUsize::new(0);
    let worker = |wid: usize| -> Result<(usize, AggTable, ExecStats), QpptError> {
        let mut agg = new_agg_table(plan);
        let mut stats = ExecStats::default();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(&morsel) = morsels.get(i) else {
                break;
            };
            let ops = run_pipeline(db, snap, plan, dim_tables, Some(morsel), fused, &mut agg)?;
            stats.merge_partition(&ExecStats {
                ops,
                total_micros: 0,
            });
        }
        Ok((wid, agg, stats))
    };

    let mut parts: Vec<(usize, AggTable, ExecStats)> = if workers == 1 {
        vec![worker(0)?]
    } else {
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|wid| scope.spawn(move || worker(wid)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker threads do not panic"))
                .collect::<Result<Vec<_>, QpptError>>()
        })?
    };

    // Deterministic merge: worker-index order, not completion order.
    parts.sort_by_key(|(wid, _, _)| *wid);
    let mut iter = parts.into_iter();
    let (_, mut agg, mut stats) = iter.next().expect("at least one worker");
    for (_, part_agg, part_stats) in iter {
        agg.merge_from(&part_agg);
        stats.merge_partition(&part_stats);
    }
    Ok((agg, stats))
}
