//! The morsel-driven scheduler: workers pulling morsels from a shared
//! atomic dispenser.
//!
//! Scheduling is *work-pulling* (Leis et al.'s morsel-driven model): workers
//! grab the next unclaimed morsel index from an atomic counter, so skewed
//! partitions self-balance — a worker stuck in a dense subtree simply claims
//! fewer morsels. Each worker accumulates into a **private** aggregation
//! table and operator statistics; nothing is shared mutably, so there are no
//! locks on the hot path. After all workers finish, partials are merged in
//! worker-index order, which (with commutative accumulator sums) makes the
//! merged result independent of thread timing.
//!
//! Two execution substrates share this logic:
//!
//! * [`run_morsels`] — the embedded path: a **scoped** thread pool spawned
//!   for this one query (`ParEngine`). Simple, but pays thread-spawn cost
//!   per query.
//! * [`drain_morsels`] — the per-worker loop itself, also driven by the
//!   persistent [`WorkerPool`](crate::WorkerPool) through
//!   [`PooledEngine`](crate::PooledEngine)'s morsel job, where N concurrent
//!   queries share one fixed set of threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use qppt_core::exec::{new_agg_table, run_pipeline, DimSelection, FusedSelection};
use qppt_core::inter::AggTable;
use qppt_core::stats::ExecStats;
use qppt_core::{BatchMode, KeyRange, Plan, QpptError};
use qppt_storage::{Database, Snapshot};

/// One worker's morsel loop: pull unclaimed morsel indexes from `next` and
/// run the fact pipeline over each, accumulating into a private aggregation
/// table. Returns `None` if no morsel was claimed (late-arriving worker).
/// `batch` is the request's execution mode (scalar vs. columnar inner
/// loops) — an execution parameter, not a plan property, because cached
/// plans may carry stale batch knobs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drain_morsels(
    db: &Database,
    snap: Snapshot,
    plan: &Plan,
    dim_tables: &[Option<Arc<DimSelection>>],
    fused: Option<&FusedSelection>,
    morsels: &[KeyRange],
    next: &AtomicUsize,
    batch: BatchMode,
) -> Result<Option<(AggTable, ExecStats)>, QpptError> {
    let mut agg: Option<AggTable> = None;
    let mut stats = ExecStats::default();
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(&morsel) = morsels.get(i) else {
            break;
        };
        let acc = agg.get_or_insert_with(|| new_agg_table(plan));
        let ops = run_pipeline(db, snap, plan, dim_tables, Some(morsel), fused, batch, acc)?;
        stats.merge_partition(&ExecStats {
            ops,
            total_micros: 0,
        });
    }
    Ok(agg.map(|a| (a, stats)))
}

/// Merges per-worker partials, in ascending participant order, into the
/// final aggregation table and statistics. `partials` entries are
/// `(participant id, agg, stats)`; at least one entry is required.
pub(crate) fn merge_partials(
    mut partials: Vec<(usize, AggTable, ExecStats)>,
) -> (AggTable, ExecStats) {
    // Deterministic merge: participant order, not completion order. (The
    // accumulators are commutative sums, so this is belt-and-braces — but
    // it keeps statistics ordering reproducible too.)
    partials.sort_by_key(|(pid, _, _)| *pid);
    let mut iter = partials.into_iter();
    let (_, mut agg, mut stats) = iter.next().expect("at least one partial");
    for (_, part_agg, part_stats) in iter {
        agg.merge_from(&part_agg);
        stats.merge_partition(&part_stats);
    }
    (agg, stats)
}

/// Runs the fact pipeline over `morsels` on `workers` **scoped** threads
/// (the embedded, spawn-per-query path), returning the merged aggregation
/// table and the merged per-operator statistics.
///
/// `dim_tables` (materialized dimension selections) and `fused` (the
/// pre-materialized stage-1 select-join stream, if the plan has one) are
/// shared read-only by every worker.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_morsels(
    db: &Database,
    snap: Snapshot,
    plan: &Plan,
    dim_tables: &[Option<Arc<DimSelection>>],
    fused: Option<&FusedSelection>,
    morsels: &[KeyRange],
    workers: usize,
    batch: BatchMode,
) -> Result<(AggTable, ExecStats), QpptError> {
    debug_assert!(workers >= 1);
    let next = AtomicUsize::new(0);
    let worker = |pid: usize| -> Result<Option<(usize, AggTable, ExecStats)>, QpptError> {
        Ok(
            drain_morsels(db, snap, plan, dim_tables, fused, morsels, &next, batch)?
                .map(|(agg, stats)| (pid, agg, stats)),
        )
    };

    let parts: Vec<Option<(usize, AggTable, ExecStats)>> = if workers == 1 {
        vec![worker(0)?]
    } else {
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|pid| scope.spawn(move || worker(pid)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker threads do not panic"))
                .collect::<Result<Vec<_>, QpptError>>()
        })?
    };

    let mut partials: Vec<(usize, AggTable, ExecStats)> = parts.into_iter().flatten().collect();
    if partials.is_empty() {
        // Every worker lost the race for the (≥1) morsels — impossible, but
        // keep the invariant locally obvious.
        partials.push((0, new_agg_table(plan), ExecStats::default()));
    }
    Ok(merge_partials(partials))
}
