//! Catalog validation of user-supplied [`QuerySpec`]s.
//!
//! The planner historically assumed well-formed specs (the 13 SSB queries
//! are constructed by code that cannot get them wrong) and panicked on the
//! rest — a `Layout::expect` on a group column that was never carried, a
//! dictionary unwrap on a mistyped constant, an index-payload unwrap on a
//! column the startup `prepare_indexes` never saw. With the ad-hoc `QUERY`
//! frontend any of those shapes arrives over TCP, so every reachable
//! assumption becomes a typed [`PlanError`] here, checked *before*
//! planning:
//!
//! * [`validate_spec`] — pure catalog checks: tables and columns exist,
//!   predicate constants and aggregate inputs match column types, group-by
//!   columns are carried by a joined dimension, order-by terms index into
//!   the group/aggregate lists, fact FKs are distinct across dims.
//!   [`build_plan`](crate::plan::build_plan) runs this first, so the
//!   planner itself can no longer be driven into a panic by a malformed
//!   spec, whichever path a spec arrives through.
//! * [`validate_indexes`] — serving-time check that every base/composite
//!   index the plan will read exists and carries the needed payload
//!   columns. The server prepares indexes at startup (`Database` is behind
//!   an `Arc` while serving), so an ad-hoc query needing an absent index
//!   is answered with a structured `ERR`, not a mid-execution unwrap.
//! * [`validate`] — both, in order: the full pre-flight of the serving
//!   path's validate→plan→cache→execute pipeline.

use qppt_storage::{ColumnType, Database, IndexDef, Predicate, QuerySpec, Value};

use crate::options::PlanOptions;
use crate::plan::{planned_indexes, CompositeDef};
use crate::QpptError;

/// A structured validation error (surfaced to protocol clients as one
/// `ERR` line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The spec names a table the catalog does not have.
    UnknownTable(String),
    /// The spec names a column its table does not have.
    UnknownColumn { table: String, column: String },
    /// A predicate constant or aggregate input disagrees with the column
    /// type.
    TypeMismatch {
        table: String,
        column: String,
        expected: ColumnType,
        got: ColumnType,
    },
    /// Star queries need at least one dimension join.
    NoDimensions,
    /// Star queries need at least one aggregate.
    NoAggregates,
    /// Two dimensions join through the same fact FK column; the pipeline
    /// consumes each stage key exactly once.
    DuplicateFactColumn(String),
    /// A group-by column's table is not among the joined dimensions.
    GroupNotADim { table: String, column: String },
    /// A group-by column is not in its dimension's `carry` list, so no
    /// join stage would deliver it to the aggregation.
    GroupColumnNotCarried { table: String, column: String },
    /// An order-by term points past the group/aggregate lists.
    OrderOutOfRange {
        what: &'static str,
        index: usize,
        len: usize,
    },
    /// An `IN` predicate with no values.
    EmptyInList { table: String, column: String },
    /// A base index the plan reads does not exist (the server prepares
    /// indexes at startup; ad-hoc queries can only use prepared ones).
    MissingIndex { table: String, key: String },
    /// The index exists but does not carry a payload column the plan
    /// reads.
    IndexMissingColumn {
        table: String,
        key: String,
        column: String,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            PlanError::UnknownColumn { table, column } => {
                write!(f, "table {table:?} has no column {column:?}")
            }
            PlanError::TypeMismatch {
                table,
                column,
                expected,
                got,
            } => write!(
                f,
                "{table}.{column} is {expected:?} but the query uses it as {got:?}"
            ),
            PlanError::NoDimensions => write!(f, "star queries need at least one dim= clause"),
            PlanError::NoAggregates => write!(f, "star queries need at least one agg= clause"),
            PlanError::DuplicateFactColumn(c) => {
                write!(f, "two dims join through the same fact column {c:?}")
            }
            PlanError::GroupNotADim { table, column } => write!(
                f,
                "group column {table}.{column}: {table:?} is not a joined dim"
            ),
            PlanError::GroupColumnNotCarried { table, column } => write!(
                f,
                "group column {table}.{column} must be in dim {table}'s carry= list"
            ),
            PlanError::OrderOutOfRange { what, index, len } => write!(
                f,
                "order term {what}:{index} is out of range (the query has {len} {what} column(s))"
            ),
            PlanError::EmptyInList { table, column } => {
                write!(f, "empty IN list on {table}.{column}")
            }
            PlanError::MissingIndex { table, key } => write!(
                f,
                "no base index on {table}.{key} — the server prepares indexes at startup; \
                 ad-hoc predicates/joins must use already-indexed columns"
            ),
            PlanError::IndexMissingColumn { table, key, column } => write!(
                f,
                "the base index on {table}.{key} does not carry column {column:?} \
                 the query reads"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<PlanError> for QpptError {
    fn from(e: PlanError) -> Self {
        QpptError::Plan(e)
    }
}

/// The full pre-flight of the serving path: catalog checks, then index
/// availability under the effective plan options.
pub fn validate(db: &Database, spec: &QuerySpec, opts: &PlanOptions) -> Result<(), QpptError> {
    validate_spec(db, spec)?;
    validate_indexes(db, spec, opts)?;
    Ok(())
}

/// Pure catalog validation (no index requirements) — see module docs.
/// [`build_plan`](crate::plan::build_plan) calls this first, so every
/// panic path a malformed spec could previously reach now fails here with
/// a typed [`PlanError`].
pub fn validate_spec(db: &Database, spec: &QuerySpec) -> Result<(), PlanError> {
    let table_of = |name: &str| {
        db.table(name)
            .map(|mvt| mvt.table())
            .map_err(|_| PlanError::UnknownTable(name.to_string()))
    };
    let fact = table_of(&spec.fact)?;
    let col_ty = |t: &qppt_storage::Table, tname: &str, col: &str| {
        t.schema()
            .col(col)
            .map(|c| t.schema().column(c).ty)
            .map_err(|_| PlanError::UnknownColumn {
                table: tname.to_string(),
                column: col.to_string(),
            })
    };

    if spec.dims.is_empty() {
        return Err(PlanError::NoDimensions);
    }
    if spec.aggregates.is_empty() {
        return Err(PlanError::NoAggregates);
    }

    let mut fact_cols_seen: Vec<&str> = Vec::with_capacity(spec.dims.len());
    for d in &spec.dims {
        let t = table_of(&d.table)?;
        col_ty(t, &d.table, &d.join_col)?;
        col_ty(fact, &spec.fact, &d.fact_col)?;
        if fact_cols_seen.contains(&d.fact_col.as_str()) {
            return Err(PlanError::DuplicateFactColumn(d.fact_col.clone()));
        }
        fact_cols_seen.push(&d.fact_col);
        for p in &d.predicates {
            validate_predicate(t, &d.table, p, &col_ty)?;
        }
        for c in &d.carried {
            col_ty(t, &d.table, c)?;
        }
    }

    for p in &spec.fact_predicates {
        validate_predicate(fact, &spec.fact, p, &col_ty)?;
    }

    for a in &spec.aggregates {
        for c in a.expr.columns() {
            let ty = col_ty(fact, &spec.fact, c)?;
            if ty != ColumnType::Int {
                // Aggregating a dictionary code would sum codes, not values.
                return Err(PlanError::TypeMismatch {
                    table: spec.fact.clone(),
                    column: c.to_string(),
                    expected: ty,
                    got: ColumnType::Int,
                });
            }
        }
    }

    for g in &spec.group_by {
        let dim = spec
            .dims
            .iter()
            .find(|d| d.table == g.table)
            .ok_or_else(|| PlanError::GroupNotADim {
                table: g.table.clone(),
                column: g.column.clone(),
            })?;
        col_ty(table_of(&g.table)?, &g.table, &g.column)?;
        if !dim.carried.contains(&g.column) {
            return Err(PlanError::GroupColumnNotCarried {
                table: g.table.clone(),
                column: g.column.clone(),
            });
        }
    }

    for o in &spec.order_by {
        let (what, index, len) = match o.term {
            qppt_storage::OrderTerm::Group(i) => ("group", i, spec.group_by.len()),
            qppt_storage::OrderTerm::Agg(i) => ("agg", i, spec.aggregates.len()),
        };
        if index >= len {
            return Err(PlanError::OrderOutOfRange { what, index, len });
        }
    }
    Ok(())
}

fn validate_predicate(
    t: &qppt_storage::Table,
    tname: &str,
    p: &Predicate,
    col_ty: &impl Fn(&qppt_storage::Table, &str, &str) -> Result<ColumnType, PlanError>,
) -> Result<(), PlanError> {
    let ty = col_ty(t, tname, p.column())?;
    let check = |v: &Value| {
        if v.column_type() != ty {
            Err(PlanError::TypeMismatch {
                table: tname.to_string(),
                column: p.column().to_string(),
                expected: ty,
                got: v.column_type(),
            })
        } else {
            Ok(())
        }
    };
    match p {
        Predicate::Eq { value, .. } | Predicate::Lt { value, .. } => check(value),
        Predicate::Between { lo, hi, .. } => {
            check(lo)?;
            check(hi)
        }
        Predicate::In { values, .. } => {
            if values.is_empty() {
                return Err(PlanError::EmptyInList {
                    table: tname.to_string(),
                    column: p.column().to_string(),
                });
            }
            values.iter().try_for_each(check)
        }
    }
}

/// Checks that every base/composite index the plan will read exists and
/// carries the payload columns the executor fetches — the exact set
/// [`planned_indexes`] would create. On the serving path this turns every
/// `find_index`/payload unwrap an unprepared ad-hoc query could hit into a
/// [`PlanError::MissingIndex`] / [`PlanError::IndexMissingColumn`] before
/// any work is done.
pub fn validate_indexes(
    db: &Database,
    spec: &QuerySpec,
    opts: &PlanOptions,
) -> Result<(), QpptError> {
    let planned = planned_indexes(db, spec, opts)?;
    for def in &planned.base {
        check_base(db, def)?;
    }
    for c in &planned.composite {
        check_composite(db, c)?;
    }
    Ok(())
}

fn check_base(db: &Database, def: &IndexDef) -> Result<(), PlanError> {
    let bi = db
        .find_index(&def.table, &def.key)
        .map_err(|_| PlanError::MissingIndex {
            table: def.table.clone(),
            key: def.key.clone(),
        })?;
    for c in &def.carried {
        if bi.payload_pos_by_name(c).is_none() {
            return Err(PlanError::IndexMissingColumn {
                table: def.table.clone(),
                key: def.key.clone(),
                column: c.clone(),
            });
        }
    }
    Ok(())
}

fn check_composite(db: &Database, c: &CompositeDef) -> Result<(), PlanError> {
    let keys: Vec<&str> = c.keys.iter().map(String::as_str).collect();
    let ci = db
        .find_composite_index(&c.table, &keys)
        .map_err(|_| PlanError::MissingIndex {
            table: c.table.clone(),
            key: c.keys.join("+"),
        })?;
    for col in &c.carried {
        if ci.payload_pos_by_name(col).is_none() {
            return Err(PlanError::IndexMissingColumn {
                table: c.table.clone(),
                key: c.keys.join("+"),
                column: col.clone(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qppt_storage::{AggExpr, ColRef, DimSpec, Expr, OrderKey};

    fn db() -> Database {
        use qppt_storage::{Schema, TableBuilder};
        let mut b = TableBuilder::new(
            "fact",
            Schema::of(&[
                ("fk", ColumnType::Int),
                ("m", ColumnType::Int),
                ("s", ColumnType::Str),
            ]),
        );
        b.push_row(vec![Value::Int(1), Value::Int(10), Value::str("a")])
            .unwrap();
        let fact = b.finish();
        let mut b = TableBuilder::new(
            "dim",
            Schema::of(&[
                ("k", ColumnType::Int),
                ("x", ColumnType::Int),
                ("name", ColumnType::Str),
            ]),
        );
        b.push_row(vec![Value::Int(1), Value::Int(7), Value::str("n")])
            .unwrap();
        let dim = b.finish();
        let mut db = Database::new();
        db.add_table(fact);
        db.add_table(dim);
        db
    }

    fn spec() -> QuerySpec {
        QuerySpec {
            id: "t".into(),
            fact: "fact".into(),
            dims: vec![DimSpec {
                table: "dim".into(),
                join_col: "k".into(),
                fact_col: "fk".into(),
                predicates: vec![Predicate::eq("x", 7i64)],
                carried: vec!["name".into()],
            }],
            fact_predicates: vec![Predicate::lt("m", 100i64)],
            group_by: vec![ColRef::new("dim", "name")],
            aggregates: vec![AggExpr::sum(Expr::Col("m".into()), "s")],
            order_by: vec![OrderKey::group(0), OrderKey::agg_desc(0)],
        }
    }

    #[test]
    fn well_formed_spec_validates() {
        validate_spec(&db(), &spec()).unwrap();
    }

    #[test]
    fn catalog_errors_are_typed() {
        let db = db();
        let mut q = spec();
        q.fact = "nope".into();
        assert_eq!(
            validate_spec(&db, &q),
            Err(PlanError::UnknownTable("nope".into()))
        );

        let mut q = spec();
        q.dims[0].join_col = "zz".into();
        assert!(matches!(
            validate_spec(&db, &q),
            Err(PlanError::UnknownColumn { .. })
        ));

        let mut q = spec();
        q.dims[0].predicates = vec![Predicate::eq("x", "seven")];
        assert!(matches!(
            validate_spec(&db, &q),
            Err(PlanError::TypeMismatch { .. })
        ));

        let mut q = spec();
        q.dims.clear();
        assert_eq!(validate_spec(&db, &q), Err(PlanError::NoDimensions));

        let mut q = spec();
        q.aggregates.clear();
        assert_eq!(validate_spec(&db, &q), Err(PlanError::NoAggregates));

        let mut q = spec();
        q.dims.push(q.dims[0].clone());
        assert_eq!(
            validate_spec(&db, &q),
            Err(PlanError::DuplicateFactColumn("fk".into()))
        );

        let mut q = spec();
        q.group_by = vec![ColRef::new("other", "name")];
        assert!(matches!(
            validate_spec(&db, &q),
            Err(PlanError::GroupNotADim { .. })
        ));

        let mut q = spec();
        q.group_by = vec![ColRef::new("dim", "x")];
        assert!(matches!(
            validate_spec(&db, &q),
            Err(PlanError::GroupColumnNotCarried { .. })
        ));

        let mut q = spec();
        q.order_by = vec![OrderKey::group(3)];
        assert_eq!(
            validate_spec(&db, &q),
            Err(PlanError::OrderOutOfRange {
                what: "group",
                index: 3,
                len: 1
            })
        );

        let mut q = spec();
        q.aggregates = vec![AggExpr::sum(Expr::Col("s".into()), "s")];
        assert!(
            matches!(validate_spec(&db, &q), Err(PlanError::TypeMismatch { .. })),
            "aggregating a string column must be rejected"
        );

        let mut q = spec();
        q.dims[0].predicates = vec![Predicate::is_in("x", vec![])];
        assert!(matches!(
            validate_spec(&db, &q),
            Err(PlanError::EmptyInList { .. })
        ));
    }

    #[test]
    fn index_availability_is_checked() {
        let mut db = db();
        let q = spec();
        let opts = PlanOptions::default();
        assert!(matches!(
            validate(&db, &q, &opts),
            Err(QpptError::Plan(PlanError::MissingIndex { .. }))
        ));
        crate::plan::prepare_indexes(&mut db, &q, &opts).unwrap();
        validate(&db, &q, &opts).unwrap();

        // A query reading a column the prepared index does not carry.
        let mut wide = q.clone();
        wide.dims[0].carried.push("x".into());
        match validate(&db, &wide, &opts) {
            // Depending on overlap this is a missing payload column.
            Err(QpptError::Plan(
                PlanError::IndexMissingColumn { .. } | PlanError::MissingIndex { .. },
            )) => {}
            other => panic!("want index error, got {other:?}"),
        }
    }
}
