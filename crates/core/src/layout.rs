//! Tuple layouts for intermediate indexed tables.
//!
//! A QPPT intermediate table's payload is a fixed-width row of `u64` codes;
//! a [`Layout`] names each position: either a fact column still being
//! carried (future join keys, aggregate inputs) or a dimension column picked
//! up by an earlier join (group-by attributes). The planner computes the
//! layout of every stage boundary; the executor uses it to build and read
//! payload rows.

use std::collections::HashMap;

/// Origin of a carried column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// A fact-table column.
    Fact,
    /// A carried column of dimension `dims[i]` (spec index).
    Dim(usize),
}

/// A named, ordered payload layout with O(1) position lookup.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    cols: Vec<(Src, String)>,
    pos: HashMap<(Src, String), usize>,
}

impl Layout {
    /// An empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a column (no-op if already present); returns its position.
    pub fn add(&mut self, src: Src, name: &str) -> usize {
        if let Some(&p) = self.pos.get(&(src, name.to_string())) {
            return p;
        }
        let p = self.cols.len();
        self.cols.push((src, name.to_string()));
        self.pos.insert((src, name.to_string()), p);
        p
    }

    /// Position of a column, if present.
    pub fn find(&self, src: Src, name: &str) -> Option<usize> {
        self.pos.get(&(src, name.to_string())).copied()
    }

    /// Position of a column, panicking when absent (planner guarantees
    /// presence; absence is a planner bug).
    pub fn expect(&self, src: Src, name: &str) -> usize {
        self.find(src, name)
            .unwrap_or_else(|| panic!("layout is missing {src:?}.{name}: {:?}", self.cols))
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// `true` if the layout has no columns.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[(Src, String)] {
        &self.cols
    }

    /// Human-readable rendering for plan explanations.
    pub fn describe(&self, dim_names: &[String]) -> String {
        let parts: Vec<String> = self
            .cols
            .iter()
            .map(|(src, name)| match src {
                Src::Fact => name.clone(),
                Src::Dim(i) => format!(
                    "{}.{}",
                    dim_names.get(*i).map(String::as_str).unwrap_or("?"),
                    name
                ),
            })
            .collect();
        format!("[{}]", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_find() {
        let mut l = Layout::new();
        let a = l.add(Src::Fact, "lo_revenue");
        let b = l.add(Src::Dim(0), "d_year");
        assert_eq!((a, b), (0, 1));
        assert_eq!(l.find(Src::Fact, "lo_revenue"), Some(0));
        assert_eq!(l.find(Src::Dim(0), "d_year"), Some(1));
        assert_eq!(l.find(Src::Dim(1), "d_year"), None);
        assert_eq!(l.width(), 2);
    }

    #[test]
    fn add_is_idempotent() {
        let mut l = Layout::new();
        assert_eq!(l.add(Src::Fact, "x"), 0);
        assert_eq!(l.add(Src::Fact, "x"), 0);
        assert_eq!(l.width(), 1);
    }

    #[test]
    #[should_panic(expected = "layout is missing")]
    fn expect_missing_panics() {
        Layout::new().expect(Src::Fact, "nope");
    }

    #[test]
    fn describe_names_dims() {
        let mut l = Layout::new();
        l.add(Src::Fact, "lo_revenue");
        l.add(Src::Dim(0), "d_year");
        let s = l.describe(&["date".to_string()]);
        assert_eq!(s, "[lo_revenue, date.d_year]");
    }
}
