//! # QPPT — the indexed table-at-a-time query engine
//!
//! This crate is the paper's primary contribution: a query engine in which
//! **indexes are the first-class citizens**. Operators exchange *clustered
//! indexes* (prefix trees / KISS-Trees holding sets of tuples) instead of
//! tuples, columns or vectors:
//!
//! * **Intermediate indexed tables** (§1, [`inter::InterTable`]) — every
//!   operator's output is an index, handed to the next operator as a single
//!   index handle.
//! * **Cooperative operators** (§1) — an operator's output index is keyed on
//!   exactly the attribute(s) the *next* operator requests, so downstream
//!   operators never build internal hash tables.
//! * **Composed operators** (§4) — join-group (level 1: grouping as a side
//!   effect of output indexing), multi-way/star joins over the synchronous
//!   index scan with join-buffered assisting probes (level 2), and the
//!   select-join that streams a selection straight into the join without
//!   materializing it (level 3).
//!
//! The [`engine::QpptEngine`] plans and executes
//! [`qppt_storage::QuerySpec`] star queries; [`options::PlanOptions`]
//! exposes the demonstrator's optimization knobs (select-join on/off, join
//! buffer size, maximum star-join width, KISS vs. prefix-tree indexes, and
//! the set-operator selection strategy).
//!
//! ```
//! use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
//! use qppt_ssb::{queries, SsbDb};
//!
//! let mut ssb = SsbDb::generate(0.01, 42);
//! let opts = PlanOptions::default();
//! let spec = queries::q2_3();
//! prepare_indexes(&mut ssb.db, &spec, &opts).unwrap();
//! let engine = QpptEngine::new(&ssb.db);
//! let (result, stats) = engine.run_with_stats(&spec, &opts).unwrap();
//! assert!(!result.rows.is_empty());
//! assert!(stats.ops.len() >= 2); // selections + composed joins
//! ```

pub mod batch;
pub mod engine;
pub mod exec;
pub mod fingerprint;
pub mod inter;
pub mod layout;
pub mod options;
pub mod partial;
pub mod plan;
pub mod prepared;
pub mod stats;
pub mod validate;

pub use batch::RowBatch;
pub use engine::QpptEngine;
pub use exec::{DimSelection, KeyRange};
pub use fingerprint::{
    fingerprint_dim, fingerprint_opts, fingerprint_query, fingerprint_spec, Fnv64,
};
pub use options::{BatchMode, PlanOptions};
pub use partial::{PartialAggregate, PartialRow};
pub use plan::{build_plan, planned_indexes, prepare_indexes, Plan, PlannedIndexes};
pub use prepared::PreparedQuery;
pub use stats::{ExecStats, OpStats};
pub use validate::{validate, validate_indexes, validate_spec, PlanError};

/// Errors from planning or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum QpptError {
    /// Invalid [`PlanOptions`].
    InvalidOptions(String),
    /// A malformed user-supplied query, rejected by the
    /// [`validate`](crate::validate) pass (unknown tables/columns, type
    /// mismatches, bad group/order references, missing indexes).
    Plan(validate::PlanError),
    /// Catalog/type errors from the storage layer.
    Storage(qppt_storage::StorageError),
    /// The query shape is outside QPPT's star-query class.
    Unsupported(String),
    /// The composite group-by key does not fit 64 bits.
    GroupKeyTooWide { bits: u32 },
    /// Internal invariant violation (planner/executor disagreement).
    Internal(String),
}

impl core::fmt::Display for QpptError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QpptError::InvalidOptions(m) => write!(f, "invalid plan options: {m}"),
            QpptError::Plan(e) => write!(f, "invalid query: {e}"),
            QpptError::Storage(e) => write!(f, "storage error: {e}"),
            QpptError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            QpptError::GroupKeyTooWide { bits } => {
                write!(f, "composite group key needs {bits} bits (max 64)")
            }
            QpptError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for QpptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QpptError::Storage(e) => Some(e),
            QpptError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qppt_storage::StorageError> for QpptError {
    fn from(e: qppt_storage::StorageError) -> Self {
        QpptError::Storage(e)
    }
}
