//! The public engine facade.

use qppt_storage::{Database, QueryResult, QuerySpec, Snapshot};

use crate::exec::execute;
use crate::options::PlanOptions;
use crate::plan::{build_plan, Plan};
use crate::stats::ExecStats;
use crate::QpptError;

/// The QPPT query engine over a database.
///
/// Base indexes must exist before running (create them once with
/// [`prepare_indexes`](crate::plan::prepare_indexes) — "indexes are created
/// once and remain in the data pool", §3); the engine itself never mutates
/// the database.
#[derive(Debug, Clone, Copy)]
pub struct QpptEngine<'a> {
    db: &'a Database,
}

impl<'a> QpptEngine<'a> {
    /// Creates an engine over `db`.
    pub fn new(db: &'a Database) -> Self {
        Self { db }
    }

    /// The database this engine reads (used by execution frontends layered
    /// on top, e.g. the `qppt-par` parallel engine).
    pub fn db(&self) -> &'a Database {
        self.db
    }

    /// Builds the physical plan for a query.
    pub fn plan(&self, spec: &QuerySpec, opts: &PlanOptions) -> Result<Plan, QpptError> {
        build_plan(self.db, spec, opts)
    }

    /// Renders the physical plan (the demonstrator's plan view).
    pub fn explain(&self, spec: &QuerySpec, opts: &PlanOptions) -> Result<String, QpptError> {
        Ok(self.plan(spec, opts)?.explain())
    }

    /// Runs a query at the latest snapshot.
    pub fn run(&self, spec: &QuerySpec, opts: &PlanOptions) -> Result<QueryResult, QpptError> {
        Ok(self.run_with_stats(spec, opts)?.0)
    }

    /// Runs a query, returning per-operator statistics too.
    pub fn run_with_stats(
        &self,
        spec: &QuerySpec,
        opts: &PlanOptions,
    ) -> Result<(QueryResult, ExecStats), QpptError> {
        self.run_at(spec, opts, self.db.snapshot())
    }

    /// Runs a query at an explicit snapshot (MVCC reads, §3).
    pub fn run_at(
        &self,
        spec: &QuerySpec,
        opts: &PlanOptions,
        snap: Snapshot,
    ) -> Result<(QueryResult, ExecStats), QpptError> {
        let plan = self.plan(spec, opts)?;
        execute(self.db, snap, &plan)
    }
}
