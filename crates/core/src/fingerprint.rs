//! Structural fingerprints of queries and plan options.
//!
//! A fingerprint is a 64-bit FNV-1a hash over every field that influences
//! planning or execution. Two [`QuerySpec`]s with the same structure (same
//! fact, same dimensions, same predicates/group-by/aggregates/order-by)
//! fingerprint identically, whatever their `id` label says; any structural
//! difference — including predicate constants — changes the hash. Combined
//! with the per-table version vector from
//! [`Database::table_version`](qppt_storage::Database::table_version), this
//! yields the *snapshot fingerprint* the `qppt-cache` tiers key on:
//! `(query structure, options, table versions)`, O(#tables) to compute.
//!
//! Hashing is hand-rolled (no `std::hash::Hasher` indirection, no derive)
//! so the byte stream — and therefore the fingerprint — is stable across
//! Rust versions and independent of `HashMap` seeding.

use qppt_storage::{AggOp, CompiledPred, Expr, OrderTerm, Predicate, QuerySpec, Value};

use crate::options::PlanOptions;
use crate::plan::ResolvedDim;

/// A 64-bit FNV-1a hasher (offset basis / prime per the reference spec).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the state.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Folds a `u64` (little-endian bytes).
    #[inline]
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Folds a length-prefixed string (prefixing prevents `("ab","c")` from
    /// colliding with `("a","bc")`).
    #[inline]
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64).write_bytes(s.as_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

fn write_value(h: &mut Fnv64, v: &Value) {
    match v {
        Value::Int(i) => {
            h.write_u64(0).write_u64(*i as u64);
        }
        Value::Str(s) => {
            h.write_u64(1).write_str(s);
        }
    }
}

fn write_predicate(h: &mut Fnv64, p: &Predicate) {
    match p {
        Predicate::Eq { column, value } => {
            h.write_u64(0).write_str(column);
            write_value(h, value);
        }
        Predicate::In { column, values } => {
            h.write_u64(1)
                .write_str(column)
                .write_u64(values.len() as u64);
            for v in values {
                write_value(h, v);
            }
        }
        Predicate::Between { column, lo, hi } => {
            h.write_u64(2).write_str(column);
            write_value(h, lo);
            write_value(h, hi);
        }
        Predicate::Lt { column, value } => {
            h.write_u64(3).write_str(column);
            write_value(h, value);
        }
    }
}

fn write_expr(h: &mut Fnv64, e: &Expr) {
    match e {
        Expr::Col(a) => {
            h.write_u64(0).write_str(a);
        }
        Expr::Mul(a, b) => {
            h.write_u64(1).write_str(a).write_str(b);
        }
        Expr::Sub(a, b) => {
            h.write_u64(2).write_str(a).write_str(b);
        }
    }
}

/// Fingerprints a query's structure (everything except its `id` label).
pub fn fingerprint_spec(spec: &QuerySpec) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&spec.fact).write_u64(spec.dims.len() as u64);
    for d in &spec.dims {
        h.write_str(&d.table)
            .write_str(&d.join_col)
            .write_str(&d.fact_col)
            .write_u64(d.predicates.len() as u64);
        for p in &d.predicates {
            write_predicate(&mut h, p);
        }
        h.write_u64(d.carried.len() as u64);
        for c in &d.carried {
            h.write_str(c);
        }
    }
    h.write_u64(spec.fact_predicates.len() as u64);
    for p in &spec.fact_predicates {
        write_predicate(&mut h, p);
    }
    h.write_u64(spec.group_by.len() as u64);
    for g in &spec.group_by {
        h.write_str(&g.table).write_str(&g.column);
    }
    h.write_u64(spec.aggregates.len() as u64);
    for a in &spec.aggregates {
        match a.op {
            AggOp::Sum => h.write_u64(0),
        };
        write_expr(&mut h, &a.expr);
        h.write_str(&a.label);
    }
    h.write_u64(spec.order_by.len() as u64);
    for o in &spec.order_by {
        let (tag, i) = match o.term {
            OrderTerm::Group(i) => (0u64, i),
            OrderTerm::Agg(i) => (1u64, i),
        };
        h.write_u64(tag)
            .write_u64(i as u64)
            .write_u64(o.desc as u64);
    }
    h.finish()
}

/// Fingerprints plan options — every knob *except* the vectorized batch
/// pair. Parallelism knobs never change result *bytes* (the engines'
/// equivalence contract), but they do change plans and statistics, so cache
/// entries are kept distinct per option set. `batch_exec`/`batch_rows`
/// change neither bytes nor the plan — only how the inner loops walk it —
/// so they are deliberately **excluded**: a batched execution shares cached
/// plans, σ materializations, and results with scalar ones byte-for-byte.
pub fn fingerprint_opts(opts: &PlanOptions) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(opts.select_join as u64)
        .write_u64(opts.join_buffer as u64)
        .write_u64(opts.max_join_ways as u64)
        .write_u64(opts.prefer_kiss as u64)
        .write_u64(opts.selection_via_set_ops as u64)
        .write_u64(opts.multidim_selections as u64)
        .write_u64(opts.parallelism as u64)
        .write_u64(opts.morsel_bits as u64)
        .write_u64(opts.par_selections as u64)
        .write_u64(opts.par_scans as u64)
        .write_u64(opts.par_joins as u64)
        .write_u64(opts.par_index_build as u64);
    h.finish()
}

/// One 64-bit key over `(query structure, options)` — the map key of every
/// cache tier (the version vector rides alongside, see `qppt-cache`).
pub fn fingerprint_query(spec: &QuerySpec, opts: &PlanOptions) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(fingerprint_spec(spec))
        .write_u64(fingerprint_opts(opts));
    h.finish()
}

fn write_compiled_pred(h: &mut Fnv64, p: &CompiledPred) {
    // Column *positions* are omitted on purpose: the column identity is
    // hashed as the `pred_cols` name alongside, and positions are derived
    // from it via the (version-covered) schema.
    match p {
        CompiledPred::Range { lo, hi, .. } => {
            h.write_u64(0).write_u64(*lo).write_u64(*hi);
        }
        CompiledPred::InSet { codes, .. } => {
            h.write_u64(1).write_u64(codes.len() as u64);
            for &c in codes {
                h.write_u64(c);
            }
        }
        CompiledPred::Never => {
            h.write_u64(2);
        }
    }
}

/// Fingerprints one resolved dimension selection σ: everything
/// [`materialize_dim`](crate::exec::materialize_dim) reads to build the
/// dimension `InterTable` — table, join column, compiled predicate set
/// (constants are dictionary codes, deterministic per table version),
/// carried columns in payload order, the multidimensional-scan shape, the
/// key domain that drives the §2.2 index-structure choice, and the three
/// [`PlanOptions`] knobs that change the materialization procedure
/// (`prefer_kiss`, `selection_via_set_ops`, `multidim_selections`).
///
/// Deliberately *excluded*: the query the dimension came from (group-by,
/// aggregates, other dims), the fact-side join column, the dimension's
/// position in the spec, and every parallelism knob — none of them change
/// the materialized bytes, so two different queries touching the same σ
/// fingerprint identically and can share one cached `InterTable`. Combined
/// with the dimension table's version this is the `qppt-cache` dim-tier
/// key.
pub fn fingerprint_dim(dim: &ResolvedDim, opts: &PlanOptions) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&dim.table)
        .write_str(&dim.join_col_name)
        .write_u64(dim.join_key_max)
        .write_u64(dim.preds.len() as u64);
    for (col, p) in dim.pred_cols.iter().zip(&dim.preds) {
        h.write_str(col);
        write_compiled_pred(&mut h, p);
    }
    h.write_u64(dim.carried_names.len() as u64);
    for c in &dim.carried_names {
        h.write_str(c);
    }
    match &dim.multidim {
        None => {
            h.write_u64(0);
        }
        Some(md) => {
            h.write_u64(1).write_u64(md.key_names.len() as u64);
            for k in &md.key_names {
                h.write_str(k);
            }
            for &(lo, hi) in &md.bounds {
                h.write_u64(lo).write_u64(hi);
            }
        }
    }
    h.write_u64(opts.prefer_kiss as u64)
        .write_u64(opts.selection_via_set_ops as u64)
        .write_u64(opts.multidim_selections as u64);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qppt_storage::{AggExpr, ColRef, DimSpec, OrderKey};

    fn spec() -> QuerySpec {
        QuerySpec {
            id: "T".into(),
            fact: "f".into(),
            dims: vec![DimSpec {
                table: "d".into(),
                join_col: "dk".into(),
                fact_col: "fk".into(),
                predicates: vec![Predicate::eq("x", 1i64)],
                carried: vec!["x".into()],
            }],
            fact_predicates: vec![Predicate::between("q", 1i64, 3i64)],
            group_by: vec![ColRef::new("d", "x")],
            aggregates: vec![AggExpr::sum(Expr::Col("p".into()), "s")],
            order_by: vec![OrderKey::group(0)],
        }
    }

    #[test]
    fn stable_and_structural() {
        assert_eq!(fingerprint_spec(&spec()), fingerprint_spec(&spec()));
        // The id label is *not* structural.
        let mut relabeled = spec();
        relabeled.id = "other".into();
        assert_eq!(fingerprint_spec(&spec()), fingerprint_spec(&relabeled));
    }

    #[test]
    fn sensitive_to_constants_and_shape() {
        let base = fingerprint_spec(&spec());
        let mut c = spec();
        c.dims[0].predicates = vec![Predicate::eq("x", 2i64)];
        assert_ne!(base, fingerprint_spec(&c));
        let mut c = spec();
        c.order_by = vec![OrderKey::agg_desc(0)];
        assert_ne!(base, fingerprint_spec(&c));
        let mut c = spec();
        c.dims[0].carried.clear();
        assert_ne!(base, fingerprint_spec(&c));
    }

    #[test]
    fn opts_fingerprint_covers_every_knob() {
        let base = PlanOptions::default();
        let variants = [
            base.with_select_join(false),
            base.with_join_buffer(64),
            base.with_max_join_ways(2),
            base.with_prefer_kiss(false),
            base.with_set_ops(true),
            base.with_multidim(true),
            base.with_parallelism(4),
            base.with_morsel_bits(9),
            base.with_par_ops(false, true, true),
            base.with_par_ops(true, false, true),
            base.with_par_ops(true, true, false),
            base.with_par_index_build(true),
        ];
        let fp0 = fingerprint_opts(&base);
        for v in &variants {
            assert_ne!(fp0, fingerprint_opts(v), "knob not hashed: {v:?}");
        }
        // And the combined query key separates spec and opts changes.
        let q0 = fingerprint_query(&spec(), &base);
        assert_ne!(q0, fingerprint_query(&spec(), &variants[0]));
    }

    #[test]
    fn batch_knobs_never_touch_the_fingerprints() {
        // Byte-identity is the batch contract: a batched execution must
        // share cached plans, σ, and results with a scalar one, so neither
        // batch knob may perturb any fingerprint.
        let base = PlanOptions::default();
        let batched = [
            base.with_batch_exec(true),
            base.with_batch_rows(64),
            base.with_batch_exec(true).with_batch_rows(1),
        ];
        for v in &batched {
            assert_eq!(
                fingerprint_opts(&base),
                fingerprint_opts(v),
                "batch knob leaked into fingerprint_opts: {v:?}"
            );
            assert_eq!(
                fingerprint_query(&spec(), &base),
                fingerprint_query(&spec(), v)
            );
        }
    }
}
