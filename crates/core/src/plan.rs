//! The QPPT planner: turns a [`QuerySpec`] plus [`PlanOptions`] into a
//! physical plan of cooperative/composed operators.
//!
//! The produced plan follows the paper's shapes:
//!
//! * Every dimension with predicates becomes either a materialized
//!   *selection* (its own intermediate indexed table keyed on the join
//!   attribute — Fig. 5's σ operators) or, for the first dimension with
//!   `select_join` enabled, a *fused* select-join stream (§4.3, Fig. 10).
//! * Fact-side residual predicates (Q1.x) are evaluated inside the first
//!   join stage when `select_join` is on; otherwise a separate fact
//!   selection materializes the filtered fact tuples first — exactly the
//!   expensive plan Fig. 8 measures.
//! * Dimension joins are packed into composed multi-way/star join stages of
//!   at most `max_join_ways` tables each (Fig. 9's 2/3/4/5-way sweep); the
//!   last stage aggregates directly into its output index (join-group).

use qppt_storage::{
    compile_predicate, ColumnType, CompiledPred, Database, IndexDef, QuerySpec, StorageError,
};

use crate::layout::{Layout, Src};
use crate::options::PlanOptions;
use crate::QpptError;

/// How a dimension's tuples reach join operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimHandleKind {
    /// Use the base index on the join column directly (no predicates).
    Base,
    /// A selection materializes an intermediate table first.
    Materialized,
    /// Fused into the first join stage (select-join): the selection streams.
    Fused,
}

/// An eligible multidimensional selection (§4.1): the dimension's whole
/// conjunction collapses into one contiguous range over a composite index.
#[derive(Debug, Clone)]
pub struct MultidimScan {
    /// Composite key columns, in predicate order.
    pub key_names: Vec<String>,
    /// Per-part inclusive `[lo, hi]` bounds (all but the last are points).
    pub bounds: Vec<(u64, u64)>,
}

/// A dimension resolved against the catalog.
#[derive(Debug, Clone)]
pub struct ResolvedDim {
    /// Index into `spec.dims`.
    pub spec_idx: usize,
    pub table: String,
    pub join_col_name: String,
    pub fact_col_name: String,
    /// Predicates compiled against the dimension table.
    pub preds: Vec<CompiledPred>,
    /// Original predicate column names (first one is the selection's scan
    /// column).
    pub pred_cols: Vec<String>,
    pub carried_names: Vec<String>,
    pub handle: DimHandleKind,
    /// Largest join-key code (drives the §2.2 index-structure choice).
    pub join_key_max: u64,
    /// Set when the selection runs over a multidimensional index (§4.1).
    pub multidim: Option<MultidimScan>,
}

/// Main input mode of a join stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MainInput {
    /// Synchronous index scan between the fact source and `dims[main]`'s
    /// index (both keyed on the join attribute).
    SyncScan { main: usize },
    /// Fused select-join: stream `dims[main]`'s selection from its base
    /// index and point-probe the fact source (batched).
    SelectProbe { main: usize },
}

/// Where a join stage writes its output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageOutput {
    /// An intermediate table keyed on `dims[next].fact_col`.
    Inter { next: usize },
    /// The final aggregating index (join-group).
    Agg,
}

/// One composed join stage.
#[derive(Debug, Clone)]
pub struct JoinStage {
    pub main: MainInput,
    /// Assisting dimensions (probed through the join buffer).
    pub assisting: Vec<usize>,
    pub output: StageOutput,
    /// Layout of the incoming fact-tuple stream.
    pub input_layout: Layout,
    /// Input layout + carried columns of all dims joined in this stage.
    pub work_layout: Layout,
    /// Projection from work layout onto the output layout
    /// (`Inter` outputs only).
    pub output_projection: Vec<usize>,
    /// Output layout (`Inter` outputs only).
    pub output_layout: Layout,
    /// Work-layout position of the output key (`Inter` outputs only).
    pub output_key_pos: usize,
    /// Fact residual predicates, rewritten to work-layout positions
    /// (non-empty only in the first stage with `select_join`).
    pub residuals: Vec<CompiledPred>,
    /// Number of tables this composed operator touches (for display).
    pub ways: usize,
}

/// A fully resolved aggregate expression over work-layout positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedAgg {
    Col(usize),
    Mul(usize, usize),
    Sub(usize, usize),
}

impl ResolvedAgg {
    /// Evaluates against a work row.
    #[inline]
    pub fn eval(&self, row: &[u64]) -> i64 {
        match *self {
            ResolvedAgg::Col(a) => row[a] as i64,
            ResolvedAgg::Mul(a, b) => row[a] as i64 * row[b] as i64,
            ResolvedAgg::Sub(a, b) => row[a] as i64 - row[b] as i64,
        }
    }
}

/// Group-by key construction info.
#[derive(Debug, Clone)]
pub struct GroupKey {
    /// Work-layout positions of the group columns (in `group_by` order)
    /// within the **final stage's** work layout.
    pub positions: Vec<usize>,
    /// Bit width per part (most significant first).
    pub widths: Vec<u8>,
    /// Total packed width.
    pub total_bits: u8,
    /// For decoding: (dim spec idx, carried col name) per part.
    pub sources: Vec<(usize, String)>,
}

impl GroupKey {
    /// Packs the group columns of a work row into a composite key.
    #[inline]
    pub fn pack(&self, row: &[u64]) -> u64 {
        let mut key = 0u64;
        let mut used = 0u8;
        for (i, &pos) in self.positions.iter().enumerate() {
            let w = self.widths[i];
            used += w;
            key |= row[pos] << (self.total_bits - used);
        }
        key
    }

    /// Unpacks a composite key back into group-column codes.
    pub fn unpack(&self, key: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.widths.len());
        let mut used = 0u8;
        for &w in &self.widths {
            used += w;
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            out.push((key >> (self.total_bits - used)) & mask);
        }
        out
    }
}

/// The physical plan.
#[derive(Debug)]
pub struct Plan {
    pub spec: QuerySpec,
    pub opts: PlanOptions,
    pub dims: Vec<ResolvedDim>,
    /// Whether a separate fact selection materializes first (Fig. 8's
    /// "without select-join" configuration for queries with fact residuals).
    pub fact_select: Option<FactSelect>,
    pub stages: Vec<JoinStage>,
    /// Fact columns the stage-1 stream needs, in layout order.
    pub fact_layout: Layout,
    /// Group key construction (empty positions = scalar aggregate).
    pub group_key: GroupKey,
    /// Aggregates resolved against the final stage's work layout.
    pub aggs: Vec<ResolvedAgg>,
}

/// The materialized fact selection of the non-fused Q1.x plan.
#[derive(Debug, Clone)]
pub struct FactSelect {
    /// Residual predicates, rebased to fact-layout positions.
    pub preds: Vec<CompiledPred>,
}

impl Plan {
    /// Rough resident-size estimate in bytes, for cache accounting. Plans
    /// are KiB-scale resolved metadata; the estimate sums the owned
    /// strings and per-dim/stage vectors — exactness is not the point,
    /// only that a plan weighs ~nothing next to a materialized selection.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let str_bytes = |s: &String| size_of::<String>() + s.len();
        let mut b = size_of::<Self>();
        for d in &self.dims {
            b += size_of::<ResolvedDim>()
                + d.table.len()
                + d.join_col_name.len()
                + d.fact_col_name.len();
            b += d.carried_names.iter().map(&str_bytes).sum::<usize>();
            b += d.pred_cols.iter().map(&str_bytes).sum::<usize>();
            b += d.preds.len() * size_of::<CompiledPred>();
        }
        for s in &self.stages {
            b += size_of::<JoinStage>()
                + (s.assisting.len() + s.output_projection.len()) * size_of::<usize>()
                + (s.residuals.len() + s.ways) * size_of::<CompiledPred>();
        }
        b += self.aggs.len() * size_of::<ResolvedAgg>();
        b += (self.group_key.positions.len() + self.group_key.sources.len()) * 16;
        b
    }

    /// Human-readable plan rendering (the demonstrator's plan view).
    pub fn explain(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let dim_names: Vec<String> = self.dims.iter().map(|d| d.table.clone()).collect();
        let _ = writeln!(
            s,
            "QPPT plan for {} (select_join={}, join_buffer={}, max_ways={}, kiss={})",
            self.spec.id,
            self.opts.select_join,
            self.opts.join_buffer,
            self.opts.max_join_ways,
            self.opts.prefer_kiss
        );
        for d in &self.dims {
            let what = match d.handle {
                DimHandleKind::Base => format!("base index on {}.{}", d.table, d.join_col_name),
                DimHandleKind::Materialized => format!(
                    "σ({}){} → intermediate index on {}.{} carrying {:?}",
                    d.pred_cols.join(","),
                    if d.multidim.is_some() {
                        " via multidim index"
                    } else {
                        ""
                    },
                    d.table,
                    d.join_col_name,
                    d.carried_names
                ),
                DimHandleKind::Fused => {
                    format!("σ({}) fused into join (select-join)", d.pred_cols.join(","))
                }
            };
            let _ = writeln!(s, "  dim {}: {}", d.table, what);
        }
        if let Some(fs) = &self.fact_select {
            let _ = writeln!(
                s,
                "  fact selection: materialize {} residual predicate(s) into intermediate index on {}",
                fs.preds.len(),
                self.dims[0].fact_col_name
            );
        }
        for (i, st) in self.stages.iter().enumerate() {
            let main = match st.main {
                MainInput::SyncScan { main } => {
                    format!("sync-scan ⋈ {}", self.dims[main].table)
                }
                MainInput::SelectProbe { main } => {
                    format!("select-probe({}) → fact index", self.dims[main].table)
                }
            };
            let assist: Vec<&str> = st
                .assisting
                .iter()
                .map(|&a| self.dims[a].table.as_str())
                .collect();
            let out = match &st.output {
                StageOutput::Inter { next } => format!(
                    "intermediate index on {} {}",
                    self.dims[*next].fact_col_name,
                    st.output_layout.describe(&dim_names)
                ),
                StageOutput::Agg => "aggregating index (join-group)".to_string(),
            };
            let _ = writeln!(
                s,
                "  stage {}: {}-way star join [{}; assisting: {:?}] → {}",
                i + 1,
                st.ways,
                main,
                assist,
                out
            );
        }
        s
    }
}

/// A multidimensional index a plan needs (see
/// [`Database::create_composite_index`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositeDef {
    pub table: String,
    /// Key columns, most significant first.
    pub keys: Vec<String>,
    pub carried: Vec<String>,
}

/// The full index set a query needs, as declarative definitions — computed
/// once so sequential ([`prepare_indexes`]) and pool-parallel
/// (`qppt_par::prepare_indexes_pooled`) builders create exactly the same
/// indexes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlannedIndexes {
    pub base: Vec<IndexDef>,
    pub composite: Vec<CompositeDef>,
}

/// Computes every base/composite index definition the query needs under
/// the given options (fact index on the first FK carrying the stream
/// columns, one selection index per dimension, per-predicate rid-set
/// indexes for `selection_via_set_ops`, composite indexes for eligible
/// `multidim_selections` conjunctions).
pub fn planned_indexes(
    db: &Database,
    spec: &QuerySpec,
    opts: &PlanOptions,
) -> Result<PlannedIndexes, QpptError> {
    let mut planned = PlannedIndexes::default();
    // Fact index on the first dimension's FK, carrying everything the
    // stream needs (partially clustered, §3).
    let first = spec
        .dims
        .first()
        .ok_or_else(|| QpptError::Unsupported("star queries need at least one dimension".into()))?;
    let needed = needed_fact_columns(spec);
    let carried: Vec<&str> = needed
        .iter()
        .filter(|c| **c != first.fact_col)
        .map(String::as_str)
        .collect();
    planned
        .base
        .push(IndexDef::new(&spec.fact, &first.fact_col, &carried));

    for d in &spec.dims {
        let carried: Vec<String> = dim_index_carried(d);
        let carried_refs: Vec<&str> = carried.iter().map(String::as_str).collect();
        if let Some(p) = d.predicates.first() {
            planned
                .base
                .push(IndexDef::new(&d.table, p.column(), &carried_refs));
        } else {
            // No predicates: join through the base index on the join column.
            let c: Vec<&str> = d.carried.iter().map(String::as_str).collect();
            planned.base.push(IndexDef::new(&d.table, &d.join_col, &c));
        }
        if opts.selection_via_set_ops && d.predicates.len() >= 2 {
            for p in &d.predicates {
                planned.base.push(IndexDef::new(&d.table, p.column(), &[]));
            }
        }
        if opts.multidim_selections && d.predicates.len() >= 2 {
            let t = db.table(&d.table)?.table();
            let preds: Vec<CompiledPred> = d
                .predicates
                .iter()
                .map(|p| compile_predicate(t, p))
                .collect::<Result<_, StorageError>>()?;
            if eligible_multidim(t, &preds, d).is_some() {
                let keys: Vec<String> = d
                    .predicates
                    .iter()
                    .map(|p| p.column().to_string())
                    .collect();
                let mut carried: Vec<String> = vec![d.join_col.clone()];
                carried.extend(d.carried.iter().cloned());
                planned.composite.push(CompositeDef {
                    table: d.table.clone(),
                    keys,
                    carried,
                });
            }
        }
    }
    Ok(planned)
}

/// Creates (or widens) every base index the plan needs — "indexes are
/// created once and remain in the data pool for future queries" (§3).
pub fn prepare_indexes(
    db: &mut Database,
    spec: &QuerySpec,
    opts: &PlanOptions,
) -> Result<(), QpptError> {
    db.prefer_kiss = opts.prefer_kiss;
    let planned = planned_indexes(db, spec, opts)?;
    for def in &planned.base {
        db.create_index(def)?;
    }
    for c in &planned.composite {
        let keys: Vec<&str> = c.keys.iter().map(String::as_str).collect();
        let carried: Vec<&str> = c.carried.iter().map(String::as_str).collect();
        db.create_composite_index(&c.table, &keys, &carried)?;
    }
    Ok(())
}

/// Columns of the fact table the plan reads: all FK columns, aggregate
/// inputs, and residual predicate columns.
pub fn needed_fact_columns(spec: &QuerySpec) -> Vec<String> {
    let mut cols: Vec<String> = spec.dims.iter().map(|d| d.fact_col.clone()).collect();
    cols.extend(spec.agg_input_columns());
    for p in &spec.fact_predicates {
        cols.push(p.column().to_string());
    }
    cols.sort();
    cols.dedup();
    cols
}

/// What a dimension's selection index must carry: the join column, the
/// residual predicate columns, and the downstream carried columns.
fn dim_index_carried(d: &qppt_storage::DimSpec) -> Vec<String> {
    let mut cols = vec![d.join_col.clone()];
    for p in d.predicates.iter().skip(1) {
        cols.push(p.column().to_string());
    }
    cols.extend(d.carried.iter().cloned());
    cols.sort();
    cols.dedup();
    // Keep join_col first for readability (order is irrelevant to lookups).
    cols
}

/// Builds the physical plan. Starts with
/// [`validate_spec`](crate::validate::validate_spec), so a malformed
/// user-supplied spec gets a typed [`PlanError`](crate::validate::PlanError)
/// instead of driving the layout/type resolution below into a panic.
pub fn build_plan(db: &Database, spec: &QuerySpec, opts: &PlanOptions) -> Result<Plan, QpptError> {
    opts.validate()?;
    crate::validate::validate_spec(db, spec)?;
    // Resolve dimensions.
    let mut dims = Vec::with_capacity(spec.dims.len());
    for (i, d) in spec.dims.iter().enumerate() {
        let mvt = db.table(&d.table)?;
        let t = mvt.table();
        let join_col = t.schema().col(&d.join_col)?;
        let preds: Vec<CompiledPred> = d
            .predicates
            .iter()
            .map(|p| compile_predicate(t, p))
            .collect::<Result<_, StorageError>>()?;
        let handle = if d.predicates.is_empty() {
            DimHandleKind::Base
        } else if i == 0 && opts.select_join {
            DimHandleKind::Fused
        } else {
            DimHandleKind::Materialized
        };
        let stats = t.stats(join_col);
        let multidim = if opts.multidim_selections {
            eligible_multidim(t, &preds, d)
        } else {
            None
        };
        dims.push(ResolvedDim {
            spec_idx: i,
            table: d.table.clone(),
            join_col_name: d.join_col.clone(),
            fact_col_name: d.fact_col.clone(),
            preds,
            pred_cols: d
                .predicates
                .iter()
                .map(|p| p.column().to_string())
                .collect(),
            carried_names: d.carried.clone(),
            handle,
            join_key_max: if stats.min > stats.max { 0 } else { stats.max },
            multidim,
        });
    }

    // Stage-1 input layout: fact columns that any stage or aggregate needs.
    let mut fact_layout = Layout::new();
    for c in needed_fact_columns(spec) {
        fact_layout.add(Src::Fact, &c);
    }

    // Fact selection (Fig. 8's non-fused configuration). Its predicates are
    // rebased to fact-layout positions, since the selection reads the fact
    // base index payload, not table rows.
    let fact_t = db.table(&spec.fact)?.table();
    let fact_select = if !spec.fact_predicates.is_empty() && !opts.select_join {
        let preds = spec
            .fact_predicates
            .iter()
            .map(|p| {
                let compiled = compile_predicate(fact_t, p)?;
                Ok(rebase_pred(compiled, &fact_layout, p.column()))
            })
            .collect::<Result<_, StorageError>>()?;
        Some(FactSelect { preds })
    } else {
        None
    };

    // Stage split: stage 1 = fact + main dim + (w-2) assisting;
    // later stages = stream + main + (w-2) assisting.
    let w = opts.max_join_ways;
    let n = dims.len();
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new(); // (main, assisting)
    let mut next = 0usize;
    while next < n {
        let main = next;
        let take = (w - 1).min(n - main) - 1; // assisting count this stage
        let assisting: Vec<usize> = (main + 1..main + 1 + take).collect();
        next = main + 1 + take;
        groups.push((main, assisting));
    }

    // Build stages with layout propagation.
    let mut stages: Vec<JoinStage> = Vec::new();
    let mut input_layout = fact_layout.clone();
    for (gi, (main, assisting)) in groups.iter().enumerate() {
        let is_last = gi == groups.len() - 1;
        let mut work_layout = input_layout.clone();
        for &d in std::iter::once(main).chain(assisting.iter()) {
            for c in &dims[d].carried_names {
                work_layout.add(Src::Dim(d), c);
            }
        }
        // Residuals apply in stage 1 iff no separate fact selection ran.
        let residuals = if gi == 0 && fact_select.is_none() && !spec.fact_predicates.is_empty() {
            spec.fact_predicates
                .iter()
                .map(|p| {
                    let compiled = compile_predicate(fact_t, p)?;
                    Ok(rebase_pred(compiled, &fact_layout, p.column()))
                })
                .collect::<Result<Vec<_>, StorageError>>()?
        } else {
            Vec::new()
        };

        let main_input = if gi == 0 && dims[*main].handle == DimHandleKind::Fused {
            MainInput::SelectProbe { main: *main }
        } else {
            MainInput::SyncScan { main: *main }
        };

        let (output, output_layout, output_projection, output_key_pos) = if is_last {
            (StageOutput::Agg, Layout::new(), Vec::new(), 0)
        } else {
            let next_dim = groups[gi + 1].0;
            let key_name = dims[next_dim].fact_col_name.clone();
            let key_pos = work_layout.find(Src::Fact, &key_name).ok_or_else(|| {
                QpptError::Internal(format!(
                    "stage {gi} layout lost the next join key {key_name}"
                ))
            })?;
            // Output keeps: fact cols needed by later stages/aggregates
            // (minus the consumed keys) and all dim carried cols so far.
            let consumed: Vec<String> = std::iter::once(*main)
                .chain(assisting.iter().copied())
                .map(|d| dims[d].fact_col_name.clone())
                .chain(std::iter::once(key_name.clone()))
                .collect();
            let mut out = Layout::new();
            let mut proj = Vec::new();
            for (src, name) in work_layout.columns() {
                let keep = match src {
                    Src::Fact => !consumed.contains(name) || is_agg_input(spec, name),
                    Src::Dim(_) => true,
                };
                if keep {
                    out.add(*src, name);
                    proj.push(work_layout.expect(*src, name));
                }
            }
            (StageOutput::Inter { next: next_dim }, out, proj, key_pos)
        };

        let ways = 1 + 1 + assisting.len(); // stream/fact + main + assisting
        stages.push(JoinStage {
            main: main_input,
            assisting: assisting.clone(),
            output,
            input_layout: input_layout.clone(),
            work_layout: work_layout.clone(),
            output_projection,
            output_layout: output_layout.clone(),
            output_key_pos,
            residuals,
            ways,
        });
        input_layout = output_layout;
    }

    // Group key over the final work layout.
    let final_work = &stages.last().expect("at least one stage").work_layout;
    let mut positions = Vec::new();
    let mut widths = Vec::new();
    let mut sources = Vec::new();
    for g in &spec.group_by {
        let (di, d) = spec
            .dims
            .iter()
            .enumerate()
            .find(|(_, d)| d.table == g.table)
            .ok_or_else(|| StorageError::UnknownTable(g.table.clone()))?;
        let t = db.table(&d.table)?.table();
        let col = t.schema().col(&g.column)?;
        let max_code = match t.schema().column(col).ty {
            ColumnType::Str => t
                .dict(col)
                .map_or(0, |dd| dd.len().saturating_sub(1) as u64),
            ColumnType::Int => {
                let s = t.stats(col);
                if s.min > s.max {
                    0
                } else {
                    s.max
                }
            }
        };
        let bits = (64 - max_code.leading_zeros()).max(1) as u8;
        let pos = final_work.find(Src::Dim(di), &g.column).ok_or_else(|| {
            crate::validate::PlanError::GroupColumnNotCarried {
                table: g.table.clone(),
                column: g.column.clone(),
            }
        })?;
        positions.push(pos);
        widths.push(bits);
        sources.push((di, g.column.clone()));
    }
    let total_bits: u32 = widths.iter().map(|&w| w as u32).sum();
    if total_bits > 64 {
        return Err(QpptError::GroupKeyTooWide { bits: total_bits });
    }
    let group_key = GroupKey {
        positions,
        widths,
        total_bits: total_bits as u8,
        sources,
    };

    // Aggregates over the final work layout (fact columns).
    let aggs = spec
        .aggregates
        .iter()
        .map(|a| {
            let pos = |c: &str| {
                final_work.find(Src::Fact, c).ok_or_else(|| {
                    QpptError::Internal(format!("final layout lost aggregate input {c}"))
                })
            };
            Ok(match &a.expr {
                qppt_storage::Expr::Col(c) => ResolvedAgg::Col(pos(c)?),
                qppt_storage::Expr::Mul(a, b) => ResolvedAgg::Mul(pos(a)?, pos(b)?),
                qppt_storage::Expr::Sub(a, b) => ResolvedAgg::Sub(pos(a)?, pos(b)?),
            })
        })
        .collect::<Result<Vec<_>, QpptError>>()?;

    Ok(Plan {
        spec: spec.clone(),
        opts: *opts,
        dims,
        fact_select,
        stages,
        fact_layout,
        group_key,
        aggs,
    })
}

/// Checks the composite-prefix rule: ≥2 predicates, every one a `Range`,
/// all but the last a point (`lo == hi`). Returns the per-part bounds,
/// clamped to the column widths the composite index will use.
fn eligible_multidim(
    t: &qppt_storage::Table,
    preds: &[CompiledPred],
    d: &qppt_storage::DimSpec,
) -> Option<MultidimScan> {
    if preds.len() < 2 {
        return None;
    }
    let mut bounds = Vec::with_capacity(preds.len());
    for (i, p) in preds.iter().enumerate() {
        match p {
            CompiledPred::Range { col, lo, hi } => {
                let last = i == preds.len() - 1;
                if !last && lo != hi {
                    return None;
                }
                // Clamp to the width the composite index derives from the
                // column's max code (predicate constants may exceed it).
                let s = t.stats(*col);
                let max = if s.min > s.max { 0 } else { s.max };
                let w = (64 - max.leading_zeros()).max(1);
                let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
                if *lo > mask {
                    return None; // cannot match anything in-domain
                }
                bounds.push((*lo, (*hi).min(mask)));
            }
            _ => return None,
        }
    }
    Some(MultidimScan {
        key_names: d
            .predicates
            .iter()
            .map(|p| p.column().to_string())
            .collect(),
        bounds,
    })
}

/// `true` if `col` feeds an aggregate (such fact columns survive key
/// consumption).
fn is_agg_input(spec: &QuerySpec, col: &str) -> bool {
    spec.aggregates
        .iter()
        .any(|a| a.expr.columns().contains(&col))
}

/// Rewrites a fact-table predicate to address a layout position instead of
/// a table column.
fn rebase_pred(p: CompiledPred, layout: &Layout, col_name: &str) -> CompiledPred {
    let pos = layout.expect(Src::Fact, col_name);
    match p {
        CompiledPred::Range { lo, hi, .. } => CompiledPred::Range { col: pos, lo, hi },
        CompiledPred::InSet { codes, .. } => CompiledPred::InSet { col: pos, codes },
        CompiledPred::Never => CompiledPred::Never,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_key_pack_unpack_roundtrip() {
        let gk = GroupKey {
            positions: vec![0, 1],
            widths: vec![11, 10],
            total_bits: 21,
            sources: vec![(0, "a".into()), (1, "b".into())],
        };
        let row = vec![1997u64, 513];
        let key = gk.pack(&row);
        assert_eq!(gk.unpack(key), vec![1997, 513]);
    }

    #[test]
    fn group_key_order_matches_lexicographic() {
        let gk = GroupKey {
            positions: vec![0, 1],
            widths: vec![8, 8],
            total_bits: 16,
            sources: vec![(0, "a".into()), (1, "b".into())],
        };
        let k1 = gk.pack(&[1, 200]);
        let k2 = gk.pack(&[2, 0]);
        let k3 = gk.pack(&[2, 1]);
        assert!(k1 < k2 && k2 < k3);
    }

    #[test]
    fn resolved_agg_eval() {
        let row = vec![10u64, 3u64];
        assert_eq!(ResolvedAgg::Col(0).eval(&row), 10);
        assert_eq!(ResolvedAgg::Mul(0, 1).eval(&row), 30);
        assert_eq!(ResolvedAgg::Sub(1, 0).eval(&row), -7);
    }
}
