//! [`PreparedQuery`]: a query's reusable execution state — built plan,
//! materialized dimension selections, and the fused stage-1 selection
//! stream — computed once and shared (via `Arc`) across repeated
//! executions and concurrent connections.
//!
//! QPPT intermediates are ordered, canonical index structures: at an
//! unchanged snapshot, re-running the same query rebuilds byte-identical
//! dimension selections and plans from scratch. A `PreparedQuery` captures
//! exactly that recomputable state. Coherence is the caller's contract
//! (enforced by `qppt-cache` via per-table versions): a prepared query may
//! only be executed while the versions of every table it reads are
//! unchanged since [`build`](PreparedQuery::build) — then `snap` sees the
//! same rows as any later snapshot, and execution is byte-identical to
//! planning + materializing from scratch.

use std::sync::Arc;
use std::time::Instant;

use qppt_storage::{Database, QueryResult, QuerySpec, Snapshot};

use crate::exec::{
    decode_result, materialize_dim, materialize_fused_selection, new_agg_table, run_pipeline,
    FusedSelection,
};
use crate::inter::InterTable;
use crate::options::PlanOptions;
use crate::plan::{build_plan, Plan};
use crate::stats::{ExecStats, OpStats};
use crate::QpptError;

/// Reusable per-query execution state (see module docs). Everything is
/// behind `Arc`s, so clones are cheap and executions on other threads (the
/// `qppt-par` pooled engine) share rather than copy.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// The physical plan.
    pub plan: Arc<Plan>,
    /// Materialized dimension selections, one slot per plan dimension
    /// (`None` for base/fused handles), shared read-only by executions.
    pub dim_tables: Arc<Vec<Option<InterTable>>>,
    /// The pre-materialized stage-1 fused selection stream, if the plan
    /// leads with a select-probe.
    pub fused: Arc<Option<FusedSelection>>,
    /// Build-time statistics of the dimension materializations (replayed
    /// into every execution's stats so operator lists keep their shape).
    pub dim_stats: Vec<OpStats>,
    /// The snapshot the selections were materialized at.
    pub snap: Snapshot,
}

impl PreparedQuery {
    /// Plans `spec` and materializes its dimension state at `snap`.
    pub fn build(
        db: &Database,
        spec: &QuerySpec,
        opts: &PlanOptions,
        snap: Snapshot,
    ) -> Result<Self, QpptError> {
        Self::from_plan(db, Arc::new(build_plan(db, spec, opts)?), snap)
    }

    /// Materializes the dimension state for an already-built plan at
    /// `snap` — the entry point when a plan-cache tier hit skipped
    /// [`build_plan`].
    pub fn from_plan(db: &Database, plan: Arc<Plan>, snap: Snapshot) -> Result<Self, QpptError> {
        let mut dim_tables = Vec::with_capacity(plan.dims.len());
        let mut dim_stats = Vec::new();
        for di in 0..plan.dims.len() {
            match materialize_dim(db, snap, &plan, di)? {
                Some((table, op)) => {
                    dim_stats.push(op);
                    dim_tables.push(Some(table));
                }
                None => dim_tables.push(None),
            }
        }
        let fused = materialize_fused_selection(db, snap, &plan)?;
        Ok(Self {
            plan,
            dim_tables: Arc::new(dim_tables),
            fused: Arc::new(fused),
            dim_stats,
            snap,
        })
    }

    /// Runs the fact pipeline sequentially on the calling thread from the
    /// prepared state — no planning, no dimension materialization, no
    /// selection-predicate evaluation (the fused stream replays). Results
    /// are byte-identical to [`QpptEngine::run`](crate::QpptEngine::run)
    /// under the coherence contract (module docs).
    pub fn execute_sequential(&self, db: &Database) -> Result<(QueryResult, ExecStats), QpptError> {
        let started = Instant::now();
        let mut stats = ExecStats {
            ops: self.dim_stats.clone(),
            total_micros: 0,
        };
        let mut agg = new_agg_table(&self.plan);
        let ops = run_pipeline(
            db,
            self.snap,
            &self.plan,
            &self.dim_tables,
            None,
            self.fused.as_ref().as_ref(),
            &mut agg,
        )?;
        for op in ops {
            stats.push(op);
        }
        let result = decode_result(db, &self.plan, &agg);
        stats.total_micros = started.elapsed().as_micros();
        Ok((result, stats))
    }
}
