//! [`PreparedQuery`]: a query's reusable execution state — built plan,
//! materialized dimension selections, and the fused stage-1 selection
//! stream — computed once and shared (via `Arc`) across repeated
//! executions and concurrent connections.
//!
//! QPPT intermediates are ordered, canonical index structures: at an
//! unchanged snapshot, re-running the same query rebuilds byte-identical
//! dimension selections and plans from scratch. A `PreparedQuery` captures
//! exactly that recomputable state — and since PR 4 it is a *cheap
//! composition*: each dimension selection is an independently cacheable
//! [`DimSelection`] handle (shared across every query with the same σ
//! through the `qppt-cache` dimension tier), and only the fused stage-1
//! stream is query-private. Coherence is the caller's contract (enforced
//! by `qppt-cache` via per-table versions): a prepared query may only be
//! executed while the versions of every table it reads are unchanged since
//! its parts were materialized — then `snap` sees the same rows as any
//! later snapshot, and execution is byte-identical to planning +
//! materializing from scratch.

use std::sync::Arc;
use std::time::Instant;

use qppt_storage::{Database, QueryResult, QuerySpec, Snapshot};

use crate::exec::{
    decode_result, materialize_dim_selection, materialize_fused_selection, new_agg_table,
    run_pipeline, DimSelection, FusedSelection,
};
use crate::options::PlanOptions;
use crate::plan::{build_plan, Plan};
use crate::stats::{ExecStats, OpStats};
use crate::QpptError;

/// Reusable per-query execution state (see module docs). Everything is
/// behind `Arc`s, so clones are cheap and executions on other threads (the
/// `qppt-par` pooled engine) share rather than copy; the dimension handles
/// may additionally be shared with *other* prepared queries.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// The physical plan.
    pub plan: Arc<Plan>,
    /// Materialized dimension selections, one slot per plan dimension
    /// (`None` for base/fused handles). Each handle is shared read-only
    /// across executions and, via the cache's dimension tier, across
    /// queries with the same σ.
    pub dims: Arc<Vec<Option<Arc<DimSelection>>>>,
    /// The pre-materialized stage-1 fused selection stream, if the plan
    /// leads with a select-probe. Query-private (it depends on the fact
    /// residuals' stage placement, not just the dimension).
    pub fused: Arc<Option<FusedSelection>>,
    /// The snapshot the query-private parts were materialized at.
    pub snap: Snapshot,
}

impl PreparedQuery {
    /// Plans `spec` and materializes its dimension state at `snap`.
    pub fn build(
        db: &Database,
        spec: &QuerySpec,
        opts: &PlanOptions,
        snap: Snapshot,
    ) -> Result<Self, QpptError> {
        Self::from_plan(db, Arc::new(build_plan(db, spec, opts)?), snap)
    }

    /// Materializes the dimension state for an already-built plan at
    /// `snap` — the entry point when a plan-cache tier hit skipped
    /// [`build_plan`].
    pub fn from_plan(db: &Database, plan: Arc<Plan>, snap: Snapshot) -> Result<Self, QpptError> {
        let dims = (0..plan.dims.len())
            .map(|di| materialize_dim_selection(db, snap, &plan, di))
            .collect::<Result<Vec<_>, QpptError>>()?;
        Self::from_parts(db, plan, dims, snap)
    }

    /// Composes a prepared query from already-materialized dimension
    /// handles (cache hits and fresh builds alike), materializing only the
    /// query-private fused stream — the `qppt-cache` assemble-from-parts
    /// path. `dims` must hold one slot per plan dimension, `Some` exactly
    /// for the `Materialized` handles, each built at a snapshot whose
    /// per-table version still matches `snap`'s.
    pub fn from_parts(
        db: &Database,
        plan: Arc<Plan>,
        dims: Vec<Option<Arc<DimSelection>>>,
        snap: Snapshot,
    ) -> Result<Self, QpptError> {
        debug_assert_eq!(dims.len(), plan.dims.len());
        let fused = materialize_fused_selection(db, snap, &plan)?;
        Ok(Self {
            plan,
            dims: Arc::new(dims),
            fused: Arc::new(fused),
            snap,
        })
    }

    /// Build-time statistics of the dimension materializations, in
    /// dimension order — replayed into every execution's stats so operator
    /// lists keep their shape whether the σ was built or shared.
    pub fn dim_stats(&self) -> Vec<OpStats> {
        self.dims.iter().flatten().map(|d| d.op.clone()).collect()
    }

    /// Heap bytes of the *query-private* state (plan + fused stream). The
    /// dimension tables are excluded: they are shared handles — callers
    /// that need the full retained footprint (the cache's selection-tier
    /// accounting) add the σ tables' `memory_bytes` on top.
    pub fn private_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.plan.memory_bytes()
            + self.fused.as_ref().as_ref().map_or(0, |f| f.memory_bytes())
            + self.dims.len() * std::mem::size_of::<Option<Arc<DimSelection>>>()
    }

    /// Runs the fact pipeline sequentially on the calling thread from the
    /// prepared state — no planning, no dimension materialization, no
    /// selection-predicate evaluation (the fused stream replays). Results
    /// are byte-identical to [`QpptEngine::run`](crate::QpptEngine::run)
    /// under the coherence contract (module docs).
    ///
    /// The batch mode is derived from the plan's own options — correct
    /// when the prepared query was built for this request. Serving paths
    /// that reuse *cached* prepared queries (whose plan may carry stale
    /// batch knobs, since batch knobs are excluded from the fingerprints)
    /// call [`execute_sequential_agg`](Self::execute_sequential_agg) with
    /// the request's mode instead.
    pub fn execute_sequential(&self, db: &Database) -> Result<(QueryResult, ExecStats), QpptError> {
        let started = Instant::now();
        let (agg, mut stats) = self.execute_sequential_agg(db, self.plan.opts.batch_mode())?;
        let result = decode_result(db, &self.plan, &agg);
        stats.total_micros = started.elapsed().as_micros();
        Ok((result, stats))
    }

    /// Like [`execute_sequential`](Self::execute_sequential), but stops at
    /// the merged aggregation index — the shard-side entry point for
    /// partial-aggregate serving, where decode happens at the router.
    /// `batch` is the *request's* execution mode (see
    /// [`run_pipeline`]'s contract on cached plans); scalar and batched
    /// runs produce byte-identical aggregates.
    pub fn execute_sequential_agg(
        &self,
        db: &Database,
        batch: crate::options::BatchMode,
    ) -> Result<(crate::inter::AggTable, ExecStats), QpptError> {
        let started = Instant::now();
        let mut stats = ExecStats {
            ops: self.dim_stats(),
            total_micros: 0,
        };
        let mut agg = new_agg_table(&self.plan);
        let ops = run_pipeline(
            db,
            self.snap,
            &self.plan,
            &self.dims,
            None,
            self.fused.as_ref().as_ref(),
            batch,
            &mut agg,
        )?;
        for op in ops {
            stats.push(op);
        }
        stats.total_micros = started.elapsed().as_micros();
        Ok((agg, stats))
    }
}
